"""Ablation — Dotsenko co-prime padding vs the constructed worst case.

The paper's related work recalls that bank-conflict-free layouts (padding)
avoid worst cases "at a price". This bench quantifies both sides for the
Thrust parameters on the Quadro M4000:

* conflict side: padding collapses the adversarial serialization to below
  the random-input level (the construction's alignment is layout-specific);
* price side: the padded tile costs extra shared memory, which can drop a
  resident block (the occupancy arithmetic of Section IV-A).
"""

import numpy as np
from conftest import record

from repro.adversary.permutation import worst_case_permutation
from repro.gpu.device import QUADRO_M4000
from repro.gpu.occupancy import occupancy
from repro.mitigation.padding import padded_shared_bytes
from repro.sort.config import SortConfig
from repro.sort.pairwise import PairwiseMergeSort

CFG = SortConfig(elements_per_thread=15, block_size=512, name="thrust")
N = CFG.tile_size * 32


def test_padding_vs_adversary(benchmark):
    perm = worst_case_permutation(CFG, N)

    def run(padding):
        return PairwiseMergeSort(CFG, padding=padding).sort(perm, score_blocks=4)

    padded = benchmark.pedantic(lambda: run(1), rounds=2, iterations=1)
    stock = run(0)
    rng = np.random.default_rng(0)
    random_stock = PairwiseMergeSort(CFG).sort(rng.permutation(N), score_blocks=4)

    s = stock.total_shared_cycles() / N
    p = padded.total_shared_cycles() / N
    r = random_stock.total_shared_cycles() / N
    assert p < 0.6 * s
    record(
        f"Ablate padding (w=32, E=15): worst-case shared cycles/elem "
        f"{s:.2f} (stock) -> {p:.2f} (pad=1); random baseline {r:.2f} — "
        "padding neutralizes the construction"
    )


def test_padding_occupancy_price(benchmark):
    def occupancies():
        stock = occupancy(QUADRO_M4000, CFG.b, CFG.shared_bytes_per_block)
        padded = occupancy(QUADRO_M4000, CFG.b, padded_shared_bytes(CFG, 1))
        return stock, padded

    stock, padded = benchmark(occupancies)
    assert padded.shared_bytes_per_block > stock.shared_bytes_per_block
    record(
        f"Ablate padding price: tile {stock.shared_bytes_per_block:,} B -> "
        f"{padded.shared_bytes_per_block:,} B; blocks/SM "
        f"{stock.blocks_per_sm} -> {padded.blocks_per_sm} on "
        f"{QUADRO_M4000.name} (occupancy {stock.occupancy:.0%} -> "
        f"{padded.occupancy:.0%})"
    )
