"""Ablation — relaxed near-worst-case inputs (paper Conclusion, item 3).

The paper argues many permutations besides the canonical one incur
significant conflicts. This bench sweeps the relaxation knob from 0 (the
constructed worst case) to 1 (mostly benign) and reports the simulated
shared-cycle cost, demonstrating the whole family of damaging inputs.
"""

import numpy as np
from conftest import record

from repro.adversary.assignment import construct_warp_assignment
from repro.adversary.family import family_size_log2, relaxed_assignment
from repro.adversary.permutation import worst_case_permutation
from repro.sort.config import SortConfig
from repro.sort.pairwise import PairwiseMergeSort

CFG = SortConfig(elements_per_thread=15, block_size=64, warp_size=32)
N = CFG.tile_size * 16


def cycles_for(assignment):
    perm = worst_case_permutation(CFG, N, assignment=assignment)
    result = PairwiseMergeSort(CFG).sort(perm, score_blocks=4)
    return result.total_shared_cycles()


def test_relaxation_sweep(benchmark):
    wa = construct_warp_assignment(CFG.w, CFG.E)
    fractions = [0.0, 0.25, 0.5, 0.75, 1.0]

    def sweep():
        return [cycles_for(relaxed_assignment(wa, f, seed=1)) for f in fractions]

    cycles = benchmark(sweep)
    rng = np.random.default_rng(0)
    random_cycles = PairwiseMergeSort(CFG).sort(
        rng.permutation(N), score_blocks=4
    ).total_shared_cycles()

    assert cycles[0] == max(cycles)
    assert cycles[0] > cycles[-1]
    for f, c in zip(fractions, cycles):
        record(
            f"Ablate relax={f:4.2f}: shared cycles {c:,.0f} "
            f"({c / random_cycles:.2f}x random)"
        )
    # Even half-relaxed inputs stay clearly worse than random.
    assert cycles[2] > 1.1 * random_cycles


def test_family_is_large(benchmark):
    wa = construct_warp_assignment(32, 15)
    bits = benchmark(family_size_log2, wa)
    assert bits > 20
    record(
        f"Ablate permutation family: >= 2^{bits:.0f} equal-damage variants "
        "per warp (Conclusion item 2)"
    )
