"""Baseline — oblivious bitonic sort vs the attacked pairwise merge sort.

Extension beyond the paper: bitonic sort's access schedule is data-
oblivious, so the constructed worst-case inputs cannot touch it. The
question the paper's Section I raises — is the robustness worth the extra
work? — gets a quantitative answer here: even on its worst-case input the
pairwise merge sort stays cheaper in serialized shared cycles than bitonic
at realistic sizes (Θ(N log N) with E² rounds vs Θ(N log² N) with the
low-distance conflicts bitonic always pays).
"""

import numpy as np
from conftest import record

from repro.adversary.permutation import worst_case_permutation
from repro.sort.bitonic import BitonicSort
from repro.sort.config import SortConfig
from repro.sort.pairwise import PairwiseMergeSort

W = 32
N = 1 << 18


def test_bitonic_is_immune(benchmark):
    cfg = SortConfig(elements_per_thread=4, block_size=64, warp_size=W)
    n = cfg.tile_size * 1024  # 2^18, power of two -> valid for both
    adversarial = worst_case_permutation(cfg, n)
    bitonic = BitonicSort(block_size=256, warp_size=W)

    adv = benchmark.pedantic(lambda: bitonic.sort(adversarial), rounds=2,
                             iterations=1)
    rand = bitonic.sort(np.random.default_rng(0).permutation(n))
    assert adv.total_shared_cycles() == rand.total_shared_cycles()
    record(
        f"Bitonic obliviousness: adversarial and random inputs cost an "
        f"identical {adv.total_shared_cycles() / n:.2f} shared cycles/elem"
    )


def test_bitonic_vs_attacked_merge_sort(benchmark):
    cfg = SortConfig(elements_per_thread=4, block_size=64, warp_size=W)
    n = cfg.tile_size * 1024
    adversarial = worst_case_permutation(cfg, n)

    def run():
        merge = PairwiseMergeSort(cfg).sort(adversarial, score_blocks=4)
        bitonic = BitonicSort(block_size=256, warp_size=W).sort(adversarial)
        return merge, bitonic

    merge, bitonic = benchmark.pedantic(run, rounds=2, iterations=1)
    m = merge.total_shared_cycles() / n
    b = bitonic.total_shared_cycles() / n
    record(
        f"Bitonic vs attacked merge sort (N={n:,}): merge sort on its OWN "
        f"worst case {m:.2f} cycles/elem vs bitonic {b:.2f} — "
        + ("obliviousness does not pay here" if m < b else "bitonic wins")
    )
    gw = bitonic.total_global_traffic().words / n
    gm = merge.total_global_traffic().words / n
    record(
        f"Bitonic global words/elem {gw:.1f} vs merge sort {gm:.1f} "
        "(log² N global sweeps vs log N rounds)"
    )
