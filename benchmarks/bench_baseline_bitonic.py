"""Baseline — oblivious bitonic sort vs the attacked pairwise merge sort.

Extension beyond the paper: bitonic sort's access schedule is data-
oblivious, so the constructed worst-case inputs cannot touch it. The
question the paper's Section I raises — is the robustness worth the extra
work? — gets a quantitative answer here: even on its worst-case input the
pairwise merge sort stays cheaper in serialized shared cycles than bitonic
at realistic sizes (Θ(N log N) with E² rounds vs Θ(N log² N) with the
low-distance conflicts bitonic always pays).
"""

import numpy as np
from conftest import record, record_timing

from repro.adversary.permutation import worst_case_permutation
from repro.sort.bitonic import BitonicSort
from repro.sort.config import SortConfig
from repro.sort.pairwise import PairwiseMergeSort

W = 32
N = 1 << 18


def test_bitonic_is_immune(benchmark):
    cfg = SortConfig(elements_per_thread=4, block_size=64, warp_size=W)
    n = cfg.tile_size * 1024  # 2^18, power of two -> valid for both
    adversarial = worst_case_permutation(cfg, n)
    bitonic = BitonicSort(block_size=256, warp_size=W)

    adv = benchmark.pedantic(lambda: bitonic.sort(adversarial), rounds=2,
                             iterations=1)
    rand = bitonic.sort(np.random.default_rng(0).permutation(n))
    assert adv.total_shared_cycles() == rand.total_shared_cycles()
    record(
        f"Bitonic obliviousness: adversarial and random inputs cost an "
        f"identical {adv.total_shared_cycles() / n:.2f} shared cycles/elem"
    )


def test_bitonic_vs_attacked_merge_sort(benchmark):
    cfg = SortConfig(elements_per_thread=4, block_size=64, warp_size=W)
    n = cfg.tile_size * 1024
    adversarial = worst_case_permutation(cfg, n)

    def run():
        merge = PairwiseMergeSort(cfg).sort(adversarial, score_blocks=4)
        bitonic = BitonicSort(block_size=256, warp_size=W).sort(adversarial)
        return merge, bitonic

    merge, bitonic = benchmark.pedantic(run, rounds=2, iterations=1)
    m = merge.total_shared_cycles() / n
    b = bitonic.total_shared_cycles() / n
    record(
        f"Bitonic vs attacked merge sort (N={n:,}): merge sort on its OWN "
        f"worst case {m:.2f} cycles/elem vs bitonic {b:.2f} — "
        + ("obliviousness does not pay here" if m < b else "bitonic wins")
    )
    gw = bitonic.total_global_traffic().words / n
    gm = merge.total_global_traffic().words / n
    record(
        f"Bitonic global words/elem {gw:.1f} vs merge sort {gm:.1f} "
        "(log² N global sweeps vs log N rounds)"
    )


def test_bitonic_matrix_row(benchmark):
    """The mitigation matrix's bitonic control row at gated speed: the
    oblivious schedule makes every family's cell identical, the cfree
    layouts must zero its (input-independent) conflicts, and scoring the
    row has to stay cheap enough for routine matrix runs."""
    from repro.bench.matrix import run_matrix

    def run():
        return run_matrix(
            input_names=("sorted", "worst-case"),
            backends=("bitonic",),
            mitigations=("none", "padding:1", "cfree-sort", "cfree-permute"),
            tiles=8,
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    stock = result.cell("worst-case", "bitonic", "none")
    assert stock.total_replays > 0
    assert (
        stock.shared_cycles
        == result.cell("sorted", "bitonic", "none").shared_cycles
    )
    for spec in ("cfree-sort", "cfree-permute"):
        assert result.cell("worst-case", "bitonic", spec).total_replays == 0
    stats = benchmark.stats.stats
    record_timing(
        "bitonic_matrix",
        seconds=stats.median,
        min_seconds=stats.min,
        iqr_seconds=stats.iqr,
        n=result.num_elements,
        cells=len(result.cells),
        backend="bitonic",
    )
    record(
        f"Matrix bitonic row (N={result.num_elements:,}): "
        f"{stock.replays_per_element:.2f} conflicts/elem on every family "
        "stock, 0.00 under both cfree layouts"
    )
