"""Baseline — multiway (K-way) merge sort vs the attacked pairwise sort.

Extension: the paper's Section II cites Karsin et al.'s multiway merge
sort as the other state-of-the-art comparison sort. Two findings:

* **fewer rounds, less traffic** — ``log_K`` vs ``log₂`` global rounds
  slashes ``A_g`` (the very term whose balance against shared conflicts
  drives the choice of ``E``);
* **adversarial decoherence** — the constructed worst case is pairwise-
  specific: under K-way consumption its alignment partially breaks, so the
  same input hurts the multiway sort by a fraction of what it does to the
  pairwise sort.
"""

import numpy as np
from conftest import record, record_timing

from repro.adversary.permutation import worst_case_permutation
from repro.inputs.generators import generate
from repro.sort.config import SortConfig
from repro.sort.multiway import MultiwaySort
from repro.sort.pairwise import PairwiseMergeSort

CFG = SortConfig(elements_per_thread=15, block_size=128, name="cmp")
N = CFG.tile_size * 128


def test_multiway_traffic_advantage(benchmark):
    data = generate("random", CFG, N, seed=0)

    def run():
        return (
            MultiwaySort(CFG, k=8).sort(data, score_blocks=4),
            PairwiseMergeSort(CFG).sort(data, score_blocks=4),
        )

    mw, pw = benchmark.pedantic(run, rounds=2, iterations=1)
    assert np.array_equal(mw.values, pw.values)
    w_mw = mw.total_global_traffic().words / N
    w_pw = pw.total_global_traffic().words / N
    assert w_mw < w_pw
    record(
        f"Multiway K=8 vs pairwise (random, N={N:,}): global words/elem "
        f"{w_mw:.1f} vs {w_pw:.1f}; rounds {mw.num_rounds} vs {pw.num_rounds}"
    )


def test_multiway_adversarial_decoherence(benchmark):
    worst = worst_case_permutation(CFG, N)
    random = generate("random", CFG, N, seed=0)

    def edges():
        out = {}
        for name, sorter in (("pairwise", PairwiseMergeSort(CFG)),
                             ("multiway", MultiwaySort(CFG, k=8))):
            w = sorter.sort(worst, score_blocks=4).total_shared_cycles()
            r = sorter.sort(random, score_blocks=4).total_shared_cycles()
            out[name] = w / r
        return out

    out = benchmark.pedantic(edges, rounds=1, iterations=1)
    record(
        f"Multiway decoherence: pairwise-worst input multiplies shared "
        f"cycles by {out['pairwise']:.2f}x on the pairwise sort but only "
        f"{out['multiway']:.2f}x on the K=8 multiway sort — the paper's "
        "construction is algorithm-specific"
    )
    assert out["multiway"] < out["pairwise"]


def test_kway_specific_adversary(benchmark):
    """Beyond the paper: the collapse is constructible for K-way merging
    too — our generalized small-E construction drives every multiway round
    to exactly E² cycles per warp."""
    from repro.adversary.multiway_adversary import multiway_worst_case_permutation

    cfg = SortConfig(elements_per_thread=15, block_size=128, name="kway")
    fan = 4
    n = cfg.tile_size * 16  # 4^2 tiles

    def run():
        perm = multiway_worst_case_permutation(cfg, n, fan=fan)
        return MultiwaySort(cfg, k=fan).sort(perm, score_blocks=4)

    result = benchmark.pedantic(run, rounds=2, iterations=1)
    warps_scored = 4 * cfg.warps_per_block
    per_warp = [
        r.merge_report.total_transactions / warps_scored
        for r in result.rounds
        if "multiway" in r.label
    ]
    assert all(v == cfg.E**2 for v in per_warp)
    record(
        f"Multiway adversary (K={fan}, E={cfg.E}): every K-way round at "
        f"exactly {cfg.E**2} = E^2 cycles/warp — the paper's collapse "
        "generalizes beyond pairwise merging"
    )


def test_multiway_matrix_row(benchmark):
    """The mitigation matrix's multiway row at gated speed: scoring the
    multiway backend under every mitigation must stay cheap enough for
    the full matrix to be a routine experiment, and the cfree cells must
    be exactly zero."""
    from repro.bench.matrix import run_matrix

    def run():
        return run_matrix(
            input_names=("sorted", "worst-case"),
            backends=("multiway",),
            mitigations=("none", "padding:1", "cfree-sort", "cfree-permute"),
            tiles=8,
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    stock = result.cell("worst-case", "multiway", "none")
    assert stock.total_replays > 0
    for spec in ("cfree-sort", "cfree-permute"):
        assert result.cell("worst-case", "multiway", spec).total_replays == 0
    stats = benchmark.stats.stats
    record_timing(
        "multiway_matrix",
        seconds=stats.median,
        min_seconds=stats.min,
        iqr_seconds=stats.iqr,
        n=result.num_elements,
        cells=len(result.cells),
        backend="multiway",
    )
    record(
        f"Matrix multiway row (N={result.num_elements:,}): worst-case "
        f"conflicts/elem {stock.replays_per_element:.2f} stock, 0.00 under "
        "both cfree layouts"
    )
