"""Extension — the expected-case analysis the paper's conclusion asks for.

Reproduces Section II-A's quoted Karsin et al. observations on the
simulator (β₁ ≈ 3.1, β₂ ≈ 2.2 on random inputs; β grows with inversions)
and validates the balls-in-bins closed forms against measured random-input
rates — a first step on the paper's open problem.
"""

import numpy as np
from conftest import record

from repro.analysis.beta import measure_betas
from repro.analysis.expected import (
    expected_replays_per_step,
    max_load_monte_carlo,
)
from repro.inputs.generators import generate
from repro.sort.config import SortConfig

CFG = SortConfig(elements_per_thread=15, block_size=128, warp_size=32)
N = CFG.tile_size * 64


def test_random_input_betas(benchmark):
    data = generate("random", CFG, N, seed=0)
    est = benchmark.pedantic(lambda: measure_betas(CFG, data), rounds=2,
                             iterations=1)
    assert 1.5 < est.beta2 < 3.5
    record(
        f"Expected-case: random-input {est} "
        "[Karsin et al. measured beta1=3.1, beta2=2.2 on hardware]"
    )


def test_beta_vs_inversions(benchmark):
    def sweep():
        rows = []
        for name in ("sorted", "sawtooth", "random", "worst-case"):
            est = measure_betas(CFG, generate(name, CFG, N, seed=3),
                                with_inversions=True)
            rows.append((name, est))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    betas = [est.beta2 for _, est in rows[:3]]
    assert betas == sorted(betas)  # grows with inversions (Karsin)
    for name, est in rows:
        record(
            f"Expected-case: {name:11s} inversions="
            f"{est.inversion_count:>16,} {est}"
        )


def test_balls_in_bins_closed_form(benchmark):
    mc, se = benchmark(max_load_monte_carlo, 32, 32, 20000, 0)
    record(
        f"Expected-case: one warp step, 32 uniform requests -> expected "
        f"serialization {mc:.2f} cycles (MC, se {se:.3f}); expected replays "
        f"{expected_replays_per_step(32):.2f} (closed form) — both match the "
        "simulator's measured random-input rates (tests/analysis)"
    )
    assert 3.0 < mc < 3.8
