"""Figure 1 — sorted-order alignment for composite GCD(w, E).

Regenerates the paper's Figure 1 data (w=16, E=12, GCD=4: every 4th chunk
of E elements aligned) and benchmarks the alignment analysis.
"""

from conftest import record

from repro.adversary.power2 import sorted_aligned_count, sorted_assignment
from repro.bench.figures import figure1


def test_fig1_sorted_alignment(benchmark):
    data = benchmark(figure1, 16, 12)
    assert data["aligned"] == 48  # d·E = 4·12
    record(
        "Fig 1  sorted order, w=16 E=12 (GCD 4): "
        f"aligned elements/warp = {data['aligned']} (paper: every 4th chunk, "
        "4 chunks x 12 = 48)"
    )


def test_fig1_gcd_sweep(benchmark):
    """The d·E law across all E for w=16 — the 'Considered values of E'
    discussion behind Figure 1."""

    def sweep():
        return {e: sorted_aligned_count(16, e) for e in range(1, 17)}

    counts = benchmark(sweep)
    import math

    assert all(counts[e] == math.gcd(16, e) * e for e in counts)
    record(
        "Fig 1  d = GCD(16, E) sweep: aligned = d*E for every E "
        f"(E=12 -> {counts[12]}, E=8 -> {counts[8]}, E=15 -> {counts[15]})"
    )


def test_fig1_assignment_construction(benchmark):
    wa = benchmark(sorted_assignment, 16, 12)
    assert wa.aligned_count() == 48
