"""Figure 3 — the constructed worst-case warp layouts (w=16, E=7 and E=9).

Regenerates both panels and pins the layout facts visible in the paper's
figure; benchmarks the constructors (they must be cheap — the paper
emphasizes that the inputs are generated automatically).
"""

from conftest import record

from repro.adversary.large_e import large_e_assignment
from repro.adversary.small_e import small_e_assignment
from repro.bench.figures import figure3


def test_fig3_small_e_panel(benchmark):
    wa = benchmark(small_e_assignment, 16, 7)
    assert wa.aligned_count() == 49
    a_owners, b_owners = wa.bank_matrix()
    # The aligned columns of the paper's left panel:
    assert a_owners[0, :4].tolist() == [0, 4, 8, 13]
    assert b_owners[0, :3].tolist() == [1, 6, 11]
    record("Fig 3L w=16 E=7 (small): aligned = 49 = E^2 "
           "(A columns: threads 0,4,8,13; B columns: 1,6,11 — matches paper)")


def test_fig3_large_e_panel(benchmark):
    wa = benchmark(large_e_assignment, 16, 9)
    assert wa.aligned_count() == 80  # ½(E²+E+2Er−r²−r)
    assert wa.target_bank == 7  # aligned to the last E banks (s = r)
    record("Fig 3R w=16 E=9 (large): aligned = 80 = (E^2+E+2Er-r^2-r)/2, "
           "target banks 7..15 — matches paper")


def test_fig3_full_figure(benchmark):
    data = benchmark(figure3)
    assert data["small"]["aligned"] == 49
    assert data["large"]["aligned"] == 80


def test_fig3_thrust_scale_constructions(benchmark):
    """The real parameters (w=32): both Thrust Es construct instantly."""

    def build():
        return (small_e_assignment(32, 15).aligned_count(),
                large_e_assignment(32, 17).aligned_count())

    small, large = benchmark(build)
    assert (small, large) == (225, 288)
    record(f"Fig 3  w=32 presets: E=15 aligns {small}=E^2, E=17 aligns {large}")
