"""Figure 4 — throughput on the Quadro M4000 (Thrust and Modern GPU,
random vs constructed worst-case inputs).

Paper reference points: peak slowdown 50.49 % (Thrust, at 7,864,320
elements) and 33.82 % (Modern GPU, at 62,914,560); averages 43.53 % and
27.3 %; Thrust outperforms Modern GPU on both input kinds.
"""

import pytest
from conftest import max_elements, record

from repro.bench.metrics import slowdown_stats
from repro.bench.runner import SweepRunner
from repro.gpu.device import QUADRO_M4000
from repro.sort.presets import MGPU_MAXWELL, THRUST_MAXWELL

EXACT = 1 << 20


@pytest.fixture(scope="module")
def panels():
    out = {}
    for key, cfg in (("thrust", THRUST_MAXWELL), ("mgpu", MGPU_MAXWELL)):
        runner = SweepRunner(cfg, QUADRO_M4000, exact_threshold=EXACT,
                             score_blocks=8)
        sizes = [n for n in cfg.valid_sizes(max_elements()) if n >= 100_000]
        out[key] = {
            "sizes": sizes,
            "random": runner.sweep("random", sizes),
            "worst": runner.sweep("worst-case", sizes),
        }
    return out


def test_fig4_thrust_sweep(benchmark, panels):
    cfg = THRUST_MAXWELL
    runner = SweepRunner(cfg, QUADRO_M4000, exact_threshold=EXACT,
                         score_blocks=8)
    benchmark(runner.run_point, "worst-case", cfg.tile_size * 64)

    p = panels["thrust"]
    stats = slowdown_stats(p["random"], p["worst"])
    record(
        "Fig 4  Thrust (E=15,b=512) on Quadro M4000: worst-case slowdown "
        f"{stats} [paper: peak 50.49% at 7,864,320; average 43.53%]"
    )
    assert 25 < stats.peak_percent < 90
    assert 20 < stats.average_percent <= stats.peak_percent


def test_fig4_mgpu_sweep(benchmark, panels):
    cfg = MGPU_MAXWELL
    runner = SweepRunner(cfg, QUADRO_M4000, exact_threshold=EXACT,
                         score_blocks=8)
    benchmark(runner.run_point, "worst-case", cfg.tile_size * 64)

    p = panels["mgpu"]
    stats = slowdown_stats(p["random"], p["worst"])
    record(
        "Fig 4  Modern GPU (E=15,b=128) on Quadro M4000: worst-case slowdown "
        f"{stats} [paper: peak 33.82% at 62,914,560; average 27.3%]"
    )
    assert 10 < stats.peak_percent < 70


def test_fig4_thrust_beats_mgpu(benchmark, panels):
    """Paper: 'Thrust outperforms Modern GPU for both random and
    constructed worst-case inputs.'"""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for kind in ("random", "worst"):
        thrust_tail = panels["thrust"][kind][-1].throughput_meps
        mgpu_tail = panels["mgpu"][kind][-1].throughput_meps
        assert thrust_tail > mgpu_tail
    record("Fig 4  ordering: Thrust > Modern GPU on random AND worst inputs "
           "(matches paper)")


def test_fig4_throughput_series(benchmark, panels):
    """Emit the actual figure series (what the paper plots)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for key in ("thrust", "mgpu"):
        p = panels[key]
        for r, w in zip(p["random"], p["worst"]):
            record(
                f"Fig 4  {key:6s} N={r.num_elements:>11,}  "
                f"random {r.throughput_meps:7.1f} Melem/s  "
                f"worst {w.throughput_meps:7.1f} Melem/s  "
                f"slowdown {(w.milliseconds / r.milliseconds - 1) * 100:5.1f}%"
            )
