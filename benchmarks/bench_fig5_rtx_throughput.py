"""Figure 5 — throughput on the RTX 2080 Ti with both parameter presets.

Paper reference points: with E=15,b=512, peak slowdown 42.43 % (Thrust, at
31,457,280 elements) / 42.62 % (Modern GPU); with E=17,b=256, peak 22.94 %
/ 20.34 %. On random inputs E=15,b=512 outperforms E=17,b=256 (occupancy);
on the constructed inputs the paper measures the opposite ordering — a
hardware second-order effect our conflict counts do not reproduce (see
EXPERIMENTS.md).
"""

import pytest
from conftest import max_elements, record

from repro.bench.metrics import slowdown_stats
from repro.bench.runner import SweepRunner
from repro.gpu.device import RTX_2080_TI
from repro.sort.presets import THRUST_CC60, THRUST_MAXWELL

EXACT = 1 << 20


@pytest.fixture(scope="module")
def panels():
    out = {}
    for key, cfg in (("e15_b512", THRUST_MAXWELL), ("e17_b256", THRUST_CC60)):
        runner = SweepRunner(cfg, RTX_2080_TI, exact_threshold=EXACT,
                             score_blocks=8)
        sizes = [n for n in cfg.valid_sizes(max_elements()) if n >= 100_000]
        out[key] = {
            "sizes": sizes,
            "random": runner.sweep("random", sizes),
            "worst": runner.sweep("worst-case", sizes),
        }
    return out


def test_fig5_e15_b512_sweep(benchmark, panels):
    runner = SweepRunner(THRUST_MAXWELL, RTX_2080_TI, exact_threshold=EXACT,
                         score_blocks=8)
    benchmark(runner.run_point, "worst-case", THRUST_MAXWELL.tile_size * 64)
    p = panels["e15_b512"]
    stats = slowdown_stats(p["random"], p["worst"])
    record(
        "Fig 5  E=15,b=512 on RTX 2080 Ti: worst-case slowdown "
        f"{stats} [paper: Thrust peak 42.43% at 31,457,280, avg 33.31%; "
        "MGPU peak 42.62%, avg 35.25%]"
    )
    assert 15 < stats.peak_percent < 80


def test_fig5_e17_b256_sweep(benchmark, panels):
    runner = SweepRunner(THRUST_CC60, RTX_2080_TI, exact_threshold=EXACT,
                         score_blocks=8)
    benchmark(runner.run_point, "worst-case", THRUST_CC60.tile_size * 64)
    p = panels["e17_b256"]
    stats = slowdown_stats(p["random"], p["worst"])
    record(
        "Fig 5  E=17,b=256 on RTX 2080 Ti: worst-case slowdown "
        f"{stats} [paper: Thrust peak 22.94% at 35,651,584, avg 16.54%; "
        "MGPU peak 20.34%, avg 12.97%] — see EXPERIMENTS.md for the known "
        "preset-crossover discrepancy"
    )
    assert stats.peak_percent > 10


def test_fig5_random_preset_ordering(benchmark, panels):
    """Paper (confirmed on hardware): 'for random inputs, E=15 and b=512
    provide increased performance over E=17 and b=256'."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    t15 = panels["e15_b512"]["random"][-1].throughput_meps
    t17 = panels["e17_b256"]["random"][-1].throughput_meps
    assert t15 > t17
    record(
        f"Fig 5  random-input ordering: E=15,b=512 ({t15:.0f} Melem/s) > "
        f"E=17,b=256 ({t17:.0f} Melem/s) — matches paper"
    )


def test_fig5_throughput_series(benchmark, panels):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for key in ("e15_b512", "e17_b256"):
        p = panels[key]
        for r, w in zip(p["random"], p["worst"]):
            record(
                f"Fig 5  {key} N={r.num_elements:>11,}  "
                f"random {r.throughput_meps:7.1f}  worst "
                f"{w.throughput_meps:7.1f} Melem/s  slowdown "
                f"{(w.milliseconds / r.milliseconds - 1) * 100:5.1f}%"
            )
