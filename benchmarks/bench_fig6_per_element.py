"""Figure 6 — runtime per element and bank conflicts per element vs N
(Thrust presets on the RTX 2080 Ti, constructed worst-case inputs).

Paper reference: both curves grow logarithmically in N (one extra merge
round per doubling), and the conflict curve predicts the runtime curve.
"""

import math

import pytest
from conftest import max_elements, record

from repro.bench.runner import SweepRunner
from repro.gpu.device import RTX_2080_TI
from repro.sort.presets import THRUST_CC60, THRUST_MAXWELL

EXACT = 1 << 20


@pytest.fixture(scope="module")
def panels():
    out = {}
    for key, cfg in (("e15_b512", THRUST_MAXWELL), ("e17_b256", THRUST_CC60)):
        runner = SweepRunner(cfg, RTX_2080_TI, exact_threshold=EXACT,
                             score_blocks=8)
        sizes = [n for n in cfg.valid_sizes(max_elements()) if n >= 100_000]
        out[key] = (sizes, runner.sweep("worst-case", sizes))
    return out


def test_fig6_conflicts_grow_logarithmically(benchmark, panels):
    runner = SweepRunner(THRUST_MAXWELL, RTX_2080_TI, exact_threshold=EXACT,
                         score_blocks=8)
    benchmark(runner.run_point, "worst-case", THRUST_MAXWELL.tile_size * 128)

    for key, (sizes, points) in panels.items():
        cpe = [p.replays_per_element for p in points]
        assert cpe == sorted(cpe)
        # Log growth: conflicts/element ≈ a + b·log2(N); fit residual small.
        logs = [math.log2(n) for n in sizes]
        b = (cpe[-1] - cpe[0]) / (logs[-1] - logs[0])
        a = cpe[0] - b * logs[0]
        worst_residual = max(abs(a + b * lg - c) for lg, c in zip(logs, cpe))
        assert worst_residual < 0.15 * max(cpe)
        record(
            f"Fig 6  {key}: conflicts/elem = {a:.2f} + {b:.3f}*log2(N) "
            f"(max residual {worst_residual:.3f}) — logarithmic, as in paper"
        )


def test_fig6_runtime_tracks_conflicts(benchmark, panels):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for key, (sizes, points) in panels.items():
        tail = [p for p in points if p.num_elements >= 2_000_000]
        ms = [p.ms_per_element for p in tail]
        cpe = [p.replays_per_element for p in tail]
        assert ms == sorted(ms) and cpe == sorted(cpe)
    record("Fig 6  runtime/elem and conflicts/elem co-monotone at scale "
           "(the Karsin correlation the paper leans on)")


def test_fig6_series(benchmark, panels):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    for key, (sizes, points) in panels.items():
        for p in points:
            record(
                f"Fig 6  {key} N={p.num_elements:>11,}  "
                f"{p.ms_per_element * 1e6:7.3f} ns/elem  "
                f"{p.replays_per_element:6.2f} conflicts/elem"
            )
