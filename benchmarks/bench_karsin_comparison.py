"""Related-work comparison — Karsin et al.'s conflict-heavy inputs.

Section II-C: Karsin et al. hand-built *conflict-heavy* inputs for two
specific parameter sets, showed slowdowns on a GTX 770 (CC 3.0), and left
the worst case open. This bench puts our reimplementation of their
bank-striding heuristic head-to-head with the paper's provable construction
on a simulated GTX 770 — quantifying exactly how much the open problem's
solution tightened the screw.
"""

import numpy as np
from conftest import record

from repro.gpu.device import GTX_770
from repro.gpu.occupancy import occupancy
from repro.gpu.timing import TimingModel
from repro.inputs.generators import generate
from repro.sort.config import SortConfig
from repro.sort.pairwise import PairwiseMergeSort

CFG = SortConfig(elements_per_thread=11, block_size=256, name="mgpu-kepler")
N = CFG.tile_size * 64


def test_conflict_heavy_vs_constructed(benchmark):
    sorter = PairwiseMergeSort(CFG)
    occ = occupancy(GTX_770, CFG.b, CFG.shared_bytes_per_block)
    model = TimingModel(GTX_770)

    def run(name):
        result = sorter.sort(generate(name, CFG, N, seed=2), score_blocks=8)
        ms = model.milliseconds(result.kernel_cost(occ.warps_per_sm))
        return result, ms

    (_, random_ms) = benchmark.pedantic(lambda: run("random"), rounds=2,
                                        iterations=1)
    heavy, heavy_ms = run("conflict-heavy")
    worst, worst_ms = run("worst-case")

    heavy_slow = (heavy_ms / random_ms - 1) * 100
    worst_slow = (worst_ms / random_ms - 1) * 100
    record(
        f"Karsin  GTX 770 (E={CFG.E}, b={CFG.b}): conflict-heavy heuristic "
        f"slowdown {heavy_slow:.1f}% vs constructed worst case "
        f"{worst_slow:.1f}% — the provable construction dominates"
    )
    record(
        f"Karsin  serialized cycles/elem: heavy "
        f"{heavy.total_shared_cycles() / N:.2f}, constructed "
        f"{worst.total_shared_cycles() / N:.2f} (random-looking rounds give "
        "the heavy input more raw replays but far less serialization)"
    )
    assert worst_ms > heavy_ms
    assert worst_slow > 2 * heavy_slow
