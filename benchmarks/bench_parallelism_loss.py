"""Section III-C — the effective-parallelism collapse table.

For every co-prime E < w (w = 32): the constructed input reduces a warp's
effective parallelism from w to ⌈w/E⌉, and the per-warp merge time from
Θ(E) to Θ(E²). Also reproduces the paper's small-vs-large-E trade-off
observation: small E caps total conflicts at w²/4 while large E approaches
w²/2.
"""

import math

from conftest import record

from repro.adversary.theory import (
    aligned_elements,
    effective_threads,
    parallel_time_blowup,
)


def test_parallelism_table(benchmark):
    def build():
        rows = []
        for e in range(1, 32):
            if math.gcd(32, e) != 1:
                continue
            rows.append(
                (e, aligned_elements(32, e), effective_threads(32, e),
                 parallel_time_blowup(32, e))
            )
        return rows

    rows = benchmark(build)
    for e, aligned, eff, blowup in rows:
        assert eff == -(-32 // e)
        record(
            f"III-C  w=32 E={e:2d}: aligned {aligned:4d}, effective threads "
            f"{eff:2d} (of 32), merge-time blowup {blowup:5.1f}x"
        )


def test_small_vs_large_tradeoff(benchmark):
    """Small E: total conflicts ≤ w²/4 as E → w/2. Large E: converges
    towards w²/2 as E → w (paper Section III-C, verbatim)."""

    def analyze():
        w = 32
        small = [aligned_elements(w, e) for e in range(1, w // 2)
                 if math.gcd(w, e) == 1]
        large = [aligned_elements(w, e) for e in range(w // 2 + 1, w, 2)]
        return max(small), max(large)

    max_small, max_large = benchmark(analyze)
    assert max_small <= 32 * 32 / 4
    assert 32 * 32 / 4 < max_large <= 32 * 32 / 2 + 3 * 32 / 2
    record(
        f"III-C  trade-off: max small-E conflicts {max_small} <= w^2/4 = 256; "
        f"max large-E conflicts {max_large} -> w^2/2 = 512 as E -> w"
    )
