"""Fleet load test — the shard router under concurrent mixed traffic.

Boots a real two-worker fleet behind a real shard router (the exact
stack ``repro-mergesort serve --shards 2`` runs, on loopback ephemeral
ports) and fires ≥1000 concurrent mixed requests at it — simulates and
sweeps drawn from a deliberately skewed key distribution, so identical
requests collide in flight and the two-tier single-flight coalescing
is exercised fleet-wide, plus a couple of chunked job manifests driven
through ``POST /jobs`` to completion.

Recorded into the ``REPRO_BENCH_JSON`` trajectory document (committed
baseline ``BENCH_simulator.json``, CI gate
``benchmarks/check_regression.py --require ...,service_load``):

* ``service_load`` — ``seconds`` is the p50 request latency under
  load; ``p95_seconds``/``p99_seconds`` carry the tail, and
  ``coalesce_rate`` the fleet-wide fraction of compute requests served
  by joining an in-flight identical computation instead of executing.
"""

import asyncio
import queue
import random
import threading
import time
from types import SimpleNamespace

from conftest import record, record_timing

from repro.errors import BackpressureError
from repro.service.client import ServiceClient
from repro.service.server import ServiceConfig
from repro.service.shard import RouterConfig, ShardFleet, run_router
from repro.sort.config import SortConfig
from repro.sort.serialize import config_to_obj

#: Total compute requests fired at the router (the issue floor is 1000).
TOTAL_REQUESTS = 1000

#: Client threads issuing them (in-flight bound, below the router gate).
CONCURRENCY = 16

SHARDS = 2

CFG = SortConfig(elements_per_thread=3, block_size=32, warp_size=32)
CFG_OBJ = config_to_obj(CFG)


def _start_fleet():
    """Boot workers + router; returns a handle with ``close()``."""
    fleet = ShardFleet(
        ServiceConfig(
            port=0,
            queue_limit=CONCURRENCY,
            request_timeout=120.0,
            drain_timeout=15.0,
        ),
        SHARDS,
    ).start()
    holder = {}
    ready = threading.Event()

    def runner():
        holder["drained"] = asyncio.run(
            run_router(
                RouterConfig(
                    port=0,
                    queue_limit=CONCURRENCY * 2,
                    request_timeout=120.0,
                    forward_timeout=110.0,
                    drain_timeout=15.0,
                ),
                fleet.urls,
                on_started=lambda r: (holder.update(router=r), ready.set()),
            )
        )

    thread = threading.Thread(target=runner, daemon=True)
    thread.start()
    assert ready.wait(30), "router failed to start"
    router = holder["router"]

    def close():
        router.request_shutdown()
        thread.join(60)
        fleet.stop()
        assert not thread.is_alive(), "router thread failed to exit"

    return SimpleNamespace(
        fleet=fleet, router=router, close=close,
        url=f"http://127.0.0.1:{router.port}",
    )


def _request_plan(rng):
    """~1000 mixed requests over a skewed key space.

    A Zipf-ish skew (a few hot fingerprints drawn often, a long tail of
    distinct ones) is what makes coalescing measurable: hot keys
    collide in flight, tail keys spread across both shards.
    """
    simulate_variants = [
        {"input": name, "tiles": tiles, "seed": seed}
        for name in ("random", "worst-case")
        for tiles in (2, 4)
        for seed in range(8)
    ]
    sweep_variants = [
        {
            "inputs": [name],
            "sizes": [CFG.tile_size * 2, CFG.tile_size * 4],
            "seed": seed,
        }
        for name in ("random", "sorted")
        for seed in range(4)
    ]
    plan = []
    for _ in range(TOTAL_REQUESTS):
        if rng.random() < 0.85:
            # Hot third of the simulate variants absorbs most draws.
            pool = (
                simulate_variants[: len(simulate_variants) // 3]
                if rng.random() < 0.7
                else simulate_variants
            )
            plan.append(("simulate", rng.choice(pool)))
        else:
            plan.append(("sweep", rng.choice(sweep_variants)))
    return plan


def _drain_plan(url, plan):
    """Issue the plan from CONCURRENCY threads; returns per-request
    (latency, coalesced) samples and any errors."""
    work = queue.Queue()
    for item in plan:
        work.put(item)
    samples = []
    errors = []
    lock = threading.Lock()

    def worker():
        client = ServiceClient(url, timeout=150.0)
        while True:
            try:
                kind, kwargs = work.get_nowait()
            except queue.Empty:
                return
            began = time.perf_counter()
            reply = None
            try:
                # Honor Retry-After on backpressure like a well-behaved
                # client; the backoff stays inside the measured latency.
                for attempt in range(6):
                    try:
                        if kind == "simulate":
                            reply = client.simulate(
                                config=CFG_OBJ, score_blocks=2, **kwargs
                            )
                        else:
                            reply = client.sweep(
                                config=CFG_OBJ, score_blocks=2, **kwargs
                            )
                        break
                    except BackpressureError as exc:
                        if attempt == 5:
                            raise
                        time.sleep(min(exc.retry_after, 0.5))
            except Exception as exc:  # noqa: BLE001 - reported below
                with lock:
                    errors.append(f"{kind} {kwargs}: {exc}")
                continue
            elapsed = time.perf_counter() - began
            with lock:
                samples.append((elapsed, reply.coalesced))

    threads = [
        threading.Thread(target=worker, daemon=True)
        for _ in range(CONCURRENCY)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(300)
    return samples, errors


def _percentile(latencies, q):
    ordered = sorted(latencies)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def test_service_load(benchmark):
    handle = _start_fleet()
    state = {}

    def run_load():
        plan = _request_plan(random.Random(0))
        began = time.perf_counter()
        samples, errors = _drain_plan(handle.url, plan)
        state["wall"] = time.perf_counter() - began
        state["samples"] = samples
        state["errors"] = errors
        # Two chunked manifests ride along, exercising POST /jobs and
        # the am-I-done probe under the same load.
        client = ServiceClient(handle.url, timeout=150.0)
        for name in ("random", "worst-case"):
            ack = client.submit_job(
                {
                    "config": CFG_OBJ,
                    "inputs": [name],
                    "sizes": [CFG.tile_size * k for k in (2, 4, 8)],
                    "score_blocks": 2,
                    "chunk_sizes": 1,
                }
            )
            status = client.wait_for_job(ack["job_id"], timeout=120.0)
            assert status["status"] == "done", status
        return samples

    benchmark.pedantic(run_load, rounds=1, iterations=1)

    samples, errors = state["samples"], state["errors"]
    assert not errors, errors[:5]
    assert len(samples) == TOTAL_REQUESTS

    latencies = [latency for latency, _ in samples]
    p50 = _percentile(latencies, 0.50)
    p95 = _percentile(latencies, 0.95)
    p99 = _percentile(latencies, 0.99)

    # Fleet-wide coalesce rate, from the router's own single flight.
    batching = handle.router.stats.snapshot()["batching"]
    executed = batching["primary"]
    coalesced = batching["coalesced"]
    rate = coalesced / max(1, executed + coalesced)
    per_shard = dict(handle.router.shard_requests)
    handle.close()

    # Both shards served traffic, and the skewed plan measurably
    # coalesced: far fewer executions than requests, fleet-wide.
    assert all(count > 0 for count in per_shard.values()), per_shard
    assert executed + coalesced >= TOTAL_REQUESTS
    assert coalesced > 0, "no fleet-wide coalescing under concurrent load"

    record(
        f"Service fleet load: {TOTAL_REQUESTS} mixed requests, "
        f"{SHARDS} shards, {CONCURRENCY} clients in {state['wall']:.2f}s",
        f"  latency p50={p50 * 1e3:.1f}ms p95={p95 * 1e3:.1f}ms "
        f"p99={p99 * 1e3:.1f}ms",
        f"  coalesced {coalesced}/{executed + coalesced} "
        f"({rate:.0%}) fleet-wide; per-shard forwards {per_shard}",
    )
    record_timing(
        "service_load",
        seconds=p50,
        p95_seconds=round(p95, 6),
        p99_seconds=round(p99, 6),
        requests=TOTAL_REQUESTS,
        shards=SHARDS,
        concurrency=CONCURRENCY,
        coalesce_rate=round(rate, 4),
        wall_seconds=round(state["wall"], 3),
    )
