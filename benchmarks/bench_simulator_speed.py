"""Harness performance — how fast the simulator itself runs.

Not a paper figure: this tracks the reproduction's own cost so the exact /
sampled paths stay usable (exact ~1e6 elements in seconds; sampled scales
to the calibration sizes the sweeps rely on).
"""

import numpy as np
from conftest import record

from repro.inputs.generators import generate
from repro.sort.pairwise import PairwiseMergeSort
from repro.sort.presets import THRUST_MAXWELL


def test_exact_simulation_speed(benchmark):
    n = THRUST_MAXWELL.tile_size * 16
    data = generate("random", THRUST_MAXWELL, n, seed=0)
    sorter = PairwiseMergeSort(THRUST_MAXWELL)
    result = benchmark(sorter.sort, data)
    assert np.array_equal(result.values, np.sort(data))
    record(f"Harness exact simulation: N={n:,} fully traced")


def test_sampled_simulation_speed(benchmark):
    n = THRUST_MAXWELL.tile_size * 128
    data = generate("random", THRUST_MAXWELL, n, seed=0)
    sorter = PairwiseMergeSort(THRUST_MAXWELL)
    result = benchmark.pedantic(
        lambda: sorter.sort(data, score_blocks=8), rounds=3, iterations=1
    )
    assert np.array_equal(result.values, np.sort(data))
    record(f"Harness sampled simulation: N={n:,} with 8 scored blocks/round")


def test_construction_speed(benchmark):
    from repro.adversary.permutation import worst_case_permutation

    n = THRUST_MAXWELL.tile_size * 128
    perm = benchmark.pedantic(
        lambda: worst_case_permutation(THRUST_MAXWELL, n), rounds=3, iterations=1
    )
    assert perm.size == n
    record(f"Harness worst-case construction: N={n:,}")
