"""Harness performance — how fast the simulator itself runs.

Not a paper figure: this tracks the reproduction's own cost so the exact /
sampled paths stay usable (exact ~1e6 elements in seconds; sampled scales
to the calibration sizes the sweeps rely on).

Each benchmark records its median into the ``REPRO_BENCH_JSON`` timing
document (see ``benchmarks/conftest.py``); the committed baseline lives in
``BENCH_simulator.json`` and ``benchmarks/check_regression.py`` gates CI
on it. The exact path is benchmarked under both scoring implementations so
the vectorized path's speedup over the per-tile loop stays visible in the
trajectory.
"""

import numpy as np
from conftest import record, record_timing

from repro.inputs.generators import generate
from repro.sort.pairwise import PairwiseMergeSort
from repro.sort.presets import THRUST_MAXWELL


def _median(benchmark) -> float:
    return benchmark.stats.stats.median


def test_exact_simulation_speed(benchmark):
    n = THRUST_MAXWELL.tile_size * 16
    data = generate("random", THRUST_MAXWELL, n, seed=0)
    sorter = PairwiseMergeSort(THRUST_MAXWELL)
    result = benchmark(sorter.sort, data)
    assert np.array_equal(result.values, np.sort(data))
    record(f"Harness exact simulation: N={n:,} fully traced")
    record_timing(
        "exact_vectorized", _median(benchmark), n=n, scoring="vectorized"
    )


def test_exact_simulation_speed_loop_reference(benchmark):
    """The per-tile loop oracle, kept benchmarked so the vectorized
    speedup is a measured ratio in the trajectory, not a one-off claim."""
    n = THRUST_MAXWELL.tile_size * 16
    data = generate("random", THRUST_MAXWELL, n, seed=0)
    sorter = PairwiseMergeSort(THRUST_MAXWELL, scoring="loop")
    result = benchmark.pedantic(lambda: sorter.sort(data), rounds=3, iterations=1)
    assert np.array_equal(result.values, np.sort(data))
    record(f"Harness exact simulation (loop reference): N={n:,} fully traced")
    record_timing("exact_loop", _median(benchmark), n=n, scoring="loop")


def test_sampled_simulation_speed(benchmark):
    n = THRUST_MAXWELL.tile_size * 128
    data = generate("random", THRUST_MAXWELL, n, seed=0)
    sorter = PairwiseMergeSort(THRUST_MAXWELL)
    result = benchmark.pedantic(
        lambda: sorter.sort(data, score_blocks=8), rounds=3, iterations=1
    )
    assert np.array_equal(result.values, np.sort(data))
    record(f"Harness sampled simulation: N={n:,} with 8 scored blocks/round")
    record_timing(
        "sampled_vectorized",
        _median(benchmark),
        n=n,
        score_blocks=8,
        scoring="vectorized",
    )


def test_construction_speed(benchmark):
    from repro.adversary.permutation import worst_case_permutation

    n = THRUST_MAXWELL.tile_size * 128
    perm = benchmark.pedantic(
        lambda: worst_case_permutation(THRUST_MAXWELL, n), rounds=3, iterations=1
    )
    assert perm.size == n
    record(f"Harness worst-case construction: N={n:,}")
    record_timing("construction", _median(benchmark), n=n)
