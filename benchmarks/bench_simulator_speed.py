"""Harness performance — how fast the simulator itself runs.

Not a paper figure: this tracks the reproduction's own cost so the exact /
sampled paths stay usable (exact ~1e6 elements in seconds; sampled scales
to the calibration sizes the sweeps rely on).

Each benchmark records its median (plus min and IQR, so the regression
gate can tell drift from noise) into the ``REPRO_BENCH_JSON`` timing
document (see ``benchmarks/conftest.py``); the committed baseline lives in
``BENCH_simulator.json`` and ``benchmarks/check_regression.py`` gates CI
on it. The exact path is benchmarked under both scoring implementations so
the vectorized path's speedup over the per-tile loop stays visible in the
trajectory, and the sweep is benchmarked memoized so the pattern-memo's
cross-point speedup is a tracked number rather than a one-off claim.
"""

import time

import numpy as np
from conftest import record, record_timing

from repro.inputs.generators import generate
from repro.sort.pairwise import PairwiseMergeSort
from repro.sort.presets import THRUST_MAXWELL


def _timing_kwargs(benchmark) -> dict:
    """Median/min/IQR of a finished pytest-benchmark measurement."""
    stats = benchmark.stats.stats
    return {
        "seconds": stats.median,
        "min_seconds": stats.min,
        "iqr_seconds": stats.iqr,
    }


def test_exact_simulation_speed(benchmark):
    n = THRUST_MAXWELL.tile_size * 16
    data = generate("random", THRUST_MAXWELL, n, seed=0)
    # memo=None: this timing tracks the raw vectorized path — with a memo,
    # every benchmark iteration after the first would score from cache and
    # the median would measure lookups, not scoring.
    sorter = PairwiseMergeSort(THRUST_MAXWELL, memo=None)
    result = benchmark(sorter.sort, data)
    assert np.array_equal(result.values, np.sort(data))
    record(f"Harness exact simulation: N={n:,} fully traced")
    record_timing(
        "exact_vectorized", **_timing_kwargs(benchmark), n=n, scoring="vectorized"
    )


def test_exact_simulation_speed_loop_reference(benchmark):
    """The per-tile loop oracle, kept benchmarked so the vectorized
    speedup is a measured ratio in the trajectory, not a one-off claim."""
    n = THRUST_MAXWELL.tile_size * 16
    data = generate("random", THRUST_MAXWELL, n, seed=0)
    sorter = PairwiseMergeSort(THRUST_MAXWELL, scoring="loop")
    result = benchmark.pedantic(lambda: sorter.sort(data), rounds=3, iterations=1)
    assert np.array_equal(result.values, np.sort(data))
    record(f"Harness exact simulation (loop reference): N={n:,} fully traced")
    record_timing("exact_loop", **_timing_kwargs(benchmark), n=n, scoring="loop")


def test_sampled_simulation_speed(benchmark):
    n = THRUST_MAXWELL.tile_size * 128
    data = generate("random", THRUST_MAXWELL, n, seed=0)
    sorter = PairwiseMergeSort(THRUST_MAXWELL, memo=None)
    result = benchmark.pedantic(
        lambda: sorter.sort(data, score_blocks=8), rounds=3, iterations=1
    )
    assert np.array_equal(result.values, np.sort(data))
    record(f"Harness sampled simulation: N={n:,} with 8 scored blocks/round")
    record_timing(
        "sampled_vectorized",
        **_timing_kwargs(benchmark),
        n=n,
        score_blocks=8,
        scoring="vectorized",
    )


def test_exact_fused_speed(benchmark):
    """The fused engine on the exact workload. The in-run ratio against a
    fresh vectorized pass is asserted loosely (CI noise on the slower leg
    is the flake source); the committed ``exact_fused`` baseline row —
    recorded at >=10x the ``exact_vectorized`` row — is what
    ``check_regression`` gates."""
    from repro.dmm import fused as dmm_fused

    n = THRUST_MAXWELL.tile_size * 16
    data = generate("random", THRUST_MAXWELL, n, seed=0)
    vectorized = PairwiseMergeSort(THRUST_MAXWELL, memo=None)
    start = time.perf_counter()
    baseline = vectorized.sort(data)
    vectorized_seconds = time.perf_counter() - start

    sorter = PairwiseMergeSort(THRUST_MAXWELL, scoring="fused")
    result = benchmark(sorter.sort, data)
    assert np.array_equal(result.values, baseline.values)

    fused_seconds = benchmark.stats.stats.min
    ratio = vectorized_seconds / fused_seconds if fused_seconds else float("inf")
    backend = dmm_fused.active_backend()
    record(
        f"Harness exact fused simulation ({backend}): N={n:,}, "
        f"{ratio:.1f}x over vectorized"
    )
    record_timing(
        "exact_fused",
        **_timing_kwargs(benchmark),
        n=n,
        scoring="fused",
        backend=backend,
    )
    if dmm_fused.native_enabled():
        # Measured 11–13x in-run; 8x leaves room for a noisy vectorized
        # leg while still catching a fused path that lost its speedup.
        assert ratio >= 8, f"exact fused only {ratio:.1f}x over vectorized"


def test_sampled_fused_speed(benchmark):
    """Fused engine, sampled workload (the sweep regime)."""
    from repro.dmm import fused as dmm_fused

    n = THRUST_MAXWELL.tile_size * 128
    data = generate("random", THRUST_MAXWELL, n, seed=0)
    vectorized = PairwiseMergeSort(THRUST_MAXWELL, memo=None)
    start = time.perf_counter()
    baseline = vectorized.sort(data, score_blocks=8)
    vectorized_seconds = time.perf_counter() - start

    sorter = PairwiseMergeSort(THRUST_MAXWELL, scoring="fused")
    result = benchmark.pedantic(
        lambda: sorter.sort(data, score_blocks=8),
        rounds=5,
        iterations=1,
        warmup_rounds=1,
    )
    assert np.array_equal(result.values, baseline.values)

    fused_seconds = benchmark.stats.stats.min
    ratio = vectorized_seconds / fused_seconds if fused_seconds else float("inf")
    backend = dmm_fused.active_backend()
    record(
        f"Harness sampled fused simulation ({backend}): N={n:,} with 8 "
        f"scored blocks/round, {ratio:.1f}x over vectorized"
    )
    record_timing(
        "sampled_fused",
        **_timing_kwargs(benchmark),
        n=n,
        score_blocks=8,
        scoring="fused",
        backend=backend,
    )
    if dmm_fused.native_enabled():
        # Measured ~10x in-run (merge rounds dominate this workload and
        # are already memory-shaped); 8x is the flake-proof floor, the
        # committed baseline row gates the absolute time.
        assert ratio >= 8, f"sampled fused only {ratio:.1f}x over vectorized"


def test_sweep_memoized_speed(benchmark):
    """Exact adversarial + sorted sweep over 6 sizes with one shared memo.

    The sweep's rounds repeat heavily within and across points (the
    constructed inputs are periodic by design), which is exactly what the
    pattern memo exploits; the unmemoized pass over the same points is
    timed once for the ratio, and the memoized points must be bit-identical
    to it.
    """
    from repro.bench.runner import SweepRunner
    from repro.gpu.device import get_device

    device = get_device("quadro-m4000")
    sizes = [THRUST_MAXWELL.tile_size * (1 << k) for k in range(6)]
    inputs = ("worst-case", "sorted")

    def sweep(memo):
        # Pinned to simulated vectorized scoring: under the registry-wide
        # "auto" default these constructed families route analytic and
        # the memo never engages — this benchmark measures the simulator.
        runner = SweepRunner(
            THRUST_MAXWELL, device, score_blocks=None, memo=memo,
            scoring="vectorized",
        )
        return [runner.sweep(name, sizes) for name in inputs]

    start = time.perf_counter()
    baseline_points = sweep(None)
    unmemo_seconds = time.perf_counter() - start

    points = benchmark.pedantic(lambda: sweep("auto"), rounds=3, iterations=1)
    assert points == baseline_points  # memoization never changes BenchPoints

    memo_seconds = benchmark.stats.stats.median
    ratio = unmemo_seconds / memo_seconds if memo_seconds else float("inf")
    record(
        f"Harness memoized sweep: {len(inputs)}x{len(sizes)} exact points, "
        f"{ratio:.1f}x over unmemoized"
    )
    record_timing(
        "sweep_memoized",
        **_timing_kwargs(benchmark),
        sizes=len(sizes),
        inputs=list(inputs),
        max_n=max(sizes),
    )
    record_timing(
        "sweep_unmemoized",
        unmemo_seconds,
        sizes=len(sizes),
        inputs=list(inputs),
        max_n=max(sizes),
    )
    # The ≥3x target is asserted loosely here (CI runners are noisy); the
    # committed baseline + check_regression gate the absolute timing.
    assert memo_seconds < unmemo_seconds


def test_sweep_analytic_speed(benchmark):
    """The same sweep served by the closed-form engine instead of the
    simulator: identical points, derived in O(rounds) arithmetic per
    point. The runner is shared across rounds (one warmup pays the
    engine's per-process class-scoring cost) because the number tracked
    here is the steady-state per-request cost of a warm daemon — the
    regime the service serves sweeps in. The memoized sweep is timed
    once in-run so the speedup is a measured ratio; the acceptance floor
    is 100x (measured ~1000x), and the absolute timing is gated by the
    committed ``analytic_sweep`` baseline row through
    ``check_regression``.
    """
    from repro.bench.runner import SweepRunner
    from repro.gpu.device import get_device

    device = get_device("quadro-m4000")
    sizes = [THRUST_MAXWELL.tile_size * (1 << k) for k in range(6)]
    inputs = ("worst-case", "sorted")

    start = time.perf_counter()
    # Pinned to vectorized: the "auto" default would itself route these
    # constructed families analytic, collapsing the measured ratio to ~1.
    memo_runner = SweepRunner(
        THRUST_MAXWELL, device, score_blocks=None, memo="auto",
        scoring="vectorized",
    )
    baseline_points = [memo_runner.sweep(name, sizes) for name in inputs]
    memo_seconds = time.perf_counter() - start

    runner = SweepRunner(
        THRUST_MAXWELL, device, score_blocks=None, memo=None,
        scoring="analytic",
    )
    points = benchmark.pedantic(
        lambda: [runner.sweep(name, sizes) for name in inputs],
        rounds=3,
        iterations=1,
        warmup_rounds=1,
    )
    assert points == baseline_points  # closed form never changes BenchPoints

    analytic_seconds = benchmark.stats.stats.median
    ratio = memo_seconds / analytic_seconds if analytic_seconds else float("inf")
    record(
        f"Harness analytic sweep: {len(inputs)}x{len(sizes)} exact points, "
        f"{ratio:.0f}x over memoized simulation"
    )
    record_timing(
        "analytic_sweep",
        **_timing_kwargs(benchmark),
        sizes=len(sizes),
        inputs=list(inputs),
        max_n=max(sizes),
    )
    # Acceptance floor for the closed form; measured ~1000x warm, so
    # 100x leaves ample room for CI noise.
    assert ratio >= 100, f"analytic sweep only {ratio:.1f}x over memoized"


def test_construction_speed(benchmark):
    from repro.adversary.permutation import worst_case_permutation

    n = THRUST_MAXWELL.tile_size * 128
    perm = benchmark.pedantic(
        lambda: worst_case_permutation(THRUST_MAXWELL, n), rounds=3, iterations=1
    )
    assert perm.size == n
    record(f"Harness worst-case construction: N={n:,}")
    record_timing("construction", **_timing_kwargs(benchmark), n=n)
