"""Theorem 9 verification bench — large E: exhaustive over every odd
w/2 < E < w for w up to 256, plus the boundary identities the paper derives.
"""

from conftest import record

from repro.adversary.large_e import large_e_assignment
from repro.adversary.theory import aligned_elements


def all_large_pairs(max_w=256):
    for w in (8, 16, 32, 64, 128, 256):
        if w > max_w:
            break
        for e in range(w // 2 + 1, w, 2):
            yield w, e


def test_theorem9_exhaustive(benchmark):
    def verify_all():
        checked = 0
        for w, e in all_large_pairs():
            r = w - e
            want = (e * e + e + 2 * e * r - r * r - r) // 2
            assert large_e_assignment(w, e).aligned_count() == want
            checked += 1
        return checked

    checked = benchmark(verify_all)
    record(f"Thm 9  exhaustive: {checked} (w, E) pairs all align exactly "
           "(E^2+E+2Er-r^2-r)/2")


def test_theorem9_boundaries(benchmark):
    """E = w/2+1 gives E²−1; E = w−1 gives E²/2 + 3E/2 − 1 (paper §III-B)."""

    def verify():
        out = []
        for w in (16, 32, 64, 128):
            e_min, e_max = w // 2 + 1, w - 1
            out.append((aligned_elements(w, e_min), e_min * e_min - 1))
            out.append(
                (aligned_elements(w, e_max), (e_max * e_max + 3 * e_max - 2) // 2)
            )
        return out

    pairs = benchmark(verify)
    assert all(got == want for got, want in pairs)
    record("Thm 9  boundary identities hold: E=w/2+1 -> E^2-1; "
           "E=w-1 -> E^2/2+3E/2-1")


def test_theorem9_range(benchmark):
    """Section III-C: all large-E counts sit in [E²/2, E²]."""

    def verify():
        return [
            (w, e, aligned_elements(w, e)) for w, e in all_large_pairs(128)
        ]

    rows = benchmark(verify)
    assert all(e * e / 2 <= v <= e * e for _, e, v in rows)
