"""Theorem 3 verification bench — small E: exhaustive over every co-prime
E < w/2 for w up to 256, plus end-to-end simulated confirmation at w=32.
"""

import math

from conftest import record

from repro.adversary.small_e import small_e_assignment
from repro.adversary.theory import aligned_elements


def all_small_pairs(max_w=256):
    for w in (8, 16, 32, 64, 128, 256):
        if w > max_w:
            break
        for e in range(1, (w + 1) // 2):
            if math.gcd(w, e) == 1:
                yield w, e


def test_theorem3_exhaustive(benchmark):
    def verify_all():
        checked = 0
        for w, e in all_small_pairs():
            assert small_e_assignment(w, e).aligned_count() == e * e
            checked += 1
        return checked

    checked = benchmark(verify_all)
    record(f"Thm 3  exhaustive: {checked} (w, E) pairs all align exactly E^2")


def test_theorem3_simulated_at_thrust_scale(benchmark):
    """Simulated pairwise merge sort on the constructed input serializes
    every global round to exactly E² cycles per warp (w=32, E=15)."""
    import numpy as np

    from repro.adversary.permutation import worst_case_permutation
    from repro.sort.config import SortConfig
    from repro.sort.pairwise import PairwiseMergeSort

    cfg = SortConfig(elements_per_thread=15, block_size=64, warp_size=32)
    n = cfg.tile_size * 8

    def run():
        perm = worst_case_permutation(cfg, n)
        return PairwiseMergeSort(cfg).sort(perm, score_blocks=2)

    result = benchmark(run)
    assert np.array_equal(result.values, np.arange(n))
    warps_scored = 2 * cfg.warps_per_block
    for r in result.rounds:
        if r.kind == "global":
            per_warp = r.merge_report.total_transactions / warps_scored
            assert per_warp == aligned_elements(32, 15) == 225
    record("Thm 3  simulated (w=32, E=15): every global round costs exactly "
           "225 = E^2 serialized cycles per warp (conflict-free would be 15)")
