"""Conclusion point 4 — worst-case inputs as the extreme of runtime variance.

The paper criticizes the dozen-random-inputs methodology (Section II-C:
"a random sample of only a dozen inputs represents no statistical
significance") and argues the constructed inputs expose real variance.
This bench runs exactly that methodology against the construction.
"""

from conftest import record

from repro.analysis.variance import variance_study
from repro.gpu.device import QUADRO_M4000
from repro.sort.presets import THRUST_MAXWELL


def test_dozen_random_inputs_tell_you_nothing(benchmark):
    n = THRUST_MAXWELL.tile_size * 64

    def run():
        return variance_study(
            THRUST_MAXWELL, QUADRO_M4000, n, num_samples=12, score_blocks=4
        )

    study = benchmark.pedantic(run, rounds=1, iterations=1)
    record(f"Variance (N={n:,}, 12 random samples): {study.summary()}")
    # The constructed input is invisible to random sampling...
    assert study.z_score > 10
    # ...while random runs barely vary at all.
    assert study.spread_percent < 5
