"""Gate harness-speed regressions against the committed baseline.

Usage::

    python benchmarks/check_regression.py CURRENT.json [BASELINE.json]

``CURRENT.json`` is the document a benchmark run wrote via
``REPRO_BENCH_JSON``; the baseline defaults to ``BENCH_simulator.json``
at the repository root. The check fails (exit 1) when any timing present
in both documents is more than ``--threshold`` times slower than its
baseline. CI runners are noisy and slower than the machines baselines are
recorded on, so the default threshold is a deliberately loose 2×: it
catches accidental re-introduction of per-tile Python loops or quadratic
passes, not single-digit-percent drift.

Timings present in only one document are reported but never fail the
check, so adding a benchmark does not require regenerating the baseline
in the same commit. Likewise, an entry that is present by name but
malformed (not an object, or without a numeric ``seconds``) is warned
about and skipped rather than crashing the gate: an older committed
baseline must never be able to break CI just because the fresh run grew
a new row shape.

That lenience has a hole: a refactor that silently stops *producing* a
row (or mangles it) would drop the row out of the gated set and pass.
``--require NAME[,NAME...]`` closes it for load-bearing rows — each
named timing must be present and well-formed in both documents or the
check fails. CI requires the engine-critical rows
(``exact_vectorized``, ``sweep_memoized``, ``analytic_sweep``) so an
execution-engine change can neither slow them past the threshold nor
un-measure them.

Each document records the Python version it was measured under. A
mismatch (e.g. a 3.11-recorded baseline gated on a 3.12 CI runner) does
not fail the check by itself — interpreter speed differences are part of
what the loose threshold absorbs — but it is warned about prominently and
both versions are named in any failure message, so a "regression" that is
really an interpreter change is diagnosable from the CI log alone.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parent.parent / "BENCH_simulator.json"


def load_document(path: Path) -> dict:
    with open(path) as handle:
        document = json.load(handle)
    if not isinstance(document.get("timings"), dict):
        raise SystemExit(f"{path}: no 'timings' object (not a bench document?)")
    return document


def _seconds(entry) -> float | None:
    """The entry's ``seconds`` as a float, or ``None`` when malformed."""
    if not isinstance(entry, dict):
        return None
    value = entry.get("seconds")
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    return float(value)


def _noise_note(entry: dict) -> str:
    """Optional min/IQR annotation for one timing entry."""
    parts = []
    if "min_seconds" in entry:
        parts.append(f"min {float(entry['min_seconds']):.4f}s")
    if "iqr_seconds" in entry:
        parts.append(f"iqr ±{float(entry['iqr_seconds']):.4f}s")
    return f"  ({', '.join(parts)})" if parts else ""


def compare(
    current: dict[str, dict],
    baseline: dict[str, dict],
    threshold: float,
    *,
    current_python: str = "unknown",
    baseline_python: str = "unknown",
) -> list[str]:
    """Return a list of human-readable failures (empty = pass)."""
    failures = []
    for name in sorted(set(current) & set(baseline)):
        now = _seconds(current[name])
        then = _seconds(baseline[name])
        if now is None or then is None:
            side = "current" if now is None else "baseline"
            print(
                f"  WARNING: {name}: malformed {side} entry (no numeric "
                f"'seconds') — skipped, not gated",
                file=sys.stderr,
            )
            continue
        ratio = now / then if then > 0 else float("inf")
        status = "FAIL" if ratio > threshold else "ok"
        print(
            f"  {name:24s} baseline {then:8.4f}s  current {now:8.4f}s  "
            f"ratio {ratio:5.2f}x  [{status}]{_noise_note(current[name])}"
        )
        if ratio > threshold:
            failures.append(
                f"{name}: {now:.4f}s is {ratio:.2f}x the baseline "
                f"{then:.4f}s (threshold {threshold:.1f}x; baseline Python "
                f"{baseline_python}, current Python {current_python})"
            )
    for name in sorted(set(current) - set(baseline)):
        print(f"  {name:24s} (new — no baseline, not gated)")
    for name in sorted(set(baseline) - set(current)):
        print(f"  {name:24s} (baseline only — not measured this run)")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", type=Path, help="timing JSON from this run")
    parser.add_argument(
        "baseline",
        type=Path,
        nargs="?",
        default=DEFAULT_BASELINE,
        help=f"committed baseline (default: {DEFAULT_BASELINE.name})",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=2.0,
        help="max allowed current/baseline ratio (default 2.0)",
    )
    parser.add_argument(
        "--require",
        default=None,
        metavar="NAME[,NAME...]",
        help="timing rows that must be present and well-formed in BOTH "
        "documents (fail instead of skip when missing/malformed)",
    )
    args = parser.parse_args(argv)

    current_doc = load_document(args.current)
    baseline_doc = load_document(args.baseline)
    current_python = str(current_doc.get("python", "unknown"))
    baseline_python = str(baseline_doc.get("python", "unknown"))
    if current_python != baseline_python:
        banner = (
            f"WARNING: Python version mismatch — baseline {args.baseline.name} "
            f"was recorded on Python {baseline_python}, this run uses Python "
            f"{current_python}. Timing ratios partly reflect the interpreter, "
            "not just the harness."
        )
        print("=" * 72, file=sys.stderr)
        print(banner, file=sys.stderr)
        print("=" * 72, file=sys.stderr)
    print(f"comparing {args.current} against {args.baseline}:")
    failures = compare(
        current_doc["timings"],
        baseline_doc["timings"],
        args.threshold,
        current_python=current_python,
        baseline_python=baseline_python,
    )
    required = [
        name.strip()
        for name in (args.require or "").split(",")
        if name.strip()
    ]
    for name in required:
        for side, timings in (
            ("current", current_doc["timings"]),
            ("baseline", baseline_doc["timings"]),
        ):
            if name not in timings:
                failures.append(
                    f"{name}: required row missing from the {side} document"
                )
            elif _seconds(timings[name]) is None:
                failures.append(
                    f"{name}: required row malformed in the {side} document "
                    "(no numeric 'seconds')"
                )
    if not set(current_doc["timings"]) & set(baseline_doc["timings"]):
        print("no overlapping timings — nothing gated", file=sys.stderr)
    if failures:
        print("\nharness speed regression:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("harness speed within threshold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
