"""Gate harness-speed regressions against the committed baseline.

Usage::

    python benchmarks/check_regression.py CURRENT.json [BASELINE.json]

``CURRENT.json`` is the document a benchmark run wrote via
``REPRO_BENCH_JSON``; the baseline defaults to ``BENCH_simulator.json``
at the repository root. The check fails (exit 1) when any timing present
in both documents is more than ``--threshold`` times slower than its
baseline. CI runners are noisy and slower than the machines baselines are
recorded on, so the default threshold is a deliberately loose 2×: it
catches accidental re-introduction of per-tile Python loops or quadratic
passes, not single-digit-percent drift.

Timings present in only one document are reported but never fail the
check, so adding a benchmark does not require regenerating the baseline
in the same commit.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parent.parent / "BENCH_simulator.json"


def load_timings(path: Path) -> dict[str, dict]:
    with open(path) as handle:
        document = json.load(handle)
    timings = document.get("timings")
    if not isinstance(timings, dict):
        raise SystemExit(f"{path}: no 'timings' object (not a bench document?)")
    return timings


def compare(
    current: dict[str, dict], baseline: dict[str, dict], threshold: float
) -> list[str]:
    """Return a list of human-readable failures (empty = pass)."""
    failures = []
    for name in sorted(set(current) & set(baseline)):
        now = float(current[name]["seconds"])
        then = float(baseline[name]["seconds"])
        ratio = now / then if then > 0 else float("inf")
        status = "FAIL" if ratio > threshold else "ok"
        print(
            f"  {name:24s} baseline {then:8.4f}s  current {now:8.4f}s  "
            f"ratio {ratio:5.2f}x  [{status}]"
        )
        if ratio > threshold:
            failures.append(
                f"{name}: {now:.4f}s is {ratio:.2f}x the baseline "
                f"{then:.4f}s (threshold {threshold:.1f}x)"
            )
    for name in sorted(set(current) - set(baseline)):
        print(f"  {name:24s} (new — no baseline, not gated)")
    for name in sorted(set(baseline) - set(current)):
        print(f"  {name:24s} (baseline only — not measured this run)")
    return failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", type=Path, help="timing JSON from this run")
    parser.add_argument(
        "baseline",
        type=Path,
        nargs="?",
        default=DEFAULT_BASELINE,
        help=f"committed baseline (default: {DEFAULT_BASELINE.name})",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=2.0,
        help="max allowed current/baseline ratio (default 2.0)",
    )
    args = parser.parse_args(argv)

    current = load_timings(args.current)
    baseline = load_timings(args.baseline)
    print(f"comparing {args.current} against {args.baseline}:")
    failures = compare(current, baseline, args.threshold)
    if not set(current) & set(baseline):
        print("no overlapping timings — nothing gated", file=sys.stderr)
    if failures:
        print("\nharness speed regression:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("harness speed within threshold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
