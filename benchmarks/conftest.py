"""Benchmark-suite configuration.

Each ``bench_*`` module regenerates one figure (or theory check) of the
paper. The pytest-benchmark timings measure the *harness* (construction and
simulation speed); the *figure data* — simulated throughput, slowdown
percentages, conflicts per element — is printed to the terminal at the end
of the run via the collected ``FIGURE_LINES`` so `pytest benchmarks/
--benchmark-only -s` doubles as the reproduction report.

Environment knobs:

* ``REPRO_BENCH_MAX_ELEMENTS`` — sweep ceiling (default 3e8, the paper's
  largest size; already cheap because large sizes use the calibrated
  synthesis path).
"""

import os

FIGURE_LINES: list[str] = []


def record(*lines: str) -> None:
    """Collect report lines to emit at session end."""
    FIGURE_LINES.extend(lines)


def max_elements() -> int:
    return int(os.environ.get("REPRO_BENCH_MAX_ELEMENTS", 300_000_000))


def pytest_terminal_summary(terminalreporter):
    if FIGURE_LINES:
        terminalreporter.write_sep("=", "paper figure reproduction summary")
        for line in FIGURE_LINES:
            terminalreporter.write_line(line)
