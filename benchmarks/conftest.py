"""Benchmark-suite configuration.

Each ``bench_*`` module regenerates one figure (or theory check) of the
paper. The pytest-benchmark timings measure the *harness* (construction and
simulation speed); the *figure data* — simulated throughput, slowdown
percentages, conflicts per element — is printed to the terminal at the end
of the run via the collected ``FIGURE_LINES`` so `pytest benchmarks/
--benchmark-only -s` doubles as the reproduction report.

Harness timings additionally flow through :func:`record_timing` into a
machine-readable JSON document, so the simulator's own performance is a
tracked trajectory rather than terminal noise: set ``REPRO_BENCH_JSON`` to
a path and the session writes ``{"timings": {name: {...}}}`` there at exit
(see ``BENCH_simulator.json`` for the committed baseline and
``benchmarks/check_regression.py`` for the CI gate).

Environment knobs:

* ``REPRO_BENCH_MAX_ELEMENTS`` — sweep ceiling (default 3e8, the paper's
  largest size; already cheap because large sizes use the calibrated
  synthesis path).
* ``REPRO_BENCH_JSON`` — where to write the timing document (off when
  unset).
"""

import json
import os
import platform

FIGURE_LINES: list[str] = []

TIMINGS: dict[str, dict] = {}


def record(*lines: str) -> None:
    """Collect report lines to emit at session end."""
    FIGURE_LINES.extend(lines)


def record_timing(
    name: str,
    seconds: float,
    *,
    min_seconds: float | None = None,
    iqr_seconds: float | None = None,
    **extra,
) -> None:
    """Record one named harness timing for the JSON trajectory document.

    ``seconds`` should be a robust statistic (the benchmark median).
    ``min_seconds`` and ``iqr_seconds`` carry the distribution's floor and
    spread so ``check_regression.py`` can tell a real slowdown (min moved)
    from a noisy runner (median moved, min stable, wide IQR). ``extra``
    fields (problem size, scoring mode, …) are stored verbatim.
    """
    entry = {"seconds": round(float(seconds), 6)}
    if min_seconds is not None:
        entry["min_seconds"] = round(float(min_seconds), 6)
    if iqr_seconds is not None:
        entry["iqr_seconds"] = round(float(iqr_seconds), 6)
    entry.update(extra)
    TIMINGS[name] = entry


def max_elements() -> int:
    return int(os.environ.get("REPRO_BENCH_MAX_ELEMENTS", 300_000_000))


def _write_timings_json(path: str) -> None:
    document = {
        "schema": 1,
        "python": platform.python_version(),
        "timings": dict(sorted(TIMINGS.items())),
    }
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, sort_keys=False)
        handle.write("\n")


def pytest_terminal_summary(terminalreporter):
    if FIGURE_LINES:
        terminalreporter.write_sep("=", "paper figure reproduction summary")
        for line in FIGURE_LINES:
            terminalreporter.write_line(line)
    json_path = os.environ.get("REPRO_BENCH_JSON")
    if json_path and TIMINGS:
        _write_timings_json(json_path)
        terminalreporter.write_line(
            f"harness timings written to {json_path} "
            f"({len(TIMINGS)} entries)"
        )
