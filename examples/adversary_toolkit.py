#!/usr/bin/env python3
"""The adversary's toolbox, end to end.

1. build the worst case for your parameters;
2. *see* it (bank-pressure heat map: the hot diagonal);
3. verify it independently against the simulator;
4. generate disguised family members and relaxed variants;
5. place it in the random-runtime distribution (why testing on a dozen
   random inputs never finds it);
6. generalize it to K-way merging (beyond the paper).

Run:  python examples/adversary_toolkit.py
"""

import numpy as np

from repro import QUADRO_M4000, SortConfig, verify_worst_case
from repro.adversary.assignment import construct_warp_assignment
from repro.adversary.family import (
    family_size_log2,
    random_family_member,
    relaxed_assignment,
)
from repro.adversary.multiway_adversary import multiway_worst_case_permutation
from repro.adversary.permutation import worst_case_permutation
from repro.analysis.variance import variance_study
from repro.bench.traceviz import heat_map
from repro.dmm.trace import AccessTrace
from repro.sort.multiway import MultiwaySort

CFG = SortConfig(elements_per_thread=15, block_size=128, name="demo")


def main() -> None:
    # 1. Build.
    wa = construct_warp_assignment(CFG.w, CFG.E)
    n = CFG.tile_size * 64
    perm = worst_case_permutation(CFG, n)
    print(f"built worst case for E={CFG.E}, b={CFG.b}, w={CFG.w}; "
          f"aligned/warp = {wa.aligned_count()} = E²\n")

    # 2. See it.
    print(heat_map(AccessTrace.from_dense(wa.step_banks()), CFG.w,
                   title="one warp's bank pressure (rows = banks, "
                         "cols = merge steps):"))

    # 3. Verify it.
    report = verify_worst_case(CFG, perm)
    print(f"\nindependent verification: {report.summary()}")

    # 4. Disguise it.
    member = random_family_member(wa, seed=1)
    relaxed = relaxed_assignment(wa, 0.5, seed=1)
    print(
        f"\nfamily: >= 2^{family_size_log2(wa):.0f} equal-damage variants; "
        f"a random member still aligns {member.aligned_count()}, a "
        f"half-relaxed variant {relaxed.aligned_count()} (of {CFG.E ** 2})"
    )

    # 5. Hide-and-seek with random testing.
    study = variance_study(CFG, QUADRO_M4000, n, num_samples=12,
                           score_blocks=4)
    print(f"\ndozen-random-inputs methodology: {study.summary()}")

    # 6. Go K-way.
    k = 4
    kway = multiway_worst_case_permutation(CFG, CFG.tile_size * 16, fan=k)
    result = MultiwaySort(CFG, k=k).sort(kway, score_blocks=4)
    warps = 4 * CFG.warps_per_block
    per_warp = [
        r.merge_report.total_transactions / warps
        for r in result.rounds
        if "multiway" in r.label
    ]
    print(
        f"\nK-way generalization (K={k}): multiway rounds cost "
        f"{sorted(set(per_warp))} cycles/warp — E² = {CFG.E ** 2} again; "
        "the collapse is not an artifact of pairwise merging."
    )


if __name__ == "__main__":
    main()
