#!/usr/bin/env python3
"""Per-round conflict anatomy across input families.

Runs one sort per input generator (random, sorted, reverse, conflict-heavy,
worst-case, ...) and breaks the shared-memory serialization down by merge
round and by stage (β₁ partition searches vs β₂ merge scans) — the view
behind the paper's Section II-A access-complexity analysis.

Run:  python examples/conflict_profile.py
"""

from repro import PairwiseMergeSort, SortConfig, generate
from repro.bench.ascii_plot import table

CONFIG = SortConfig(elements_per_thread=15, block_size=128, name="profile")
N = CONFIG.tile_size * 64
INPUTS = ["sorted", "random", "reverse", "sawtooth", "conflict-heavy",
          "worst-case"]


def main() -> None:
    sorter = PairwiseMergeSort(CONFIG)
    print(f"E={CONFIG.E}, b={CONFIG.b}, w={CONFIG.w}, N={N:,}\n")

    summary = []
    for name in INPUTS:
        data = generate(name, CONFIG, N, seed=11)
        result = sorter.sort(data, score_blocks=8)
        merge = sum(r.merge_report.total_transactions * r.scale
                    for r in result.rounds)
        part = sum(r.partition_report.total_transactions * r.scale
                   for r in result.rounds)
        summary.append(
            {
                "input": name,
                "conflicts/elem": result.replays_per_element(),
                "merge cycles/elem": merge / N,
                "partition cycles/elem": part / N,
                "total cycles/elem": result.total_shared_cycles() / N,
            }
        )
    print(table(summary))

    print("\nper-round profile for the worst-case input "
          "(cycles per warp, merge stage):")
    result = sorter.sort(generate("worst-case", CONFIG, N, seed=0),
                         score_blocks=8)
    rows = []
    for r in result.rounds:
        if r.kind == "registers":
            continue
        warps = r.blocks_scored * CONFIG.warps_per_block
        rows.append(
            {
                "round": r.label,
                "kind": r.kind,
                "merge cycles/warp": r.merge_report.total_transactions / warps,
                "conflict-free would be": CONFIG.E,
            }
        )
    print(table(rows))
    print(
        f"\nEvery wide round serializes to E² = {CONFIG.E ** 2} cycles per "
        "warp — the Theorem 3 worst case; narrow early rounds (run < wE) "
        "are not targeted by the construction and stay near E."
    )


if __name__ == "__main__":
    main()
