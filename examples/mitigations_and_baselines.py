#!/usr/bin/env python3
"""Defenses against the worst-case input: padding and obliviousness.

Three ways to face the paper's adversary, measured on one playing field:

1. **do nothing** — stock pairwise merge sort eats the E² serialization;
2. **Dotsenko co-prime padding** — skew the shared layout; conflicts
   collapse to below the random level, at an occupancy price;
3. **switch to bitonic sort** — data-oblivious, so the adversary cannot
   exist, but you pay Θ(N log² N) work and its own structural conflicts.

Run:  python examples/mitigations_and_baselines.py
"""

import numpy as np

from repro import QUADRO_M4000, SortConfig, occupancy, worst_case_permutation
from repro.bench.ascii_plot import table
from repro.mitigation.padding import padded_shared_bytes
from repro.sort.bitonic import BitonicSort
from repro.sort.pairwise import PairwiseMergeSort

CFG = SortConfig(elements_per_thread=15, block_size=512, name="thrust")
N = CFG.tile_size * 1024 // 15 * 15  # keep a merge-sort-valid size
N = CFG.tile_size * 64


def main() -> None:
    adversarial = worst_case_permutation(CFG, N)
    random = np.random.default_rng(0).permutation(N)
    print(f"E={CFG.E}, b={CFG.b}, N={N:,}\n")

    rows = []
    for label, sorter in (
        ("stock merge sort", PairwiseMergeSort(CFG)),
        ("padded merge sort (pad=1)", PairwiseMergeSort(CFG, padding=1)),
    ):
        adv = sorter.sort(adversarial, score_blocks=8)
        rnd = sorter.sort(random, score_blocks=8)
        rows.append(
            {
                "defense": label,
                "worst cycles/elem": adv.total_shared_cycles() / N,
                "random cycles/elem": rnd.total_shared_cycles() / N,
                "adversary's edge": adv.total_shared_cycles()
                / rnd.total_shared_cycles(),
            }
        )

    # Bitonic needs a power-of-two size; compare per-element on 2^19.
    nb = 1 << 19
    bitonic = BitonicSort(block_size=512, warp_size=32)
    cfg_b = SortConfig(elements_per_thread=4, block_size=64)
    adv_b = bitonic.sort(worst_case_permutation(cfg_b, nb))
    rnd_b = bitonic.sort(np.random.default_rng(1).permutation(nb))
    rows.append(
        {
            "defense": "bitonic sort (oblivious)",
            "worst cycles/elem": adv_b.total_shared_cycles() / nb,
            "random cycles/elem": rnd_b.total_shared_cycles() / nb,
            "adversary's edge": adv_b.total_shared_cycles()
            / rnd_b.total_shared_cycles(),
        }
    )
    print(table(rows))

    stock_occ = occupancy(QUADRO_M4000, CFG.b, CFG.shared_bytes_per_block)
    pad_occ = occupancy(QUADRO_M4000, CFG.b, padded_shared_bytes(CFG, 1))
    print(
        f"\nthe padding price on {QUADRO_M4000.name}: "
        f"{stock_occ.blocks_per_sm} -> {pad_occ.blocks_per_sm} resident "
        f"blocks/SM ({stock_occ.occupancy:.0%} -> {pad_occ.occupancy:.0%} "
        "occupancy)"
    )
    print(
        "\ntakeaways: padding removes the adversary's edge entirely (edge "
        "~1.0 or below); bitonic is immune by construction (edge exactly "
        "1.0) but its baseline cost per element is several times higher."
    )


if __name__ == "__main__":
    main()
