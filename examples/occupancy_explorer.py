#!/usr/bin/env python3
"""Why did Thrust pick E=15, b=512? An (E, b) design-space exploration.

For a grid of tuning parameters, computes occupancy on both paper GPUs and
the simulated throughput on random and worst-case inputs — reproducing the
paper's Section III-C discussion: small E limits worst-case damage but
costs more partitioning work; large E amortizes global searches but exposes
up to w²/2 conflicts per warp.

Run:  python examples/occupancy_explorer.py
      python -m repro grid --device rtx-2080-ti      # the same, via the CLI
"""

from repro import QUADRO_M4000, RTX_2080_TI
from repro.bench.ascii_plot import table
from repro.bench.grid import grid_search

ES = [7, 9, 11, 13, 15, 17, 23, 31]
BS = [128, 256, 512]


def main() -> None:
    for device in (QUADRO_M4000, RTX_2080_TI):
        print(f"\n=== {device.name} ===")
        points = grid_search(device, ES, BS, target_elements=30_000_000)
        print(table([p.as_row() for p in points[:12]]))
        best = points[0]
        print(
            f"best random-input config here: E={best.elements_per_thread}, "
            f"b={best.block_size} (occupancy {best.occupancy:.0%}); its "
            f"worst-case slowdown is {best.slowdown_percent:.1f}%"
        )
        resilient = min(points, key=lambda p: p.slowdown_percent)
        print(
            f"most adversary-resilient config: "
            f"E={resilient.elements_per_thread}, b={resilient.block_size} "
            f"(slowdown {resilient.slowdown_percent:.1f}%) — the paper's "
            "small-E trade-off in action"
        )


if __name__ == "__main__":
    main()
