#!/usr/bin/env python3
"""Quickstart: build a worst-case input and watch it hurt.

Constructs the paper's adversarial permutation for the Thrust parameters
(E=15, b=512, w=32), runs both it and a random permutation through the
instrumented merge-sort simulator, and reports the bank-conflict and
simulated-runtime damage on a (simulated) Quadro M4000.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    PairwiseMergeSort,
    QUADRO_M4000,
    SortConfig,
    TimingModel,
    occupancy,
    worst_case_permutation,
)


def main() -> None:
    config = SortConfig(elements_per_thread=15, block_size=512, name="thrust")
    n = config.tile_size * 128  # ~1M elements
    print(f"config: E={config.E}, b={config.b}, w={config.w};  N = {n:,}")

    sorter = PairwiseMergeSort(config)
    occ = occupancy(QUADRO_M4000, config.b, config.shared_bytes_per_block)
    timing = TimingModel(QUADRO_M4000)

    results = {}
    for name, data in (
        ("random", np.random.default_rng(0).permutation(n)),
        ("worst-case", worst_case_permutation(config, n)),
    ):
        result = sorter.sort(data, score_blocks=8)
        assert np.array_equal(result.values, np.sort(data)), "sort broke!"
        cost = result.kernel_cost(occ.warps_per_sm)
        ms = timing.milliseconds(cost)
        results[name] = (result, ms)
        print(
            f"{name:>10}: {result.replays_per_element():6.2f} bank conflicts/"
            f"element, {result.total_shared_cycles():12,.0f} serialized "
            f"shared cycles, {ms:7.3f} simulated ms "
            f"({n / ms / 1e3:,.0f} Melem/s)"
        )

    slow = results["worst-case"][1] / results["random"][1] - 1
    print(f"\nconstructed worst-case input is {slow:.1%} slower than random")
    print("(the paper measures ~50% peak slowdown for this configuration on "
          "a real Quadro M4000)")

    # Where does the damage come from? Per-warp serialization in the merge
    # stage of every global round:
    worst = results["worst-case"][0]
    glob = [r for r in worst.rounds if r.kind == "global"]
    per_warp = glob[0].merge_report.total_transactions / (
        glob[0].blocks_scored * config.warps_per_block
    )
    print(
        f"\nper warp, each global merge round costs {per_warp:.0f} serialized "
        f"cycles — exactly E² = {config.E ** 2} (conflict-free would be "
        f"E = {config.E}): effective parallelism drops from w = 32 to "
        f"⌈w/E⌉ = 3 threads."
    )


if __name__ == "__main__":
    main()
