#!/usr/bin/env python3
"""End-to-end smoke test of the ``repro-mergesort serve`` daemon.

Spawns the real CLI entry point as a subprocess, then drives it over
loopback the way CI (or an operator) would:

1. liveness — poll ``/healthz`` until the daemon answers;
2. fidelity — a served ``/simulate`` must be bit-identical to the same
   sort performed directly in this process;
3. analytic sweep — ``/sweep`` over analytic-eligible families must
   serve the same points whether scored by the closed-form engine
   (``scoring="analytic"``), the simulator (``"vectorized"``), or the
   server-default ``"auto"`` routing;
4. coalescing — 16 concurrent identical ``/simulate`` requests must be
   answered by exactly one underlying sort (checked via ``/stats``);
5. backpressure — with ``--queue-limit 2``, a burst of distinct
   requests must produce at least one HTTP 429, and every request must
   either succeed or be rejected cleanly (no hangs, no deadlock);
6. graceful drain — SIGTERM while a request is in flight: the request
   completes, the process exits 0.

Run:  python examples/service_smoke.py
"""

import re
import signal
import subprocess
import sys
import time
from concurrent.futures import ThreadPoolExecutor

from repro.errors import BackpressureError, ServiceError
from repro.inputs.generators import generate
from repro.service.client import ServiceClient
from repro.sort.pairwise import PairwiseMergeSort
from repro.sort.presets import preset
from repro.sort.serialize import results_identical

PRESET = "mgpu-maxwell"
TILES = 4
SCORE_BLOCKS = 2


def spawn(*extra_args: str) -> tuple[subprocess.Popen, ServiceClient]:
    """Start ``repro-mergesort serve`` on an ephemeral port."""
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         *extra_args],
        stderr=subprocess.PIPE,
        text=True,
    )
    pattern = re.compile(r"listening on (http://[0-9.]+:\d+)")
    deadline = time.monotonic() + 30
    url = None
    while url is None:
        if time.monotonic() > deadline:
            proc.kill()
            raise SystemExit("daemon never announced its port")
        line = proc.stderr.readline()
        match = pattern.search(line)
        if match:
            url = match.group(1)
    client = ServiceClient(url, timeout=120)
    deadline = time.monotonic() + 10
    while True:
        try:
            assert client.healthz()["status"] == "ok"
            break
        except ServiceError:
            if time.monotonic() > deadline:
                proc.kill()
                raise
            time.sleep(0.1)
    return proc, client


def drain_stderr(proc: subprocess.Popen) -> str:
    out = proc.stderr.read()
    proc.stderr.close()
    return out


def check_fidelity(client: ServiceClient) -> None:
    reply = client.simulate(
        preset=PRESET, tiles=TILES, score_blocks=SCORE_BLOCKS, seed=0
    )
    config = preset(PRESET)
    data = generate("worst-case", config, config.tile_size * TILES, seed=0)
    direct = PairwiseMergeSort(config, memo="auto").sort(
        data, score_blocks=SCORE_BLOCKS, seed=0
    )
    assert reply.sorted_ok, "served sort not sorted"
    assert results_identical(reply.result, direct), (
        "served result differs from direct library call"
    )
    print("fidelity: served /simulate bit-identical to direct call")


def check_analytic_sweep(client: ServiceClient) -> None:
    config = preset(PRESET)
    sizes = [config.tile_size * (1 << k) for k in range(3)]
    kwargs = dict(
        preset=PRESET, inputs=["worst-case", "sorted"], sizes=sizes, seed=0
    )
    analytic = client.sweep(scoring="analytic", **kwargs)
    simulated = client.sweep(scoring="vectorized", **kwargs)
    served_auto = client.sweep(**kwargs)  # server default: "auto"
    assert len(analytic.points) == 2 * len(sizes)
    assert analytic.points == simulated.points, (
        "closed-form sweep differs from simulated sweep"
    )
    assert served_auto.points == analytic.points, (
        "auto routing differs from explicit analytic"
    )
    print(
        f"analytic sweep: {len(analytic.points)} closed-form points "
        "bit-identical to simulated"
    )


def check_coalescing(client: ServiceClient) -> None:
    before = client.stats()["executed"]["simulate"]

    def call():
        return client.simulate(
            preset=PRESET, tiles=TILES * 2, score_blocks=SCORE_BLOCKS, seed=42
        )

    with ThreadPoolExecutor(max_workers=16) as pool:
        replies = [f.result() for f in [pool.submit(call) for _ in range(16)]]

    stats = client.stats()
    executed = stats["executed"]["simulate"] - before
    coalesced = sum(r.coalesced for r in replies)
    # Concurrency is best-effort in a smoke test: some of the 16 may
    # arrive after the first completes, but *some* must have coalesced,
    # and executed + coalesced must account for all 16.
    assert executed + coalesced == 16, (executed, coalesced)
    assert coalesced > 0, "no request was coalesced"
    assert executed < 16, "every request ran its own sort"
    first = replies[0].result
    assert all(results_identical(r.result, first) for r in replies[1:])
    print(
        f"coalescing: 16 identical requests -> {executed} sort(s), "
        f"{coalesced} coalesced"
    )


def check_backpressure(client: ServiceClient) -> None:
    outcomes = {"ok": 0, "rejected": 0}

    def call(seed: int):
        try:
            client.simulate(
                preset=PRESET, tiles=TILES, score_blocks=SCORE_BLOCKS,
                seed=seed,
            )
            return "ok"
        except BackpressureError as exc:
            assert exc.retry_after > 0
            return "rejected"

    with ThreadPoolExecutor(max_workers=12) as pool:
        for outcome in pool.map(call, range(100, 112)):
            outcomes[outcome] += 1

    assert outcomes["ok"] + outcomes["rejected"] == 12
    assert outcomes["rejected"] >= 1, "queue limit 2 never produced a 429"
    assert outcomes["ok"] >= 2, "nothing was admitted"
    assert client.stats()["backpressure"]["rejected"] >= 1
    print(
        f"backpressure: 12 distinct requests -> {outcomes['ok']} served, "
        f"{outcomes['rejected']} rejected with 429"
    )


def check_graceful_drain(proc: subprocess.Popen, client: ServiceClient) -> None:
    with ThreadPoolExecutor(max_workers=1) as pool:
        in_flight = pool.submit(
            client.simulate,
            preset=PRESET, tiles=TILES * 4, score_blocks=8, seed=7,
        )
        time.sleep(0.3)  # let the request reach the daemon
        proc.send_signal(signal.SIGTERM)
        reply = in_flight.result(timeout=120)
    assert reply.sorted_ok, "in-flight request lost during drain"
    code = proc.wait(timeout=60)
    assert code == 0, f"daemon exited {code} after SIGTERM drain"
    print("drain: SIGTERM completed in-flight work and exited 0")


def main() -> None:
    proc, client = spawn("--queue-limit", "2")
    try:
        check_fidelity(client)
        check_analytic_sweep(client)
        check_coalescing(client)
        check_backpressure(client)
        check_graceful_drain(proc, client)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()
        log = drain_stderr(proc)
        if proc.returncode != 0:
            sys.stderr.write(log)
    print("service smoke: all checks passed")


if __name__ == "__main__":
    main()
