#!/usr/bin/env python3
"""Mini Figure 4/5: throughput vs N, random vs worst-case inputs.

Sweeps input sizes for a chosen preset/device (defaults: Thrust on the
Quadro M4000), prints the series, the paper-style slowdown statistics, and
an ASCII rendering of the throughput curves.

Run:  python examples/throughput_sweep.py [preset] [device]
      python examples/throughput_sweep.py thrust-e17-b256 rtx-2080-ti
"""

import sys

from repro import get_device
from repro.bench import SweepRunner, slowdown_stats
from repro.bench.ascii_plot import line_plot
from repro.sort.presets import preset


def main() -> None:
    config = preset(sys.argv[1] if len(sys.argv) > 1 else "thrust-maxwell")
    device = get_device(sys.argv[2] if len(sys.argv) > 2 else "quadro-m4000")
    print(f"{config.name} on {device.name}")

    runner = SweepRunner(config, device, exact_threshold=1 << 20, score_blocks=8)
    sizes = [n for n in config.valid_sizes(300_000_000) if n >= 100_000]
    random = runner.sweep("random", sizes)
    worst = runner.sweep("worst-case", sizes)

    print(f"{'N':>12} {'random':>9} {'worst':>9} {'slowdown':>9}")
    for r, w in zip(random, worst):
        print(
            f"{r.num_elements:>12,} {r.throughput_meps:>9.1f} "
            f"{w.throughput_meps:>9.1f} "
            f"{(w.milliseconds / r.milliseconds - 1) * 100:>8.1f}%"
        )
    print(f"\n{slowdown_stats(random, worst)}")

    print(
        line_plot(
            {
                "random": (sizes, [p.throughput_meps for p in random]),
                "worst": (sizes, [p.throughput_meps for p in worst]),
            },
            title=f"\nsimulated throughput, Melem/s (log-x in N)",
        )
    )


if __name__ == "__main__":
    main()
