#!/usr/bin/env python3
"""Render worst-case warp layouts (the paper's Figure 3) for any (w, E).

Shows, for a small and a large co-prime E, which thread reads each shared-
memory cell of the warp's A and B lists, the alignment target, and the
theorem-predicted vs constructed aligned counts.

Run:  python examples/worst_case_layout.py [w] [E ...]
      python examples/worst_case_layout.py 16 7 9      # the paper's figure
"""

import sys

from repro import aligned_elements, construct_warp_assignment
from repro.bench.ascii_plot import bank_matrix_str


def show(w: int, e: int) -> None:
    wa = construct_warp_assignment(w, e)
    case = "small" if e < w / 2 else ("large" if e < w else "power-of-two")
    print(f"\n=== w={w}, E={e}  ({case} case) ===")
    print(f"alignment target: banks {wa.target_bank}..{(wa.target_bank + e - 1) % w}")
    print(f"aligned accesses: constructed {wa.aligned_count()}, "
          f"theorem {aligned_elements(w, e)}, ceiling E² = {e * e}")
    print("per-thread (A, B) assignments, * = reads its A chunk first:")
    print("  " + " ".join(
        f"({a},{b}){'*' if f else ''}" for (a, b), f in zip(wa.tuples, wa.a_first)
    ))
    a_owners, b_owners = wa.bank_matrix()
    print(bank_matrix_str(a_owners, label="\nA list (cells show owning thread):"))
    print(bank_matrix_str(b_owners, label="\nB list:"))


def main() -> None:
    args = [int(x) for x in sys.argv[1:]]
    w = args[0] if args else 16
    es = args[1:] if len(args) > 1 else [7, 9]
    for e in es:
        show(w, e)


if __name__ == "__main__":
    main()
