"""Setuptools shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so the
package can be installed in environments without the ``wheel`` package or
network access (``python setup.py develop`` / ``pip install -e .
--no-build-isolation``).
"""

from setuptools import setup

setup()
