"""Setuptools shim plus the optional compiled hot-path extension.

The canonical metadata lives in ``pyproject.toml``; this file exists so the
package can be installed in environments without the ``wheel`` package or
network access (``python setup.py develop`` / ``pip install -e .
--no-build-isolation``), and it declares the optional
``repro._fused_native`` C extension behind ``scoring="fused"``.

The extension is marked ``optional``: a missing compiler or numpy headers
degrade the install to the pure-numpy fused path (bit-identical, slower)
instead of failing it. Build in place with::

    python setup.py build_ext --inplace

or install with the ``[native]`` extra (``pip install -e .[native]``).
Set ``REPRO_FORCE_NUMPY=1`` to ignore a built extension at runtime.
"""

from setuptools import Extension, setup


def _extensions():
    try:
        import numpy
    except ImportError:  # metadata-only builds still work without numpy
        return []
    return [
        Extension(
            "repro._fused_native",
            sources=["src/repro/_native/fusedmod.c"],
            include_dirs=[numpy.get_include()],
            extra_compile_args=["-O3"],
            optional=True,
        )
    ]


setup(ext_modules=_extensions())
