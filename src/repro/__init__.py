"""repro — worst-case inputs for pairwise merge sort on GPUs.

A from-scratch Python reproduction of

    Kyle Berney and Nodari Sitchinava,
    "Engineering Worst-Case Inputs for Pairwise Merge Sort on GPUs",
    IPPS 2020,

comprising the paper's constructive worst-case input generator
(:mod:`repro.adversary`), the GPU pairwise merge sort it attacks —
implemented as an instrumented simulator over an exact bank-conflict model
(:mod:`repro.sort`, :mod:`repro.dmm`, :mod:`repro.gpu`,
:mod:`repro.mergepath`) — and a benchmark harness that regenerates every
figure of the paper's evaluation (:mod:`repro.bench`).

Quick start::

    import numpy as np
    from repro import SortConfig, PairwiseMergeSort, worst_case_permutation

    cfg = SortConfig(elements_per_thread=15, block_size=512)   # Thrust
    n = cfg.tile_size * 64
    sorter = PairwiseMergeSort(cfg)

    adversarial = sorter.sort(worst_case_permutation(cfg, n), score_blocks=8)
    random = sorter.sort(np.random.default_rng(0).permutation(n),
                         score_blocks=8)
    print(adversarial.total_shared_cycles() / random.total_shared_cycles())
"""

from repro.adversary import (
    WarpAssignment,
    aligned_elements,
    construct_warp_assignment,
    effective_threads,
    verify_worst_case,
    worst_case_permutation,
)
from repro.errors import (
    BackpressureError,
    ConfigurationError,
    ConstructionError,
    ReproError,
    ServiceError,
    SimulationError,
    ValidationError,
)
from repro.gpu import (
    DEVICES,
    GTX_770,
    QUADRO_M4000,
    RTX_2080_TI,
    DeviceSpec,
    TimingModel,
    get_device,
    occupancy,
)
from repro.inputs import generate
from repro.sort import PairwiseMergeSort, SortConfig, SortResult, preset

__version__ = "1.0.0"

__all__ = [
    "BackpressureError",
    "ConfigurationError",
    "ConstructionError",
    "DEVICES",
    "DeviceSpec",
    "GTX_770",
    "PairwiseMergeSort",
    "QUADRO_M4000",
    "RTX_2080_TI",
    "ReproError",
    "ServiceError",
    "SimulationError",
    "SortConfig",
    "SortResult",
    "TimingModel",
    "ValidationError",
    "WarpAssignment",
    "aligned_elements",
    "construct_warp_assignment",
    "effective_threads",
    "generate",
    "get_device",
    "occupancy",
    "preset",
    "verify_worst_case",
    "worst_case_permutation",
    "__version__",
]
