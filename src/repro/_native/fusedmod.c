/* Fused single-pass round scoring for the pairwise merge sort simulator.
 *
 * The numpy scoring paths rebuild, per round, the full rank->address
 * matrices, dense probe traces, and AccessTrace objects before a bincount
 * pass reduces them to a handful of ConflictReport counters. This module
 * goes straight from the pre-merge values to those counters:
 *
 *   merge_pairs        - the stable (A-first) pairwise merge itself, run
 *                        as two independent chains (one from each end of
 *                        the pair) so the serial two-pointer dependency
 *                        overlaps; the replacement for the per-round
 *                        stable argsort + take_along_axis pair;
 *   score_block_round  - one scored tile at a time: rebuild the tile's
 *                        merge interleaving with bidirectional two-pointer
 *                        merges (sampling the A-prefix counts the
 *                        partition stage needs), score its per-(warp,
 *                        step) bank requests, then replay the lock-step
 *                        merge-path bisection and score the probe rows,
 *                        all without materializing a trace;
 *   score_global_round - the same for global rounds, recovering each
 *                        scored block's A/B window by merge-path split
 *                        (which equals the stable-merge prefix count)
 *                        instead of scanning a materialized order array.
 *
 * The partition bisection needs no value loads at all: its comparator
 * values[a+mid] <= values[b+d-mid-1] is monotone in mid with threshold
 * s*(d) = mp_split(d) = the number of A elements among the first d merge
 * outputs - and the reconstruct pass samples exactly those prefix counts
 * at every E-th output for free. The replayed bisection then runs on
 * L1-resident integer state only, vectorized 8 lanes per step with
 * AVX-512 when the CPU supports it (runtime dispatch; scalar otherwise).
 * Probe-row broadcast dedup uses a byte generation stamp over the tile's
 * logical addresses, and bank histograms live in one cache line of byte
 * counters with an occupancy bitmask, so the whole scoring stage stays in
 * L1. Geometries with w > 64 banks take a generic (stamped, value-
 * comparing) fallback path.
 *
 * Bit-identity contract: per-step transaction sequences and the
 * access/request/replay counters must match the numpy vectorized path
 * exactly - row order is (tile, warp, step) for the merge stage and
 * (group, warp, step) with per-group trailing trim for the partition
 * stage, ties merge A-first, identical (step, address) read pairs
 * broadcast, and bank = physical(addr) & (w - 1) with Dotsenko padding
 * physical(a) = a + (a / w) * padding.
 */

#define PY_SSIZE_T_CLEAN
#define NPY_NO_DEPRECATED_API NPY_1_7_API_VERSION
#include <Python.h>
#include <numpy/arrayobject.h>
#include <stdlib.h>
#include <string.h>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define FUSED_CAN_AVX512 1
#include <immintrin.h>
#endif

static int fused_use_avx512 = 0; /* set once at module init */

static inline npy_int64
bank_of(npy_int64 addr, int w, int padding)
{
    if (padding)
        addr += (addr / w) * padding;
    return addr & (npy_int64)(w - 1);
}

static int
bit_length(npy_int64 x)
{
    int n = 0;
    while (x > 0) {
        n++;
        x >>= 1;
    }
    return n;
}

/* Stable (A-first) merge-path split: number of A elements among the first
 * `d` outputs of the stable merge of (A, B). Identical comparator to the
 * simulator's partition_many_with_trace, so duplicate keys split the same
 * way. */
static npy_int64
mp_split(const npy_int64 *A, const npy_int64 *B, npy_int64 alen,
         npy_int64 blen, npy_int64 d)
{
    npy_int64 lo = d - blen;
    npy_int64 hi = d < alen ? d : alen;
    if (lo < 0)
        lo = 0;
    while (lo < hi) {
        npy_int64 mid = (lo + hi) >> 1;
        if (A[mid] <= B[d - mid - 1])
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo;
}

/* -- merge-stage scoring --------------------------------------------------
 *
 * One tile's rank->address map is a permutation of the tile's cells, so
 * two lanes of one step can never collide on an address and broadcast
 * deduplication is a no-op: requests == accesses and the per-step replay
 * count is w - (occupied banks). per_step_out receives (b/w)*E entries in
 * (warp, step) order; *replays accumulates. */

/* Fast variant for w <= 64: one cache line of byte counters plus an
 * occupancy bitmask per step; the max degree updates incrementally. */
static void
score_permutation_fast(const npy_int64 *addr, int E, int b, int w,
                       int padding, npy_int64 *per_step_out,
                       npy_int64 *replays)
{
    int wpb = b / w;
    int chunk = w * E;
    int warp, j, k;
    unsigned char cnt[64];
    for (warp = 0; warp < wpb; warp++) {
        const npy_int64 *base = addr + (npy_intp)warp * chunk;
        for (j = 0; j < E; j++) {
            npy_uint64 occ = 0;
            npy_int64 mx = 0;
            memset(cnt, 0, (size_t)w);
            for (k = 0; k < w; k++) {
                npy_int64 bk = bank_of(base[(npy_intp)k * E + j], w, padding);
                npy_int64 c = ++cnt[bk];
                occ |= (npy_uint64)1 << bk;
                mx = c > mx ? c : mx;
            }
            per_step_out[(npy_intp)warp * E + j] = mx;
            *replays += w - __builtin_popcountll(occ);
        }
    }
}

/* Generic variant (any w): generation-stamped bank counts. */
static void
score_permutation_tile(const npy_int64 *addr, int E, int b, int w,
                       int padding, npy_int64 *bmark /* w stamp table */,
                       npy_int64 *bcnt /* w scratch */, npy_int64 *stamp,
                       npy_int64 *per_step_out, npy_int64 *replays)
{
    int wpb = b / w;
    int chunk = w * E;
    int warp, j, k;
    for (warp = 0; warp < wpb; warp++) {
        const npy_int64 *base = addr + (npy_intp)warp * chunk;
        for (j = 0; j < E; j++) {
            npy_int64 cur = ++(*stamp), mx = 0;
            int nz = 0;
            for (k = 0; k < w; k++) {
                npy_int64 bk = bank_of(base[(npy_intp)k * E + j], w, padding);
                npy_int64 c;
                if (bmark[bk] != cur) {
                    bmark[bk] = cur;
                    c = bcnt[bk] = 1;
                    nz++;
                }
                else
                    c = ++bcnt[bk];
                if (c > mx)
                    mx = c;
            }
            per_step_out[(npy_intp)warp * E + j] = mx;
            *replays += w - nz;
        }
    }
}

/* -- partition-stage scoring (fast path, w <= 64) -------------------------
 *
 * The bisection replay is value-free: lane t's comparator outcome at mid
 * is simply mid < sstar[t], where sstar[t] is the merge-path split of the
 * lane's diagonal, sampled during the reconstruct pass. Each iteration
 * emits the A-probe row then the B-probe row (-1 marks a converged lane)
 * and scores both immediately while they are L1-hot. Per-step results
 * land in ps_sw in [step][warp] order; the caller transposes into the
 * (warp, step) layout of the report. Returns rows (2 per iteration), or
 * -1 if maxiter would overflow. */

/* Score one probe row: broadcast dedup via a byte generation stamp over
 * tile-local addresses, bank counts in one line of byte counters with an
 * occupancy bitmask. */
static inline void
score_probe_row_fast(const npy_int64 *row, int b, int w, int padding,
                     unsigned char *stampb, unsigned char *scur,
                     npy_int64 tile, npy_int64 *ps_out /* wpb entries */,
                     npy_int64 *accesses, npy_int64 *requests,
                     npy_int64 *replays)
{
    int wpb = b / w;
    int warp, k;
    unsigned char cnt[64];
    for (warp = 0; warp < wpb; warp++) {
        const npy_int64 *lane = row + (npy_intp)warp * w;
        npy_int64 mx = 0, ns = 0, nact = 0;
        npy_uint64 occ = 0;
        unsigned char cs = (unsigned char)(*scur + 1);
        if (cs == 0) { /* stamp byte wrapped: reset the table */
            memset(stampb, 0, (size_t)tile);
            cs = 1;
        }
        *scur = cs;
        memset(cnt, 0, (size_t)w);
        for (k = 0; k < w; k++) {
            npy_int64 a = lane[k];
            npy_int64 bk, c;
            if (a < 0)
                continue;
            nact++;
            if (stampb[a] == cs)
                continue;
            stampb[a] = cs;
            ns++;
            bk = bank_of(a, w, padding);
            c = ++cnt[bk];
            occ |= (npy_uint64)1 << bk;
            mx = c > mx ? c : mx;
        }
        ps_out[warp] = mx;
        *accesses += nact;
        *requests += ns;
        *replays += ns - __builtin_popcountll(occ);
    }
}

/* Shared lo/hi initialisation: hi[] arrives preloaded with b_len. */
static void
partition_init(int b8, const npy_int64 *a_len, const npy_int64 *diag,
               npy_int64 *lo, npy_int64 *hi)
{
    int t;
    for (t = 0; t < b8; t++) {
        npy_int64 l = diag[t] - hi[t];
        npy_int64 h = diag[t] < a_len[t] ? diag[t] : a_len[t];
        if (l < 0)
            l = 0;
        lo[t] = l;
        hi[t] = h;
    }
}

static int
partition_rows_scalar(int b, int b8, int w, int padding,
                      const npy_int64 *a_len, const npy_int64 *sstar,
                      const npy_int64 *diag, const npy_int64 *ta,
                      const npy_int64 *tb, npy_int64 *lo, npy_int64 *hi,
                      npy_int64 *rowbuf /* 2*b8 */, unsigned char *stampb,
                      unsigned char *scur, npy_int64 tile,
                      npy_int64 *ps_sw /* [2*maxiter][wpb] */, int maxiter,
                      npy_int64 *accesses, npy_int64 *requests,
                      npy_int64 *replays)
{
    int wpb = b / w, t, it, rows = 0;
    partition_init(b8, a_len, diag, lo, hi);
    for (it = 0;; it++) {
        npy_int64 any = 0;
        npy_int64 *rowa = rowbuf, *rowb = rowbuf + b8;
        if (it >= maxiter)
            return -1;
        for (t = 0; t < b; t++) {
            npy_int64 l = lo[t], h = hi[t];
            npy_int64 act = l < h;
            npy_int64 mid = (l + h) >> 1;
            npy_int64 c = mid < sstar[t];
            rowa[t] = act ? ta[t] + mid : -1;
            rowb[t] = act ? tb[t] + diag[t] - mid - 1 : -1;
            lo[t] = (act & c) ? mid + 1 : l;
            hi[t] = ((act & ~c) & 1) ? mid : h;
            any |= act;
        }
        if (!any)
            break;
        score_probe_row_fast(rowa, b, w, padding, stampb, scur, tile,
                             ps_sw + (npy_intp)rows * wpb, accesses,
                             requests, replays);
        score_probe_row_fast(rowb, b, w, padding, stampb, scur, tile,
                             ps_sw + (npy_intp)(rows + 1) * wpb, accesses,
                             requests, replays);
        rows += 2;
    }
    return rows;
}

#ifdef FUSED_CAN_AVX512
__attribute__((target("avx512f")))
static int
partition_rows_avx512(int b, int b8, int w, int padding,
                      const npy_int64 *a_len, const npy_int64 *sstar,
                      const npy_int64 *diag, const npy_int64 *ta,
                      const npy_int64 *tb, npy_int64 *lo, npy_int64 *hi,
                      npy_int64 *rowbuf /* 2*b8 */, unsigned char *stampb,
                      unsigned char *scur, npy_int64 tile,
                      npy_int64 *ps_sw /* [2*maxiter][wpb] */, int maxiter,
                      npy_int64 *accesses, npy_int64 *requests,
                      npy_int64 *replays)
{
    int wpb = b / w, t, it, rows = 0;
    const __m512i m1 = _mm512_set1_epi64(-1);
    const __m512i one = _mm512_set1_epi64(1);
    partition_init(b8, a_len, diag, lo, hi);
    for (it = 0;; it++) {
        unsigned any = 0;
        npy_int64 *rowa = rowbuf, *rowb = rowbuf + b8;
        if (it >= maxiter)
            return -1;
        for (t = 0; t < b8; t += 8) {
            __m512i l = _mm512_loadu_si512(lo + t);
            __m512i h = _mm512_loadu_si512(hi + t);
            __mmask8 act = _mm512_cmplt_epi64_mask(l, h);
            __m512i mid = _mm512_srai_epi64(_mm512_add_epi64(l, h), 1);
            __m512i ss = _mm512_loadu_si512(sstar + t);
            __mmask8 c = _mm512_cmplt_epi64_mask(mid, ss);
            __m512i tav = _mm512_loadu_si512(ta + t);
            __m512i tbv = _mm512_loadu_si512(tb + t);
            __m512i dv = _mm512_loadu_si512(diag + t);
            __m512i ra = _mm512_mask_blend_epi64(
                act, m1, _mm512_add_epi64(tav, mid));
            __m512i rb = _mm512_mask_blend_epi64(
                act, m1,
                _mm512_sub_epi64(_mm512_add_epi64(tbv, dv),
                                 _mm512_add_epi64(mid, one)));
            _mm512_storeu_si512(rowa + t, ra);
            _mm512_storeu_si512(rowb + t, rb);
            l = _mm512_mask_add_epi64(l, (__mmask8)(act & c), mid, one);
            h = _mm512_mask_mov_epi64(h, (__mmask8)(act & (__mmask8)~c),
                                      mid);
            _mm512_storeu_si512(lo + t, l);
            _mm512_storeu_si512(hi + t, h);
            any |= act;
        }
        if (!any)
            break;
        score_probe_row_fast(rowa, b, w, padding, stampb, scur, tile,
                             ps_sw + (npy_intp)rows * wpb, accesses,
                             requests, replays);
        score_probe_row_fast(rowb, b, w, padding, stampb, scur, tile,
                             ps_sw + (npy_intp)(rows + 1) * wpb, accesses,
                             requests, replays);
        rows += 2;
    }
    return rows;
}
#endif /* FUSED_CAN_AVX512 */

static int
partition_rows_fast(int b, int b8, int w, int padding,
                    const npy_int64 *a_len, const npy_int64 *sstar,
                    const npy_int64 *diag, const npy_int64 *ta,
                    const npy_int64 *tb, npy_int64 *lo, npy_int64 *hi,
                    npy_int64 *rowbuf, unsigned char *stampb,
                    unsigned char *scur, npy_int64 tile, npy_int64 *ps_sw,
                    int maxiter, npy_int64 *accesses, npy_int64 *requests,
                    npy_int64 *replays)
{
#ifdef FUSED_CAN_AVX512
    if (fused_use_avx512)
        return partition_rows_avx512(b, b8, w, padding, a_len, sstar, diag,
                                     ta, tb, lo, hi, rowbuf, stampb, scur,
                                     tile, ps_sw, maxiter, accesses,
                                     requests, replays);
#endif
    return partition_rows_scalar(b, b8, w, padding, a_len, sstar, diag, ta,
                                 tb, lo, hi, rowbuf, stampb, scur, tile,
                                 ps_sw, maxiter, accesses, requests,
                                 replays);
}

/* -- partition-stage scoring (generic fallback, any w) -------------------- */

/* One thread block's lock-step merge-path bisection, recorded as dense
 * probe rows (two per iteration: the A probe then the B probe; -1 marks a
 * converged lane). Iterations run while any lane of the block is active,
 * which reproduces stack_group_warp_steps' per-group trailing trim.
 * Returns the number of rows recorded, or -1 if maxiter would overflow
 * (cannot happen for valid geometry; guarded anyway). */
static int
bisect_probe_rows(const npy_int64 *values, int b, const npy_int64 *a_base,
                  const npy_int64 *a_len, const npy_int64 *b_base,
                  const npy_int64 *diag, const npy_int64 *ta,
                  const npy_int64 *tb, npy_int64 *lo, npy_int64 *hi,
                  npy_int64 *probebuf, int maxiter)
{
    int t, it, rows = 0;
    partition_init(b, a_len, diag, lo, hi);
    for (it = 0;; it++) {
        int any = 0;
        npy_int64 *rowa, *rowb;
        if (it >= maxiter)
            return -1;
        rowa = probebuf + (npy_intp)rows * b;
        rowb = rowa + b;
        for (t = 0; t < b; t++) {
            if (lo[t] < hi[t]) {
                npy_int64 mid = (lo[t] + hi[t]) >> 1;
                npy_int64 bp = diag[t] - mid - 1;
                rowa[t] = ta[t] + mid;
                rowb[t] = tb[t] + bp;
                if (values[a_base[t] + mid] <= values[b_base[t] + bp])
                    lo[t] = mid + 1;
                else
                    hi[t] = mid;
                any = 1;
            }
            else {
                rowa[t] = -1;
                rowb[t] = -1;
            }
        }
        if (!any)
            break;
        rows += 2;
    }
    return rows;
}

/* Score the recorded probe rows of one block: per (warp, step), collapse
 * identical-address broadcasts, histogram banks, and emit the transaction
 * count. per_step_out receives (b/w)*rows entries in (warp, step) order.
 * Broadcast dedup is O(1) per access through `mark`, a generation-stamped
 * table over the tile's logical addresses (probe addresses are tile-local
 * by construction): an address is a duplicate iff its stamp equals the
 * current step's. Bank counts reuse the same trick over bmark/bcnt with
 * the max degree tracked incrementally. `*stamp` must be strictly
 * increasing across every call sharing one mark table; the caller clears
 * mark/bmark to -1 once per round. */
static void
score_probe_rows(const npy_int64 *probebuf, int rows, int b, int w,
                 int padding, npy_int64 *bmark /* w stamp table */,
                 npy_int64 *bcnt /* w scratch */,
                 npy_int64 *mark /* tile-sized stamp table */,
                 npy_int64 *stamp, npy_int64 *per_step_out,
                 npy_int64 *accesses, npy_int64 *requests,
                 npy_int64 *replays)
{
    int wpb = b / w;
    npy_intp out = 0;
    int warp, s, k;
    for (warp = 0; warp < wpb; warp++) {
        for (s = 0; s < rows; s++) {
            const npy_int64 *lane = probebuf + (npy_intp)s * b + warp * w;
            npy_int64 mx = 0, cur = ++(*stamp);
            int ns = 0, nact = 0, nzb = 0;
            for (k = 0; k < w; k++) {
                npy_int64 a = lane[k], bk, c;
                if (a < 0)
                    continue;
                nact++;
                if (mark[a] == cur)
                    continue;
                mark[a] = cur;
                ns++;
                bk = bank_of(a, w, padding);
                if (bmark[bk] != cur) {
                    bmark[bk] = cur;
                    c = bcnt[bk] = 1;
                    nzb++;
                }
                else
                    c = ++bcnt[bk];
                if (c > mx)
                    mx = c;
            }
            per_step_out[out++] = mx;
            *accesses += nact;
            *requests += ns;
            *replays += ns - nzb;
        }
    }
}

/* -- merge_pairs(mat, run) -> merged -------------------------------------- */

#ifdef FUSED_CAN_AVX512
/* Merge one [A | B] row with an 8-lane int64 bitonic merge network. The
 * merged *values* are tie-order-agnostic (sorting a multiset has a unique
 * result), so the network needs no stability — only the reconstruct pass
 * inside the round scorers retraces the stable A-first order, and it does
 * so independently. Each step merges the 8 retained largest with 8 fresh
 * keys from whichever stream's next unloaded head is smaller; every
 * element of the retained vector comes from a loaded prefix, hence is
 * <= that head, which makes the emitted low half the 8 globally smallest
 * remaining keys. The tail (and the last retained vector) drains through
 * a scalar 3-way merge. */
__attribute__((target("avx512f")))
static void
merge_row_avx512(const npy_int64 *A, const npy_int64 *B, npy_int64 run,
                 npy_int64 *out)
{
    const __m512i REV = _mm512_set_epi64(0, 1, 2, 3, 4, 5, 6, 7);
    const __m512i IDX4 = _mm512_set_epi64(3, 2, 1, 0, 7, 6, 5, 4);
    const __m512i IDX2 = _mm512_set_epi64(5, 4, 7, 6, 1, 0, 3, 2);
    const __m512i IDX1 = _mm512_set_epi64(6, 7, 4, 5, 2, 3, 0, 1);
    __m512i va = _mm512_loadu_si512(A);
    __m512i vb = _mm512_loadu_si512(B);
    npy_int64 i = 8, j = 8, T[8];
    int p;
    for (;;) {
        /* (va asc, vb asc) -> (vmn asc, vmx asc) over all 16 keys:
         * reverse one input, split with min/max, then run the 3-stage
         * bitonic cleaner (swap distances 4, 2, 1) on each half. */
        __m512i rb = _mm512_permutexvar_epi64(REV, vb);
        __m512i lo = _mm512_min_epi64(va, rb);
        __m512i hi = _mm512_max_epi64(va, rb);
        __m512i pr;
        pr = _mm512_permutexvar_epi64(IDX4, lo);
        lo = _mm512_mask_mov_epi64(_mm512_min_epi64(lo, pr), 0xF0,
                                   _mm512_max_epi64(lo, pr));
        pr = _mm512_permutexvar_epi64(IDX2, lo);
        lo = _mm512_mask_mov_epi64(_mm512_min_epi64(lo, pr), 0xCC,
                                   _mm512_max_epi64(lo, pr));
        pr = _mm512_permutexvar_epi64(IDX1, lo);
        lo = _mm512_mask_mov_epi64(_mm512_min_epi64(lo, pr), 0xAA,
                                   _mm512_max_epi64(lo, pr));
        pr = _mm512_permutexvar_epi64(IDX4, hi);
        hi = _mm512_mask_mov_epi64(_mm512_min_epi64(hi, pr), 0xF0,
                                   _mm512_max_epi64(hi, pr));
        pr = _mm512_permutexvar_epi64(IDX2, hi);
        hi = _mm512_mask_mov_epi64(_mm512_min_epi64(hi, pr), 0xCC,
                                   _mm512_max_epi64(hi, pr));
        pr = _mm512_permutexvar_epi64(IDX1, hi);
        hi = _mm512_mask_mov_epi64(_mm512_min_epi64(hi, pr), 0xAA,
                                   _mm512_max_epi64(hi, pr));
        _mm512_storeu_si512(out, lo);
        out += 8;
        if (i + 8 <= run && j + 8 <= run) {
            if (A[i] <= B[j]) {
                va = _mm512_loadu_si512(A + i);
                i += 8;
            }
            else {
                va = _mm512_loadu_si512(B + j);
                j += 8;
            }
            vb = hi;
        }
        else {
            _mm512_storeu_si512(T, hi);
            break;
        }
    }
    /* 3-way drain: T interleaves with both remainders (its keys are only
     * bounded by the loaded prefixes, not by the unloaded heads). */
    for (p = 0; p < 8;) {
        npy_int64 tv = T[p];
        if (i < run && A[i] <= tv && (j >= run || A[i] <= B[j]))
            *out++ = A[i++];
        else if (j < run && B[j] <= tv)
            *out++ = B[j++];
        else {
            *out++ = tv;
            p++;
        }
    }
    while (i < run && j < run) {
        npy_int64 av = A[i], bv = B[j];
        npy_int64 take_a = av <= bv;
        *out++ = take_a ? av : bv;
        i += take_a;
        j += 1 - take_a;
    }
    while (i < run)
        *out++ = A[i++];
    while (j < run)
        *out++ = B[j++];
}
#endif /* FUSED_CAN_AVX512 */

static PyObject *
merge_pairs(PyObject *self, PyObject *args)
{
    PyObject *mat_obj, *out_obj = Py_None;
    long long run_ll;
    PyArrayObject *mat = NULL, *out = NULL;
    npy_intp rows, width, r;
    npy_int64 run;
    const npy_int64 *src;
    npy_int64 *dst;

    if (!PyArg_ParseTuple(args, "OL|O", &mat_obj, &run_ll, &out_obj))
        return NULL;
    mat = (PyArrayObject *)PyArray_FROM_OTF(mat_obj, NPY_INT64,
                                            NPY_ARRAY_IN_ARRAY);
    if (mat == NULL)
        return NULL;
    if (PyArray_NDIM(mat) != 2) {
        PyErr_SetString(PyExc_ValueError, "mat must be 2-D (pairs, width)");
        goto fail;
    }
    rows = PyArray_DIM(mat, 0);
    width = PyArray_DIM(mat, 1);
    run = (npy_int64)run_ll;
    if (run < 1 || width != 2 * run) {
        PyErr_SetString(PyExc_ValueError, "mat width must equal 2*run");
        goto fail;
    }
    if (out_obj != Py_None) {
        /* Caller-provided destination (lets the sorter ping-pong two
         * round buffers instead of faulting in a fresh array per round).
         * Must already be exactly the right shape so writes land in the
         * caller's memory — no silent conversion copies. */
        if (!PyArray_Check(out_obj))
            goto badout;
        out = (PyArrayObject *)out_obj;
        if (PyArray_TYPE(out) != NPY_INT64 || PyArray_NDIM(out) != 2 ||
            PyArray_DIM(out, 0) != rows || PyArray_DIM(out, 1) != width ||
            !PyArray_ISCARRAY(out) || out == mat ||
            PyArray_DATA(out) == PyArray_DATA(mat)) {
        badout:
            out = NULL;
            PyErr_SetString(PyExc_ValueError,
                            "out must be a distinct C-contiguous writeable "
                            "int64 array with mat's shape");
            goto fail;
        }
        Py_INCREF(out);
    }
    else {
        out = (PyArrayObject *)PyArray_SimpleNew(2, PyArray_DIMS(mat),
                                                 NPY_INT64);
        if (out == NULL)
            goto fail;
    }
    src = (const npy_int64 *)PyArray_DATA(mat);
    dst = (npy_int64 *)PyArray_DATA(out);

    Py_BEGIN_ALLOW_THREADS
    for (r = 0; r < rows; r++) {
        const npy_int64 *A = src + r * width;
        const npy_int64 *B = A + run;
        npy_int64 *f = dst + r * width;
        npy_int64 *bk = f + width - 1;
        npy_int64 i = 0, j = 0, ia = run - 1, jb = run - 1, t;
#ifdef FUSED_CAN_AVX512
        if (fused_use_avx512 && run >= 64) {
            merge_row_avx512(A, B, run, f);
            continue;
        }
#endif
        /* Two independent chains hide the serial i/j dependency: the
         * forward chain emits the first run outputs of the stable merge,
         * the backward chain the last run (largest first, ties drain B
         * before A — the mirror of the A-first forward rule). Neither
         * chain can exhaust a side: before forward output t, i + j = t
         * < run bounds both pointers, and the backward chain mirrors
         * that. Picks are conditional moves since random keys make the
         * comparator a coin flip. */
        for (t = 0; t < run; t++) {
            npy_int64 av = A[i], bv = B[j];
            npy_int64 take_a = av <= bv;
            npy_int64 av2 = A[ia], bv2 = B[jb];
            npy_int64 take_b = av2 <= bv2;
            *f++ = take_a ? av : bv;
            i += take_a;
            j += 1 - take_a;
            *bk-- = take_b ? bv2 : av2;
            jb -= take_b;
            ia -= 1 - take_b;
        }
    }
    Py_END_ALLOW_THREADS

    Py_DECREF(mat);
    return (PyObject *)out;
fail:
    Py_XDECREF(mat);
    Py_XDECREF(out);
    return NULL;
}

/* -- shared scratch for the two round scorers ----------------------------- */

typedef struct {
    npy_int64 *addrbuf;    /* tile */
    npy_int64 *geom;       /* 6 arrays of b8: abase, alen, bbase, diag, ta, tb */
    npy_int64 *lo;         /* b8 */
    npy_int64 *hi;         /* b8 */
    npy_int64 *sstar;      /* b8 (merge-path splits per lane diagonal) */
    npy_int64 *rowbuf;     /* 2*b8 (fast path probe rows) */
    npy_int64 *ps_sw;      /* 2*maxiter*wpb ([step][warp] staging) */
    unsigned char *stampb; /* tile bytes (fast-path dedup stamp table) */
    npy_int64 *probebuf;   /* 2*maxiter*b (generic path) */
    npy_int64 *bmark;      /* w (generic path bank stamps) */
    npy_int64 *bcnt;       /* w */
    npy_int64 *mark;       /* tile (generic path dedup stamps) */
    npy_int64 *part_ps;    /* S * wpb * 2*maxiter */
    unsigned char scur;    /* current byte stamp */
} scratch_t;

static void
scratch_free(scratch_t *s)
{
    free(s->addrbuf);
    free(s->geom);
    free(s->lo);
    free(s->hi);
    free(s->sstar);
    free(s->rowbuf);
    free(s->ps_sw);
    free(s->stampb);
    free(s->probebuf);
    free(s->bmark);
    free(s->bcnt);
    free(s->mark);
    free(s->part_ps);
    memset(s, 0, sizeof(*s));
}

/* `fast` selects which path's tables get allocated and cleared. */
static int
scratch_alloc(scratch_t *s, npy_int64 tile, int E, int b, int b8, int w,
              int maxiter, npy_intp part_capacity, int fast)
{
    int wpb = b / w;
    memset(s, 0, sizeof(*s));
    s->addrbuf = malloc(sizeof(npy_int64) * (size_t)tile);
    s->geom = malloc(sizeof(npy_int64) * (size_t)(6 * b8));
    s->lo = malloc(sizeof(npy_int64) * (size_t)b8);
    s->hi = malloc(sizeof(npy_int64) * (size_t)b8);
    s->sstar = malloc(sizeof(npy_int64) * (size_t)b8);
    s->part_ps = malloc(sizeof(npy_int64) * (size_t)part_capacity);
    if (!s->addrbuf || !s->geom || !s->lo || !s->hi || !s->sstar ||
        !s->part_ps)
        goto nomem;
    if (fast) {
        s->rowbuf = malloc(sizeof(npy_int64) * (size_t)(2 * b8));
        s->ps_sw = malloc(sizeof(npy_int64) * (size_t)(2 * maxiter) * wpb);
        s->stampb = calloc((size_t)tile, 1);
        if (!s->rowbuf || !s->ps_sw || !s->stampb)
            goto nomem;
    }
    else {
        s->probebuf = malloc(sizeof(npy_int64) * (size_t)(2 * maxiter) * b);
        s->bmark = malloc(sizeof(npy_int64) * (size_t)w);
        s->bcnt = malloc(sizeof(npy_int64) * (size_t)w);
        s->mark = malloc(sizeof(npy_int64) * (size_t)tile);
        if (!s->probebuf || !s->bmark || !s->bcnt || !s->mark)
            goto nomem;
        /* stamp 0 never occurs (the scorers pre-increment), so -1 here
         * keeps every address and bank "unseen" for the whole round. */
        memset(s->mark, 0xff, sizeof(npy_int64) * (size_t)tile);
        memset(s->bmark, 0xff, sizeof(npy_int64) * (size_t)w);
    }
    return 0;
nomem:
    scratch_free(s);
    return -1;
}

/* Validate the shared arguments; returns 0 on success with arrays ready. */
static int
parse_round_args(PyObject *args, PyArrayObject **values_out,
                 PyArrayObject **scored_out, npy_int64 *run_out, int *E_out,
                 int *b_out, int *w_out, int *padding_out)
{
    PyObject *values_obj, *scored_obj;
    long long run_ll;
    int E, b, w, padding;
    PyArrayObject *values, *scored;

    if (!PyArg_ParseTuple(args, "OOLiiii", &values_obj, &scored_obj, &run_ll,
                          &E, &b, &w, &padding))
        return -1;
    values = (PyArrayObject *)PyArray_FROM_OTF(values_obj, NPY_INT64,
                                               NPY_ARRAY_IN_ARRAY);
    if (values == NULL)
        return -1;
    scored = (PyArrayObject *)PyArray_FROM_OTF(scored_obj, NPY_INT64,
                                               NPY_ARRAY_IN_ARRAY);
    if (scored == NULL) {
        Py_DECREF(values);
        return -1;
    }
    if (PyArray_NDIM(values) != 1 || PyArray_NDIM(scored) != 1) {
        PyErr_SetString(PyExc_ValueError,
                        "values and scored must be 1-D int64 arrays");
        goto fail;
    }
    if (run_ll < 1 || E < 1 || b < 1 || w < 1 || padding < 0 ||
        (w & (w - 1)) != 0 || b % w != 0) {
        PyErr_SetString(PyExc_ValueError,
                        "need run >= 1, E >= 1, w a power of two, b a "
                        "multiple of w, padding >= 0");
        goto fail;
    }
    *values_out = values;
    *scored_out = scored;
    *run_out = (npy_int64)run_ll;
    *E_out = E;
    *b_out = b;
    *w_out = w;
    *padding_out = padding;
    return 0;
fail:
    Py_DECREF(values);
    Py_DECREF(scored);
    return -1;
}

static PyObject *
build_round_result(npy_intp merge_steps, npy_int64 *merge_ps_heap,
                   npy_int64 m_acc, npy_int64 m_rep, npy_int64 *part_ps,
                   npy_intp part_len, npy_int64 p_acc, npy_int64 p_req,
                   npy_int64 p_rep)
{
    /* merge stage: addresses are a permutation, so requests == accesses */
    PyArrayObject *m_arr, *p_arr;
    npy_intp dims[1];
    dims[0] = merge_steps;
    m_arr = (PyArrayObject *)PyArray_SimpleNew(1, dims, NPY_INT64);
    if (m_arr == NULL)
        return NULL;
    memcpy(PyArray_DATA(m_arr), merge_ps_heap,
           sizeof(npy_int64) * (size_t)merge_steps);
    dims[0] = part_len;
    p_arr = (PyArrayObject *)PyArray_SimpleNew(1, dims, NPY_INT64);
    if (p_arr == NULL) {
        Py_DECREF(m_arr);
        return NULL;
    }
    memcpy(PyArray_DATA(p_arr), part_ps,
           sizeof(npy_int64) * (size_t)part_len);
    return Py_BuildValue("(NLLLNLLL)", m_arr, (long long)m_acc,
                         (long long)m_acc, (long long)m_rep, p_arr,
                         (long long)p_acc, (long long)p_req,
                         (long long)p_rep);
}

/* Transpose one group's [step][warp] staging block into the report's
 * (warp, step) order. */
static void
transpose_ps(const npy_int64 *ps_sw, int rows, int wpb, npy_int64 *out)
{
    int s, warp;
    for (warp = 0; warp < wpb; warp++)
        for (s = 0; s < rows; s++)
            out[(npy_intp)warp * rows + s] = ps_sw[(npy_intp)s * wpb + warp];
}

/* -- score_block_round(values, scored, run, E, b, w, padding) ------------- */

static PyObject *
score_block_round(PyObject *self, PyObject *args)
{
    PyArrayObject *values, *scored;
    npy_int64 run;
    int E, b, w, padding;
    npy_intp n, S, g;
    npy_int64 tile, pw, ppt, tiles;
    int wpb, b8, maxiter, fast, overflow = 0;
    const npy_int64 *v, *sc;
    npy_int64 *merge_ps = NULL;
    npy_intp merge_steps, part_len = 0, part_capacity;
    npy_int64 m_acc, m_rep = 0, p_acc = 0, p_req = 0, p_rep = 0, stamp = 0;
    scratch_t s = {0};
    PyObject *result = NULL;

    if (parse_round_args(args, &values, &scored, &run, &E, &b, &w, &padding))
        return NULL;
    n = PyArray_SIZE(values);
    S = PyArray_SIZE(scored);
    tile = (npy_int64)b * E;
    pw = 2 * run;
    wpb = b / w;
    b8 = (b + 7) & ~7;
    if (pw > tile || tile % pw != 0 || n % tile != 0 || run % E != 0) {
        PyErr_SetString(PyExc_ValueError,
                        "block round needs E dividing run, 2*run dividing "
                        "tile, and tile dividing the input size");
        goto done;
    }
    tiles = n / tile;
    ppt = tile / pw;
    v = (const npy_int64 *)PyArray_DATA(values);
    sc = (const npy_int64 *)PyArray_DATA(scored);
    for (g = 0; g < S; g++) {
        if (sc[g] < 0 || sc[g] >= tiles) {
            PyErr_SetString(PyExc_ValueError, "scored tile out of range");
            goto done;
        }
    }

    fast = w <= 64;
    maxiter = bit_length(run) + 2;
    merge_steps = S * wpb * E;
    part_capacity = S * (npy_intp)wpb * 2 * maxiter;
    if (part_capacity < 1)
        part_capacity = 1;
    merge_ps = malloc(sizeof(npy_int64) * (size_t)(merge_steps ? merge_steps : 1));
    if (merge_ps == NULL ||
        scratch_alloc(&s, tile, E, b, b8, w, maxiter, part_capacity, fast)) {
        PyErr_NoMemory();
        goto done;
    }
    m_acc = (npy_int64)S * tile;

    Py_BEGIN_ALLOW_THREADS
    for (g = 0; g < S && !overflow; g++) {
        npy_int64 gt = sc[g];
        npy_int64 p, t;
        int rows;
        npy_int64 *abase = s.geom, *alen = s.geom + b8,
                  *bbase = s.geom + 2 * b8, *diag = s.geom + 3 * b8,
                  *ta = s.geom + 4 * b8, *tb = s.geom + 5 * b8;
        /* merge interleaving: one bidirectional two-pointer merge per
         * pair, emitting tile-local source addresses (same two-chain /
         * cmov structure as merge_pairs, in-bounds for the same reason)
         * while sampling the A-prefix count at every E-th output — the
         * merge-path split values the bisection replay consumes. */
        for (p = 0; p < ppt; p++) {
            const npy_int64 *A = v + (gt * ppt + p) * pw;
            const npy_int64 *B = A + run;
            npy_int64 lbase = p * pw;
            npy_int64 *f = s.addrbuf + lbase;
            npy_int64 *bkp = f + pw - 1;
            npy_int64 *sf = s.sstar + p * (pw / E);
            npy_int64 *sb = sf + pw / E - 1;
            npy_int64 i = 0, j = 0, ia = run - 1, jb = run - 1, q;
            int se = 0, be = E - 1;
            for (q = 0; q < run; q++) {
                npy_int64 take_a, take_b;
                if (se == 0) {
                    *sf++ = i;
                    se = E;
                }
                se--;
                take_a = A[i] <= B[j];
                take_b = A[ia] <= B[jb];
                *f++ = take_a ? lbase + i : lbase + run + j;
                i += take_a;
                j += 1 - take_a;
                *bkp-- = take_b ? lbase + run + jb : lbase + ia;
                jb -= take_b;
                ia -= 1 - take_b;
                if (be == 0) {
                    *sb-- = ia + 1;
                    be = E;
                }
                be--;
            }
        }
        if (fast)
            score_permutation_fast(s.addrbuf, E, b, w, padding,
                                   merge_ps + g * (npy_intp)wpb * E,
                                   &m_rep);
        else
            score_permutation_tile(s.addrbuf, E, b, w, padding, s.bmark,
                                   s.bcnt, &stamp,
                                   merge_ps + g * (npy_intp)wpb * E,
                                   &m_rep);

        /* partition stage: thread t bisects diagonal tE mod 2L of pair
         * tE / 2L, probing tile-local addresses */
        for (t = 0; t < b; t++) {
            npy_int64 tr = t * E;
            npy_int64 pr = tr / pw;
            abase[t] = (gt * ppt + pr) * pw;
            alen[t] = run;
            bbase[t] = abase[t] + run;
            diag[t] = tr % pw;
            ta[t] = pr * pw;
            tb[t] = ta[t] + run;
            s.hi[t] = run; /* b_len, consumed by partition_init */
        }
        for (t = b; t < b8; t++) { /* inert AVX padding lanes */
            abase[t] = alen[t] = bbase[t] = diag[t] = ta[t] = tb[t] = 0;
            s.sstar[t] = 0;
            s.hi[t] = 0;
        }
        if (fast) {
            rows = partition_rows_fast(b, b8, w, padding, alen, s.sstar,
                                       diag, ta, tb, s.lo, s.hi, s.rowbuf,
                                       s.stampb, &s.scur, tile, s.ps_sw,
                                       maxiter, &p_acc, &p_req, &p_rep);
            if (rows >= 0)
                transpose_ps(s.ps_sw, rows, wpb, s.part_ps + part_len);
        }
        else {
            rows = bisect_probe_rows(v, b, abase, alen, bbase, diag, ta, tb,
                                     s.lo, s.hi, s.probebuf, maxiter);
            if (rows >= 0)
                score_probe_rows(s.probebuf, rows, b, w, padding, s.bmark,
                                 s.bcnt, s.mark, &stamp,
                                 s.part_ps + part_len, &p_acc, &p_req,
                                 &p_rep);
        }
        if (rows < 0) {
            overflow = 1;
            break;
        }
        part_len += (npy_intp)wpb * rows;
    }
    Py_END_ALLOW_THREADS

    if (overflow) {
        PyErr_SetString(PyExc_RuntimeError,
                        "partition bisection exceeded its iteration bound");
        goto done;
    }
    result = build_round_result(merge_steps, merge_ps, m_acc, m_rep,
                                s.part_ps, part_len, p_acc, p_req, p_rep);
done:
    free(merge_ps);
    scratch_free(&s);
    Py_DECREF(values);
    Py_DECREF(scored);
    return result;
}

/* -- score_global_round(values, scored, run, E, b, w, padding) ------------ */

static PyObject *
score_global_round(PyObject *self, PyObject *args)
{
    PyArrayObject *values, *scored;
    npy_int64 run;
    int E, b, w, padding;
    npy_intp n, S, g;
    npy_int64 tile, pw, bpp, num_pairs, blocks_total;
    int wpb, b8, maxiter, fast, overflow = 0;
    const npy_int64 *v, *sc;
    npy_int64 *merge_ps = NULL;
    npy_intp merge_steps, part_len = 0, part_capacity;
    npy_int64 m_acc, m_rep = 0, p_acc = 0, p_req = 0, p_rep = 0, stamp = 0;
    scratch_t s = {0};
    PyObject *result = NULL;

    if (parse_round_args(args, &values, &scored, &run, &E, &b, &w, &padding))
        return NULL;
    n = PyArray_SIZE(values);
    S = PyArray_SIZE(scored);
    tile = (npy_int64)b * E;
    pw = 2 * run;
    wpb = b / w;
    b8 = (b + 7) & ~7;
    if (pw <= tile || pw % tile != 0 || n % pw != 0) {
        PyErr_SetString(PyExc_ValueError,
                        "global round needs tile dividing 2*run and 2*run "
                        "dividing the input size");
        goto done;
    }
    num_pairs = n / pw;
    bpp = pw / tile;
    blocks_total = num_pairs * bpp;
    v = (const npy_int64 *)PyArray_DATA(values);
    sc = (const npy_int64 *)PyArray_DATA(scored);
    for (g = 0; g < S; g++) {
        if (sc[g] < 0 || sc[g] >= blocks_total) {
            PyErr_SetString(PyExc_ValueError, "scored block out of range");
            goto done;
        }
    }

    fast = w <= 64;
    maxiter = bit_length(tile) + 2;
    merge_steps = S * wpb * E;
    part_capacity = S * (npy_intp)wpb * 2 * maxiter;
    if (part_capacity < 1)
        part_capacity = 1;
    merge_ps = malloc(sizeof(npy_int64) * (size_t)(merge_steps ? merge_steps : 1));
    if (merge_ps == NULL ||
        scratch_alloc(&s, tile, E, b, b8, w, maxiter, part_capacity, fast)) {
        PyErr_NoMemory();
        goto done;
    }
    m_acc = (npy_int64)S * tile;

    Py_BEGIN_ALLOW_THREADS
    for (g = 0; g < S && !overflow; g++) {
        npy_int64 blk = sc[g];
        npy_int64 pair = blk / bpp;
        npy_int64 x = blk % bpp;
        npy_int64 r_lo = x * tile;
        const npy_int64 *A = v + pair * pw;
        const npy_int64 *B = A + run;
        npy_int64 i0 = mp_split(A, B, run, run, r_lo);
        npy_int64 i1 = mp_split(A, B, run, run, r_lo + tile);
        npy_int64 na = i1 - i0;
        npy_int64 j0 = r_lo - i0;
        npy_int64 i = i0, j = j0, t;
        npy_int64 ia = i1 - 1, jb = j0 + (tile - na) - 1;
        npy_int64 bh = tile / 2, q;
        npy_int64 *f = s.addrbuf, *bkp = s.addrbuf + tile - 1;
        npy_int64 *sf = s.sstar, *sb = s.sstar + b - 1;
        int se = 0, be = E - 1;
        int rows;
        npy_int64 *abase = s.geom, *alen = s.geom + b8,
                  *bbase = s.geom + 2 * b8, *diag = s.geom + 3 * b8,
                  *ta = s.geom + 4 * b8, *tb = s.geom + 5 * b8;
        /* local interleaving: retrace the stable merge across the block's
         * window from both ends at once (the merge path is unique, so the
         * two chains meet consistently), sampling the window-local
         * A-prefix count at every E-th output. Block layout: A window at
         * [0, na), B window at [na, tile). Unlike the block round the
         * windows are unequal, so a chain can exhaust one side mid-way:
         * guard with bitwise flags to keep the picks branchless. */
        for (q = 0; q < bh; q++) {
            int ok_a, ok_b, ok_a2, ok_b2;
            npy_int64 av, bv, av2, bv2, from_a, from_b;
            if (se == 0) {
                *sf++ = i - i0;
                se = E;
            }
            se--;
            ok_a = i < run;
            ok_b = j < run;
            av = ok_a ? A[i] : 0;
            bv = ok_b ? B[j] : 0;
            from_a = ok_a & ((ok_b ^ 1) | (av <= bv));
            ok_a2 = ia >= 0;
            ok_b2 = jb >= 0;
            av2 = ok_a2 ? A[ia] : 0;
            bv2 = ok_b2 ? B[jb] : 0;
            from_b = ok_b2 & ((ok_a2 ^ 1) | (av2 <= bv2));
            *f++ = from_a ? i - i0 : na + (j - j0);
            i += from_a;
            j += 1 - from_a;
            *bkp-- = from_b ? na + (jb - j0) : ia - i0;
            jb -= from_b;
            ia -= 1 - from_b;
            if (be == 0) {
                *sb-- = ia + 1 - i0;
                be = E;
            }
            be--;
        }
        if (tile & 1) { /* odd tile: one extra forward step */
            int ok_a = i < run, ok_b = j < run;
            npy_int64 av = ok_a ? A[i] : 0, bv = ok_b ? B[j] : 0;
            npy_int64 from_a = ok_a & ((ok_b ^ 1) | (av <= bv));
            if (se == 0)
                *sf = i - i0;
            *f = from_a ? i - i0 : na + (j - j0);
        }
        if (fast)
            score_permutation_fast(s.addrbuf, E, b, w, padding,
                                   merge_ps + g * (npy_intp)wpb * E,
                                   &m_rep);
        else
            score_permutation_tile(s.addrbuf, E, b, w, padding, s.bmark,
                                   s.bcnt, &stamp,
                                   merge_ps + g * (npy_intp)wpb * E,
                                   &m_rep);

        for (t = 0; t < b; t++) {
            abase[t] = pair * pw + i0;
            alen[t] = na;
            bbase[t] = pair * pw + run + j0;
            diag[t] = t * E;
            ta[t] = 0;
            tb[t] = na;
            s.hi[t] = tile - na; /* b_len, consumed by partition_init */
        }
        for (t = b; t < b8; t++) { /* inert AVX padding lanes */
            abase[t] = alen[t] = bbase[t] = diag[t] = ta[t] = tb[t] = 0;
            s.sstar[t] = 0;
            s.hi[t] = 0;
        }
        if (fast) {
            rows = partition_rows_fast(b, b8, w, padding, alen, s.sstar,
                                       diag, ta, tb, s.lo, s.hi, s.rowbuf,
                                       s.stampb, &s.scur, tile, s.ps_sw,
                                       maxiter, &p_acc, &p_req, &p_rep);
            if (rows >= 0)
                transpose_ps(s.ps_sw, rows, wpb, s.part_ps + part_len);
        }
        else {
            rows = bisect_probe_rows(v, b, abase, alen, bbase, diag, ta, tb,
                                     s.lo, s.hi, s.probebuf, maxiter);
            if (rows >= 0)
                score_probe_rows(s.probebuf, rows, b, w, padding, s.bmark,
                                 s.bcnt, s.mark, &stamp,
                                 s.part_ps + part_len, &p_acc, &p_req,
                                 &p_rep);
        }
        if (rows < 0) {
            overflow = 1;
            break;
        }
        part_len += (npy_intp)wpb * rows;
    }
    Py_END_ALLOW_THREADS

    if (overflow) {
        PyErr_SetString(PyExc_RuntimeError,
                        "partition bisection exceeded its iteration bound");
        goto done;
    }
    result = build_round_result(merge_steps, merge_ps, m_acc, m_rep,
                                s.part_ps, part_len, p_acc, p_req, p_rep);
done:
    free(merge_ps);
    scratch_free(&s);
    Py_DECREF(values);
    Py_DECREF(scored);
    return result;
}

static PyMethodDef fused_methods[] = {
    {"merge_pairs", merge_pairs, METH_VARARGS,
     "merge_pairs(mat, run[, out]) -> merged\n\n"
     "Row-wise stable (A-first) merge of [A | B] rows; equals\n"
     "np.take_along_axis(mat, np.argsort(mat, axis=1, kind='stable'), 1).\n"
     "With out given (distinct, same-shape, C-contiguous int64), the\n"
     "merge writes there instead of allocating."},
    {"score_block_round", score_block_round, METH_VARARGS,
     "score_block_round(values, scored, run, E, b, w, padding) ->\n"
     "(merge_per_step, m_accesses, m_requests, m_replays,\n"
     " part_per_step, p_accesses, p_requests, p_replays)"},
    {"score_global_round", score_global_round, METH_VARARGS,
     "score_global_round(values, scored, run, E, b, w, padding) ->\n"
     "(merge_per_step, m_accesses, m_requests, m_replays,\n"
     " part_per_step, p_accesses, p_requests, p_replays)"},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef fused_module = {
    PyModuleDef_HEAD_INIT,
    "repro._fused_native",
    "Compiled fused round-scoring kernels (optional; numpy fallback in\n"
    "repro.dmm.fused / repro.mergepath.fused).",
    -1,
    fused_methods,
};

PyMODINIT_FUNC
PyInit__fused_native(void)
{
    PyObject *m;
    import_array();
#ifdef FUSED_CAN_AVX512
    fused_use_avx512 = __builtin_cpu_supports("avx512f");
#endif
    m = PyModule_Create(&fused_module);
    if (m == NULL)
        return NULL;
    return m;
}
