"""The paper's core contribution: constructive worst-case inputs.

For every ``E < w`` co-prime with the warp width ``w``, this package builds
an input permutation on which every warp of the pairwise merge sort
serializes its shared-memory merging accesses down to ``⌈w/E⌉`` effective
threads (paper Theorems 3 and 9):

* :mod:`repro.adversary.sequences` — the modular sequences ``x_i``/``y_i``,
  ``S``, and ``T`` of Section III-B;
* :mod:`repro.adversary.assignment` — the per-warp assignment abstraction
  (how many elements of each list every thread merges, and in which order);
* :mod:`repro.adversary.small_e` — the ``E < w/2`` construction (Theorem 3);
* :mod:`repro.adversary.large_e` — the ``w/2 < E < w`` construction
  (Theorem 9);
* :mod:`repro.adversary.power2` — the ``GCD(w, E) = E`` case, where sorted
  order is already worst-case, and the general-``d`` analysis (Figure 1);
* :mod:`repro.adversary.interleave` — warp → block → round interleavings;
* :mod:`repro.adversary.permutation` — the top-down un-merge that turns
  per-round interleavings into the actual ``N``-element input;
* :mod:`repro.adversary.family` — permutation *families* (Conclusion §2);
* :mod:`repro.adversary.theory` — closed-form predictions (aligned counts,
  Lemma 1, effective parallelism, the ``A_g``/``A_s`` formulas);
* :mod:`repro.adversary.metrics` — measuring alignment on simulated traces.
"""

from repro.adversary.assignment import WarpAssignment, construct_warp_assignment
from repro.adversary.interleave import block_interleave, round_interleave, warp_interleave
from repro.adversary.large_e import large_e_assignment
from repro.adversary.metrics import measured_aligned_count
from repro.adversary.permutation import worst_case_permutation
from repro.adversary.power2 import power_of_two_assignment, sorted_aligned_count
from repro.adversary.sequences import sequence_s, sequence_t, xy_sequences
from repro.adversary.multiway_adversary import (
    multiway_small_e_assignment,
    multiway_worst_case_permutation,
)
from repro.adversary.small_e import small_e_assignment
from repro.adversary.verify import VerificationReport, verify_worst_case
from repro.adversary.theory import (
    aligned_elements,
    effective_threads,
    lemma1_bound,
    predicted_warp_transactions,
)

__all__ = [
    "VerificationReport",
    "WarpAssignment",
    "aligned_elements",
    "block_interleave",
    "construct_warp_assignment",
    "effective_threads",
    "large_e_assignment",
    "lemma1_bound",
    "measured_aligned_count",
    "multiway_small_e_assignment",
    "multiway_worst_case_permutation",
    "power_of_two_assignment",
    "predicted_warp_transactions",
    "round_interleave",
    "sequence_s",
    "sequence_t",
    "small_e_assignment",
    "sorted_aligned_count",
    "verify_worst_case",
    "warp_interleave",
    "worst_case_permutation",
    "xy_sequences",
]
