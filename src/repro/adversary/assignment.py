"""Per-warp assignments: the bridge from proofs to permutations.

A *warp assignment* records, for each of the ``w`` threads of one warp
merging lists ``A`` and ``B``:

* ``(a_i, b_i)`` — how many of its ``E`` elements come from each list
  (``a_i + b_i = E``), and
* whether it scans its ``A`` chunk or its ``B`` chunk first
  (each thread scans one list then the other — Section III's
  "General Strategy").

Because threads consume both lists in order, an assignment fully determines
the warp's merge **interleaving** (the ``{A, B}``-string over its ``wE``
output ranks), and therefore — given that the warp's ``A`` and ``B`` slices
both start at bank 0 — the exact shared-memory bank every element is read
from at every lock-step iteration. That is everything the conflict analysis
needs, and everything the input generator needs.

The read-order bits are chosen per thread to maximize that thread's aligned
accesses (alignment is a per-thread property once the tuples are fixed, so
the greedy choice is optimal for a given tuple sequence); tests verify the
resulting totals match Theorems 3 and 9 exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConstructionError, ValidationError
from repro.utils.validation import check_positive_int, check_power_of_two

__all__ = ["WarpAssignment", "construct_warp_assignment"]


@dataclass(frozen=True)
class WarpAssignment:
    """One warp's thread-to-list assignment for a pairwise merge.

    Attributes
    ----------
    warp_size:
        Threads per warp ``w`` (= banks).
    elements_per_thread:
        The paper's ``E``.
    tuples:
        ``w`` pairs ``(a_i, b_i)`` with ``a_i + b_i = E``.
    a_first:
        ``w`` booleans: whether thread ``i`` scans its ``A`` chunk first.
    target_bank:
        The start bank ``s`` of the ``E`` consecutive banks the construction
        aligns to (0 for small ``E``, ``r`` for large ``E``); recorded for
        rendering and verification.
    """

    warp_size: int
    elements_per_thread: int
    tuples: tuple[tuple[int, int], ...]
    a_first: tuple[bool, ...]
    target_bank: int = 0

    def __post_init__(self) -> None:
        w = check_power_of_two(self.warp_size, "warp_size")
        e = check_positive_int(self.elements_per_thread, "elements_per_thread")
        if len(self.tuples) != w:
            raise ValidationError(
                f"expected {w} thread tuples, got {len(self.tuples)}"
            )
        if len(self.a_first) != w:
            raise ValidationError(
                f"expected {w} read-order flags, got {len(self.a_first)}"
            )
        for i, (a, b) in enumerate(self.tuples):
            if a < 0 or b < 0 or a + b != e:
                raise ValidationError(
                    f"thread {i} tuple ({a}, {b}) must be nonnegative and "
                    f"sum to E={e}"
                )
        if not 0 <= self.target_bank < w:
            raise ValidationError(
                f"target_bank must be in [0, {w}), got {self.target_bank}"
            )

    # -- sizes -------------------------------------------------------------

    @property
    def w(self) -> int:  # noqa: N802 - paper notation
        """Warp width."""
        return self.warp_size

    @property
    def e(self) -> int:
        """Elements per thread."""
        return self.elements_per_thread

    @property
    def num_a(self) -> int:
        """Warp total taken from the ``A`` list."""
        return sum(a for a, _ in self.tuples)

    @property
    def num_b(self) -> int:
        """Warp total taken from the ``B`` list."""
        return sum(b for _, b in self.tuples)

    # -- derived structure ---------------------------------------------------

    def interleaving(self) -> np.ndarray:
        """The warp's merge interleaving (length ``wE``; ``True`` = from A)."""
        out = np.empty(self.w * self.e, dtype=bool)
        pos = 0
        for (a, b), first_a in zip(self.tuples, self.a_first):
            if first_a:
                out[pos : pos + a] = True
                out[pos + a : pos + a + b] = False
            else:
                out[pos : pos + b] = False
                out[pos + b : pos + b + a] = True
            pos += self.e
        return out

    def step_banks(self) -> np.ndarray:
        """Bank accessed by each thread at each merge step.

        Returns an ``(E, w)`` matrix: entry ``(j, i)`` is the bank thread
        ``i`` touches at lock-step iteration ``j``, assuming the warp's
        ``A`` and ``B`` slices both start at bank 0 (the layout the
        construction engineers, see DESIGN.md §4).
        """
        banks = np.empty((self.e, self.w), dtype=np.int64)
        cum_a = 0
        cum_b = 0
        for i, ((a, b), first_a) in enumerate(zip(self.tuples, self.a_first)):
            a_banks = (cum_a + np.arange(a)) % self.w
            b_banks = (cum_b + np.arange(b)) % self.w
            seq = (
                np.concatenate([a_banks, b_banks])
                if first_a
                else np.concatenate([b_banks, a_banks])
            )
            banks[:, i] = seq
            cum_a += a
            cum_b += b
        return banks

    def aligned_count(self, target_bank: int | None = None) -> int:
        """Number of aligned accesses: step ``j`` touching bank ``s + j``.

        Uses :attr:`target_bank` unless overridden. This is the paper's
        "aligned elements" metric, computed directly from the assignment
        (independently of the trace-based measurement in
        :mod:`repro.adversary.metrics`, which tests cross-check it against).
        """
        s = self.target_bank if target_bank is None else target_bank
        banks = self.step_banks()
        steps = (np.arange(self.e, dtype=np.int64) + s) % self.w
        return int((banks == steps[:, None]).sum())

    def best_aligned_count(self) -> tuple[int, int]:
        """``(count, s)`` maximizing alignment over all start banks ``s``."""
        best = (-1, 0)
        for s in range(self.w):
            count = self.aligned_count(s)
            if count > best[0]:
                best = (count, s)
        return best

    def mirrored(self) -> "WarpAssignment":
        """The symmetric assignment with ``A`` and ``B`` swapped.

        The construction assigns warps in the set ``L`` the original
        assignment and warps in ``R`` the mirrored one, so each thread
        block consumes ``bE/2`` elements from each list.
        """
        return WarpAssignment(
            warp_size=self.w,
            elements_per_thread=self.e,
            tuples=tuple((b, a) for a, b in self.tuples),
            a_first=tuple(not f for f in self.a_first),
            target_bank=self.target_bank,
        )

    def bank_matrix(self) -> tuple[np.ndarray, np.ndarray]:
        """Figure 1/3-style rendering data.

        Returns two ``(w, columns)`` matrices — one for the warp's ``A``
        slice, one for ``B`` — whose entries are the *thread id* that reads
        each element (−1 for cells past the end of the list). Row ``i`` is
        bank ``i``, matching the figures in the paper.
        """
        return (
            _owner_matrix(self.w, [a for a, _ in self.tuples]),
            _owner_matrix(self.w, [b for _, b in self.tuples]),
        )


def _owner_matrix(w: int, counts: list[int]) -> np.ndarray:
    """Bank-major matrix of thread ownership for one list."""
    total = sum(counts)
    owners = np.repeat(np.arange(len(counts), dtype=np.int64), counts)
    cols = -(-total // w) if total else 0
    grid = np.full(cols * w, -1, dtype=np.int64)
    grid[:total] = owners
    return grid.reshape(cols, w).T


def greedy_read_order(
    w: int, e: int, tuples: list[tuple[int, int]], target_bank: int
) -> tuple[bool, ...]:
    """Choose each thread's scan order to maximize its aligned accesses.

    Alignment of a thread's accesses depends only on its own chunk
    positions (fixed by the cumulative tuple sums) and its read order, so
    per-thread greedy choice is globally optimal for the given tuples.
    Ties prefer scanning ``A`` first.
    """
    flags: list[bool] = []
    cum_a = 0
    cum_b = 0
    for a, b in tuples:
        a_banks = (cum_a + np.arange(a)) % w
        b_banks = (cum_b + np.arange(b)) % w
        # A first: A chunk at steps 0..a−1, B at steps a..E−1.
        steps_first = (np.arange(a) + target_bank) % w
        steps_second = (np.arange(a, a + b) + target_bank) % w
        score_a_first = int((a_banks == steps_first).sum()) + int(
            (b_banks == steps_second).sum()
        )
        steps_first_b = (np.arange(b) + target_bank) % w
        steps_second_b = (np.arange(b, b + a) + target_bank) % w
        score_b_first = int((b_banks == steps_first_b).sum()) + int(
            (a_banks == steps_second_b).sum()
        )
        flags.append(score_a_first >= score_b_first)
        cum_a += a
        cum_b += b
    return tuple(flags)


def construct_warp_assignment(w: int, e: int) -> WarpAssignment:
    """Dispatch to the right construction for ``(w, E)``.

    * ``GCD(w, E) = E`` (``E`` a power of two ≤ ``w``) → sorted order is
      worst-case (:mod:`repro.adversary.power2`);
    * ``GCD(w, E) = 1``, ``E < w/2`` → Theorem 3
      (:mod:`repro.adversary.small_e`);
    * ``GCD(w, E) = 1``, ``w/2 < E < w`` → Theorem 9
      (:mod:`repro.adversary.large_e`).

    Raises
    ------
    ConstructionError
        For ``E ≥ w`` or ``1 < GCD(w, E) < E``, which the paper's theorems
        do not cover (callers can fall back to sorted order, whose partial
        alignment :func:`repro.adversary.power2.sorted_aligned_count`
        quantifies).
    """
    w = check_power_of_two(w, "w")
    e = check_positive_int(e, "E")
    from repro.adversary.large_e import large_e_assignment
    from repro.adversary.power2 import power_of_two_assignment
    from repro.adversary.small_e import small_e_assignment

    d = math.gcd(w, e)
    if d == e and 1 < e <= w:
        return power_of_two_assignment(w, e)
    if d != 1:
        raise ConstructionError(
            f"no exact construction for GCD(w={w}, E={e}) = {d}; the paper "
            f"covers GCD 1 (Theorems 3/9) and GCD = E (sorted order)"
        )
    if e >= w:
        raise ConstructionError(
            f"the construction requires E < w, got E={e}, w={w}"
        )
    if e < w // 2:
        return small_e_assignment(w, e)
    return large_e_assignment(w, e)
