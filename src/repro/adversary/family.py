"""Permutation families (paper Conclusion, items 2–3).

The constructed input is one permutation, but the construction is robust:

* **filler freedom** — the non-aligned (safe-bank) elements can be read by
  their threads in any within-thread order without changing the aligned
  count; each filler thread with ``a`` A-elements and ``b`` B-elements
  admits ``C(a+b, a)`` interleavings, so the family is combinatorially
  large (:func:`family_size_log2` quantifies it);
* **relaxation** — swapping a few scan threads back to benign fillers
  trades aligned accesses for "distance" from the canonical permutation,
  giving near-worst-case inputs (:func:`relaxed_assignment`).

Both are implemented as transformations of a
:class:`~repro.adversary.assignment.WarpAssignment`, so everything
downstream (interleaving, permutation, simulation) applies unchanged.
"""

from __future__ import annotations

import math

import numpy as np

from repro.adversary.assignment import WarpAssignment
from repro.errors import ValidationError
from repro.utils.rng import as_generator

__all__ = [
    "family_size_log2",
    "random_family_member",
    "relaxed_assignment",
]


def family_size_log2(assignment: WarpAssignment) -> float:
    """log₂ of the number of same-aligned-count warp variants.

    Counts the within-thread interleaving freedom of every *mixed* thread
    (one that takes from both lists): a thread whose chosen-order score has
    no aligned accesses in its second chunk can interleave its two chunks
    arbitrarily — ``C(a+b, a)`` ways. Scan threads (single-list) contribute
    no freedom. This is a lower bound on the family size (it ignores
    cross-warp freedoms).
    """
    total = 0.0
    for a, b in assignment.tuples:
        if a and b:
            total += math.log2(math.comb(a + b, a))
    return total


def random_family_member(
    assignment: WarpAssignment, seed=None
) -> WarpAssignment:
    """A random member of the permutation family.

    Keeps every thread's ``(a_i, b_i)`` tuple and the scan threads' order,
    but re-randomizes the *read order bit* of mixed threads whose aligned
    count is order-insensitive (both orders score equally). The aligned
    count is preserved by construction — tests assert it.
    """
    rng = as_generator(seed)
    flags = list(assignment.a_first)
    base = assignment.aligned_count()
    for i, (a, b) in enumerate(assignment.tuples):
        if not (a and b):
            continue
        flipped = flags.copy()
        flipped[i] = not flipped[i]
        candidate = WarpAssignment(
            warp_size=assignment.warp_size,
            elements_per_thread=assignment.elements_per_thread,
            tuples=assignment.tuples,
            a_first=tuple(flipped),
            target_bank=assignment.target_bank,
        )
        if candidate.aligned_count() == base and rng.random() < 0.5:
            flags[i] = not flags[i]
    return WarpAssignment(
        warp_size=assignment.warp_size,
        elements_per_thread=assignment.elements_per_thread,
        tuples=assignment.tuples,
        a_first=tuple(flags),
        target_bank=assignment.target_bank,
    )


def relaxed_assignment(
    assignment: WarpAssignment, relax_fraction: float, seed=None
) -> WarpAssignment:
    """Trade aligned accesses for benignity (Conclusion item 3).

    Swaps a ``relax_fraction`` of the alignment-contributing threads'
    tuples with their successor's tuple. The swap shifts the cumulative
    list offsets the contributor's scan relied on, pushing its column off
    the lock-step schedule while preserving the warp's totals (the result
    is still a valid assignment of the same list sizes). The result
    interpolates between the worst case (fraction 0) and a mostly benign
    input (fraction 1); the ablation bench sweeps this knob against
    simulated slowdown.
    """
    if not 0.0 <= relax_fraction <= 1.0:
        raise ValidationError(
            f"relax_fraction must be in [0, 1], got {relax_fraction}"
        )
    rng = as_generator(seed)
    w = assignment.warp_size
    tuples = list(assignment.tuples)
    contributors = [
        i
        for i in range(w - 1)
        if _thread_aligned(assignment, i) > 0
        and assignment.tuples[i] != assignment.tuples[i + 1]
    ]
    k = int(round(relax_fraction * len(contributors)))
    if k and contributors:
        chosen = rng.choice(
            len(contributors), size=min(k, len(contributors)), replace=False
        )
        for idx in np.asarray(chosen).ravel():
            i = contributors[int(idx)]
            tuples[i], tuples[i + 1] = tuples[i + 1], tuples[i]
    from repro.adversary.assignment import greedy_read_order

    new_tuples = tuple(tuples)
    return WarpAssignment(
        warp_size=w,
        elements_per_thread=assignment.elements_per_thread,
        tuples=new_tuples,
        a_first=greedy_read_order(
            w, assignment.elements_per_thread, list(new_tuples),
            assignment.target_bank,
        ),
        target_bank=assignment.target_bank,
    )


def _thread_aligned(assignment: WarpAssignment, thread: int) -> int:
    """Aligned accesses contributed by one thread under the current order."""
    banks = assignment.step_banks()[:, thread]
    steps = (
        np.arange(assignment.elements_per_thread, dtype=np.int64)
        + assignment.target_bank
    ) % assignment.warp_size
    return int((banks == steps).sum())
