"""Composing warp assignments into block- and round-level interleavings.

The hierarchy (DESIGN.md §5):

* a **warp interleaving** is one assignment's ``{A, B}``-string of length
  ``wE`` (:func:`warp_interleave`);
* a **block interleaving** concatenates the block's ``b/w`` warps,
  alternating the ``L`` (original) and ``R`` (mirrored) assignments so the
  block consumes exactly ``bE/2`` from each list and every warp's slices
  start at bank 0 (:func:`block_interleave`);
* a **round interleaving** for a pairwise merge of two runs of length ``L``
  repeats the block pattern across the ``2L/bE`` blocks of the pair
  (:func:`round_interleave`). Merge rounds too narrow for the per-warp
  construction (block-level rounds whose half-width is not a multiple of
  ``w``, where a warp straddles merge groups whose lists cannot all start
  at bank 0) fall back to the sorted interleaving, which the paper's
  construction does not target either.
"""

from __future__ import annotations

import numpy as np

from repro.adversary.assignment import WarpAssignment, construct_warp_assignment
from repro.errors import ValidationError
from repro.sort.config import SortConfig
from repro.utils.validation import check_positive_int

__all__ = [
    "adversarial_rounds",
    "block_interleave",
    "round_interleave",
    "sorted_interleave",
    "warp_interleave",
]


def warp_interleave(assignment: WarpAssignment) -> np.ndarray:
    """One warp's merge interleaving (alias of
    :meth:`WarpAssignment.interleaving`)."""
    return assignment.interleaving()


def block_interleave(assignment: WarpAssignment, block_size: int) -> np.ndarray:
    """A thread block's interleaving: alternating ``L``/``R`` warps.

    Returns a bool array of length ``bE`` with exactly ``bE/2`` ``True``
    (from-``A``) entries.
    """
    block_size = check_positive_int(block_size, "block_size")
    w = assignment.warp_size
    warps = block_size // w
    if block_size % w or warps % 2:
        raise ValidationError(
            f"block_size {block_size} must be an even number of warps of {w}"
        )
    left = assignment.interleaving()
    right = assignment.mirrored().interleaving()
    return np.concatenate([left, right] * (warps // 2))


def sorted_interleave(pair_width: int) -> np.ndarray:
    """The interleaving of already-ordered halves: all of ``A`` then ``B``."""
    pair_width = check_positive_int(pair_width, "pair_width")
    if pair_width % 2:
        raise ValidationError(f"pair_width must be even, got {pair_width}")
    out = np.zeros(pair_width, dtype=bool)
    out[: pair_width // 2] = True
    return out


def adversarial_rounds(config: SortConfig, num_elements: int) -> list[int]:
    """Run lengths ``L`` of the rounds the construction targets.

    A round merging runs of length ``L`` is constructible when each warp's
    two list slices can start at bank 0, i.e. ``w | L`` and each merge
    group spans at least two full warps (``2L ≥ 2·wE``). All global rounds
    (``L ≥ bE/2 ≥ wE``) qualify.
    """
    sizes = []
    run = config.E
    while run < num_elements:
        if run % config.w == 0 and run >= config.w * config.E:
            sizes.append(run)
        run *= 2
    return sizes


def round_interleave(
    config: SortConfig, run_length: int, assignment: WarpAssignment | None = None
) -> np.ndarray:
    """Interleaving for one merge round of runs of length ``run_length``.

    Returns a bool array of length ``2·run_length``. Constructible rounds
    (see :func:`adversarial_rounds`) tile the alternating ``L``/``R`` warp
    pattern across the round — ``run_length/(wE/…)``… concretely, one
    ``L``-warp + ``R``-warp pair covers ``2wE`` output ranks and consumes
    ``wE`` from each list, so the pattern repeats ``run_length/(wE)``
    times. Non-constructible rounds return the sorted interleaving.
    """
    run_length = check_positive_int(run_length, "run_length")
    if assignment is None:
        assignment = construct_warp_assignment(config.w, config.E)

    warp_span = config.w * config.E
    if run_length % config.w or run_length < warp_span:
        return sorted_interleave(2 * run_length)

    left = assignment.interleaving()
    right = assignment.mirrored().interleaving()
    pattern = np.concatenate([left, right])  # 2wE ranks, wE from each list
    repeats = (2 * run_length) // pattern.size
    if pattern.size * repeats != 2 * run_length:
        # Defensive: run lengths are always E·2^k, so a constructible round
        # is a whole number of L/R pairs; anything else is a logic error.
        raise ValidationError(
            f"run_length {run_length} is not a multiple of the warp-pair "
            f"span {pattern.size // 2}"
        )
    return np.tile(pattern, repeats)
