"""The large-``E`` construction (Theorem 9): ``w/2 < E < w``, odd ``E``.

With ``r = w − E < E`` there is no longer room to hide a full ``E``-element
filler thread in the safe banks (only ``r`` safe banks exist), so the
construction interleaves *partial* fillers and full scans using the
number-theoretic sequence ``T`` (:mod:`repro.adversary.sequences`):
``T``'s ``w`` tuples group into ``E`` runs that each advance a list by
exactly ``w`` (one column), ``(E−1)/2 + 1`` of them in ``A`` and
``(E−1)/2`` in ``B``. Elements are aligned to the *last* ``E`` banks
(``s = r``); the ``r + 1`` perfectly aligned columns and the
``E − r − 1`` partially misaligned ones yield

    aligned = ½ (E² + E + 2Er − r² − r)            (Theorem 9)

which is ``E² − 1`` at ``E = w/2 + 1`` and ``E²/2 + 3E/2 − 1 + …`` at
``E = w − 1`` — always ``Θ(E²)``.
"""

from __future__ import annotations

from repro.adversary.assignment import WarpAssignment, greedy_read_order
from repro.adversary.sequences import check_large_e, sequence_t

__all__ = ["large_e_assignment"]


def large_e_assignment(w: int, e: int) -> WarpAssignment:
    """Build the Theorem 9 worst-case warp assignment.

    The warp takes ``(E+1)/2·w`` elements from ``A`` and ``(E−1)/2·w`` from
    ``B`` (the ``L``-warp split; mirror for ``R``-warps).

    >>> wa = large_e_assignment(16, 9)
    >>> wa.aligned_count()   # ½(81 + 9 + 126 − 49 − 7) = 80
    80
    """
    r = check_large_e(w, e)
    tuples = tuple(sequence_t(w, e))
    a_first = greedy_read_order(w, e, tuples, target_bank=r)
    return WarpAssignment(
        warp_size=w,
        elements_per_thread=e,
        tuples=tuples,
        a_first=a_first,
        target_bank=r,
    )
