"""Measuring alignment on simulated traces.

The assignments in this package *predict* aligned counts; this module
*measures* them on actual :class:`~repro.dmm.trace.AccessTrace` objects
recorded by the simulator, closing the loop: construction → permutation →
simulated merge kernel → trace → measured alignment == theorem.

An access at step ``j`` is aligned (with respect to a start bank ``s``) if
it touches bank ``(s + j) mod w``. Since the measurement should not need to
know the construction's ``s``, :func:`measured_aligned_count` maximizes
over all ``w`` choices.
"""

from __future__ import annotations

import numpy as np

from repro.dmm.trace import AccessTrace
from repro.utils.validation import check_power_of_two

__all__ = ["aligned_count_for_start", "measured_aligned_count"]


def _bank_step_counts(trace: AccessTrace, num_banks: int) -> np.ndarray:
    """``(steps, banks)`` matrix of access counts (no broadcast dedup —
    alignment counts elements, not requests)."""
    steps = trace.num_steps
    counts = np.zeros((steps, num_banks), dtype=np.int64)
    if trace.num_accesses == 0:
        return counts
    step_idx, lane_idx = np.nonzero(trace.active)
    banks = trace.addresses[step_idx, lane_idx] % num_banks
    flat = np.bincount(step_idx * num_banks + banks, minlength=steps * num_banks)
    return flat.reshape(steps, num_banks)


def aligned_count_for_start(trace: AccessTrace, num_banks: int, start: int) -> int:
    """Accesses hitting bank ``(start + j) mod w`` at step ``j``.

    For traces longer than one merge pass (stacked warps), steps are taken
    modulo the trace's own step index — callers should pass single-warp,
    single-merge traces (``E`` steps).
    """
    num_banks = check_power_of_two(num_banks, "num_banks")
    counts = _bank_step_counts(trace, num_banks)
    steps = np.arange(trace.num_steps, dtype=np.int64)
    target = (start + steps) % num_banks
    return int(counts[steps, target].sum())


def measured_aligned_count(trace: AccessTrace, num_banks: int) -> tuple[int, int]:
    """``(count, start_bank)`` maximizing alignment over all start banks.

    >>> import numpy as np
    >>> from repro.dmm.trace import AccessTrace
    >>> # Three lanes scanning banks 2,3,4 in lock-step (num_banks=8):
    >>> t = AccessTrace.from_dense(np.array([[2, 10, 18], [3, 11, 19],
    ...                                      [4, 12, 20]]))
    >>> measured_aligned_count(t, 8)
    (9, 2)
    """
    num_banks = check_power_of_two(num_banks, "num_banks")
    counts = _bank_step_counts(trace, num_banks)
    steps = np.arange(trace.num_steps, dtype=np.int64)
    best = (0, 0)
    for s in range(num_banks):
        target = (s + steps) % num_banks
        total = int(counts[steps, target].sum())
        if total > best[0]:
            best = (total, s)
    return best
