"""Worst-case inputs for K-way merge sort — beyond the paper.

The paper's construction is pairwise-specific (and
``bench_baseline_multiway.py`` shows it largely decoheres under K-way
consumption). This module answers the natural follow-up the paper's
conclusion invites: *the same collapse is constructible for multiway
merging*. The small-``E`` argument generalizes verbatim:

* a warp merging from ``K`` source runs still reads ``E`` elements per
  thread in value order, one per lock-step;
* a **scan thread** takes all ``E`` from one source whose consumption is
  ``≡ 0 (mod w)`` — all aligned, regardless of which source;
* **fillers** absorb each scanned column's ``w − E`` safe-bank elements,
  now with ``K`` lists to draw from (more slack, not less).

Element conservation is unchanged (``E`` scans + ``w − E`` fillers =
``w`` threads; ``E²`` aligned), so every K-way merge round serializes to
exactly ``E²`` cycles per warp — the same ``w → ⌈w/E⌉`` collapse.
Balancing across a block rotates the source roles warp by warp, so each
group of ``K`` warps consumes ``wE`` from every source.

Scope: ``E < w/2`` co-prime with ``w`` (the regime where fillers fit), and
input sizes whose tile count is a power of the fan-in.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.adversary.interleave import round_interleave
from repro.errors import ConstructionError
from repro.sort.config import SortConfig
from repro.utils.validation import check_positive_int, check_power_of_two

__all__ = [
    "MultiwayWarpAssignment",
    "multiway_small_e_assignment",
    "multiway_worst_case_permutation",
]


@dataclass(frozen=True)
class MultiwayWarpAssignment:
    """One warp's thread-to-source assignment for a K-way merge.

    ``tuples[i]`` is thread ``i``'s per-source element counts (length
    ``K``, summing to ``E``); threads read their sources in ascending
    source order (scan threads touch a single source, so only fillers'
    within-thread order matters — and fillers live in safe banks).
    """

    warp_size: int
    elements_per_thread: int
    fan: int
    tuples: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        w = check_power_of_two(self.warp_size, "warp_size")
        e = check_positive_int(self.elements_per_thread, "elements_per_thread")
        check_positive_int(self.fan, "fan")
        if len(self.tuples) != w:
            raise ConstructionError(f"expected {w} tuples, got {len(self.tuples)}")
        for i, counts in enumerate(self.tuples):
            if len(counts) != self.fan or sum(counts) != e or min(counts) < 0:
                raise ConstructionError(
                    f"thread {i} counts {counts} invalid for K={self.fan}, "
                    f"E={e}"
                )

    @property
    def w(self) -> int:  # noqa: N802 - paper notation
        """Warp width."""
        return self.warp_size

    @property
    def e(self) -> int:
        """Elements per thread."""
        return self.elements_per_thread

    def source_totals(self) -> list[int]:
        """Elements the warp consumes from each source."""
        return [sum(t[k] for t in self.tuples) for k in range(self.fan)]

    def rotated(self, shift: int) -> "MultiwayWarpAssignment":
        """Source roles rotated by ``shift`` (for block balancing)."""
        return MultiwayWarpAssignment(
            warp_size=self.w,
            elements_per_thread=self.e,
            fan=self.fan,
            tuples=tuple(
                tuple(t[(k - shift) % self.fan] for k in range(self.fan))
                for t in self.tuples
            ),
        )

    def source_pattern(self) -> np.ndarray:
        """The warp's merge pattern: source id of each output rank."""
        out = np.empty(self.w * self.e, dtype=np.int8)
        pos = 0
        for counts in self.tuples:
            for k, c in enumerate(counts):
                out[pos : pos + c] = k
                pos += c
        return out

    def step_banks(self) -> np.ndarray:
        """``(E, w)`` bank matrix under the all-sources-at-bank-0 layout."""
        banks = np.empty((self.e, self.w), dtype=np.int64)
        cum = [0] * self.fan
        for i, counts in enumerate(self.tuples):
            seq = []
            for k, c in enumerate(counts):
                seq.extend((cum[k] + j) % self.w for j in range(c))
                cum[k] += c
            banks[:, i] = seq
        return banks

    def aligned_count(self, start: int = 0) -> int:
        """Aligned accesses (step ``j`` on bank ``start + j``)."""
        banks = self.step_banks()
        steps = (np.arange(self.e, dtype=np.int64) + start) % self.w
        return int((banks == steps[:, None]).sum())


def multiway_small_e_assignment(w: int, e: int, fan: int) -> MultiwayWarpAssignment:
    """Build the K-way worst-case warp assignment (small-``E`` regime).

    >>> wa = multiway_small_e_assignment(16, 7, 4)
    >>> wa.aligned_count()
    49
    """
    w = check_power_of_two(w, "w")
    e = check_positive_int(e, "E")
    fan = check_positive_int(fan, "fan")
    if not 1 <= e < w / 2:
        raise ConstructionError(
            f"K-way construction requires E < w/2, got E={e}, w={w}"
        )
    if math.gcd(w, e) != 1:
        raise ConstructionError(
            f"K-way construction requires GCD(w, E) = 1, got "
            f"GCD({w}, {e}) = {math.gcd(w, e)}"
        )
    if fan < 2:
        raise ConstructionError(f"fan must be >= 2, got {fan}")

    # Columns to scan per source: as even as possible, E total.
    scans = [e // fan + (1 if k < e % fan else 0) for k in range(fan)]
    caps = [0] * fan  # safe-bank capacity per source
    order = [k for k in range(fan) for _ in range(scans[k])]
    # Interleave sources round-robin so refills stay spread out.
    order = [k for i in range(max(scans)) for k in range(fan) if scans[k] > i]

    tuples: list[tuple[int, ...]] = []
    next_idx = 0
    while next_idx < len(order) or any(caps):
        target = order[next_idx] if next_idx < len(order) else None
        if target is not None and caps[target] == 0:
            counts = [0] * fan
            counts[target] = e
            tuples.append(tuple(counts))
            caps[target] = w - e
            next_idx += 1
            continue
        # Filler: drain the next-scan source first, then the rest.
        counts = [0] * fan
        need = e
        drain_order = ([target] if target is not None else []) + [
            k for k in range(fan) if k != target
        ]
        for k in drain_order:
            take = min(need, caps[k])
            counts[k] = take
            caps[k] -= take
            need -= take
            if need == 0:
                break
        if need:
            raise ConstructionError(
                f"internal error: filler short by {need} safe elements "
                f"(w={w}, E={e}, K={fan})"
            )
        tuples.append(tuple(counts))

    if len(tuples) != w:
        raise ConstructionError(
            f"internal error: used {len(tuples)} threads, expected {w}"
        )
    return MultiwayWarpAssignment(
        warp_size=w, elements_per_thread=e, fan=fan, tuples=tuple(tuples)
    )


def _group_pattern(
    assignment: MultiwayWarpAssignment, num_warps: int
) -> np.ndarray:
    """Source pattern for a merge group of ``num_warps`` warps.

    Warps rotate source roles so each run of ``K`` warps consumes ``wE``
    from every source.
    """
    fan = assignment.fan
    if num_warps % fan:
        raise ConstructionError(
            f"group of {num_warps} warps is not a multiple of the fan {fan}"
        )
    parts = [assignment.rotated(j % fan).source_pattern() for j in range(num_warps)]
    return np.concatenate(parts)


def multiway_worst_case_permutation(
    config: SortConfig, num_elements: int, fan: int
) -> np.ndarray:
    """Construct the K-way worst-case input for
    :class:`~repro.sort.multiway.MultiwaySort`.

    Requires a tile count that is a power of ``fan`` (so every multiway
    round runs at full fan-in) and enough warps per group for the source
    rotation (``fan ≤ warps per tile``). Intra-tile (pairwise block)
    rounds reuse the paper's construction.
    """
    cfg = config
    n = cfg.validate_input_size(num_elements)
    fan = check_power_of_two(fan, "fan")
    tiles = n // cfg.tile_size
    t = tiles
    while t > 1:
        if t % fan:
            raise ConstructionError(
                f"tile count {tiles} must be a power of the fan {fan}"
            )
        t //= fan
    if cfg.warps_per_block % fan:
        raise ConstructionError(
            f"warps per block ({cfg.warps_per_block}) must be a multiple of "
            f"the fan {fan} for source rotation"
        )

    assignment = multiway_small_e_assignment(cfg.w, cfg.E, fan)
    arr = np.arange(n, dtype=np.int64)

    # K-way rounds, top-down.
    runs = []
    run = cfg.tile_size
    while run < n:
        runs.append(run)
        run *= fan
    for run in reversed(runs):
        group_width = fan * run
        num_warps = group_width // (cfg.w * cfg.E)
        pattern = _group_pattern(assignment, num_warps)
        groups = arr.reshape(-1, group_width)
        out = np.empty_like(groups)
        for s in range(fan):
            out[:, s * run : (s + 1) * run] = groups[:, pattern == s]
        arr = out.reshape(-1)

    # Intra-tile pairwise rounds, reusing the paper's construction.
    from repro.adversary.assignment import construct_warp_assignment

    pairwise = construct_warp_assignment(cfg.w, cfg.E)
    run = cfg.tile_size // 2
    while run >= cfg.E:
        pattern = round_interleave(cfg, run, pairwise)
        mat = arr.reshape(-1, 2 * run)
        out = np.empty_like(mat)
        out[:, :run] = mat[:, pattern]
        out[:, run:] = mat[:, ~pattern]
        arr = out.reshape(-1)
        run //= 2
    return arr
