"""From per-round interleavings to the actual worst-case input permutation.

The sort's merge tree is fixed by ``(N, E, b)``: runs of ``E`` (after the
register phase) double through block rounds to ``bE`` and through global
rounds to ``N``. The adversary prescribes the interleaving of every
constructible round; running every merge *backwards* from the sorted output
(:func:`repro.mergepath.serial_merge.unmerge`) then yields an initial
permutation that reproduces exactly those interleavings when sorted —
because keys are distinct, a stable merge of the two un-merged halves
regenerates the prescribed interleaving verbatim.

The resulting permutation is periodic with the block's pattern at every
round, which is what makes the sampled fast path of
:class:`~repro.sort.pairwise.PairwiseMergeSort` exact on these inputs.
"""

from __future__ import annotations

import numpy as np

from repro.adversary.assignment import WarpAssignment, construct_warp_assignment
from repro.adversary.interleave import round_interleave
from repro.errors import ValidationError
from repro.sort.config import SortConfig

__all__ = ["unmerge_through_rounds", "worst_case_permutation"]


def worst_case_permutation(
    config: SortConfig,
    num_elements: int,
    *,
    assignment: WarpAssignment | None = None,
    values: np.ndarray | None = None,
) -> np.ndarray:
    """Construct the worst-case input for a configuration and size.

    Parameters
    ----------
    config:
        The sort parameters the input targets. The adversarial effect is
        parameter-specific: an input constructed for ``(E=15, b=512)``
        is not worst-case for ``(E=17, b=256)`` (the paper evaluates each
        preset on its own constructed inputs).
    num_elements:
        Input size; must be ``bE · 2^k`` (the paper's sweep sizes all are).
    assignment:
        Optionally override the per-warp assignment (used by
        :mod:`repro.adversary.family` to generate permutation families).
    values:
        Optionally, the sorted key array to permute (default
        ``arange(N)``); must be strictly increasing so merges reproduce the
        prescribed interleavings exactly.

    Returns
    -------
    The adversarial input permutation (a new array).

    Examples
    --------
    >>> from repro.sort.config import SortConfig
    >>> cfg = SortConfig(elements_per_thread=3, block_size=8, warp_size=4)
    >>> perm = worst_case_permutation(cfg, cfg.tile_size * 4)
    >>> sorted(perm.tolist()) == list(range(cfg.tile_size * 4))
    True
    """
    n = config.validate_input_size(num_elements)
    if assignment is None:
        assignment = construct_warp_assignment(config.w, config.E)
    if values is None:
        values = np.arange(n, dtype=np.int64)
    else:
        values = np.asarray(values)
        if values.shape != (n,):
            raise ValidationError(
                f"values must have shape ({n},), got {values.shape}"
            )
        if values.size > 1 and np.any(values[1:] <= values[:-1]):
            raise ValidationError("values must be strictly increasing")
    return unmerge_through_rounds(config, values, assignment)


def unmerge_through_rounds(
    config: SortConfig,
    sorted_values: np.ndarray,
    assignment: WarpAssignment,
    target_runs: set[int] | None = None,
    off_target: str = "sorted",
    seed=0,
) -> np.ndarray:
    """Apply the un-merge cascade from run length ``N`` down to ``E``.

    At each level, every merged run of length ``2L`` is split into its two
    pre-merge halves (``A`` in the first ``L`` slots, ``B`` in the second —
    the in-memory layout the next-lower round reads). All pairs of a round
    share one interleaving pattern, so each level is two fancy-indexing
    operations over a ``(pairs, 2L)`` view.

    ``target_runs`` restricts the adversarial interleaving to specific run
    lengths — this is how partial adversaries like the Karsin-style
    conflict-heavy inputs, which attack only chosen rounds, are built.
    ``None`` targets every constructible round (the paper's full
    construction). Untargeted rounds use ``off_target`` interleavings:
    ``"sorted"`` (benign, the default) or ``"random"`` (each pair a uniform
    random balanced interleaving, seeded by ``seed`` — making the input
    look random except where attacked). Any other value is rejected — a
    typo must not silently produce the benign input.
    """
    from repro.adversary.interleave import sorted_interleave
    from repro.utils.rng import as_generator

    if off_target not in ("sorted", "random"):
        raise ValidationError(
            f"off_target must be 'sorted' or 'random', got {off_target!r}"
        )
    rng = as_generator(seed)
    arr = np.asarray(sorted_values).copy()
    n = arr.size
    run = n // 2
    while run >= config.E:
        if target_runs is None or run in target_runs:
            pattern = round_interleave(config, run, assignment)
        elif off_target == "random":
            pattern = np.zeros(2 * run, dtype=bool)
            pattern[rng.choice(2 * run, size=run, replace=False)] = True
        else:
            pattern = sorted_interleave(2 * run)
        pair_width = 2 * run
        mat = arr.reshape(-1, pair_width)
        out = np.empty_like(mat)
        out[:, :run] = mat[:, pattern]
        out[:, run:] = mat[:, ~pattern]
        arr = out.reshape(-1)
        run //= 2
    return arr
