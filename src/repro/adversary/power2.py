"""The ``GCD(w, E) = d`` analysis and the power-of-two worst case.

Section III's "Considered values of E": in *sorted order*, every ``d``-th
chunk of ``E`` elements is aligned (Figure 1 shows ``w = 16, E = 12,
d = 4``). When ``d = E`` — i.e. ``E`` is a power of two dividing ``w`` —
sorted order is therefore already the worst-case input: every thread's
chunk starts ``iE ≡ 0, E, 2E, … (mod w)``, and the ``w/E`` threads whose
chunks share a start bank serialize completely.

For ``1 < d < E`` the paper gives no exact construction (that is precisely
why Thrust picks odd ``E``); :func:`sorted_aligned_count` quantifies the
partial alignment sorted order achieves there.
"""

from __future__ import annotations

import math

import numpy as np

from repro.adversary.assignment import WarpAssignment
from repro.errors import ConstructionError
from repro.utils.validation import check_positive_int, check_power_of_two

__all__ = ["power_of_two_assignment", "sorted_assignment", "sorted_aligned_count"]


def sorted_assignment(w: int, e: int) -> WarpAssignment:
    """The warp assignment induced by sorted input.

    A sorted merge consumes all of ``A`` then all of ``B``; per-warp that
    means the first ``w/2`` threads take everything from ``A`` and the rest
    from ``B`` (sizes ``wE/2`` each, assuming the warp sits mid-list; the
    alignment count does not depend on that boundary choice because the two
    lists' chunks have identical bank patterns).
    """
    w = check_power_of_two(w, "w")
    e = check_positive_int(e, "E")
    half = w // 2
    tuples = tuple([(e, 0)] * half + [(0, e)] * half)
    return WarpAssignment(
        warp_size=w,
        elements_per_thread=e,
        tuples=tuples,
        a_first=tuple([True] * w),
        target_bank=0,
    )


def power_of_two_assignment(w: int, e: int) -> WarpAssignment:
    """Worst-case assignment for ``GCD(w, E) = E``: sorted order.

    The aligned count is ``d·E = E²`` — the same bound Theorem 3 achieves
    for co-prime ``E``, reached here with no engineering at all:

    >>> power_of_two_assignment(16, 4).aligned_count()
    16
    """
    w = check_power_of_two(w, "w")
    e = check_positive_int(e, "E")
    if e > w or w % e:
        raise ConstructionError(
            f"power-of-two case requires E | w, got E={e}, w={w}"
        )
    return sorted_assignment(w, e)


def sorted_aligned_count(w: int, e: int) -> int:
    """Aligned accesses per warp on sorted input, for any ``(w, E)``.

    Thread ``i``'s chunk starts at in-list offset ``iE``; its step-``j``
    access hits bank ``(iE + j) mod w`` and is aligned (to ``s = 0``) iff
    ``iE ≡ 0 (mod w)``. With ``d = GCD(w, E)`` that holds for every
    ``(w/d)``-th thread — ``d`` threads per warp, ``E`` aligned accesses
    each:

    >>> sorted_aligned_count(16, 12)   # Figure 1: d = 4
    48
    >>> sorted_aligned_count(16, 4)    # d = E: d*E = E^2 per warp
    16
    >>> sorted_aligned_count(32, 15)   # co-prime: only thread 0 aligns
    15
    """
    w = check_power_of_two(w, "w")
    e = check_positive_int(e, "E")
    starts = (np.arange(w, dtype=np.int64) * e) % w
    return int((starts == 0).sum()) * e


def sorted_gcd_check(w: int, e: int) -> bool:
    """Cross-check: ``sorted_aligned_count == d·E`` with ``d = GCD(w, E)``."""
    return sorted_aligned_count(w, e) == math.gcd(w, e) * e
