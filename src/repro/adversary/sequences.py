"""The modular sequences of Section III-B.

For odd ``E`` with ``w/2 < E < w`` and ``r = w − E`` (odd, co-prime with
``E`` by Lemma 4), the paper defines, for ``i = 1 … E−1``:

* ``x_i = −i·r mod E``  and  ``y_i = i·r mod E``,

whose properties (Lemmas 7 and 8 — complementarity ``x_i + y_i = E``,
uniqueness, the reflection ``x_i = y_{E−i}``, and the pair sums
``x_i + y_{i+1} ∈ {r, w}``) drive the large-``E`` construction:

* ``S`` — the base assignment sequence: entry ``i`` is ``(y_i, x_i)`` for
  odd ``i`` and ``(x_i, y_i)`` for even ``i`` (an ``(A-count, B-count)``
  tuple per thread);
* ``T`` — ``S`` with ``r + 1`` full-scan tuples ``(E, 0)`` / ``(0, E)``
  inserted after every completed sum of ``r`` safe-bank elements, giving
  exactly ``w`` tuples that each sum to ``E``.

Every lemma is checked by property tests in
``tests/adversary/test_sequences.py``.
"""

from __future__ import annotations

import math

from repro.errors import ConstructionError
from repro.utils.validation import check_positive_int, check_power_of_two

__all__ = ["check_large_e", "sequence_s", "sequence_t", "xy_sequences"]


def check_large_e(w: int, e: int) -> int:
    """Validate the large-``E`` preconditions; returns ``r = w − E``.

    Requires ``w`` a power of two and ``w/2 < E < w`` with ``E`` odd (which,
    by Lemma 4, makes ``E`` and ``r`` co-prime).
    """
    w = check_power_of_two(w, "w")
    e = check_positive_int(e, "E")
    if not w // 2 < e < w:
        raise ConstructionError(
            f"large-E construction requires w/2 < E < w, got E={e}, w={w}"
        )
    if e % 2 == 0:
        raise ConstructionError(f"large-E construction requires odd E, got {e}")
    r = w - e
    # Lemma 4 guarantees this; assert it as an internal invariant.
    if math.gcd(e, r) != 1:
        raise ConstructionError(
            f"internal error: GCD(E={e}, r={r}) != 1 contradicts Lemma 4"
        )
    return r


def xy_sequences(w: int, e: int) -> tuple[list[int], list[int]]:
    """The sequences ``x_i = −ir mod E`` and ``y_i = ir mod E``, ``i=1…E−1``.

    >>> xy_sequences(16, 9)
    ([2, 4, 6, 8, 1, 3, 5, 7], [7, 5, 3, 1, 8, 6, 4, 2])
    """
    r = check_large_e(w, e)
    xs = [(-i * r) % e for i in range(1, e)]
    ys = [(i * r) % e for i in range(1, e)]
    return xs, ys


def sequence_s(w: int, e: int) -> list[tuple[int, int]]:
    """The sequence ``S`` of ``(a_i, b_i)`` thread assignments.

    ``a_i`` counts elements of the ``A`` list, ``b_i`` of ``B``; each entry
    sums to ``E`` (Lemma 7.1).

    >>> sequence_s(16, 9)[:3]
    [(7, 2), (4, 5), (3, 6)]
    """
    xs, ys = xy_sequences(w, e)
    out: list[tuple[int, int]] = []
    for i in range(1, e):
        x, y = xs[i - 1], ys[i - 1]
        out.append((x, y) if i % 2 == 0 else (y, x))
    return out


def sequence_t(w: int, e: int) -> list[tuple[int, int]]:
    """The sequence ``T``: ``S`` plus ``r + 1`` inserted full-scan tuples.

    Following the paper's three rules:

    1. insert ``(E, 0)`` after the first entry ``(a_1, b_1) = (r, E−r)`` and
       after the last entry ``(a_{E−1}, b_{E−1}) = (r, E−r)``;
    2. for each ``k`` with ``a_{2k} + a_{2k+1} = x_{2k} + y_{2k+1} = r``,
       insert ``(E, 0)`` after ``(a_{2k+1}, b_{2k+1})``;
    3. for each ``k`` with ``b_{2k−1} + b_{2k} = x_{2k−1} + y_{2k} = r``,
       insert ``(0, E)`` after ``(a_{2k}, b_{2k})``.

    The result has exactly ``w`` tuples (one per thread of the warp), each
    summing to ``E``; the ``A`` counts total ``(E+1)/2·w`` and the ``B``
    counts ``(E−1)/2·w`` — the per-warp list split of Section III's general
    strategy.

    >>> t = sequence_t(16, 9)
    >>> len(t), sum(a for a, _ in t), sum(b for _, b in t)
    (16, 80, 64)
    """
    r = check_large_e(w, e)
    xs, ys = xy_sequences(w, e)
    s = sequence_s(w, e)

    # insertions[i] = tuple to insert after S entry index i (0-based).
    insertions: dict[int, tuple[int, int]] = {}
    insertions[0] = (e, 0)  # after (a_1, b_1)

    for k in range(1, (e - 1) // 2):
        # x_{2k} + y_{2k+1}: 1-based indices 2k and 2k+1.
        if xs[2 * k - 1] + ys[2 * k] == r:
            insertions[2 * k] = (e, 0)  # after entry index 2k (= a_{2k+1})

    last_b_insert = None
    for k in range(1, (e - 1) // 2 + 1):
        # x_{2k−1} + y_{2k}: 1-based indices 2k−1 and 2k.
        if xs[2 * k - 2] + ys[2 * k - 1] == r:
            idx = 2 * k - 1  # after entry index 2k−1 (= a_{2k})
            if idx == e - 2:
                last_b_insert = (0, e)  # shares the slot after the last entry
            else:
                insertions[idx] = (0, e)

    out: list[tuple[int, int]] = []
    for i, entry in enumerate(s):
        out.append(entry)
        if i in insertions:
            out.append(insertions[i])
        if i == e - 2:  # after the last entry: rule 1 then any rule-3 insert
            out.append((e, 0))
            if last_b_insert is not None:
                out.append(last_b_insert)

    if len(out) != w:
        raise ConstructionError(
            f"internal error: sequence T has {len(out)} tuples, expected w={w}"
        )
    if any(a + b != e for a, b in out):
        raise ConstructionError("internal error: a T tuple does not sum to E")
    total_a = sum(a for a, _ in out)
    if total_a != (e + 1) // 2 * w:
        raise ConstructionError(
            f"internal error: T assigns {total_a} A elements, expected "
            f"{(e + 1) // 2 * w}"
        )
    return out
