"""The small-``E`` construction (Theorem 3): ``E < w/2``, ``GCD(w, E) = 1``.

Target: align elements to the first ``E`` banks (``s = 0``). The warp's
``wE`` output ranks are produced by two kinds of threads:

* ``E`` **scan threads**, each taking all ``E`` of its elements from one
  list at a moment when that list's consumption is ``≡ 0 (mod w)`` — its
  ``E`` accesses then walk banks ``0, 1, …, E−1`` in lock-step with the
  iteration index, i.e. every access is aligned. ``(E+1)/2`` of them scan
  ``A`` columns and ``(E−1)/2`` scan ``B`` columns, consuming the ``m``
  "full columns" of Lemma 2.
* ``w − E`` **filler threads**, which absorb the ``w − E`` elements per
  column per list that live in the safe banks ``[E, w)`` (the
  ``α``/``β`` buffers of Lemma 2), advancing each list's pointer to the
  next column boundary without ever touching the target banks.

Element conservation makes the thread budget exact: scan threads consume
``E²`` elements, fillers ``wE − E² = (w−E)E``, i.e. exactly ``w − E``
fillers of ``E`` elements each — ``w`` threads in total. The feasibility of
always keeping fillers inside the safe banks is Lemma 2's
``w − E ≥ E`` argument (this is where ``E < w/2`` is used).

The scheduler below is the paper's "front-to-back" strategy run greedily;
:func:`small_e_assignment` asserts the Theorem 3 invariants as it goes and
the test suite verifies ``aligned == E²`` for every valid ``(w, E)``.
"""

from __future__ import annotations

import math

from repro.adversary.assignment import WarpAssignment, greedy_read_order
from repro.errors import ConstructionError
from repro.utils.validation import check_positive_int, check_power_of_two

__all__ = ["small_e_assignment"]


def small_e_assignment(w: int, e: int) -> WarpAssignment:
    """Build the Theorem 3 worst-case warp assignment.

    The warp takes ``(E+1)/2·w`` elements from ``A`` and ``(E−1)/2·w`` from
    ``B`` (the ``L``-warp split; use
    :meth:`~repro.adversary.assignment.WarpAssignment.mirrored` for
    ``R``-warps).

    >>> wa = small_e_assignment(16, 7)
    >>> wa.aligned_count()
    49
    """
    w = check_power_of_two(w, "w")
    e = check_positive_int(e, "E")
    if not 1 <= e < w / 2:
        raise ConstructionError(
            f"small-E construction requires E < w/2, got E={e}, w={w}"
        )
    if math.gcd(w, e) != 1:
        raise ConstructionError(
            f"small-E construction requires GCD(w, E) = 1, got "
            f"GCD({w}, {e}) = {math.gcd(w, e)}"
        )

    scans_a = (e + 1) // 2  # A columns to scan
    scans_b = e // 2  # B columns to scan ((E−1)/2; 0 when E == 1)
    # Safe capacity: elements of each list between the current pointer and
    # the next column boundary, all within banks [E, w). A scan is legal
    # exactly when its list's capacity has been fully consumed.
    cap_a = 0  # both list pointers start at bank 0: scan-ready
    cap_b = 0
    next_scan_a = True  # columns alternate A, B, A, … (Lemma 2 strategies)

    tuples: list[tuple[int, int]] = []
    while scans_a or scans_b or cap_a or cap_b:
        want_a = next_scan_a if (scans_a and scans_b) else bool(scans_a)
        if want_a and cap_a == 0:
            tuples.append((e, 0))
            scans_a -= 1
            # Refill: the w−E safe-bank elements up to the next column
            # boundary (the trailing α↓ = w−E after the final column
            # included — Theorem 3's accounting).
            cap_a = w - e
            next_scan_a = False
            continue
        if scans_b and not want_a and cap_b == 0:
            tuples.append((0, e))
            scans_b -= 1
            cap_b = w - e
            next_scan_a = True
            continue
        # Filler thread: drain the next-scan list first so its column
        # boundary is reached; overflow goes to the other list, whose
        # freshly refilled capacity (w − E ≥ E) always absorbs it — the
        # Lemma 2 feasibility argument.
        drain_a = next_scan_a if (scans_a or scans_b) else cap_a >= cap_b
        if not scans_a and not scans_b:
            drain_a = cap_a >= cap_b
        elif not scans_a:
            drain_a = False
        elif not scans_b:
            drain_a = True
        primary = cap_a if drain_a else cap_b
        secondary = cap_b if drain_a else cap_a
        take_p = min(e, primary)
        take_s = e - take_p
        if take_s > secondary:
            raise ConstructionError(
                f"internal error: filler overflow of {take_s} exceeds the "
                f"other list's safe capacity {secondary} (w={w}, E={e})"
            )
        take_a, take_b = (take_p, take_s) if drain_a else (take_s, take_p)
        tuples.append((take_a, take_b))
        cap_a -= take_a
        cap_b -= take_b

    if len(tuples) != w:
        raise ConstructionError(
            f"internal error: schedule used {len(tuples)} threads, "
            f"expected w={w}"
        )
    total_a = sum(a for a, _ in tuples)
    if total_a != (e + 1) // 2 * w:
        raise ConstructionError(
            f"internal error: schedule consumed {total_a} A elements, "
            f"expected {(e + 1) // 2 * w}"
        )

    a_first = greedy_read_order(w, e, tuples, target_bank=0)
    return WarpAssignment(
        warp_size=w,
        elements_per_thread=e,
        tuples=tuple(tuples),
        a_first=a_first,
        target_bank=0,
    )
