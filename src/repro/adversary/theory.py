"""Closed-form predictions from the paper's analysis.

Everything stated quantitatively in Sections I–III, as functions:

* :func:`lemma1_bound` — the pigeonhole worst case for any warp access;
* :func:`aligned_elements` — the construction's aligned count (Theorems 3
  and 9, plus the sorted ``GCD = d`` cases);
* :func:`effective_threads` — the parallelism collapse ``w → ⌈w/E⌉``;
* :func:`predicted_warp_transactions` — a lower bound on the serialized
  cycles of one warp's merge pass on the constructed input (the aligned
  total — exact for small ``E``, a bound for large ``E``);
* :func:`a_g` / :func:`a_s` — the Karsin et al. global/shared access
  bounds quoted in Section II-A.
"""

from __future__ import annotations

import math

from repro.errors import ConstructionError
from repro.utils.bits import ceil_div, ceil_log2
from repro.utils.validation import check_positive_int, check_power_of_two

__all__ = [
    "a_g",
    "a_s",
    "aligned_elements",
    "effective_threads",
    "lemma1_bound",
    "parallel_time_blowup",
    "predicted_warp_transactions",
]


def lemma1_bound(w: int, k: int) -> int:
    """Lemma 1: worst-case conflict degree for ``w`` lanes over ``k``
    consecutive addresses: ``min(⌈k/w⌉, w)``.

    >>> lemma1_bound(32, 480)   # k = wE with E = 15
    15
    """
    w = check_power_of_two(w, "w")
    k = check_positive_int(k, "k")
    return min(ceil_div(k, w), w)


def aligned_elements(w: int, e: int) -> int:
    """Aligned accesses per warp per merge round for the constructed input.

    * ``GCD(w, E) = E``: sorted order aligns ``E²``;
    * ``E < w/2``, co-prime: Theorem 3 aligns ``E²``;
    * ``w/2 < E < w``, co-prime: Theorem 9 aligns
      ``½(E² + E + 2Er − r² − r)``, ``r = w − E``.

    >>> aligned_elements(32, 15)
    225
    >>> aligned_elements(16, 9)
    80
    """
    w = check_power_of_two(w, "w")
    e = check_positive_int(e, "E")
    d = math.gcd(w, e)
    if d == e and e <= w:
        return e * e
    if d != 1 or e >= w:
        raise ConstructionError(
            f"no construction (hence no prediction) for w={w}, E={e}"
        )
    if e < w / 2:
        return e * e
    r = w - e
    total = e * e + e + 2 * e * r - r * r - r
    if total % 2:
        raise ConstructionError("internal error: Theorem 9 count is odd")
    return total // 2


def effective_threads(w: int, e: int) -> int:
    """Per-warp effective parallelism on the worst-case input: ``⌈w/E⌉``.

    >>> effective_threads(32, 15)
    3
    >>> effective_threads(32, 17)
    2
    """
    w = check_power_of_two(w, "w")
    e = check_positive_int(e, "E")
    return ceil_div(w, e)


def parallel_time_blowup(w: int, e: int) -> float:
    """Worst/best parallel-time ratio for one warp merge pass: ``Θ(E)``.

    Best case ``Θ(E)`` steps; worst case up to ``Θ(E²)`` serialized cycles
    (Section III-C).
    """
    return predicted_warp_transactions(w, e) / e


def predicted_warp_transactions(w: int, e: int) -> int:
    """*Lower bound* on the serialized cycles of one warp's merge pass on
    the constructed input — the aligned total, not the exact cycle count.

    The aligned accesses all land on the step's single target bank, so step
    ``j`` costs at least its aligned count; the remaining (filler /
    misaligned) accesses ride along in the same cycles when they fall on
    other banks. For the small-``E`` construction every step carries ``E``
    aligned accesses and the bound is exact (``E²`` cycles); for large
    ``E`` the per-step aligned counts sum to the Theorem 9 total but the
    simulator's measured cycles can exceed it (filler accesses may land on
    already-busy banks), so the contract is exactly this: *measured
    serialized cycles per constructible merge round ≥ this value*, with
    equality in the small-``E`` regime. The analytic equivalence tests
    assert the bound against the simulator per round.
    """
    return aligned_elements(w, e)


def _global_rounds(n: int, tile: int) -> float:
    """Global merge rounds, counted the way ``PairwiseMergeSort`` executes
    them: runs double from one tile to ``N``, i.e. ``⌈log₂⌈N/tile⌉⌉``
    rounds (and the bounds treat the sub-tile regime as one round).

    ``math.log2(n // tile)`` — the old derivation — undercounts whenever
    ``N`` is not a power-of-two multiple of the tile (floor division plus
    a fractional log), so the bounds disagreed with the simulator's round
    structure exactly where the sweeps interpolate.
    ``tests/adversary/test_theory.py`` cross-checks this against
    ``SortConfig.num_global_rounds``.
    """
    return float(max(1, ceil_log2(ceil_div(n, tile))))


def a_g(n: int, w: int, p: int, b: int, e: int) -> float:
    """Karsin et al.'s global-access bound ``A_g`` (Section II-A).

    ``O((Nw/(PbE))·log²(N/(bE)) + (N/P)·log(N/(bE)))`` — returned without
    the hidden constant (callers compare shapes, not absolutes).
    """
    n = check_positive_int(n, "N")
    tile = b * e
    rounds = _global_rounds(n, tile)
    return (n * w) / (p * tile) * rounds**2 + (n / p) * rounds


def a_s(n: int, p: int, b: int, e: int, beta1: float, beta2: float) -> float:
    """Karsin et al.'s shared-access bound ``A_s`` (Section II-A).

    ``O((N/(PE))·log(N/(bE))·(β₁·log(bE) + β₂·E))``. The paper's measured
    Modern GPU values on random inputs are ``β₁ = 3.1, β₂ = 2.2``; the
    constructed inputs drive ``β₂`` to ``Θ(E)``.
    """
    n = check_positive_int(n, "N")
    tile = b * e
    rounds = _global_rounds(n, tile)
    return (n / (p * e)) * rounds * (beta1 * math.log2(tile) + beta2 * e)
