"""Self-verification of constructed inputs.

A downstream user who generates an adversarial input wants a cheap, direct
answer to "is this input actually worst-case for my parameters?" —
independent of the construction code. :func:`verify_worst_case` runs the
input through the instrumented simulator and checks every targeted merge
round against the theorem prediction, returning a structured report (and
the CLI's ``construct``/``simulate`` paths use it as a tripwire).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.adversary.interleave import adversarial_rounds
from repro.adversary.theory import aligned_elements
from repro.dmm.memo import ConflictMemo
from repro.sort.config import SortConfig
from repro.sort.pairwise import PairwiseMergeSort

__all__ = [
    "RoundVerdict",
    "VerificationReport",
    "verify_family",
    "verify_worst_case",
]


@dataclass(frozen=True)
class RoundVerdict:
    """One merge round's measured-vs-predicted serialization."""

    label: str
    run_length: int
    targeted: bool
    per_warp_cycles: float
    predicted: int | None

    @property
    def ok(self) -> bool:
        """Whether the round meets its prediction.

        Targeted rounds must reach the theorem count (exactly, for the
        small-``E`` regime where the aligned pile-up provably dominates
        each step; at least, in general). Untargeted rounds carry no claim.
        """
        if not self.targeted or self.predicted is None:
            return True
        return self.per_warp_cycles >= self.predicted - 1e-9


@dataclass
class VerificationReport:
    """Aggregate verdict for one (input, config) pair."""

    config: SortConfig
    num_elements: int
    sorted_correctly: bool
    rounds: list[RoundVerdict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """All checks passed."""
        return self.sorted_correctly and all(r.ok for r in self.rounds)

    @property
    def targeted_rounds(self) -> list[RoundVerdict]:
        """Only the rounds the construction makes claims about."""
        return [r for r in self.rounds if r.targeted]

    def summary(self) -> str:
        """One-line human-readable verdict."""
        targeted = self.targeted_rounds
        hit = sum(1 for r in targeted if r.ok)
        return (
            f"{'OK' if self.ok else 'FAILED'}: sorted={self.sorted_correctly}, "
            f"{hit}/{len(targeted)} targeted rounds at the theorem bound"
        )


def verify_worst_case(
    config: SortConfig,
    values: np.ndarray,
    *,
    score_blocks: int | None = 4,
    memo: ConflictMemo | None | str = "auto",
) -> VerificationReport:
    """Check an input against the worst-case claims for ``config``.

    Runs the instrumented sort and compares every constructible round's
    per-warp serialized merge cycles to the Theorem 3 / Theorem 9
    prediction. ``memo`` is handed to the sorter
    (:class:`~repro.sort.pairwise.PairwiseMergeSort`); pass one shared
    :class:`~repro.dmm.memo.ConflictMemo` when verifying many related
    inputs — family members differ only in filler read order, so most
    rounds are pattern-identical and verify from cache.

    Examples
    --------
    >>> from repro.sort.config import SortConfig
    >>> from repro.adversary.permutation import worst_case_permutation
    >>> cfg = SortConfig(elements_per_thread=3, block_size=8, warp_size=4)
    >>> n = cfg.tile_size * 4
    >>> report = verify_worst_case(cfg, worst_case_permutation(cfg, n))
    >>> report.ok
    True
    >>> import numpy as np
    >>> verify_worst_case(cfg, np.arange(n)).ok   # sorted input: not worst
    False
    """
    values = np.asarray(values)
    n = config.validate_input_size(values.size)
    result = PairwiseMergeSort(config, memo=memo).sort(
        values, score_blocks=score_blocks
    )
    sorted_ok = bool(np.array_equal(result.values, np.sort(values)))

    try:
        predicted: int | None = aligned_elements(config.w, config.E)
    except Exception:
        predicted = None
    targeted = set(adversarial_rounds(config, n))

    rounds = []
    for r in result.rounds:
        if r.kind == "registers":
            continue
        warps = r.blocks_scored * config.warps_per_block
        rounds.append(
            RoundVerdict(
                label=r.label,
                run_length=r.run_length,
                targeted=r.run_length in targeted,
                per_warp_cycles=r.merge_report.total_transactions / warps,
                predicted=predicted,
            )
        )
    return VerificationReport(
        config=config,
        num_elements=n,
        sorted_correctly=sorted_ok,
        rounds=rounds,
    )


def verify_family(
    config: SortConfig,
    num_elements: int,
    num_members: int,
    *,
    score_blocks: int | None = 4,
    seed: int = 0,
    memo: ConflictMemo | None | str = "auto",
) -> list[VerificationReport]:
    """Verify ``num_members`` random permutation-family members.

    Draws members via :func:`repro.adversary.family.random_family_member`
    (member 0 is the canonical assignment itself) and verifies each with
    one shared :class:`~repro.dmm.memo.ConflictMemo` — the members are
    round-for-round pattern-identical except where their filler read
    orders differ, so everything after the first member scores mostly
    from cache. ``memo="auto"`` builds the shared memo; pass ``None`` to
    verify each member cold.
    """
    from repro.adversary.assignment import construct_warp_assignment
    from repro.adversary.family import random_family_member
    from repro.adversary.permutation import worst_case_permutation
    from repro.utils.validation import check_positive_int

    check_positive_int(num_members, "num_members")
    n = config.validate_input_size(num_elements)
    if isinstance(memo, str) and memo == "auto":
        memo = ConflictMemo()
    base = construct_warp_assignment(config.w, config.E)
    reports = []
    for i in range(num_members):
        assignment = (
            base if i == 0 else random_family_member(base, seed=seed + i)
        )
        values = worst_case_permutation(config, n, assignment=assignment)
        reports.append(
            verify_worst_case(
                config, values, score_blocks=score_blocks, memo=memo
            )
        )
    return reports
