"""Average-case conflict analysis — the paper's closing open problem.

The Conclusion asks: *can we analyze the expected number of bank conflicts
for a given algorithm, for a specific input distribution?* This package
takes the first steps the paper gestures at:

* :mod:`repro.analysis.expected` — closed-form and Monte-Carlo results for
  the balls-in-bins model of one warp step (expected replays is exact;
  expected serialization is the classic max-load);
* :mod:`repro.analysis.beta` — measuring Karsin et al.'s ``β₁``/``β₂``
  (average conflicts per partition / merge iteration) on simulated runs,
  including their observation that the numbers grow with the input's
  inversion count;
* :mod:`repro.analysis.inversions` — inversion counting for inputs;
* :mod:`repro.analysis.variance` — the Conclusion's point 4: where the
  constructed input sits in the random-runtime distribution (and why a
  dozen random samples never find it).
"""

from repro.analysis.beta import BetaEstimate, measure_betas
from repro.analysis.correlation import pearson_r, spearman_rho
from repro.analysis.distributions import (
    StepCostDistribution,
    step_cost_distribution,
)
from repro.analysis.expected import (
    expected_occupied_banks,
    expected_replays_per_step,
    max_load_monte_carlo,
)
from repro.analysis.inversions import count_inversions, inversion_fraction
from repro.analysis.variance import VarianceStudy, variance_study

__all__ = [
    "BetaEstimate",
    "StepCostDistribution",
    "VarianceStudy",
    "count_inversions",
    "expected_occupied_banks",
    "expected_replays_per_step",
    "inversion_fraction",
    "max_load_monte_carlo",
    "measure_betas",
    "pearson_r",
    "spearman_rho",
    "step_cost_distribution",
    "variance_study",
]
