"""Measuring Karsin et al.'s ``β₁`` / ``β₂`` on simulated runs.

Section II-A quotes their empirical Modern GPU values on random inputs:
``β₁ = 3.1`` (average bank conflicts per mutual-binary-search iteration)
and ``β₂ = 2.2`` (per merge iteration), growing with the input's inversion
count; the paper's construction drives ``β₂`` to ``Θ(E)``.

We measure β as the average *extra serialized cycles per warp step*
(``transactions/step − 1``): a conflict-free stage has β = 0; a step whose
worst bank receives ``c`` requests contributes ``c − 1``. On random inputs
this is the balls-in-bins expected-max-load minus one (≈ 2.4 for w = 32),
right where Karsin's 2.2 sits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sort.config import SortConfig
from repro.sort.pairwise import PairwiseMergeSort, SortResult

__all__ = ["BetaEstimate", "betas_from_result", "measure_betas"]


@dataclass(frozen=True)
class BetaEstimate:
    """Measured per-stage conflict rates for one sort."""

    beta1: float  # partition stage: extra cycles per search step
    beta2: float  # merge stage: extra cycles per merge step
    inversion_count: int | None = None

    def __str__(self) -> str:
        return f"beta1={self.beta1:.2f}, beta2={self.beta2:.2f}"


def betas_from_result(result: SortResult) -> BetaEstimate:
    """Extract β₁/β₂ from an instrumented sort's round stats."""
    merge_cycles = merge_steps = 0.0
    part_cycles = part_steps = 0.0
    for r in result.rounds:
        merge_cycles += r.merge_report.total_transactions * r.scale
        merge_steps += r.merge_report.conflict_free_cycles * r.scale
        part_cycles += r.partition_report.total_transactions * r.scale
        part_steps += r.partition_report.conflict_free_cycles * r.scale
    beta1 = part_cycles / part_steps - 1.0 if part_steps else 0.0
    beta2 = merge_cycles / merge_steps - 1.0 if merge_steps else 0.0
    return BetaEstimate(beta1=beta1, beta2=beta2)


def measure_betas(
    config: SortConfig,
    values: np.ndarray,
    *,
    score_blocks: int | None = 8,
    seed: int = 0,
    with_inversions: bool = False,
) -> BetaEstimate:
    """Sort ``values`` (instrumented) and report the measured βs.

    >>> import numpy as np
    >>> from repro.sort.config import SortConfig
    >>> cfg = SortConfig(elements_per_thread=3, block_size=32, warp_size=32)
    >>> est = measure_betas(cfg, np.arange(cfg.tile_size * 2))
    >>> est.beta2 < 0.5   # sorted input: merge stage nearly conflict free
    True
    """
    result = PairwiseMergeSort(config).sort(
        values, score_blocks=score_blocks, seed=seed
    )
    estimate = betas_from_result(result)
    if with_inversions:
        from repro.analysis.inversions import count_inversions

        estimate = BetaEstimate(
            beta1=estimate.beta1,
            beta2=estimate.beta2,
            inversion_count=count_inversions(np.asarray(values)),
        )
    return estimate
