"""Correlation statistics for the conflicts-predict-runtime claims.

Karsin et al. "showed a strong correlation between the number of bank
conflicts and the runtime" (paper Section II-C), and Figure 6 leans on the
same relationship. This module provides the two statistics the claim needs:
Pearson's r (linear association) and Spearman's rank correlation (the
"relative performance predicts relative performance" form the paper
actually uses).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError

__all__ = ["pearson_r", "spearman_rho"]


def _validate(xs, ys) -> tuple[np.ndarray, np.ndarray]:
    xs = np.asarray(xs, dtype=np.float64)
    ys = np.asarray(ys, dtype=np.float64)
    if xs.ndim != 1 or xs.shape != ys.shape:
        raise ValidationError(
            f"series must be equal-length 1-D, got {xs.shape} and {ys.shape}"
        )
    if xs.size < 2:
        raise ValidationError("correlation needs at least 2 points")
    return xs, ys


def pearson_r(xs, ys) -> float:
    """Pearson's linear correlation coefficient.

    >>> round(pearson_r([1, 2, 3], [2, 4, 6]), 6)
    1.0
    >>> round(pearson_r([1, 2, 3], [3, 2, 1]), 6)
    -1.0
    """
    xs, ys = _validate(xs, ys)
    dx = xs - xs.mean()
    dy = ys - ys.mean()
    denominator = float(np.sqrt((dx * dx).sum() * (dy * dy).sum()))
    if denominator == 0.0:
        raise ValidationError("correlation undefined for a constant series")
    return float((dx * dy).sum() / denominator)


def spearman_rho(xs, ys) -> float:
    """Spearman's rank correlation (Pearson on average ranks).

    >>> spearman_rho([1, 10, 100], [2, 3, 4])   # monotone -> 1.0
    1.0
    """
    xs, ys = _validate(xs, ys)
    return pearson_r(_ranks(xs), _ranks(ys))


def _ranks(values: np.ndarray) -> np.ndarray:
    """Average ranks (ties share their mean rank)."""
    order = np.argsort(values, kind="stable")
    ranks = np.empty(values.size, dtype=np.float64)
    ranks[order] = np.arange(1, values.size + 1, dtype=np.float64)
    # Average tied groups.
    sorted_vals = values[order]
    i = 0
    while i < values.size:
        j = i
        while j + 1 < values.size and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        if j > i:
            ranks[order[i : j + 1]] = ranks[order[i : j + 1]].mean()
        i = j + 1
    return ranks
