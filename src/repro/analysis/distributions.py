"""Per-step serialization distributions.

Aggregate conflict counts say *how much* serialization an input causes;
the distribution of per-step costs says *how*. The constructed worst case
concentrates probability mass at exactly ``E`` (every targeted step is an
``E``-way pile-up); random inputs follow the balls-in-bins max-load law
(mass at 3–4 for ``w = 32``); sorted inputs sit at 1. The distribution is
also the right place to see *tail* behavior that averages hide.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.sort.pairwise import SortResult

__all__ = ["StepCostDistribution", "step_cost_distribution"]


@dataclass(frozen=True)
class StepCostDistribution:
    """Histogram of per-warp-step serialized cycle costs."""

    counts: np.ndarray  # counts[c] = number of steps costing c cycles

    @property
    def num_steps(self) -> int:
        """Steps observed."""
        return int(self.counts.sum())

    @property
    def max_cost(self) -> int:
        """The worst single step observed."""
        nz = np.nonzero(self.counts)[0]
        return int(nz[-1]) if nz.size else 0

    def fraction_at_least(self, cost: int) -> float:
        """Fraction of steps costing ``>= cost`` cycles."""
        if cost < 0:
            raise ValidationError(f"cost must be nonnegative, got {cost}")
        if self.num_steps == 0:
            return 0.0
        start = min(cost, self.counts.size)
        return float(self.counts[start:].sum()) / self.num_steps

    def mean_cost(self) -> float:
        """Average serialized cycles per step."""
        if self.num_steps == 0:
            return 0.0
        costs = np.arange(self.counts.size)
        return float((costs * self.counts).sum()) / self.num_steps

    def quantile(self, q: float) -> int:
        """The ``q``-quantile of step cost (0 <= q <= 1)."""
        if not 0.0 <= q <= 1.0:
            raise ValidationError(f"q must be in [0, 1], got {q}")
        if self.num_steps == 0:
            return 0
        cumulative = np.cumsum(self.counts)
        return int(np.searchsorted(cumulative, q * self.num_steps))

    def as_rows(self) -> list[dict]:
        """Table rows for rendering (nonzero cost buckets only)."""
        return [
            {"cost": int(c), "steps": int(n),
             "fraction": float(n) / self.num_steps}
            for c, n in enumerate(self.counts)
            if n
        ]


def step_cost_distribution(
    result: SortResult, *, stage: str = "merge", kinds: tuple = ("global",)
) -> StepCostDistribution:
    """Histogram the per-step costs of one instrumented sort.

    Parameters
    ----------
    result:
        An instrumented sort result.
    stage:
        ``"merge"`` (β₂ accesses) or ``"partition"`` (β₁).
    kinds:
        Round kinds to include (default: the global rounds the paper's
        analysis centers on).
    """
    if stage not in ("merge", "partition"):
        raise ValidationError(f"stage must be 'merge' or 'partition', got {stage!r}")
    per_step = []
    for r in result.rounds:
        if r.kind not in kinds:
            continue
        report = r.merge_report if stage == "merge" else r.partition_report
        per_step.append(report.per_step_transactions)
    if not per_step:
        return StepCostDistribution(counts=np.zeros(1, dtype=np.int64))
    flat = np.concatenate(per_step)
    return StepCostDistribution(
        counts=np.bincount(flat, minlength=int(flat.max()) + 1 if flat.size else 1)
    )
