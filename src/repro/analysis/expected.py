"""Balls-in-bins expectations for one warp step.

If a warp step issues ``k`` requests to banks chosen independently and
uniformly from ``w`` banks (a reasonable model for the merge stage on
random inputs — each thread's next element sits at an essentially random
offset), then:

* the expected number of **occupied banks** is
  ``w·(1 − (1 − 1/w)^k)`` (linearity over banks), so the expected
  **replays** (requests minus occupied banks) are exact in closed form;
* the expected **serialization** (cost in cycles = the max bank load) is
  the classic maximum-load statistic, ``≈ ln w / ln ln w`` at ``k = w``,
  estimated here by Monte Carlo.

These are the quantities the simulator's measured random-input rates must
(and do — see ``tests/analysis``) agree with, which both validates the
simulator and supplies the expected-case story the paper leaves open.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import as_generator
from repro.utils.validation import check_positive_int, check_power_of_two

__all__ = [
    "expected_occupied_banks",
    "expected_replays_per_step",
    "max_load_monte_carlo",
]


def expected_occupied_banks(w: int, k: int | None = None) -> float:
    """Expected distinct banks hit by ``k`` uniform requests (exact).

    >>> round(expected_occupied_banks(32), 2)
    20.41
    """
    w = check_power_of_two(w, "w")
    k = w if k is None else check_positive_int(k, "k")
    return w * (1.0 - (1.0 - 1.0 / w) ** k)


def expected_replays_per_step(w: int, k: int | None = None) -> float:
    """Expected profiler-style conflicts of one step (exact).

    Replays = requests − occupied banks:

    >>> round(expected_replays_per_step(32), 2)
    11.59
    """
    k = w if k is None else k
    return k - expected_occupied_banks(w, k)


def max_load_monte_carlo(
    w: int, k: int | None = None, trials: int = 20000, seed=0
) -> tuple[float, float]:
    """Monte-Carlo estimate of the expected max bank load (serialized
    cycles of one step) with its standard error.

    At ``w = k = 32`` the value is ≈ 3.4 — exactly the per-step
    serialization the simulator measures for random inputs, and the reason
    a random-input merge already runs ~3× slower than conflict-free.
    """
    w = check_power_of_two(w, "w")
    k = w if k is None else check_positive_int(k, "k")
    check_positive_int(trials, "trials")
    rng = as_generator(seed)
    banks = rng.integers(0, w, size=(trials, k))
    # Per-trial max multiplicity, vectorized: offset each trial's banks
    # into its own range and bincount once.
    offsets = (np.arange(trials, dtype=np.int64) * w)[:, None]
    counts = np.bincount((banks + offsets).ravel(), minlength=trials * w)
    loads = counts.reshape(trials, w).max(axis=1)
    return float(loads.mean()), float(loads.std(ddof=1) / np.sqrt(trials))
