"""Inversion counting.

Karsin et al. observed (paper Section II-A) that the measured ``β`` values
grow with the number of inversions in the input; this module supplies the
inversion statistics the analysis benches correlate against. Counting is
``O(n log n)`` via a merge-sort sweep, vectorized with ``searchsorted`` at
each level.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError

__all__ = ["count_inversions", "inversion_fraction", "max_inversions"]


def count_inversions(values: np.ndarray) -> int:
    """Number of pairs ``i < j`` with ``values[i] > values[j]``.

    >>> count_inversions(np.array([3, 1, 2]))
    2
    >>> count_inversions(np.arange(5))
    0
    """
    values = np.asarray(values)
    if values.ndim != 1:
        raise ValidationError(f"values must be 1-D, got shape {values.shape}")
    n = values.size
    if n < 2:
        return 0

    # Bottom-up merge counting: when merging sorted halves A, B, each
    # element a of A contributes (# of B strictly smaller than a) pairs it
    # appears after... inversions between halves = Σ_a |{b in B : b < a}|.
    arr = values.copy()
    total = 0
    width = 1
    while width < n:
        for base in range(0, n, 2 * width):
            a = arr[base : base + width]
            b = arr[base + width : base + 2 * width]
            if b.size == 0:
                continue
            total += int(np.searchsorted(b, a, side="left").sum())
            merged = np.empty(a.size + b.size, dtype=arr.dtype)
            rank_a = np.arange(a.size) + np.searchsorted(b, a, side="left")
            mask = np.zeros(merged.size, dtype=bool)
            mask[rank_a] = True
            merged[mask] = a
            merged[~mask] = b
            arr[base : base + merged.size] = merged
        width *= 2
    return total


def max_inversions(n: int) -> int:
    """Inversions of a strictly decreasing sequence: ``n(n−1)/2``."""
    if n < 0:
        raise ValidationError(f"n must be nonnegative, got {n}")
    return n * (n - 1) // 2


def inversion_fraction(values: np.ndarray) -> float:
    """Inversions normalized to [0, 1] (0 = sorted, 1 = reversed)."""
    values = np.asarray(values)
    peak = max_inversions(values.size)
    if peak == 0:
        return 0.0
    return count_inversions(values) / peak
