"""Runtime-variance study — the paper's Conclusion, point 4.

The paper's closing argument for caring about worst cases: "the runtimes on
the worst-case inputs represent an extreme end of the possible runtime
variance", and a dozen random samples (the typical GPU-paper methodology it
criticizes in Section II-C) say nothing about that tail. This module makes
the argument quantitative: sample many random permutations, locate the
constructed input in the resulting runtime distribution, and report how
many sampled standard deviations it sits from the mean — i.e. how invisible
it is to random testing.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.device import DeviceSpec
from repro.gpu.occupancy import occupancy
from repro.gpu.timing import TimingModel
from repro.inputs.generators import generate
from repro.sort.config import SortConfig
from repro.sort.pairwise import PairwiseMergeSort
from repro.utils.validation import check_positive_int

__all__ = ["VarianceStudy", "variance_study"]


@dataclass(frozen=True)
class VarianceStudy:
    """Distribution of random-input runtimes vs the constructed input."""

    num_elements: int
    samples_ms: np.ndarray
    worst_ms: float

    @property
    def mean_ms(self) -> float:
        """Mean random-input runtime."""
        return float(self.samples_ms.mean())

    @property
    def std_ms(self) -> float:
        """Random-input runtime standard deviation."""
        return float(self.samples_ms.std(ddof=1)) if self.samples_ms.size > 1 else 0.0

    @property
    def spread_percent(self) -> float:
        """Max/min spread of the random samples, in percent."""
        lo, hi = float(self.samples_ms.min()), float(self.samples_ms.max())
        return (hi / lo - 1.0) * 100.0

    @property
    def worst_slowdown_percent(self) -> float:
        """Constructed-input slowdown vs the random mean."""
        return (self.worst_ms / self.mean_ms - 1.0) * 100.0

    @property
    def z_score(self) -> float:
        """How many random-sample standard deviations the worst case sits
        above the mean (∞ if the samples don't vary)."""
        if self.std_ms == 0.0:
            return float("inf")
        return (self.worst_ms - self.mean_ms) / self.std_ms

    def summary(self) -> str:
        """One-line human-readable verdict."""
        return (
            f"random runtimes {self.mean_ms:.3f}±{self.std_ms:.3f} ms "
            f"(spread {self.spread_percent:.1f}%); constructed input "
            f"{self.worst_ms:.3f} ms = +{self.worst_slowdown_percent:.1f}% "
            f"({self.z_score:.0f} sigmas out)"
        )


def variance_study(
    config: SortConfig,
    device: DeviceSpec,
    num_elements: int,
    *,
    num_samples: int = 12,
    score_blocks: int | None = 8,
    seed: int = 0,
) -> VarianceStudy:
    """Sample random-input runtimes and place the worst case among them.

    ``num_samples`` defaults to 12 — "at most a dozen random inputs", the
    methodology the paper's Section II-C calls statistically meaningless
    for a space of ``n!`` permutations.
    """
    check_positive_int(num_samples, "num_samples")
    n = config.validate_input_size(num_elements)
    sorter = PairwiseMergeSort(config)
    occ = occupancy(device, config.b, config.shared_bytes_per_block)
    model = TimingModel(device)

    def run_ms(data) -> float:
        result = sorter.sort(data, score_blocks=score_blocks)
        return model.milliseconds(result.kernel_cost(occ.warps_per_sm))

    samples = np.array(
        [
            run_ms(generate("random", config, n, seed=seed + i))
            for i in range(num_samples)
        ]
    )
    worst_ms = run_ms(generate("worst-case", config, n))
    return VarianceStudy(num_elements=n, samples_ms=samples, worst_ms=worst_ms)
