"""Closed-form analytic scoring for the constructed input families.

``repro.analytic`` derives exact :class:`~repro.sort.pairwise.SortResult`
instrumentation for the adversarial, sorted, reverse, and sawtooth
families in ``O(rounds)`` arithmetic — no trace simulation — and is
bit-identical to the vectorized simulator on every eligible point (see
``tests/sort/test_analytic_equivalence.py``). Exposed through
``PairwiseMergeSort(scoring="analytic")`` and the bench/service layers.
"""

from repro.analytic.engine import AnalyticEngine
from repro.analytic.families import (
    ANALYTIC_FAMILIES,
    FamilyModel,
    analytic_model,
    detect_model,
    is_analytic_eligible,
)

__all__ = [
    "ANALYTIC_FAMILIES",
    "AnalyticEngine",
    "FamilyModel",
    "analytic_model",
    "detect_model",
    "is_analytic_eligible",
]
