"""The closed-form analytic scoring engine.

Derives a complete :class:`~repro.sort.pairwise.SortResult` for an
analytic-eligible input family in ``O(rounds)`` arithmetic — no trace
simulation over the ``N`` elements. The result is **bit-identical** to
``PairwiseMergeSort(scoring="vectorized")`` on the same input (enforced by
``tests/sort/test_analytic_equivalence.py``), because every number still
comes from the simulator's own primitives, just applied to one
representative tile per *pattern class* instead of to every block:

* the family model (:mod:`repro.analytic.families`) gives each round's
  from-A mask in closed form; all pairs share it, and a global round's
  blocks fall into at most a few period-phase classes;
* each class's merge trace is the mask's rank→address row pushed through
  the same ``batched_rank_addresses`` / ``stack_warp_steps`` /
  ``report_segments`` pipeline the memoized simulator uses for a missed
  tile;
* the β₁ partition probes are replayed against a *rank surrogate* — the
  tile's merge ranks as values. The bisection comparisons ``A[i] ≤ B[j]``
  of a stable merge hold exactly when ``A[i]`` precedes ``B[j]`` in the
  merged order, which the rank surrogate reproduces, so the probe
  sequence (and its trace) is identical to the real data's;
* the round total folds class reports with
  :meth:`~repro.dmm.conflicts.ConflictReport.scaled` /
  :meth:`~repro.dmm.conflicts.ConflictReport.merged` in block order —
  materializing the same per-step sequence the batched pass counts;
* block sampling consumes the RNG exactly like the simulator's
  ``_choose_blocks`` (a draw happens only when sampling actually
  restricts), so sampled results match draw for draw;
* global traffic, compute instructions and the base register phase are
  the simulator's own closed forms.

Class and round reports are cached inside the engine, so a size sweep pays
the (already tiny) per-class scoring once and every further point is a few
dictionary lookups per round — microseconds, against ~100 ms for a
simulated service request. Because nothing iterates over elements, exact
results at sizes like ``2^34`` cost the same as at ``2^17``.
"""

from __future__ import annotations

import numpy as np

from repro.analytic.families import FamilyModel
from repro.dmm.conflicts import ConflictReport, count_conflicts, report_segments
from repro.dmm.trace import AccessTrace
from repro.errors import ValidationError
from repro.gpu.global_memory import CoalescingModel, GlobalTraffic
from repro.mergepath.kernels import (
    batched_rank_addresses,
    stack_group_warp_steps,
    stack_warp_steps,
    thread_rank_addresses,
)
from repro.mergepath.partition import partition_many_with_trace
from repro.sort.config import SortConfig
from repro.sort.networks import oddeven_network
from repro.sort.pairwise import RoundStats, SortResult
from repro.utils.bits import ceil_log2
from repro.utils.rng import as_generator
from repro.utils.validation import check_nonnegative_int

__all__ = ["AnalyticEngine"]


class AnalyticEngine:
    """Closed-form scorer for one ``(config, padding)`` pair.

    Create once and reuse: the per-class and per-round report caches make
    repeated points (a size sweep, a stream of service requests) nearly
    free. The engine is deterministic and side-effect free apart from its
    internal caches.
    """

    def __init__(self, config: SortConfig, padding: int = 0):
        self.config = config
        self.padding = check_nonnegative_int(padding, "padding")
        #: class key -> (merge_report, partition_report) for one block/tile
        self._class_reports: dict[tuple, tuple[ConflictReport, ConflictReport]] = {}
        #: (plan, factor) -> assembled round report pair
        self._round_reports: dict[tuple, tuple[ConflictReport, ConflictReport]] = {}
        #: single-tile staging report of the base register phase (unscaled)
        self._staging_tile: ConflictReport | None = None
        #: fully-assembled RoundStats for deterministic (unsampled) rounds,
        #: keyed by (kind, run, n, mask key); RoundStats and its reports are
        #: never mutated after construction, so sharing one instance across
        #: results is safe and makes warm repeat points a dict lookup per
        #: round.
        self._stats_cache: dict[tuple, RoundStats] = {}

    # -- public API ----------------------------------------------------------

    def sort_result(
        self,
        model: FamilyModel,
        *,
        score_blocks: int | None = None,
        seed: int | None = 0,
        include_values: bool = True,
    ) -> SortResult:
        """Derive the full :class:`SortResult` for ``model``.

        Mirrors ``PairwiseMergeSort.sort`` parameter for parameter;
        ``include_values=False`` skips materializing the ``O(N)`` sorted
        output (the bench runner's huge-``N`` path — every counter is
        still exact).
        """
        cfg = self.config
        n = cfg.validate_input_size(model.num_elements)
        if model.config != cfg:
            raise ValidationError(
                f"model built for config {model.config!r} cannot be scored "
                f"under {cfg!r}"
            )
        rng = as_generator(seed)
        values = (
            model.output_values()
            if include_values
            else np.empty(0, dtype=np.int64)
        )
        result = SortResult(values=values, config=cfg, num_elements=n)
        result.rounds.append(self._base_round(n))
        run = cfg.E
        while run < n:
            mask = model.round_mask(run)
            if 2 * run <= cfg.tile_size:
                result.rounds.append(
                    self._block_round(mask, run, n, score_blocks, rng)
                )
            else:
                result.rounds.append(
                    self._global_round(mask, run, n, score_blocks, rng)
                )
            run *= 2
        return result

    # -- phases --------------------------------------------------------------

    def _base_round(self, n: int) -> RoundStats:
        """The register phase: one staged tile, scaled to the whole input."""
        cfg = self.config
        cached = self._stats_cache.get(("registers", n))
        if cached is not None:
            return cached
        tiles = n // cfg.tile_size
        if self._staging_tile is None:
            step_matrix = thread_rank_addresses(
                np.arange(cfg.tile_size, dtype=np.int64), cfg.E
            )
            stacked = self._physical(stack_warp_steps(step_matrix, cfg.w))
            self._staging_tile = count_conflicts(
                AccessTrace.from_dense(stacked), cfg.w
            )
        comparator_ops = len(oddeven_network(cfg.E)) * (n // cfg.E)
        coalescing = CoalescingModel(cfg.w)
        coalescing.streamed_copy(n)
        coalescing.streamed_copy(n)
        stats = self._stats_cache[("registers", n)] = RoundStats(
            label="base-registers",
            kind="registers",
            run_length=cfg.E,
            merge_report=ConflictReport.empty(cfg.w),
            partition_report=ConflictReport.empty(cfg.w),
            staging_report=self._staging_tile.scaled(2 * tiles),
            global_traffic=coalescing.reset(),
            compute_instructions=comparator_ops // cfg.w,
            blocks_total=tiles,
            blocks_scored=tiles,
        )
        return stats

    def _block_round(
        self, mask, run: int, n: int, score_blocks: int | None, rng
    ) -> RoundStats:
        """One block-level round: a single pattern class across all tiles."""
        cfg = self.config
        tiles = n // cfg.tile_size
        count, idx = _select_blocks(tiles, score_blocks, rng)
        if idx is None:
            stats_key = ("block", run, n, mask.key)
            cached = self._stats_cache.get(stats_key)
            if cached is not None:
                return cached
        scored = count if idx is None else idx.size
        key = ("block", run, mask.key)
        if key not in self._class_reports:
            self._class_reports[key] = self._score_block_class(mask, run)
        merge, part = self._fold(((key, scored),), 1)
        stats = RoundStats(
            label=f"block-round-L{run}",
            kind="block",
            run_length=run,
            merge_report=merge,
            partition_report=part,
            staging_report=ConflictReport.empty(cfg.w),
            global_traffic=GlobalTraffic(),  # block rounds stay on-chip
            compute_instructions=3 * n // cfg.w,
            blocks_total=tiles,
            blocks_scored=scored,
        )
        if idx is None:
            self._stats_cache[stats_key] = stats
        return stats

    def _global_round(
        self, mask, run: int, n: int, score_blocks: int | None, rng
    ) -> RoundStats:
        """One global round: fold the mask's phase classes in block order."""
        cfg = self.config
        tile = cfg.tile_size
        blocks_per_pair = (2 * run) // tile
        num_pairs = n // (2 * run)
        blocks_total = num_pairs * blocks_per_pair
        count, idx = _select_blocks(blocks_total, score_blocks, rng)

        if idx is None:
            stats_key = ("global", run, n, mask.key)
            cached = self._stats_cache.get(stats_key)
            if cached is not None:
                return cached
            pair_plan, repeats = mask.global_pair_plan(tile, run)
            factor = repeats * num_pairs
        else:
            ids = mask.global_class_of(idx % blocks_per_pair, tile, run)
            pair_plan = _rle(ids.tolist())
            factor = 1
        plan = tuple(
            (("global", mask.key, class_id), stretch)
            for class_id, stretch in pair_plan
        )
        for key, _ in plan:
            if key not in self._class_reports:
                local, na = mask.global_geometry(key[2], tile)
                self._class_reports[key] = self._score_global_class(local, na)
        merge, part = self._fold(plan, factor)

        coalescing = CoalescingModel(cfg.w)
        coalescing.streamed_copy(n)
        coalescing.streamed_copy(n)
        probes_per_block = 2 * ceil_log2(run + 1)
        coalescing.scattered_access(blocks_total * probes_per_block)
        stats = RoundStats(
            label=f"global-round-L{run}",
            kind="global",
            run_length=run,
            merge_report=merge,
            partition_report=part,
            staging_report=ConflictReport.empty(cfg.w),
            global_traffic=coalescing.reset(),
            compute_instructions=3 * n // cfg.w,
            blocks_total=blocks_total,
            blocks_scored=count if idx is None else idx.size,
        )
        if idx is None:
            self._stats_cache[stats_key] = stats
        return stats

    # -- class scoring (simulator primitives on one representative tile) ----

    def _physical(self, step_matrix: np.ndarray) -> np.ndarray:
        if not self.padding:
            return step_matrix
        from repro.mitigation.padding import pad_addresses

        return pad_addresses(step_matrix, self.config.warp_size, self.padding)

    def _tile_reports(
        self, row: np.ndarray, probe_steps: np.ndarray
    ) -> tuple[ConflictReport, ConflictReport]:
        """Score one tile's rank→address row + β₁ probe matrix, exactly as
        the memoized simulator scores a missed tile."""
        cfg = self.config
        merge_dense = self._physical(
            stack_warp_steps(batched_rank_addresses(row[None, :], cfg.E), cfg.w)
        )
        rows_per_tile = (cfg.b // cfg.w) * cfg.E
        merge = report_segments(
            AccessTrace.from_dense(merge_dense),
            cfg.w,
            np.array([0, rows_per_tile], dtype=np.int64),
        )[0]
        stacked, group_rows = stack_group_warp_steps(
            probe_steps, 1, cfg.w, return_group_rows=True
        )
        part = report_segments(
            AccessTrace.from_dense(self._physical(stacked)),
            cfg.w,
            np.concatenate(([0], np.cumsum(group_rows))),
        )[0]
        return merge, part

    def _score_block_class(
        self, mask, run: int
    ) -> tuple[ConflictReport, ConflictReport]:
        """Representative tile of a block round (all tiles are identical)."""
        cfg = self.config
        pair_width = 2 * run
        pairs_per_tile = cfg.tile_size // pair_width
        order = mask.block_order(run)
        pair_bases = (
            np.arange(pairs_per_tile, dtype=np.int64)[:, None] * pair_width
        )
        row = (order[None, :] + pair_bases).reshape(cfg.tile_size)

        # Rank surrogate: position r of the pair holds its merge rank, so
        # the bisection comparisons (A[i] <= B[j] iff A[i] precedes B[j])
        # replay the real probe sequence.
        ranks = np.empty(pair_width, dtype=np.int64)
        ranks[order] = np.arange(pair_width, dtype=np.int64)
        surrogate = np.tile(ranks, pairs_per_tile)

        t_ranks = np.arange(cfg.b, dtype=np.int64) * cfg.E
        local_base = (t_ranks // pair_width) * pair_width
        lens = np.full(cfg.b, run, dtype=np.int64)
        _, probe_steps = partition_many_with_trace(
            surrogate,
            a_base=local_base,
            a_len=lens,
            b_base=local_base + run,
            b_len=lens,
            diagonals=t_ranks % pair_width,
            trace_a_base=local_base,
            trace_b_base=local_base + run,
        )
        return self._tile_reports(row, probe_steps)

    def _score_global_class(
        self, local: np.ndarray, na: int
    ) -> tuple[ConflictReport, ConflictReport]:
        """Representative block of one global-round phase class."""
        cfg = self.config
        tile = cfg.tile_size
        surrogate = np.empty(tile, dtype=np.int64)
        surrogate[local] = np.arange(tile, dtype=np.int64)
        _, probe_steps = partition_many_with_trace(
            surrogate,
            a_base=np.zeros(cfg.b, dtype=np.int64),
            a_len=np.full(cfg.b, na, dtype=np.int64),
            b_base=np.full(cfg.b, na, dtype=np.int64),
            b_len=np.full(cfg.b, tile - na, dtype=np.int64),
            diagonals=np.arange(cfg.b, dtype=np.int64) * cfg.E,
            trace_a_base=np.zeros(cfg.b, dtype=np.int64),
            trace_b_base=np.full(cfg.b, na, dtype=np.int64),
        )
        return self._tile_reports(local, probe_steps)

    # -- assembly ------------------------------------------------------------

    def _fold(
        self, plan: tuple, factor: int
    ) -> tuple[ConflictReport, ConflictReport]:
        """Fold class reports per ``plan`` stretches, then scale the whole
        sequence by ``factor`` — materialized-identical to the simulator's
        per-block assembly (``_assemble_reports``) over the same round."""
        cached = self._round_reports.get((plan, factor))
        if cached is not None:
            return cached
        cfg = self.config
        merge = ConflictReport.empty(cfg.w)
        part = ConflictReport.empty(cfg.w)
        for key, count in plan:
            class_merge, class_part = self._class_reports[key]
            merge = merge.merged(
                class_merge if count == 1 else class_merge.scaled(count)
            )
            part = part.merged(
                class_part if count == 1 else class_part.scaled(count)
            )
        if factor != 1:
            merge = merge.scaled(factor)
            part = part.scaled(factor)
        assembled = (merge, part)
        self._round_reports[(plan, factor)] = assembled
        return assembled


def _select_blocks(
    total: int, score_blocks: int | None, rng: np.random.Generator
):
    """Replicate ``repro.sort.pairwise._choose_blocks`` semantics without
    materializing the trace-everything index vector.

    Returns ``(total, None)`` when every block is scored (no RNG draw —
    exactly like the simulator) and ``(k, sorted_indices)`` when sampling;
    the draw is bit-identical to the simulator's, which keeps sampled
    analytic results matching the traced ones draw for draw.
    """
    if score_blocks is not None and score_blocks < 1:
        raise ValidationError(f"score_blocks must be >= 1, got {score_blocks}")
    if score_blocks is None or score_blocks >= total:
        return total, None
    idx = np.sort(rng.choice(total, size=score_blocks, replace=False)).astype(
        np.int64
    )
    return score_blocks, idx


def _rle(ids: list) -> list[tuple[int, int]]:
    """Run-length encode class ids in order (sampled-round fold plans)."""
    plan: list[tuple[int, int]] = []
    for i in ids:
        i = int(i)
        if plan and plan[-1][0] == i:
            plan[-1] = (i, plan[-1][1] + 1)
        else:
            plan.append((i, 1))
    return plan
