"""Closed-form interleaving models for the constructed input families.

The analytic engine (:mod:`repro.analytic.engine`) never simulates a
merge — it needs only, for every round, the *from-A mask*: which output
ranks of a pair the stable merge draws from the first run. For four input
families that mask is known in closed form at every round:

* **sorted** (any non-decreasing input): every run's values precede the
  next run's, so each merge is ``A`` then ``B`` — the sorted interleaving.
* **reverse** (any *strictly* decreasing input): each run's values all
  exceed the next run's, so each merge is ``B`` then ``A``. Strictness
  matters: on equal keys the stable merge takes ``A`` first, which would
  break the all-B-first mask.
* **sawtooth** (the canonical generator with a power-of-two tooth count):
  runs merge whole teeth. While a pair sits inside one tooth the mask is
  sorted; once runs span ``k`` teeth the merged order cycles through the
  ``2k`` teeth of the pair — a periodic mask of period ``2k``.
* **worst-case** (the paper's construction): the mask *is* the round
  interleaving the adversary prescribed —
  :func:`repro.adversary.interleave.round_interleave` verbatim, i.e. the
  ``2wE``-periodic ``L``/``R`` warp pattern on constructible rounds and the
  sorted interleaving elsewhere.

Every round's mask is therefore one of three shapes (:class:`RoundMask`):
sorted, reverse, or periodic with a short period — which is what makes a
whole sort derivable in ``O(rounds)`` arithmetic. All pairs of a round
share one mask, and a global round's blocks fall into at most a handful of
*classes* (period phases), each scored once.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import cached_property

import numpy as np

from repro.errors import ConstructionError, SimulationError, ValidationError
from repro.sort.config import SortConfig
from repro.utils.bits import is_power_of_two

__all__ = [
    "ANALYTIC_FAMILIES",
    "FamilyModel",
    "RoundMask",
    "analytic_model",
    "detect_model",
    "is_analytic_eligible",
]

#: Input-generator names the analytic engine can score in closed form
#: (subject to per-family eligibility — see :func:`is_analytic_eligible`).
ANALYTIC_FAMILIES = ("sorted", "reverse", "sawtooth", "worst-case")


@dataclass(frozen=True)
class RoundMask:
    """The from-A mask of one merge round, in closed form.

    ``kind`` is ``"sorted"`` (first half ``A``), ``"reverse"`` (second half
    ``A``), or ``"periodic"`` (``period`` tiled across the pair width; its
    length always divides ``2·run``).
    """

    kind: str
    period: np.ndarray | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("sorted", "reverse", "periodic"):
            raise ValidationError(f"unknown mask kind {self.kind!r}")
        if (self.period is None) != (self.kind != "periodic"):
            raise ValidationError("period is required iff kind='periodic'")

    @cached_property
    def key(self) -> tuple:
        """Hashable identity of the mask pattern (cache key component)."""
        if self.kind == "periodic":
            return ("periodic", self.period.tobytes())
        return (self.kind,)

    def materialize(self, run: int) -> np.ndarray:
        """The full ``(2·run,)`` bool mask (block rounds only — cheap)."""
        width = 2 * run
        if self.kind == "periodic":
            if width % self.period.size:
                raise SimulationError(
                    f"mask period {self.period.size} does not divide pair "
                    f"width {width}"
                )
            return np.tile(self.period, width // self.period.size)
        mask = np.zeros(width, dtype=bool)
        if self.kind == "sorted":
            mask[:run] = True
        else:
            mask[run:] = True
        return mask

    def block_order(self, run: int) -> np.ndarray:
        """The stable-merge ``order`` row: source index of each output rank.

        Mirrors the simulator's ``argsort`` result: rank ``r`` reads
        ``A``-index ``(#True ≤ r) − 1`` when the mask is set, else ``run +
        (#False ≤ r) − 1``.
        """
        mask = self.materialize(run)
        csum = np.cumsum(mask)
        ranks = np.arange(2 * run, dtype=np.int64)
        return np.where(mask, csum - 1, run + ranks - csum).astype(np.int64)

    # -- global-round class structure ---------------------------------------

    def global_class_of(self, block_in_pair: np.ndarray | int, tile: int, run: int):
        """Class id(s) of the given block position(s) within a pair.

        Periodic masks classify by period phase ``(x·tile) mod P``; the
        sorted/reverse masks split a pair's blocks into an all-A and an
        all-B half (id 1 = the from-A class).
        """
        x = np.asarray(block_in_pair, dtype=np.int64)
        if self.kind == "periodic":
            ids = (x * tile) % self.period.size
        else:
            half = run // tile
            from_a = x < half if self.kind == "sorted" else x >= half
            ids = from_a.astype(np.int64)
        return int(ids) if np.isscalar(block_in_pair) else ids

    def global_geometry(self, class_id: int, tile: int) -> tuple[np.ndarray, int]:
        """``(local_row, na)`` of one class: the tile-local rank→address map
        and the A-window length — everything the conflict scoring of a
        global block depends on (the simulator's ``_global_patterns``
        derives exactly this pair from the traced merge)."""
        if self.kind != "periodic":
            na = tile if class_id else 0
            return np.arange(tile, dtype=np.int64), na
        p = self.period.size
        window = self.period[(class_id + np.arange(tile, dtype=np.int64)) % p]
        inclusive = np.cumsum(window)
        na = int(inclusive[-1])
        prefix = inclusive - window
        idx = np.arange(tile, dtype=np.int64)
        local = np.where(window, prefix, na + idx - prefix).astype(np.int64)
        return local, na

    def global_pair_plan(self, tile: int, run: int) -> tuple[list[tuple[int, int]], int]:
        """Fold plan of one pair's blocks: ``([(class_id, count)], repeats)``.

        The plan lists class stretches in block order; the whole pair is the
        plan repeated ``repeats`` times. Scaling a fold of the plan by
        ``repeats × num_pairs`` reproduces, bit for bit, the per-step
        sequence of folding every block in round order.
        """
        blocks_per_pair = (2 * run) // tile
        if self.kind != "periodic":
            half = blocks_per_pair // 2
            a_first = self.kind == "sorted"
            return ([(1, half), (0, half)] if a_first else [(0, half), (1, half)]), 1
        p = self.period.size
        cycle = p // math.gcd(tile, p)
        if blocks_per_pair % cycle:
            raise SimulationError(
                f"class cycle {cycle} does not divide blocks-per-pair "
                f"{blocks_per_pair}"
            )
        ids = [int((x * tile) % p) for x in range(cycle)]
        return _run_length(ids), blocks_per_pair // cycle


def _run_length(ids) -> list[tuple[int, int]]:
    """Run-length encode a sequence of class ids (order-preserving)."""
    plan: list[tuple[int, int]] = []
    for i in ids:
        if plan and plan[-1][0] == i:
            plan[-1] = (i, plan[-1][1] + 1)
        else:
            plan.append((int(i), 1))
    return plan


@dataclass
class FamilyModel:
    """One analytic-eligible input bound to a configuration and size.

    ``round_mask(run)`` yields the closed-form from-A mask of the round
    merging runs of length ``run``; ``output_values()`` is the sorted
    output (without running a sort).
    """

    name: str
    config: SortConfig
    num_elements: int
    #: For data-backed models (sorted/reverse detection), the original
    #: input; ``None`` for the canonical generator outputs.
    data: np.ndarray | None = field(default=None, repr=False)

    def round_mask(self, run: int) -> RoundMask:
        raise NotImplementedError

    def output_values(self) -> np.ndarray:
        """The sorted result (canonical families are permutations of
        ``0 … N−1``)."""
        return np.arange(self.num_elements, dtype=np.int64)


class SortedModel(FamilyModel):
    """Any non-decreasing input: every round's mask is the sorted one."""

    _MASK = RoundMask("sorted")

    def round_mask(self, run: int) -> RoundMask:
        return self._MASK

    def output_values(self) -> np.ndarray:
        if self.data is not None:
            return np.ascontiguousarray(self.data).copy()
        return super().output_values()


class ReverseModel(FamilyModel):
    """Any strictly decreasing input: every round's mask is all-B-first."""

    _MASK = RoundMask("reverse")

    def round_mask(self, run: int) -> RoundMask:
        return self._MASK

    def output_values(self) -> np.ndarray:
        if self.data is not None:
            return np.ascontiguousarray(self.data)[::-1].copy()
        return super().output_values()


class SawtoothModel(FamilyModel):
    """The canonical sawtooth generator output (power-of-two teeth).

    Tooth ``m`` holds values ``{j·teeth + m}``, so a sorted run spanning
    ``k`` whole teeth lists them round-robin; merging two such runs cycles
    through ``2k`` teeth — mask ``(r mod 2k) < k``. While ``2·run`` still
    fits inside one tooth the merge is benign (sorted mask). Eligibility
    (``teeth | N``, tooth period a tile multiple) keeps every round in
    exactly one of the two regimes.
    """

    def __init__(self, config: SortConfig, num_elements: int, teeth: int = 8):
        super().__init__("sawtooth", config, num_elements)
        if not _sawtooth_eligible(config, num_elements, teeth):
            raise ValidationError(
                f"sawtooth(N={num_elements}, teeth={teeth}) is not "
                f"analytic-eligible for tile {config.tile_size}: need a "
                f"power-of-two tooth count and a tooth period that is a "
                f"multiple of the tile"
            )
        self.teeth = teeth
        self.tooth_period = num_elements // teeth
        self._masks: dict[int, RoundMask] = {}

    def round_mask(self, run: int) -> RoundMask:
        if 2 * run <= self.tooth_period:
            return SortedModel._MASK
        k = run // self.tooth_period
        mask = self._masks.get(k)
        if mask is None:
            mask = self._masks[k] = RoundMask("periodic", np.arange(2 * k) < k)
        return mask


class AdversarialModel(FamilyModel):
    """The paper's constructed worst case: the mask is the prescribed
    round interleaving (``L``/``R`` warp pattern on constructible rounds,
    sorted elsewhere) — the same pattern
    :func:`~repro.adversary.permutation.worst_case_permutation` un-merges
    through."""

    def __init__(self, config: SortConfig, num_elements: int):
        from repro.adversary.assignment import construct_warp_assignment

        super().__init__("worst-case", config, num_elements)
        assignment = construct_warp_assignment(config.w, config.E)
        self._periodic = RoundMask(
            "periodic",
            np.concatenate(
                [assignment.interleaving(), assignment.mirrored().interleaving()]
            ),
        )

    def round_mask(self, run: int) -> RoundMask:
        cfg = self.config
        if run % cfg.w or run < cfg.w * cfg.E:
            return SortedModel._MASK
        return self._periodic


def _sawtooth_eligible(config: SortConfig, n: int, teeth: int = 8) -> bool:
    """Tooth boundaries must align with every run window: power-of-two
    teeth, ``teeth | N``, and a tooth period that is a whole number of
    tiles (equivalently ``N ≥ teeth·bE`` for valid sizes)."""
    if not is_power_of_two(teeth) or n % teeth:
        return False
    return (n // teeth) % config.tile_size == 0


def analytic_model(
    input_name: str, config: SortConfig, num_elements: int
) -> FamilyModel:
    """Model for a named generator, or raise :class:`ValidationError`.

    The model describes the *canonical* generator output (default
    parameters); results are bit-identical to simulating
    ``generate(input_name, config, num_elements)``.
    """
    n = config.validate_input_size(num_elements)
    if input_name == "sorted":
        return SortedModel("sorted", config, n)
    if input_name == "reverse":
        return ReverseModel("reverse", config, n)
    if input_name == "sawtooth":
        return SawtoothModel(config, n)
    if input_name == "worst-case":
        try:
            return AdversarialModel(config, n)
        except ConstructionError as exc:
            raise ValidationError(
                f"worst-case is not analytic-eligible for w={config.w}, "
                f"E={config.E}: {exc}"
            ) from exc
    raise ValidationError(
        f"input {input_name!r} has no closed-form model; analytic-eligible "
        f"families: {', '.join(ANALYTIC_FAMILIES)}"
    )


def is_analytic_eligible(
    input_name: str, config: SortConfig, num_elements: int
) -> bool:
    """Whether ``(input_name, config, num_elements)`` has a closed form."""
    if input_name not in ANALYTIC_FAMILIES:
        return False
    try:
        analytic_model(input_name, config, num_elements)
    except Exception:
        return False
    return True


def detect_model(values: np.ndarray, config: SortConfig) -> FamilyModel:
    """Recognize an input array as an analytic-eligible family.

    Monotone inputs are recognized structurally (any non-decreasing input
    is ``sorted``-shaped; any strictly decreasing one ``reverse``-shaped);
    the sawtooth and worst-case families are recognized by equality with
    their canonical generator outputs. Anything else raises
    :class:`ValidationError` — the analytic path never guesses.
    """
    values = np.ascontiguousarray(values)
    n = config.validate_input_size(values.size)
    diffs = np.diff(values)
    if values.size == 1 or bool(np.all(diffs >= 0)):
        return SortedModel("sorted", config, n, data=values)
    if bool(np.all(diffs < 0)):
        return ReverseModel("reverse", config, n, data=values)
    if _sawtooth_eligible(config, n):
        from repro.inputs.generators import sawtooth_input

        if np.array_equal(values, sawtooth_input(config, n)):
            return SawtoothModel(config, n)
    try:
        model = AdversarialModel(config, n)
    except ConstructionError:
        model = None
    if model is not None:
        from repro.adversary.permutation import worst_case_permutation

        if np.array_equal(values, worst_case_permutation(config, n)):
            return model
    raise ValidationError(
        "analytic scoring requires a recognized constructed family "
        "(sorted / reverse / canonical sawtooth / worst-case); this input "
        "matches none — use scoring='vectorized'"
    )
