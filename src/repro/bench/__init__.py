"""Benchmark harness: sweeps, slowdown metrics, figure regeneration.

* :mod:`repro.bench.runner` — runs one (config, device, input, N) point
  through the simulator and timing model; large ``N`` beyond the exact
  simulation budget is synthesized from a calibration run (per-round rates
  are N-independent; round counts and global traffic are analytic), which
  is how the harness reaches the paper's 10⁸-element sweep sizes;
* :mod:`repro.bench.parallel` — deprecated shim over :mod:`repro.engine`,
  which owns sweep-point execution (serial, process-pool ``--jobs``, or a
  served daemon) behind the registered execution engines;
* :mod:`repro.bench.cache` — content-addressed on-disk cache for bench
  points and calibration rates (``--cache`` / ``--cache-dir``), making
  repeat figure regeneration near-instant;
* :mod:`repro.bench.metrics` — peak/average slowdown statistics exactly as
  Section IV-B reports them;
* :mod:`repro.bench.figures` — one builder per paper figure (1, 3, 4, 5,
  6) plus the theory-check tables;
* :mod:`repro.bench.ascii_plot` — terminal rendering of series;
* :mod:`repro.bench.report` — markdown emission for EXPERIMENTS.md.
"""

from repro.bench.cache import BenchCache, CacheStats
from repro.bench.metrics import SlowdownStats, slowdown_stats
from repro.bench.parallel import ProgressEvent, WorkItem, run_points, sweep_items
from repro.bench.runner import BenchPoint, CalibratedRates, SweepRunner

__all__ = [
    "BenchCache",
    "BenchPoint",
    "CacheStats",
    "CalibratedRates",
    "ProgressEvent",
    "SlowdownStats",
    "SweepRunner",
    "WorkItem",
    "run_points",
    "slowdown_stats",
    "sweep_items",
]
