"""Terminal rendering of figure data: line plots and bank matrices.

No plotting dependency is available offline, so the harness renders its
figures as ASCII — good enough to eyeball the shapes the paper reports
(crossovers, log growth, the random/worst gap) straight from the CLI.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.errors import ValidationError

__all__ = ["bank_matrix_str", "line_plot", "table"]


def line_plot(
    series: dict[str, tuple[Sequence[float], Sequence[float]]],
    *,
    width: int = 72,
    height: int = 20,
    logx: bool = True,
    title: str = "",
) -> str:
    """Render named ``(xs, ys)`` series as an ASCII chart.

    Each series gets a distinct glyph; x can be log-scaled (the paper's
    throughput plots all are).
    """
    if not series:
        raise ValidationError("no series to plot")
    glyphs = "*o+x#@%&"
    all_x: list[float] = []
    all_y: list[float] = []
    for xs, ys in series.values():
        if len(xs) != len(ys) or not xs:
            raise ValidationError("each series needs equal-length nonempty x/y")
        all_x.extend(float(v) for v in xs)
        all_y.extend(float(v) for v in ys)

    def tx(v: float) -> float:
        return math.log10(v) if logx else v

    x_lo, x_hi = min(map(tx, all_x)), max(map(tx, all_x))
    y_lo, y_hi = min(all_y), max(all_y)
    x_span = (x_hi - x_lo) or 1.0
    y_span = (y_hi - y_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for (name, (xs, ys)), glyph in zip(series.items(), glyphs):
        for x, y in zip(xs, ys):
            col = round((tx(float(x)) - x_lo) / x_span * (width - 1))
            row = height - 1 - round((float(y) - y_lo) / y_span * (height - 1))
            grid[row][col] = glyph

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_hi:12.4g} ┐")
    for row in grid:
        lines.append(" " * 12 + " │" + "".join(row))
    lines.append(f"{y_lo:12.4g} ┘" + "─" * width)
    lines.append(
        " " * 14 + f"{all_x[0]:,.0f}".ljust(width - 14) + f"{max(all_x):,.0f}"
    )
    legend = "   ".join(
        f"{glyph} {name}" for (name, _), glyph in zip(series.items(), glyphs)
    )
    lines.append(" " * 14 + legend)
    return "\n".join(lines)


def bank_matrix_str(owners: np.ndarray, *, highlight=None, label: str = "") -> str:
    """Render a bank-major owner matrix like the paper's Figures 1 and 3.

    ``owners`` is the ``(w, columns)`` thread-id matrix from
    :meth:`~repro.adversary.assignment.WarpAssignment.bank_matrix`;
    ``highlight`` is an optional same-shape boolean mask (aligned cells are
    bracketed).
    """
    owners = np.asarray(owners)
    if owners.ndim != 2:
        raise ValidationError(f"owners must be 2-D, got shape {owners.shape}")
    lines = []
    if label:
        lines.append(label)
    for bank in range(owners.shape[0]):
        cells = []
        for col in range(owners.shape[1]):
            v = owners[bank, col]
            text = " . " if v < 0 else f"{int(v):2d} "
            if highlight is not None and v >= 0 and highlight[bank, col]:
                text = f"[{int(v):2d}]"[:4].ljust(4)
            else:
                text = text.ljust(4)
            cells.append(text)
        lines.append(f"bank {bank:2d} │ " + "".join(cells))
    return "\n".join(lines)


def table(rows: list[dict], columns: Sequence[str] | None = None) -> str:
    """Render dict rows as a fixed-width text table."""
    if not rows:
        return "(empty)"
    if columns is None:
        columns = list(rows[0])
    widths = {
        c: max(len(str(c)), *(len(_fmt(r.get(c))) for r in rows)) for c in columns
    }
    header = "  ".join(str(c).ljust(widths[c]) for c in columns)
    sep = "  ".join("-" * widths[c] for c in columns)
    body = [
        "  ".join(_fmt(r.get(c)).ljust(widths[c]) for c in columns) for r in rows
    ]
    return "\n".join([header, sep, *body])


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)
