"""Content-addressed on-disk cache for bench results.

Regenerating the paper's figures repeats many identical instrumented
sorts: every CLI invocation starts from a cold :class:`SweepRunner`, so
calibration sorts and exact sweep points are recomputed from scratch.
This module persists both as small JSON files keyed by a stable
fingerprint of everything that determines the result:

* for a :class:`~repro.bench.metrics.BenchPoint` — the full
  :class:`~repro.sort.config.SortConfig` field set, the full
  :class:`~repro.gpu.device.DeviceSpec` field set, the shared-memory
  ``padding``, the input family name, ``N``, ``score_blocks``, ``seed``,
  ``exact_threshold`` (it selects the calibration size for synthesized
  points), and the cache schema version;
* for :class:`~repro.bench.runner.CalibratedRates` — the same minus the
  device (conflict rates are combinatorial, not device-dependent), with
  the explicit calibration size instead of the threshold.

Changing *any* key field changes the fingerprint, so stale entries are
never returned — invalidation is automatic. Entries are written via a
temp file + :func:`os.replace` so concurrent workers never observe a
half-written file, and any unreadable/corrupt entry is treated as a miss
(the point is recomputed and the entry rewritten).

The default location is ``~/.cache/repro-mergesort`` (override with
``--cache-dir`` or the ``REPRO_MERGESORT_CACHE_DIR`` environment
variable).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

from repro.bench.metrics import BenchPoint
from repro.gpu.device import DeviceSpec
from repro.sort.config import SortConfig

__all__ = [
    "SCHEMA_VERSION",
    "BenchCache",
    "CacheStats",
    "PruneResult",
    "default_cache_dir",
    "fingerprint",
    "point_key",
    "rates_key",
]

#: Bump when the meaning of cached payloads changes; old entries then
#: hash to different fingerprints and are simply never hit again.
SCHEMA_VERSION = 1

#: Environment override for the default cache location.
ENV_CACHE_DIR = "REPRO_MERGESORT_CACHE_DIR"


def default_cache_dir() -> Path:
    """The cache root used when no ``--cache-dir`` is given."""
    env = os.environ.get(ENV_CACHE_DIR)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro-mergesort"


def fingerprint(key: dict) -> str:
    """Stable hex digest of a JSON-serializable key dict."""
    canonical = json.dumps(key, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def point_key(
    config: SortConfig,
    device: DeviceSpec,
    *,
    padding: int,
    input_name: str,
    num_elements: int,
    score_blocks: int | None,
    seed: int,
    exact_threshold: int,
    scoring: str | None = None,
    mitigation: str | None = None,
) -> dict:
    """Cache key for one :class:`BenchPoint`.

    ``scoring`` stays out of the key (``None``) for every bit-identical
    mode; the runner passes ``"analytic"`` only for its explicit
    exact-at-every-size path, whose above-threshold points legitimately
    differ from synthesized ones. ``mitigation`` likewise enters only
    for non-default layouts (the runner passes ``None`` for ``"none"``).
    Omitting the entries when ``None`` keeps every pre-existing
    fingerprint unchanged.
    """
    key = {
        "kind": "point",
        "schema": SCHEMA_VERSION,
        "config": dataclasses.asdict(config),
        "device": dataclasses.asdict(device),
        "padding": padding,
        "input": input_name,
        "num_elements": num_elements,
        "score_blocks": score_blocks,
        "seed": seed,
        "exact_threshold": exact_threshold,
    }
    if scoring is not None:
        key["scoring"] = scoring
    if mitigation is not None:
        key["mitigation"] = mitigation
    return key


def rates_key(
    config: SortConfig,
    *,
    padding: int,
    input_name: str,
    calibration_size: int,
    score_blocks: int | None,
    seed: int,
    mitigation: str | None = None,
) -> dict:
    """Cache key for one :class:`CalibratedRates` measurement.

    ``mitigation`` follows the :func:`point_key` convention: present
    only for non-default layouts, so pre-existing fingerprints survive.
    """
    key = {
        "kind": "rates",
        "schema": SCHEMA_VERSION,
        "config": dataclasses.asdict(config),
        "padding": padding,
        "input": input_name,
        "calibration_size": calibration_size,
        "score_blocks": score_blocks,
        "seed": seed,
    }
    if mitigation is not None:
        key["mitigation"] = mitigation
    return key


@dataclass(frozen=True)
class CacheStats:
    """Summary of what a cache directory holds."""

    cache_dir: str
    point_entries: int
    rate_entries: int
    total_bytes: int

    def __str__(self) -> str:
        return (
            f"{self.cache_dir}: {self.point_entries} bench points, "
            f"{self.rate_entries} calibrations, {self.total_bytes:,} bytes"
        )


@dataclass(frozen=True)
class PruneResult:
    """Outcome of one :meth:`BenchCache.prune` pass."""

    removed_entries: int
    removed_bytes: int
    kept_entries: int
    kept_bytes: int

    def __str__(self) -> str:
        return (
            f"pruned {self.removed_entries} entries "
            f"({self.removed_bytes:,} bytes); kept {self.kept_entries} "
            f"entries ({self.kept_bytes:,} bytes)"
        )


class BenchCache:
    """On-disk store for bench points and calibration rates.

    Safe to share a directory between concurrent worker processes: writes
    are atomic (temp file + rename) and reads of corrupt or partial
    entries degrade to cache misses.

    Parameters
    ----------
    cache_dir:
        Root directory; defaults to :func:`default_cache_dir`.
    """

    def __init__(self, cache_dir: str | os.PathLike | None = None):
        self.cache_dir = Path(cache_dir) if cache_dir else default_cache_dir()
        self.hits = 0
        self.misses = 0

    # -- paths ---------------------------------------------------------------

    def _entry_path(self, key: dict) -> Path:
        subdir = "points" if key.get("kind") == "point" else "rates"
        return self.cache_dir / subdir / f"{fingerprint(key)}.json"

    # -- generic load/store --------------------------------------------------

    def _load(self, key: dict) -> dict | None:
        path = self._entry_path(key)
        try:
            with open(path, encoding="utf-8") as fh:
                entry = json.load(fh)
            payload = entry["payload"]
            if not isinstance(payload, dict):
                raise TypeError("payload must be a dict")
        except (OSError, ValueError, KeyError, TypeError):
            # Missing, partial, or corrupt entry: recompute instead.
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def _store(self, key: dict, payload: dict) -> None:
        path = self._entry_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {"key": key, "payload": payload}
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=path.stem, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                json.dump(entry, fh, sort_keys=True)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # -- typed API -----------------------------------------------------------

    def get_point(self, key: dict) -> BenchPoint | None:
        """Look up a bench point; ``None`` on miss or unreadable entry."""
        payload = self._load(key)
        if payload is None:
            return None
        try:
            return BenchPoint(**payload)
        except TypeError:
            self.hits -= 1
            self.misses += 1
            return None

    def put_point(self, key: dict, point: BenchPoint) -> None:
        """Store a bench point under its fingerprint."""
        self._store(key, dataclasses.asdict(point))

    def get_rates(self, key: dict):
        """Look up calibrated rates; ``None`` on miss or unreadable entry."""
        from repro.bench.runner import CalibratedRates

        payload = self._load(key)
        if payload is None:
            return None
        try:
            return CalibratedRates(**payload)
        except TypeError:
            self.hits -= 1
            self.misses += 1
            return None

    def put_rates(self, key: dict, rates) -> None:
        """Store calibrated rates under their fingerprint."""
        self._store(key, dataclasses.asdict(rates))

    # -- maintenance ---------------------------------------------------------

    def _entries(self) -> list[Path]:
        if not self.cache_dir.is_dir():
            return []
        return sorted(
            p
            for sub in ("points", "rates")
            for p in (self.cache_dir / sub).glob("*.json")
        )

    def stats(self) -> CacheStats:
        """Entry counts and on-disk footprint."""
        points = rates = total = 0
        for path in self._entries():
            try:
                total += path.stat().st_size
            except OSError:
                continue
            if path.parent.name == "points":
                points += 1
            else:
                rates += 1
        return CacheStats(
            cache_dir=str(self.cache_dir),
            point_entries=points,
            rate_entries=rates,
            total_bytes=total,
        )

    def clear(self) -> int:
        """Delete every cache entry; returns how many were removed."""
        removed = 0
        for path in self._entries():
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
        return removed

    #: Minimum age (seconds) before an orphaned ``*.tmp`` is collected.
    #: A live writer holds its temp file only for the instant between
    #: :func:`tempfile.mkstemp` and :func:`os.replace`; anything older
    #: than this by mtime is a crashed writer's leftover, not a write in
    #: flight.
    TMP_GRACE_SECONDS = 60.0

    def prune(
        self, max_bytes: int, *, tmp_grace: float | None = None
    ) -> PruneResult:
        """Evict least-recently-written entries until ≤ ``max_bytes`` remain.

        LRU order is mtime: :meth:`_store`'s temp-file + :func:`os.replace`
        discipline stamps every entry at its last (re)write, so the oldest
        files are the ones no recent run touched. Orphaned ``*.tmp`` files
        left behind by crashed writers are removed too — but only once
        they are older than ``tmp_grace`` seconds (default
        :attr:`TMP_GRACE_SECONDS`): the directory is shared with
        concurrent workers, and a fresh ``*.tmp`` may be mid-write, about
        to be :func:`os.replace`'d into place. Deleting it would make the
        writer's rename fail and drop its result. A long-running server
        calls this periodically (or an operator runs ``repro-mergesort
        cache prune --max-mb N``) so the disk cache stays bounded the way
        the in-memory memo's FIFO tables already are. Entries that vanish
        concurrently (another pruner, a ``clear``) are skipped, not
        errors.
        """
        if max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        if tmp_grace is None:
            tmp_grace = self.TMP_GRACE_SECONDS
        removed = removed_bytes = 0
        if self.cache_dir.is_dir():
            cutoff = time.time() - tmp_grace
            for sub in ("points", "rates"):
                for tmp in (self.cache_dir / sub).glob("*.tmp"):
                    try:
                        stat = tmp.stat()
                        if stat.st_mtime > cutoff:
                            continue  # possibly a write in flight
                        size = stat.st_size
                        tmp.unlink()
                    except OSError:
                        continue
                    removed += 1
                    removed_bytes += size

        entries = []
        for path in self._entries():
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, path, stat.st_size))
        entries.sort()  # oldest first

        total = sum(size for _, _, size in entries)
        kept = len(entries)
        for _, path, size in entries:
            if total <= max_bytes:
                break
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            kept -= 1
            removed += 1
            removed_bytes += size
        return PruneResult(
            removed_entries=removed,
            removed_bytes=removed_bytes,
            kept_entries=kept,
            kept_bytes=total,
        )
