"""The experiment registry: one-command reproduction with pass/fail bands.

``python -m repro reproduce`` runs every claim of the paper (and this
repo's extensions) against explicit acceptance bands and prints a verdict
table — the executable version of EXPERIMENTS.md. Bands encode *shape*
agreements (orderings, crossovers, growth, exact theorem counts), never
absolute simulated milliseconds.

Each experiment is a function returning an :class:`ExperimentResult`;
``quick`` mode caps sweep sizes so the whole registry runs in ~a minute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ValidationError

__all__ = ["EXPERIMENTS", "ExperimentResult", "run_all", "run_experiment"]


@dataclass
class ExperimentResult:
    """Outcome of one registered experiment."""

    experiment_id: str
    passed: bool
    details: list[str] = field(default_factory=list)

    def summary(self) -> str:
        """One-line verdict."""
        return f"[{'PASS' if self.passed else 'FAIL'}] {self.experiment_id}"


def _check(details: list[str], ok: bool, message: str) -> bool:
    details.append(f"  {'ok ' if ok else 'FAIL'} {message}")
    return ok


def _exp_theorem3(quick: bool, jobs: int = 1, cache=None) -> ExperimentResult:
    """Theorem 3: E² aligned for every small co-prime E."""
    import math

    from repro.adversary.small_e import small_e_assignment

    details: list[str] = []
    ws = (8, 16, 32) if quick else (8, 16, 32, 64, 128, 256)
    ok = True
    checked = 0
    for w in ws:
        for e in range(1, (w + 1) // 2):
            if math.gcd(w, e) != 1:
                continue
            checked += 1
            ok &= small_e_assignment(w, e).aligned_count() == e * e
    ok = _check(details, ok, f"{checked} (w, E) pairs align exactly E^2")
    return ExperimentResult("theorem-3-small-E", ok, details)


def _exp_theorem9(quick: bool, jobs: int = 1, cache=None) -> ExperimentResult:
    """Theorem 9: the large-E formula, exhaustively."""
    from repro.adversary.large_e import large_e_assignment

    details: list[str] = []
    ws = (8, 16, 32) if quick else (8, 16, 32, 64, 128, 256)
    ok = True
    checked = 0
    for w in ws:
        for e in range(w // 2 + 1, w, 2):
            r = w - e
            want = (e * e + e + 2 * e * r - r * r - r) // 2
            checked += 1
            ok &= large_e_assignment(w, e).aligned_count() == want
    ok = _check(details, ok, f"{checked} (w, E) pairs match (E²+E+2Er−r²−r)/2")
    return ExperimentResult("theorem-9-large-E", ok, details)


def _exp_end_to_end(quick: bool, jobs: int = 1, cache=None) -> ExperimentResult:
    """The simulated sort serializes every targeted round to the bound."""
    from repro.adversary.permutation import worst_case_permutation
    from repro.adversary.verify import verify_worst_case
    from repro.sort.config import SortConfig

    details: list[str] = []
    ok = True
    pairs = [(32, 15, 64), (32, 17, 64)] if quick else [
        (32, 15, 64), (32, 17, 64), (16, 7, 32), (16, 9, 32),
    ]
    for w, e, b in pairs:
        cfg = SortConfig(elements_per_thread=e, block_size=b, warp_size=w)
        n = cfg.tile_size * 8
        report = verify_worst_case(cfg, worst_case_permutation(cfg, n))
        ok &= _check(details, report.ok,
                     f"(w={w}, E={e}): {report.summary()}")
    return ExperimentResult("end-to-end-serialization", ok, details)


def _exp_fig1_fig3(quick: bool, jobs: int = 1, cache=None) -> ExperimentResult:
    """Figures 1 and 3: exact layout facts."""
    from repro.bench.figures import figure1, figure3

    details: list[str] = []
    f1 = figure1()
    f3 = figure3()
    ok = _check(details, f1["aligned"] == 48, "Fig 1: sorted w=16,E=12 aligns 48")
    ok &= _check(details, f3["small"]["aligned"] == 49, "Fig 3L: E=7 aligns 49")
    ok &= _check(details, f3["large"]["aligned"] == 80, "Fig 3R: E=9 aligns 80")
    a = f3["small"]["a_owners"]
    ok &= _check(details, a[0, :4].tolist() == [0, 4, 8, 13],
                 "Fig 3L: A columns owned by threads 0,4,8,13 (as printed)")
    return ExperimentResult("figures-1-and-3", ok, details)


def _exp_fig4(quick: bool, jobs: int = 1, cache=None) -> ExperimentResult:
    """Figure 4 shape: Quadro M4000 slowdowns and the library ordering."""
    from repro.bench.figures import figure4

    details: list[str] = []
    data = figure4(
        max_elements=4_000_000 if quick else 300_000_000,
        exact_threshold=1 << 19,
        score_blocks=4,
        jobs=jobs,
        cache=cache,
    )
    thrust = data["thrust"]["slowdown"]
    mgpu = data["mgpu"]["slowdown"]
    ok = _check(details, 25 < thrust.peak_percent < 90,
                f"Thrust slowdown {thrust} [paper 50.49%/43.53%]")
    ok &= _check(details, 10 < mgpu.peak_percent < 70,
                 f"MGPU slowdown {mgpu} [paper 33.82%/27.3%]")
    ok &= _check(details, thrust.peak_percent > mgpu.peak_percent,
                 "Thrust hit harder than MGPU (matches paper)")
    t_last = data["thrust"]["random"][-1].throughput_meps
    m_last = data["mgpu"]["random"][-1].throughput_meps
    ok &= _check(details, t_last > m_last,
                 "Thrust outperforms MGPU on random inputs")
    return ExperimentResult("figure-4-quadro", ok, details)


def _exp_fig5(quick: bool, jobs: int = 1, cache=None) -> ExperimentResult:
    """Figure 5 shape: RTX slowdowns + random-input preset ordering."""
    from repro.bench.figures import figure5

    details: list[str] = []
    data = figure5(
        max_elements=4_000_000 if quick else 300_000_000,
        exact_threshold=1 << 19,
        score_blocks=4,
        jobs=jobs,
        cache=cache,
    )
    s15 = data["e15_b512"]["slowdown"]
    ok = _check(details, 15 < s15.peak_percent < 80,
                f"E=15,b=512 slowdown {s15} [paper 42.43%/33.31%]")
    t15 = data["e15_b512"]["random"][-1].throughput_meps
    t17 = data["e17_b256"]["random"][-1].throughput_meps
    ok &= _check(details, t15 > t17,
                 "random inputs: E=15,b=512 beats E=17,b=256 (matches paper)")
    details.append(
        "  note: the paper's worst-case preset crossover does not reproduce "
        "from DMM counts (see EXPERIMENTS.md)"
    )
    return ExperimentResult("figure-5-rtx", ok, details)


def _exp_fig6(quick: bool, jobs: int = 1, cache=None) -> ExperimentResult:
    """Figure 6 shape: logarithmic conflict growth tracking runtime."""
    from repro.bench.figures import figure6

    details: list[str] = []
    data = figure6(
        max_elements=8_000_000 if quick else 300_000_000,
        exact_threshold=1 << 19,
        score_blocks=4,
        jobs=jobs,
        cache=cache,
    )
    ok = True
    for key in ("e15_b512", "e17_b256"):
        cpe = data[key]["replays_per_element"]
        ok &= _check(details, cpe == sorted(cpe),
                     f"{key}: conflicts/elem increase with N")
        increments = [b - a for a, b in zip(cpe, cpe[1:])]
        flat = max(increments[2:]) <= 2.5 * min(increments[2:]) + 1e-9
        ok &= _check(details, flat, f"{key}: ~constant increment per doubling "
                                    "(logarithmic growth)")
    return ExperimentResult("figure-6-per-element", ok, details)


def _exp_expected_case(quick: bool, jobs: int = 1, cache=None) -> ExperimentResult:
    """Extension: β₂ on random inputs in Karsin's ballpark; grows with
    inversions; worst case drives it to Θ(E)."""
    from repro.analysis.beta import measure_betas
    from repro.inputs.generators import generate
    from repro.sort.config import SortConfig

    details: list[str] = []
    cfg = SortConfig(elements_per_thread=15, block_size=128, warp_size=32)
    n = cfg.tile_size * (16 if quick else 64)
    betas = {
        name: measure_betas(cfg, generate(name, cfg, n, seed=1))
        for name in ("sorted", "random", "worst-case")
    }
    ok = _check(details, 1.5 < betas["random"].beta2 < 3.5,
                f"random beta2 = {betas['random'].beta2:.2f} "
                "[Karsin measured 2.2]")
    ok &= _check(details, betas["sorted"].beta2 < 0.3,
                 f"sorted beta2 = {betas['sorted'].beta2:.2f} (conflict free)")
    ok &= _check(details, betas["worst-case"].beta2 > 0.4 * cfg.E,
                 f"worst-case beta2 = {betas['worst-case'].beta2:.2f} = Θ(E)")
    return ExperimentResult("expected-case-betas", ok, details)


def _exp_variance(quick: bool, jobs: int = 1, cache=None) -> ExperimentResult:
    """Conclusion point 4: the worst case is invisible to random sampling."""
    from repro.analysis.variance import variance_study
    from repro.gpu.device import QUADRO_M4000
    from repro.sort.presets import THRUST_MAXWELL

    details: list[str] = []
    n = THRUST_MAXWELL.tile_size * (16 if quick else 64)
    study = variance_study(
        THRUST_MAXWELL, QUADRO_M4000, n,
        num_samples=6 if quick else 12, score_blocks=4,
    )
    ok = _check(details, study.z_score > 10, study.summary())
    return ExperimentResult("runtime-variance", ok, details)


#: Registered experiments, in presentation order. Every entry accepts
#: ``(quick, jobs, cache)``; the sweep-driven experiments fan points out
#: over ``jobs`` workers and reuse the on-disk ``cache`` when given.
EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "theorem-3-small-E": _exp_theorem3,
    "theorem-9-large-E": _exp_theorem9,
    "end-to-end-serialization": _exp_end_to_end,
    "figures-1-and-3": _exp_fig1_fig3,
    "figure-4-quadro": _exp_fig4,
    "figure-5-rtx": _exp_fig5,
    "figure-6-per-element": _exp_fig6,
    "expected-case-betas": _exp_expected_case,
    "runtime-variance": _exp_variance,
}


def run_experiment(
    experiment_id: str, quick: bool = True, jobs: int = 1, cache=None
) -> ExperimentResult:
    """Run one registered experiment by id."""
    try:
        fn = EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(EXPERIMENTS)
        raise ValidationError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None
    return fn(quick, jobs=jobs, cache=cache)


def run_all(
    quick: bool = True, jobs: int = 1, cache=None
) -> list[ExperimentResult]:
    """Run the whole registry in order."""
    return [fn(quick, jobs=jobs, cache=cache) for fn in EXPERIMENTS.values()]
