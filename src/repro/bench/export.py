"""JSON serialization of bench results.

Sweeps and figure data become plain JSON-compatible structures so results
can be archived, diffed across runs, or re-plotted elsewhere. NumPy arrays
are converted to lists; :class:`~repro.bench.metrics.BenchPoint` and
:class:`~repro.bench.metrics.SlowdownStats` become dicts. The inverse
(:func:`points_from_json`) restores BenchPoint lists for re-analysis.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from repro.bench.metrics import BenchPoint, SlowdownStats
from repro.errors import ValidationError

__all__ = [
    "figure_to_json",
    "point_to_dict",
    "points_from_json",
    "write_json",
]


def point_to_dict(point: BenchPoint) -> dict:
    """One sweep point as a JSON-compatible dict."""
    return {
        "config": point.config_name,
        "device": point.device_name,
        "input": point.input_name,
        "n": point.num_elements,
        "milliseconds": point.milliseconds,
        "throughput_meps": point.throughput_meps,
        "replays_per_element": point.replays_per_element,
        "shared_cycles": point.shared_cycles,
        "global_transactions": point.global_transactions,
    }


def _point_from_dict(data: dict) -> BenchPoint:
    return BenchPoint(
        config_name=data["config"],
        device_name=data["device"],
        input_name=data["input"],
        num_elements=int(data["n"]),
        milliseconds=float(data["milliseconds"]),
        throughput_meps=float(data["throughput_meps"]),
        replays_per_element=float(data["replays_per_element"]),
        shared_cycles=int(data["shared_cycles"]),
        global_transactions=int(data["global_transactions"]),
    )


def points_from_json(text: str) -> list[BenchPoint]:
    """Restore a list of sweep points from a JSON string."""
    data = json.loads(text)
    if not isinstance(data, list):
        raise ValidationError("expected a JSON array of sweep points")
    return [_point_from_dict(d) for d in data]


def _jsonify(value: Any) -> Any:
    """Recursively convert bench structures to JSON-compatible values."""
    if isinstance(value, BenchPoint):
        return point_to_dict(value)
    if isinstance(value, SlowdownStats):
        return {
            "peak_percent": value.peak_percent,
            "peak_at": value.peak_at,
            "average_percent": value.average_percent,
        }
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    return value


def figure_to_json(data: dict) -> str:
    """Serialize a figure builder's output to a JSON string."""
    return json.dumps(_jsonify(data), indent=2, sort_keys=True)


def write_json(data: Any, path) -> Path:
    """Serialize any bench structure to a file; returns the path."""
    path = Path(path)
    path.write_text(
        figure_to_json(data) if isinstance(data, dict) else json.dumps(
            _jsonify(data), indent=2
        )
    )
    return path
