"""One builder per paper figure.

Each builder returns a plain data structure (dict of series / matrices) so
it can be rendered by :mod:`repro.bench.ascii_plot`, dumped by the CLI, or
asserted on by the test suite. The figure numbering follows the paper:

* **Figure 1** — sorted-order alignment pattern for ``w=16, E=12``
  (``GCD = 4``): every 4th chunk aligned;
* **Figure 3** — the constructed worst case for one warp, ``w=16`` with
  ``E=7`` (small) and ``E=9`` (large);
* **Figure 4** — throughput vs ``N`` on the Quadro M4000: Thrust
  (``E=15, b=512``) and Modern GPU (``E=15, b=128``), random vs worst;
* **Figure 5** — throughput vs ``N`` on the RTX 2080 Ti for both parameter
  sets (``E=15, b=512`` and ``E=17, b=256``), random vs worst;
* **Figure 6** — runtime per element and bank conflicts per element vs
  ``N`` for both parameter sets on the RTX 2080 Ti (worst-case inputs).

Figure 2 of the paper is a pure notation illustration with no data and is
covered by the docstrings of :mod:`repro.adversary.assignment`.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.adversary.assignment import construct_warp_assignment
from repro.adversary.power2 import sorted_assignment
from repro.bench.cache import BenchCache
from repro.bench.metrics import slowdown_stats
from repro.engine.dispatch import execute_items
from repro.engine.tasks import ProgressEvent, sweep_items
from repro.gpu.device import QUADRO_M4000, RTX_2080_TI, DeviceSpec
from repro.sort.config import SortConfig
from repro.sort.presets import MGPU_MAXWELL, THRUST_CC60, THRUST_MAXWELL

__all__ = ["figure1", "figure3", "figure4", "figure5", "figure6", "theory_table"]

#: Default sweep ceiling — matches the paper's largest plotted sizes.
MAX_ELEMENTS = 300_000_000
#: Skip the tiny leading sizes the paper's log-x plots do not show.
MIN_ELEMENTS = 100_000


def _sweep_sizes(config: SortConfig, max_elements: int) -> list[int]:
    return [n for n in config.valid_sizes(max_elements) if n >= MIN_ELEMENTS]


def figure1(w: int = 16, e: int = 12) -> dict:
    """Sorted-order alignment for composite ``GCD(w, E)`` (paper Fig. 1)."""
    wa = sorted_assignment(w, e)
    a_owners, b_owners = wa.bank_matrix()
    return {
        "w": w,
        "E": e,
        "a_owners": a_owners,
        "b_owners": b_owners,
        "aligned": wa.aligned_count(),
        "step_banks": wa.step_banks(),
    }


def figure3(w: int = 16, small_e: int = 7, large_e: int = 9) -> dict:
    """The constructed worst-case warp layouts (paper Fig. 3)."""
    out = {}
    for key, e in (("small", small_e), ("large", large_e)):
        wa = construct_warp_assignment(w, e)
        a_owners, b_owners = wa.bank_matrix()
        out[key] = {
            "w": w,
            "E": e,
            "tuples": wa.tuples,
            "a_first": wa.a_first,
            "target_bank": wa.target_bank,
            "a_owners": a_owners,
            "b_owners": b_owners,
            "aligned": wa.aligned_count(),
        }
    return out


def _throughput_panel(
    config: SortConfig,
    device: DeviceSpec,
    max_elements: int,
    exact_threshold: int,
    score_blocks: int,
    jobs: int = 1,
    cache: BenchCache | None = None,
    progress: Callable[[ProgressEvent], None] | None = None,
) -> dict:
    sizes = _sweep_sizes(config, max_elements)
    items = sweep_items(
        config,
        device,
        ("random", "worst-case"),
        sizes,
        exact_threshold=exact_threshold,
        score_blocks=score_blocks,
        cache=cache,
    )
    points = execute_items(items, jobs=jobs, progress=progress)
    random, worst = points[: len(sizes)], points[len(sizes):]
    return {
        "config": config.name,
        "device": device.name,
        "sizes": sizes,
        "random": random,
        "worst": worst,
        "slowdown": slowdown_stats(random, worst),
    }


def figure4(
    max_elements: int = MAX_ELEMENTS,
    exact_threshold: int = 1 << 20,
    score_blocks: int = 8,
    jobs: int = 1,
    cache: BenchCache | None = None,
    progress: Callable[[ProgressEvent], None] | None = None,
) -> dict:
    """Quadro M4000 throughput: Thrust vs Modern GPU, random vs worst."""
    return {
        "device": QUADRO_M4000.name,
        "thrust": _throughput_panel(
            THRUST_MAXWELL, QUADRO_M4000, max_elements, exact_threshold,
            score_blocks, jobs, cache, progress,
        ),
        "mgpu": _throughput_panel(
            MGPU_MAXWELL, QUADRO_M4000, max_elements, exact_threshold,
            score_blocks, jobs, cache, progress,
        ),
    }


def figure5(
    max_elements: int = MAX_ELEMENTS,
    exact_threshold: int = 1 << 20,
    score_blocks: int = 8,
    jobs: int = 1,
    cache: BenchCache | None = None,
    progress: Callable[[ProgressEvent], None] | None = None,
) -> dict:
    """RTX 2080 Ti throughput for both parameter presets.

    The paper plots Thrust and Modern GPU separately with the same two
    parameter sets; our model treats the libraries as parameter presets of
    one algorithm, so each panel here stands for both (the collapse is
    recorded in EXPERIMENTS.md).
    """
    return {
        "device": RTX_2080_TI.name,
        "e15_b512": _throughput_panel(
            THRUST_MAXWELL, RTX_2080_TI, max_elements, exact_threshold,
            score_blocks, jobs, cache, progress,
        ),
        "e17_b256": _throughput_panel(
            THRUST_CC60, RTX_2080_TI, max_elements, exact_threshold,
            score_blocks, jobs, cache, progress,
        ),
    }


def figure6(
    max_elements: int = MAX_ELEMENTS,
    exact_threshold: int = 1 << 20,
    score_blocks: int = 8,
    input_name: str = "worst-case",
    jobs: int = 1,
    cache: BenchCache | None = None,
    progress: Callable[[ProgressEvent], None] | None = None,
) -> dict:
    """Per-element runtime and bank conflicts on the RTX 2080 Ti.

    Both curves should show logarithmic growth in ``N`` (one more merge
    round per doubling), and the conflict curve should predict the runtime
    curve — the correlation the paper leans on.
    """
    panels = {}
    for key, config in (("e15_b512", THRUST_MAXWELL), ("e17_b256", THRUST_CC60)):
        sizes = _sweep_sizes(config, max_elements)
        items = sweep_items(
            config,
            RTX_2080_TI,
            (input_name,),
            sizes,
            exact_threshold=exact_threshold,
            score_blocks=score_blocks,
            cache=cache,
        )
        points = execute_items(items, jobs=jobs, progress=progress)
        panels[key] = {
            "config": config.name,
            "sizes": sizes,
            "ms_per_element": [p.ms_per_element for p in points],
            "replays_per_element": [p.replays_per_element for p in points],
            "points": points,
        }
    return {"device": RTX_2080_TI.name, "input": input_name, **panels}


def theory_table(w: int = 32, es: Sequence[int] | None = None) -> list[dict]:
    """Theorem 3 / Theorem 9 verification rows for the theory benches."""
    from repro.adversary.theory import aligned_elements, effective_threads

    if es is None:
        es = [e for e in range(1, w) if e % 2 == 1]
    rows = []
    for e in es:
        wa = construct_warp_assignment(w, e)
        rows.append(
            {
                "w": w,
                "E": e,
                "case": "small" if e < w / 2 else "large",
                "predicted": aligned_elements(w, e),
                "constructed": wa.aligned_count(),
                "effective_threads": effective_threads(w, e),
            }
        )
    return rows
