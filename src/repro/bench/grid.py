"""Parameter-grid exploration: the (E, b) design space as a library call.

Section III-C closes with the engineering question behind Thrust's tuning:
small ``E`` bounds worst-case damage, large ``E`` amortizes the global
partitioning — "an E value which balances these factors seems to be the
best choice". This module sweeps the grid and reports, per configuration:
occupancy, random-input throughput, worst-case throughput, and the
slowdown gap — the data a library maintainer would tune from (and the
engine behind ``examples/occupancy_explorer.py`` and the CLI's ``grid``
command).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.bench.cache import BenchCache
from repro.engine.dispatch import execute_items
from repro.engine.tasks import ProgressEvent, WorkItem, cache_ref
from repro.errors import ConfigurationError
from repro.gpu.device import DeviceSpec
from repro.gpu.occupancy import occupancy
from repro.sort.config import SortConfig
from repro.utils.validation import check_positive_int

__all__ = ["GridPoint", "grid_search"]


@dataclass(frozen=True)
class GridPoint:
    """One (E, b) configuration's measured profile."""

    elements_per_thread: int
    block_size: int
    occupancy: float
    num_elements: int
    random_meps: float
    worst_meps: float

    @property
    def slowdown_percent(self) -> float:
        """Worst-case slowdown vs random for this configuration."""
        return (self.random_meps / self.worst_meps - 1.0) * 100.0

    def as_row(self) -> dict:
        """Table row for rendering."""
        return {
            "E": self.elements_per_thread,
            "b": self.block_size,
            "occupancy": self.occupancy,
            "random Melem/s": self.random_meps,
            "worst Melem/s": self.worst_meps,
            "slowdown %": self.slowdown_percent,
        }


def grid_search(
    device: DeviceSpec,
    es: Sequence[int],
    bs: Sequence[int],
    *,
    target_elements: int = 30_000_000,
    exact_threshold: int = 1 << 19,
    score_blocks: int = 4,
    seed: int = 0,
    jobs: int = 1,
    cache: BenchCache | None = None,
    progress: Callable[[ProgressEvent], None] | None = None,
) -> list[GridPoint]:
    """Profile every feasible (E, b) pair on a device.

    Configurations whose tile exceeds the device's shared memory (or whose
    block exceeds the thread limit) are skipped. Results are sorted by
    random-input throughput, best first. The grid cells are independent,
    so with ``jobs > 1`` they fan out over a worker pool (two work items
    per cell: the random and worst-case points); ``cache`` persists the
    measured points across invocations.
    """
    check_positive_int(target_elements, "target_elements")
    cache_dir, use_cache = cache_ref(cache)
    cells: list[tuple[int, int, float, int]] = []
    items: list[WorkItem] = []
    for b in bs:
        for e in es:
            cfg = SortConfig(
                elements_per_thread=e,
                block_size=b,
                warp_size=device.warp_size,
                name=f"e{e}-b{b}",
            )
            try:
                occ = occupancy(device, b, cfg.shared_bytes_per_block)
            except ConfigurationError:
                continue
            sizes = cfg.valid_sizes(target_elements)
            if len(sizes) < 2:
                continue
            n = sizes[-1]
            cells.append((e, b, occ.occupancy, n))
            for input_name in ("random", "worst-case"):
                items.append(
                    WorkItem(
                        config=cfg,
                        device=device,
                        input_name=input_name,
                        num_elements=n,
                        exact_threshold=exact_threshold,
                        score_blocks=score_blocks,
                        seed=seed,
                        cache_dir=cache_dir,
                        use_cache=use_cache,
                    )
                )
    measured = execute_items(items, jobs=jobs, progress=progress)
    points = [
        GridPoint(
            elements_per_thread=e,
            block_size=b,
            occupancy=occ_fraction,
            num_elements=n,
            random_meps=measured[2 * i].throughput_meps,
            worst_meps=measured[2 * i + 1].throughput_meps,
        )
        for i, (e, b, occ_fraction, n) in enumerate(cells)
    ]
    points.sort(key=lambda p: -p.random_meps)
    return points
