"""Parameter-grid exploration: the (E, b) design space as a library call.

Section III-C closes with the engineering question behind Thrust's tuning:
small ``E`` bounds worst-case damage, large ``E`` amortizes the global
partitioning — "an E value which balances these factors seems to be the
best choice". This module sweeps the grid and reports, per configuration:
occupancy, random-input throughput, worst-case throughput, and the
slowdown gap — the data a library maintainer would tune from (and the
engine behind ``examples/occupancy_explorer.py`` and the CLI's ``grid``
command).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.bench.runner import SweepRunner
from repro.errors import ConfigurationError
from repro.gpu.device import DeviceSpec
from repro.gpu.occupancy import occupancy
from repro.sort.config import SortConfig
from repro.utils.validation import check_positive_int

__all__ = ["GridPoint", "grid_search"]


@dataclass(frozen=True)
class GridPoint:
    """One (E, b) configuration's measured profile."""

    elements_per_thread: int
    block_size: int
    occupancy: float
    num_elements: int
    random_meps: float
    worst_meps: float

    @property
    def slowdown_percent(self) -> float:
        """Worst-case slowdown vs random for this configuration."""
        return (self.random_meps / self.worst_meps - 1.0) * 100.0

    def as_row(self) -> dict:
        """Table row for rendering."""
        return {
            "E": self.elements_per_thread,
            "b": self.block_size,
            "occupancy": self.occupancy,
            "random Melem/s": self.random_meps,
            "worst Melem/s": self.worst_meps,
            "slowdown %": self.slowdown_percent,
        }


def grid_search(
    device: DeviceSpec,
    es: Sequence[int],
    bs: Sequence[int],
    *,
    target_elements: int = 30_000_000,
    exact_threshold: int = 1 << 19,
    score_blocks: int = 4,
    seed: int = 0,
) -> list[GridPoint]:
    """Profile every feasible (E, b) pair on a device.

    Configurations whose tile exceeds the device's shared memory (or whose
    block exceeds the thread limit) are skipped. Results are sorted by
    random-input throughput, best first.
    """
    check_positive_int(target_elements, "target_elements")
    points: list[GridPoint] = []
    for b in bs:
        for e in es:
            cfg = SortConfig(
                elements_per_thread=e,
                block_size=b,
                warp_size=device.warp_size,
                name=f"e{e}-b{b}",
            )
            try:
                occ = occupancy(device, b, cfg.shared_bytes_per_block)
            except ConfigurationError:
                continue
            runner = SweepRunner(
                cfg,
                device,
                exact_threshold=exact_threshold,
                score_blocks=score_blocks,
                seed=seed,
            )
            sizes = cfg.valid_sizes(target_elements)
            if len(sizes) < 2:
                continue
            n = sizes[-1]
            random_point = runner.run_point("random", n)
            worst_point = runner.run_point("worst-case", n)
            points.append(
                GridPoint(
                    elements_per_thread=e,
                    block_size=b,
                    occupancy=occ.occupancy,
                    num_elements=n,
                    random_meps=random_point.throughput_meps,
                    worst_meps=worst_point.throughput_meps,
                )
            )
    points.sort(key=lambda p: -p.random_meps)
    return points
