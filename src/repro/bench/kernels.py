"""Kernel-level micro-benchmarks behind ``repro-mergesort bench kernels``.

The gated trajectory rows (``BENCH_simulator.json``) time whole
simulations; when one of them drifts, the first question is *which kernel
moved*. This module times the fused-path primitives in isolation — the
row-merge kernel, block-round scoring, global-round scoring, and the
end-to-end fused exact sort — and emits entries in the same shape as
``benchmarks/conftest.py:record_timing`` (``seconds`` = median, plus
``min_seconds``/``iqr_seconds`` so noise is distinguishable from drift),
so the output JSON can be diffed or gated with
``benchmarks/check_regression.py`` exactly like the committed baseline.

Backend behavior: every entry records the active fused backend
(``native``/``numpy``). ``kernel_merge_pairs`` and ``kernel_sort_fused``
measure the real code path of whichever backend is live;
``kernel_block_scoring``/``kernel_global_scoring`` call the compiled
round scorers directly and are skipped (not emitted) when the extension
is unavailable — a missing row is visible in the JSON rather than a
number measuring something else.
"""

from __future__ import annotations

import statistics
import time
from typing import Callable

import numpy as np

from repro.dmm import fused as dmm_fused
from repro.inputs.generators import generate
from repro.mergepath import fused as fused_kernels
from repro.sort.config import SortConfig
from repro.sort.pairwise import PairwiseMergeSort
from repro.utils.validation import check_positive_int

__all__ = ["kernel_benchmarks"]


def _measure(fn: Callable[[], object], repeat: int) -> dict:
    """Median/min/IQR timing entry (``record_timing``-shaped) of ``fn``."""
    times = []
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    entry = {
        "seconds": round(statistics.median(times), 6),
        "min_seconds": round(min(times), 6),
    }
    if len(times) >= 4:
        q1, _, q3 = statistics.quantiles(times, n=4)
        entry["iqr_seconds"] = round(q3 - q1, 6)
    else:
        entry["iqr_seconds"] = round(max(times) - min(times), 6)
    return entry


def _merge_entry(mat: np.ndarray, run: int, repeat: int) -> dict:
    """Time one full round of pairwise row merges, real backend path."""
    if fused_kernels.native_round_ready(mat.reshape(-1)):
        out = np.empty_like(mat)
        entry = _measure(
            lambda: fused_kernels.merge_pairs(mat, run, out), repeat
        )
    else:

        def argsort_merge():
            order = np.argsort(mat, axis=1, kind="stable")
            return np.take_along_axis(mat, order, axis=1)

        entry = _measure(argsort_merge, repeat)
    entry.update(rows=int(mat.shape[0]), run=int(run))
    return entry


def kernel_benchmarks(
    config: SortConfig,
    *,
    tiles: int = 16,
    repeat: int = 5,
    seed: int = 0,
) -> dict[str, dict]:
    """Run the kernel suite; ``{name: timing-entry}`` (insertion-ordered).

    ``tiles`` sets the working-set size (``N = tiles · bE``); ``repeat``
    the samples per kernel (median reported). Entries carry the problem
    shape and the active backend as extra fields.
    """
    check_positive_int(tiles, "tiles")
    check_positive_int(repeat, "repeat")
    backend = dmm_fused.active_backend()
    tile = config.tile_size
    n = tile * tiles
    data = generate("random", config, n, seed=seed)
    timings: dict[str, dict] = {}

    # Row-merge kernel at the largest block-round width (rows = one tile).
    run = tile // 2
    mat = np.sort(data.reshape(-1, run), axis=1).reshape(-1, tile)
    timings["kernel_merge_pairs"] = _merge_entry(mat, run, repeat)

    if dmm_fused.native_enabled():
        flat_pre = np.ascontiguousarray(mat.reshape(-1))
        scored = np.arange(min(tiles, 8), dtype=np.int64)
        timings["kernel_block_scoring"] = _measure(
            lambda: fused_kernels.fused_block_reports(
                flat_pre, scored, run, config.E, config.b, config.w, 0
            ),
            repeat,
        )
        timings["kernel_block_scoring"].update(
            tiles_scored=int(scored.size), run=int(run)
        )
        if tiles >= 2:
            gflat = np.ascontiguousarray(
                np.sort(data.reshape(-1, tile), axis=1).reshape(-1)
            )
            gscored = np.arange(min(tiles, 8), dtype=np.int64)
            timings["kernel_global_scoring"] = _measure(
                lambda: fused_kernels.fused_global_reports(
                    gflat, gscored, tile, config.E, config.b, config.w, 0
                ),
                repeat,
            )
            timings["kernel_global_scoring"].update(
                blocks_scored=int(gscored.size), run=int(tile)
            )

    sorter = PairwiseMergeSort(config, scoring="fused")
    timings["kernel_sort_fused"] = _measure(
        lambda: sorter.sort(data, seed=seed), repeat
    )
    timings["kernel_sort_fused"].update(n=int(n))

    for entry in timings.values():
        entry["backend"] = backend
    return timings
