"""The adversary-vs-mitigation robustness matrix.

Crosses every input family × sort backend × mitigation layout and scores
each cell with the instrumented simulators, answering the question the
paper's conclusion raises: *which layout defense actually neutralizes
the constructed worst case, and at what cost on benign inputs?*

Backends:

* ``pairwise`` — the algorithm the paper attacks
  (:class:`~repro.sort.pairwise.PairwiseMergeSort`);
* ``bitonic`` — the data-oblivious control
  (:class:`~repro.sort.bitonic.BitonicSort`): its conflicts are
  input-independent by construction, so every family lands on the same
  cell values;
* ``multiway`` — Karsin et al.'s K-way variant
  (:class:`~repro.sort.multiway.MultiwaySort`), whose consumption order
  partially decoheres the pairwise-specific adversary.

Per cell the matrix reports conflicts per element (the paper's Figure 6
metric), the *conflict factor* (serialized shared-memory cycles over
their conflict-free floor; 1.0 = conflict free), and the slowdown of
that family relative to the same backend+mitigation's ``sorted`` cell —
the adversary's leverage once the defense is in place.

The default configuration is power-of-two friendly (``E=4, b=64, w=32``)
so the bitonic backend — which needs ``N = 2^k`` — can share the grid
with the merge sorts; the paper's own presets (``E=15/17``) stay the
domain of the main sweeps.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.errors import ValidationError
from repro.inputs.generators import GENERATORS, generate
from repro.mitigation.registry import check_mitigation
from repro.sort.config import SortConfig

__all__ = [
    "DEFAULT_MATRIX_INPUTS",
    "DEFAULT_MATRIX_MITIGATIONS",
    "MATRIX_BACKENDS",
    "MatrixCell",
    "MatrixResult",
    "matrix_config",
    "run_matrix",
]

#: Sort backends the matrix can score.
MATRIX_BACKENDS = ("pairwise", "bitonic", "multiway")

#: Default family axis: the benign baseline, the expected case, and the
#: two engineered families.
DEFAULT_MATRIX_INPUTS = ("sorted", "random", "conflict-heavy", "worst-case")

#: Default mitigation axis: stock layout, the classic +1 pad, and the
#: two conflict-free remapping schemes.
DEFAULT_MATRIX_MITIGATIONS = ("none", "padding:1", "cfree-sort", "cfree-permute")


def matrix_config() -> SortConfig:
    """The matrix's shared configuration (``E=4, b=64, w=32``).

    Every dimension is a power of two so the bitonic control — which
    requires ``N = 2^k`` inputs — accepts the same grid sizes as the
    merge sorts (tile = 256, bitonic tile = 128).
    """
    return SortConfig(
        elements_per_thread=4, block_size=64, warp_size=32, name="matrix"
    )


@dataclass(frozen=True)
class MatrixCell:
    """One scored (input family, backend, mitigation) combination."""

    input_name: str
    backend: str
    mitigation: str
    num_elements: int
    #: Whole-sort profiler-style bank conflicts (excess replays).
    total_replays: float
    #: The paper's Figure 6 metric.
    replays_per_element: float
    #: Serialized shared-memory cycles across the sort.
    shared_cycles: float
    #: ``shared_cycles`` over its conflict-free floor (1.0 = conflict free).
    conflict_factor: float
    #: ``shared_cycles`` relative to the same backend+mitigation's
    #: ``sorted`` cell; NaN when the grid has no ``sorted`` column.
    slowdown_vs_sorted: float

    def describe(self) -> str:
        """One grep-friendly line (the ``matrix`` CLI's output unit)."""
        slow = (
            f"{self.slowdown_vs_sorted:.2f}"
            if self.slowdown_vs_sorted == self.slowdown_vs_sorted
            else "n/a"
        )
        return (
            f"input={self.input_name} backend={self.backend} "
            f"mitigation={self.mitigation} "
            f"conflicts/elem={self.replays_per_element:.2f} "
            f"conflict-factor={self.conflict_factor:.2f} "
            f"slowdown-vs-sorted={slow}"
        )


@dataclass(frozen=True)
class MatrixResult:
    """The full matrix plus the grid that produced it."""

    config: SortConfig
    num_elements: int
    input_names: tuple[str, ...]
    backends: tuple[str, ...]
    mitigations: tuple[str, ...]
    cells: tuple[MatrixCell, ...]

    def cell(self, input_name: str, backend: str, mitigation: str) -> MatrixCell:
        """Look one cell up; raises if the combination was not in the grid."""
        spec = check_mitigation(mitigation, field="mitigation")
        for cell in self.cells:
            if (
                cell.input_name == input_name
                and cell.backend == backend
                and cell.mitigation == spec
            ):
                return cell
        raise ValidationError(
            f"no matrix cell ({input_name!r}, {backend!r}, {spec!r})"
        )

    def table(self) -> str:
        """Aligned text table, one row per (input, backend), mitigation
        columns showing ``conflicts/elem (xconflict-factor)``."""
        header = ["input", "backend"] + [f"[{m}]" for m in self.mitigations]
        rows = [header]
        for name in self.input_names:
            for backend in self.backends:
                row = [name, backend]
                for mitigation in self.mitigations:
                    cell = self.cell(name, backend, mitigation)
                    row.append(
                        f"{cell.replays_per_element:.2f} "
                        f"(x{cell.conflict_factor:.2f})"
                    )
                rows.append(row)
        widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
        lines = [
            "  ".join(value.ljust(widths[i]) for i, value in enumerate(row))
            for row in rows
        ]
        lines.insert(1, "  ".join("-" * w for w in widths))
        return "\n".join(lines)


def _make_sorter(backend: str, config: SortConfig, mitigation: str):
    if backend == "pairwise":
        from repro.sort.pairwise import PairwiseMergeSort

        return PairwiseMergeSort(config, mitigation=mitigation)
    if backend == "bitonic":
        from repro.sort.bitonic import BitonicSort

        return BitonicSort(
            config.block_size, config.warp_size, mitigation=mitigation
        )
    if backend == "multiway":
        from repro.sort.multiway import MultiwaySort

        return MultiwaySort(config, k=4, mitigation=mitigation)
    known = ", ".join(MATRIX_BACKENDS)
    raise ValidationError(f"unknown backend {backend!r}; known: {known}")


def _score_cell(backend: str, sorter, data, score_blocks, seed):
    if backend == "bitonic":
        # Oblivious schedule: no sampling, no RNG.
        return sorter.sort(data)
    return sorter.sort(data, score_blocks=score_blocks, seed=seed)


def run_matrix(
    *,
    config: SortConfig | None = None,
    input_names: tuple[str, ...] = DEFAULT_MATRIX_INPUTS,
    backends: tuple[str, ...] = MATRIX_BACKENDS,
    mitigations: tuple[str, ...] = DEFAULT_MATRIX_MITIGATIONS,
    tiles: int = 8,
    score_blocks: int | None = None,
    seed: int = 0,
) -> MatrixResult:
    """Score the full input × backend × mitigation grid.

    ``tiles`` sizes the input as ``tiles × tile_size`` and must keep
    ``N`` a power of two when the ``bitonic`` backend is in the grid
    (the default config's tile is 256, so any power-of-two tile count
    works). ``score_blocks=None`` scores every block — exact cells,
    which is what makes the cfree rows provably zero rather than
    sampled-zero.
    """
    config = config if config is not None else matrix_config()
    if not input_names:
        raise ValidationError("matrix needs at least one input family")
    for name in input_names:
        if name not in GENERATORS:
            known = ", ".join(sorted(GENERATORS))
            raise ValidationError(f"unknown input {name!r}; known: {known}")
    backends = tuple(backends)
    for backend in backends:
        if backend not in MATRIX_BACKENDS:
            known = ", ".join(MATRIX_BACKENDS)
            raise ValidationError(
                f"unknown backend {backend!r}; known: {known}"
            )
    specs = tuple(
        check_mitigation(m, field="mitigations") for m in mitigations
    )
    if len(set(specs)) != len(specs):
        raise ValidationError("mitigation specs must be unique")
    num_elements = tiles * config.tile_size

    cells: list[MatrixCell] = []
    for backend in backends:
        for spec in specs:
            sorter = _make_sorter(backend, config, spec)
            for name in input_names:
                data = generate(name, config, num_elements, seed=seed)
                result = _score_cell(backend, sorter, data, score_blocks, seed)
                cycles = result.total_shared_cycles()
                steps = sum(r.shared_steps for r in result.rounds)
                cells.append(
                    MatrixCell(
                        input_name=name,
                        backend=backend,
                        mitigation=spec,
                        num_elements=num_elements,
                        total_replays=result.total_replays(),
                        replays_per_element=result.replays_per_element(),
                        shared_cycles=cycles,
                        conflict_factor=cycles / steps if steps else 1.0,
                        slowdown_vs_sorted=float("nan"),
                    )
                )

    # Second pass: slowdown of each family against the same
    # backend+mitigation's sorted cell (the benign baseline).
    baselines = {
        (c.backend, c.mitigation): c.shared_cycles
        for c in cells
        if c.input_name == "sorted"
    }
    cells = [
        dataclasses.replace(
            cell,
            slowdown_vs_sorted=(
                cell.shared_cycles / base
                if (base := baselines.get((cell.backend, cell.mitigation)))
                else float("nan")
            ),
        )
        for cell in cells
    ]
    return MatrixResult(
        config=config,
        num_elements=num_elements,
        input_names=tuple(input_names),
        backends=backends,
        mitigations=specs,
        cells=tuple(cells),
    )
