"""Bench point records and the paper's slowdown statistics.

Section IV-B reports, per (library, device, parameter set): the *peak*
slowdown of constructed inputs vs random (and the size it occurs at) and
the *average* slowdown over the sweep. :func:`slowdown_stats` computes both
from two aligned sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError

__all__ = ["BenchPoint", "SlowdownStats", "slowdown_stats"]


@dataclass(frozen=True)
class BenchPoint:
    """One measured sweep point."""

    config_name: str
    device_name: str
    input_name: str
    num_elements: int
    milliseconds: float
    throughput_meps: float
    replays_per_element: float
    shared_cycles: int
    global_transactions: int

    @property
    def ms_per_element(self) -> float:
        """Figure 6's left axis: runtime (ms) per element."""
        return self.milliseconds / self.num_elements


@dataclass(frozen=True)
class SlowdownStats:
    """Slowdown of a *slow* sweep relative to a *fast* baseline sweep."""

    peak_percent: float
    peak_at: int
    average_percent: float

    def __str__(self) -> str:
        return (
            f"peak {self.peak_percent:.2f}% (at {self.peak_at:,} elements), "
            f"average {self.average_percent:.2f}%"
        )


def slowdown_stats(
    baseline: list[BenchPoint], constructed: list[BenchPoint]
) -> SlowdownStats:
    """Peak and average slowdown of ``constructed`` vs ``baseline``.

    Slowdown at a size is ``time_constructed / time_baseline − 1`` (equal to
    the throughput drop ratio). Sweeps must cover identical sizes in order.
    """
    if len(baseline) != len(constructed) or not baseline:
        raise ValidationError("sweeps must be nonempty and equally sized")
    slowdowns = []
    for base, worst in zip(baseline, constructed):
        if base.num_elements != worst.num_elements:
            raise ValidationError(
                f"sweeps misaligned: {base.num_elements} vs {worst.num_elements}"
            )
        slowdowns.append((worst.milliseconds / base.milliseconds - 1.0) * 100.0)
    peak_idx = max(range(len(slowdowns)), key=slowdowns.__getitem__)
    return SlowdownStats(
        peak_percent=slowdowns[peak_idx],
        peak_at=baseline[peak_idx].num_elements,
        average_percent=sum(slowdowns) / len(slowdowns),
    )
