"""Deprecated shim over :mod:`repro.engine` — the old sweep fan-out API.

The machinery that lived here moved with the execution-engine refactor:

* :class:`~repro.engine.tasks.WorkItem`,
  :class:`~repro.engine.tasks.ProgressEvent`,
  :func:`~repro.engine.tasks.sweep_items` and
  :func:`~repro.engine.tasks.cache_ref` → :mod:`repro.engine.tasks`
  (re-exported here unchanged);
* the process-local runner table → the fingerprint-keyed tables inside
  :class:`~repro.engine.inline.InlineEngine` and the
  :class:`~repro.engine.pool.PoolEngine` workers (keying by the full
  device/config field set, not ``device.name``, so warm workers can
  never serve a stale runner);
* :func:`run_points` → :func:`repro.engine.execute_items`, which this
  module still forwards to for external callers.

New code should use :func:`repro.engine.execute_items` or an explicit
engine; :func:`run_points` emits one :class:`DeprecationWarning` per
process and delegates.
"""

from __future__ import annotations

import warnings
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Sequence

from repro.bench.metrics import BenchPoint
from repro.engine.tasks import (  # noqa: F401  (re-exports, old import paths)
    ProgressEvent,
    WorkItem,
    cache_ref,
    sweep_items,
)

__all__ = ["ProgressEvent", "WorkItem", "cache_ref", "run_points", "sweep_items"]

_DEPRECATION_WARNED = False


def run_points(
    items: Sequence[WorkItem],
    *,
    jobs: int = 1,
    progress: Callable[[ProgressEvent], None] | None = None,
    pool: ProcessPoolExecutor | None = None,
) -> list[BenchPoint]:
    """Deprecated: use :func:`repro.engine.execute_items`.

    Same signature and behavior (borrowed pools included); warns once
    per process so long sweeps do not drown in repeats.
    """
    global _DEPRECATION_WARNED
    if not _DEPRECATION_WARNED:
        _DEPRECATION_WARNED = True
        warnings.warn(
            "repro.bench.parallel.run_points is deprecated; use "
            "repro.engine.execute_items (or an explicit engine from "
            "repro.engine.create_engine)",
            DeprecationWarning,
            stacklevel=2,
        )
    from repro.engine.dispatch import execute_items

    return execute_items(items, jobs=jobs, progress=progress, pool=pool)
