"""Parallel fan-out of sweep points over a process pool.

The bench grid has the same structure Green et al. exploit inside a
single merge: every (config, device, input, N) point is independent, so
the sweep is embarrassingly parallel *across points*. This module fans
:class:`WorkItem`s out over a :class:`concurrent.futures
.ProcessPoolExecutor`; each worker builds (or reuses) a
:class:`~repro.bench.runner.SweepRunner` for the item's parameters and
returns a plain :class:`~repro.bench.metrics.BenchPoint`.

Determinism: a point's result depends only on the item's fields (every
input and every block-sampling choice is seeded per point), so parallel
and serial execution produce bit-identical ``BenchPoint``s — enforced by
``tests/bench/test_parallel.py``.

Workers keep a process-local runner table so calibration sorts are run
once per (config, input) per worker rather than once per point — and so
each worker's :class:`SweepRunner` carries one long-lived
:class:`~repro.dmm.memo.ConflictMemo` across every item it executes
(runners default to ``memo="auto"``): repeated rounds across a worker's
points are scored once per worker. With an on-disk
:class:`~repro.bench.cache.BenchCache` attached (``cache_dir`` +
``use_cache``) calibrations and points are shared across workers and
across invocations; the in-memory memo composes with it by de-duplicating
the *work inside* the instrumented sorts the disk cache cannot serve.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.bench.cache import BenchCache
from repro.bench.metrics import BenchPoint
from repro.bench.runner import SweepRunner
from repro.errors import ValidationError
from repro.gpu.device import DeviceSpec
from repro.sort.config import SortConfig

__all__ = ["ProgressEvent", "WorkItem", "cache_ref", "run_points", "sweep_items"]


@dataclass(frozen=True)
class WorkItem:
    """One picklable sweep point: everything a worker needs to run it."""

    config: SortConfig
    device: DeviceSpec
    input_name: str
    num_elements: int
    exact_threshold: int = 1 << 21
    score_blocks: int | None = 8
    seed: int = 0
    padding: int = 0
    #: Runner scoring mode ("vectorized" | "loop" | "analytic" | "auto");
    #: see :class:`~repro.bench.runner.SweepRunner`. The CLI and service
    #: default to "auto" so constructed-family points go closed-form.
    scoring: str = "vectorized"
    cache_dir: str | None = None
    use_cache: bool = False

    def describe(self) -> str:
        """Human-readable label for progress lines."""
        return (
            f"{self.config.name} · {self.device.name} · {self.input_name} "
            f"· N={self.num_elements:,}"
        )


@dataclass(frozen=True)
class ProgressEvent:
    """Emitted to the ``progress`` callback after each completed point."""

    done: int
    total: int
    item: WorkItem
    point: BenchPoint
    seconds: float
    from_cache: bool

    def describe(self) -> str:
        """One progress/timing line."""
        tag = " (cached)" if self.from_cache else ""
        return f"[{self.done}/{self.total}] {self.item.describe()} · " \
               f"{self.seconds:.2f}s{tag}"


def cache_ref(cache: BenchCache | None) -> tuple[str | None, bool]:
    """Picklable (cache_dir, use_cache) reference to a cache instance."""
    if cache is None:
        return None, False
    return str(cache.cache_dir), True


def sweep_items(
    config: SortConfig,
    device: DeviceSpec,
    input_names: Sequence[str],
    sizes: Iterable[int],
    *,
    exact_threshold: int = 1 << 21,
    score_blocks: int | None = 8,
    seed: int = 0,
    padding: int = 0,
    scoring: str = "vectorized",
    cache: BenchCache | None = None,
) -> list[WorkItem]:
    """Work items for a size sweep of each input family, in sweep order."""
    cache_dir, use_cache = cache_ref(cache)
    return [
        WorkItem(
            config=config,
            device=device,
            input_name=name,
            num_elements=n,
            exact_threshold=exact_threshold,
            score_blocks=score_blocks,
            seed=seed,
            padding=padding,
            scoring=scoring,
            cache_dir=cache_dir,
            use_cache=use_cache,
        )
        for name in input_names
        for n in sizes
    ]


#: Process-local runner table: calibrations and the runner's conflict memo
#: are reused across the items a worker (or the serial path) executes with
#: identical runner parameters.
_RUNNERS: dict[tuple, SweepRunner] = {}


def _runner_for(item: WorkItem) -> SweepRunner:
    key = (
        item.config,
        item.device.name,
        item.exact_threshold,
        item.score_blocks,
        item.seed,
        item.padding,
        item.scoring,
        item.cache_dir,
        item.use_cache,
    )
    runner = _RUNNERS.get(key)
    if runner is None:
        cache = BenchCache(item.cache_dir) if item.use_cache else None
        runner = SweepRunner(
            item.config,
            item.device,
            exact_threshold=item.exact_threshold,
            score_blocks=item.score_blocks,
            seed=item.seed,
            padding=item.padding,
            scoring=item.scoring,
            cache=cache,
        )
        _RUNNERS[key] = runner
    return runner


def _execute(item: WorkItem) -> tuple[BenchPoint, float, bool]:
    """Run one work item; returns (point, seconds, served-from-cache)."""
    runner = _runner_for(item)
    hits_before = runner.cache.hits if runner.cache is not None else 0
    start = time.perf_counter()
    point = runner.run_point(item.input_name, item.num_elements)
    elapsed = time.perf_counter() - start
    from_cache = runner.cache is not None and runner.cache.hits > hits_before
    return point, elapsed, from_cache


def run_points(
    items: Sequence[WorkItem],
    *,
    jobs: int = 1,
    progress: Callable[[ProgressEvent], None] | None = None,
    pool: ProcessPoolExecutor | None = None,
) -> list[BenchPoint]:
    """Execute work items, preserving input order in the result list.

    Parameters
    ----------
    items:
        The sweep points to run.
    jobs:
        Worker processes; ``1`` runs serially in-process (no pool).
        Ignored when ``pool`` is given.
    progress:
        Optional callback invoked once per completed point (completion
        order, not submission order, under parallel execution).
    pool:
        Optional externally owned :class:`ProcessPoolExecutor` to submit
        to instead of creating (and tearing down) a private one. Long-
        lived callers — the :mod:`repro.service` daemon above all — pass
        a warm pool so worker processes keep their ``_RUNNERS`` tables
        (calibrations + conflict memos) across calls. The caller owns
        the pool's lifecycle; ``run_points`` never shuts it down.
    """
    if jobs < 1:
        raise ValidationError(f"jobs must be >= 1, got {jobs}")
    items = list(items)
    total = len(items)
    results: list[BenchPoint | None] = [None] * total

    if pool is None and (jobs == 1 or total <= 1):
        for i, item in enumerate(items):
            point, elapsed, from_cache = _execute(item)
            results[i] = point
            if progress is not None:
                progress(
                    ProgressEvent(i + 1, total, item, point, elapsed, from_cache)
                )
        return results  # type: ignore[return-value]

    def _collect(executor: ProcessPoolExecutor) -> None:
        done = 0
        futures = {
            executor.submit(_execute, item): i for i, item in enumerate(items)
        }
        for future in as_completed(futures):
            i = futures[future]
            point, elapsed, from_cache = future.result()
            results[i] = point
            done += 1
            if progress is not None:
                progress(
                    ProgressEvent(
                        done, total, items[i], point, elapsed, from_cache
                    )
                )

    if pool is not None:
        _collect(pool)
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, total)) as owned:
            _collect(owned)
    return results  # type: ignore[return-value]
