"""Markdown emission for EXPERIMENTS.md and the CLI's ``figure`` command."""

from __future__ import annotations

from repro.bench.metrics import BenchPoint, SlowdownStats

__all__ = [
    "markdown_sweep_table",
    "render_figure4",
    "render_figure5",
    "render_figure6",
    "render_theory_table",
]


def markdown_sweep_table(
    random: list[BenchPoint], worst: list[BenchPoint]
) -> str:
    """Side-by-side random/worst sweep as a markdown table."""
    lines = [
        "| N | random Melem/s | worst Melem/s | slowdown % | "
        "random confl/elem | worst confl/elem |",
        "|---:|---:|---:|---:|---:|---:|",
    ]
    for r, w in zip(random, worst):
        slow = (w.milliseconds / r.milliseconds - 1.0) * 100.0
        lines.append(
            f"| {r.num_elements:,} | {r.throughput_meps:.0f} | "
            f"{w.throughput_meps:.0f} | {slow:.1f} | "
            f"{r.replays_per_element:.2f} | {w.replays_per_element:.2f} |"
        )
    return "\n".join(lines)


def _panel_md(title: str, panel: dict) -> str:
    stats: SlowdownStats = panel["slowdown"]
    return "\n".join(
        [
            f"### {title}",
            "",
            f"Constructed-input slowdown vs random: **{stats}**",
            "",
            markdown_sweep_table(panel["random"], panel["worst"]),
            "",
        ]
    )


def render_figure4(data: dict) -> str:
    """Figure 4 markdown (Quadro M4000, Thrust + Modern GPU)."""
    return "\n".join(
        [
            f"## Figure 4 — throughput on the {data['device']}",
            "",
            _panel_md("Thrust (E=15, b=512)", data["thrust"]),
            _panel_md("Modern GPU (E=15, b=128)", data["mgpu"]),
        ]
    )


def render_figure5(data: dict) -> str:
    """Figure 5 markdown (RTX 2080 Ti, both parameter presets)."""
    return "\n".join(
        [
            f"## Figure 5 — throughput on the {data['device']}",
            "",
            _panel_md("E=15, b=512", data["e15_b512"]),
            _panel_md("E=17, b=256", data["e17_b256"]),
        ]
    )


def render_figure6(data: dict) -> str:
    """Figure 6 markdown (per-element runtime and conflicts)."""
    lines = [
        f"## Figure 6 — per-element runtime and conflicts "
        f"({data['device']}, {data['input']} inputs)",
        "",
        "| N | ms/elem (E=15,b=512) | confl/elem (E=15,b=512) | "
        "ms/elem (E=17,b=256) | confl/elem (E=17,b=256) |",
        "|---:|---:|---:|---:|---:|",
    ]
    p15, p17 = data["e15_b512"], data["e17_b256"]
    for i in range(min(len(p15["sizes"]), len(p17["sizes"]))):
        lines.append(
            f"| {p15['sizes'][i]:,} | {p15['ms_per_element'][i]:.3e} | "
            f"{p15['replays_per_element'][i]:.2f} | "
            f"{p17['ms_per_element'][i]:.3e} | "
            f"{p17['replays_per_element'][i]:.2f} |"
        )
    return "\n".join(lines)


def render_theory_table(rows: list[dict]) -> str:
    """Theorem verification markdown table."""
    lines = [
        "| w | E | case | predicted aligned | constructed aligned | "
        "effective threads |",
        "|---:|---:|:--|---:|---:|---:|",
    ]
    for r in rows:
        lines.append(
            f"| {r['w']} | {r['E']} | {r['case']} | {r['predicted']} | "
            f"{r['constructed']} | {r['effective_threads']} |"
        )
    return "\n".join(lines)
