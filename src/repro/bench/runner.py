"""Sweep runner: one measured point per (config, device, input, N).

Exact simulation is affordable up to a few million elements; the paper's
sweeps reach ~2.9·10⁸. The runner therefore has two paths:

* ``N ≤ exact_threshold`` — build the input, run the instrumented sort
  (with block sampling), fold counters through the timing model;
* ``N > exact_threshold`` — run one *calibration* sort at the threshold
  size and synthesize the large-``N`` cost from measured per-round,
  per-element rates. This is sound because the instrumentation rates are
  ``N``-independent: the base case is a fixed per-element cost; global
  rounds have statistically identical per-element conflict rates (exactly
  identical for the periodic constructed inputs); and round counts /
  global traffic are closed-form in ``N``. Tests verify synthesized and
  exact costs agree at sizes where both are available.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench import cache as bench_cache
from repro.bench.cache import BenchCache
from repro.bench.metrics import BenchPoint
from repro.dmm.memo import ConflictMemo
from repro.engine.registry import DEFAULT_SCORING, check_scoring, resolve_scoring
from repro.errors import ValidationError
from repro.gpu.device import DeviceSpec
from repro.gpu.occupancy import occupancy
from repro.gpu.timing import KernelCost, TimingModel
from repro.inputs.generators import generate
from repro.sort.config import SortConfig
from repro.sort.pairwise import PairwiseMergeSort, SortResult
from repro.utils.bits import ceil_log2
from repro.utils.validation import check_positive_int

__all__ = ["BenchPoint", "CalibratedRates", "SweepRunner"]


@dataclass(frozen=True)
class CalibratedRates:
    """Per-element instrumentation rates measured at a calibration size.

    ``base_*`` cover the whole base case (register phase + all ``log b``
    block rounds — a fixed per-element cost for any ``N``); ``global_*``
    are per global round per element. ``base_compute`` is the measured
    per-element warp-instruction cost of the base case: the odd-even
    comparator ops of the register phase plus ``3/w`` per block round —
    *not* the ``3/w`` of a single merge round, which is why synthesis
    must take it from here rather than re-deriving it (see
    :meth:`SweepRunner._synthesize_cost`).
    """

    base_shared_cycles: float
    base_shared_steps: float
    base_replays: float
    base_compute: float
    global_shared_cycles: float
    global_shared_steps: float
    global_replays: float

    @classmethod
    def from_result(cls, result: SortResult) -> "CalibratedRates":
        """Measure rates from an instrumented sort."""
        n = result.num_elements
        base = [r for r in result.rounds if r.kind in ("registers", "block")]
        glob = [r for r in result.rounds if r.kind == "global"]
        if not glob:
            raise ValidationError(
                "calibration run must include at least one global round "
                "(use N >= 2 tiles)"
            )
        return cls(
            base_shared_cycles=sum(r.shared_cycles for r in base) / n,
            base_shared_steps=sum(r.shared_steps for r in base) / n,
            base_replays=sum(r.replays for r in base) / n,
            base_compute=sum(r.compute_instructions for r in base) / n,
            global_shared_cycles=sum(r.shared_cycles for r in glob) / (n * len(glob)),
            global_shared_steps=sum(r.shared_steps for r in glob) / (n * len(glob)),
            global_replays=sum(r.replays for r in glob) / (n * len(glob)),
        )


@dataclass
class SweepRunner:
    """Runs bench points for one (config, device) pair.

    Parameters
    ----------
    config, device:
        The sort parameters and simulated GPU.
    exact_threshold:
        Largest ``N`` simulated exactly (default ``2²¹``); larger sizes are
        synthesized from a calibration run at the largest exact size.
    score_blocks:
        Blocks traced per round during simulation (the constructed inputs
        are block-periodic, so small samples are exact for them).
    seed:
        Input-generation seed.
    padding:
        Shared-memory padding passed to the simulated sort (0 = the stock
        layout the paper attacks).
    scoring:
        Round-scoring implementation: ``"auto"`` (the registry-wide
        :data:`~repro.engine.registry.DEFAULT_SCORING` — analytic for
        analytic-eligible (input, N) points, vectorized otherwise,
        keeping the usual exact/synthesized threshold split),
        ``"vectorized"`` (batches every scored tile of a round),
        ``"loop"`` (the per-tile reference), or ``"analytic"``
        (closed-form, constructed families only — exact at *every* size,
        so the synthesized path is never taken). Routing for ``"auto"``
        is :func:`repro.engine.registry.resolve_scoring`, the same
        decision every other execution path uses. Vectorized, loop, analytic
        and auto are bit-identical wherever they overlap (enforced by the
        equivalence tests), so cache fingerprints ignore this knob —
        except for explicit ``"analytic"``, whose exact-at-every-size
        points above ``exact_threshold`` genuinely differ from the
        synthesized ones and get their own fingerprint entry.
    memo:
        Conflict-report memoization shared across every instrumented sort
        this runner executes (see :class:`~repro.dmm.memo.ConflictMemo`):
        the points of a sweep repeat each other's early rounds, so
        cross-point sharing is where the memo pays off most. ``"auto"``
        (default) creates one runner-private memo when ``scoring`` is
        ``"vectorized"``; pass a memo to share wider (several runners, a
        family sweep) or ``None`` to disable. Memoization never changes
        results (bit-identity is enforced by the equivalence tests), so —
        like ``scoring`` — it stays out of cache fingerprints.
    cache:
        Optional :class:`~repro.bench.cache.BenchCache`; when set, bench
        points and calibration rates are looked up on disk before any
        instrumented sort runs, and stored after computation.

    ``instrumented_sorts`` counts how many instrumented sorts this runner
    actually executed — zero across a sweep means every point was served
    from the cache.
    """

    config: SortConfig
    device: DeviceSpec
    exact_threshold: int = 1 << 21
    score_blocks: int | None = 8
    seed: int = 0
    padding: int = 0
    scoring: str = DEFAULT_SCORING
    #: Shared-memory layout defense (spec string, see
    #: :mod:`repro.mitigation.registry`); canonicalized at construction.
    #: The legacy ``padding`` knob keeps its spelling (and its cache
    #: fingerprints) — the two reconcile inside the sorter.
    mitigation: str = "none"
    memo: ConflictMemo | None | str = "auto"
    cache: BenchCache | None = None
    instrumented_sorts: int = field(default=0, init=False, repr=False)
    _calibrations: dict = field(default_factory=dict, repr=False)
    _engine: object = field(default=None, init=False, repr=False)
    _models: dict = field(default_factory=dict, init=False, repr=False)
    _layout: object = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        from repro.mitigation.registry import reconcile_mitigation
        from repro.utils.validation import check_nonnegative_int

        check_positive_int(self.exact_threshold, "exact_threshold")
        check_nonnegative_int(self.padding, "padding")
        check_scoring(self.scoring)
        # Reconcile once: catches padding/mitigation conflicts and the
        # analytic-vs-unmodeled-layout case at construction, and gives
        # the occupancy model the layout's true footprint.
        self._layout = reconcile_mitigation(self.mitigation, self.padding)
        self.mitigation = (
            "none" if self.mitigation is None else
            reconcile_mitigation(self.mitigation).spec
        )
        if self.scoring == "analytic" and not self._layout.analytic_supported:
            raise ValidationError(
                "scoring='analytic' cannot model mitigation "
                f"{self._layout.spec!r}; use a simulated scoring for this "
                "layout"
            )
        # Resolve "auto" once so every instrumented sort shares one memo
        # (PairwiseMergeSort's own "auto" would build a fresh memo per
        # sort and lose all cross-point hits). The auto scoring mode
        # keeps a memo for compatibility even though the registry router
        # now prefers analytic/fused, neither of which engages it.
        if isinstance(self.memo, str) and self.memo == "auto":
            self.memo = (
                ConflictMemo()
                if self.scoring in ("vectorized", "auto")
                else None
            )
        elif isinstance(self.memo, ConflictMemo) and self.scoring in (
            "loop",
            "analytic",
            "fused",
        ):
            raise ValidationError(
                "memoization applies only to simulated vectorized scoring; "
                f"scoring={self.scoring!r} stays memo-free"
            )
        if self.config.warp_size != self.device.warp_size:
            raise ValidationError(
                f"config warp size {self.config.warp_size} != device warp "
                f"size {self.device.warp_size}"
            )

    # -- helpers -----------------------------------------------------------

    @property
    def timing(self) -> TimingModel:
        """The timing model for this device."""
        return TimingModel(self.device)

    @property
    def warps_per_sm(self) -> int:
        """Resident warps per SM at this config's occupancy.

        Uses the mitigation layout's physical footprint — the occupancy
        price of a defense is exactly what the matrix experiment charges
        each backend.
        """
        occ = occupancy(
            self.device,
            self.config.block_size,
            self._layout.shared_bytes(self.config),
        )
        return occ.warps_per_sm

    def _calibration_size(self) -> int:
        """Largest valid exact size (at least two tiles)."""
        sizes = self.config.valid_sizes(self.exact_threshold)
        if len(sizes) < 2:
            raise ValidationError(
                f"exact_threshold {self.exact_threshold} leaves no valid "
                f"calibration size for tile {self.config.tile_size}"
            )
        return sizes[-1]

    # -- the two paths -------------------------------------------------------

    def run_point(self, input_name: str, num_elements: int) -> BenchPoint:
        """Measure one sweep point (exact or synthesized as needed).

        With a :attr:`cache` attached, a fingerprint hit returns the
        stored point without running any instrumented sort.
        """
        n = self.config.validate_input_size(num_elements)
        key = None
        if self.cache is not None:
            key = bench_cache.point_key(
                self.config,
                self.device,
                padding=self.padding,
                input_name=input_name,
                num_elements=n,
                score_blocks=self.score_blocks,
                seed=self.seed,
                exact_threshold=self.exact_threshold,
                # Explicit analytic scoring is exact at every size, so its
                # above-threshold points differ from synthesized ones and
                # must not share their fingerprints. Everywhere the paths
                # overlap they are bit-identical, so no other scoring mode
                # enters the key. Non-default mitigations likewise get
                # their own fingerprints ("none" stays absent so every
                # pre-existing entry keeps hitting).
                scoring="analytic" if self.scoring == "analytic" else None,
                mitigation=(
                    None if self.mitigation == "none" else self.mitigation
                ),
            )
            cached = self.cache.get_point(key)
            if cached is not None:
                return cached
        if n <= self.exact_threshold or self.scoring == "analytic":
            point = self._exact_point(input_name, n)
        else:
            point = self._synthesized_point(input_name, n)
        if key is not None:
            self.cache.put_point(key, point)
        return point

    def _resolved_scoring(self, input_name: str, n: int) -> str:
        """This point's concrete scoring, via the registry's one router."""
        return resolve_scoring(
            self.scoring,
            config=self.config,
            input_name=input_name,
            num_elements=n,
            mitigation=self._layout.spec,
        )

    def _use_analytic(self, input_name: str, n: int) -> bool:
        """Whether this point's instrumented sort runs closed-form.

        Explicit ``"analytic"`` passes through (ineligible inputs then
        fail loudly, by design); ``"auto"`` routes eligibility here.
        """
        return self._resolved_scoring(input_name, n) == "analytic"

    def _analytic_sort(self, input_name: str, n: int) -> SortResult:
        from repro.analytic import AnalyticEngine, analytic_model

        if self._engine is None:
            # Analytic-supported layouts are padding-expressible; the
            # reconciled width covers both the legacy knob and an
            # explicit "padding:N" mitigation spec.
            self._engine = AnalyticEngine(
                self.config, padding=self._layout.native_padding or 0
            )
        model = self._models.get((input_name, n))
        if model is None:
            model = self._models[(input_name, n)] = analytic_model(
                input_name, self.config, n
            )
        # BenchPoints never read the sorted values, so skip materializing
        # the O(N) output — this is what makes 2^34-scale points cheap.
        return self._engine.sort_result(
            model,
            score_blocks=self.score_blocks,
            seed=self.seed,
            include_values=False,
        )

    def _instrumented_sort(self, input_name: str, n: int) -> SortResult:
        scoring = self._resolved_scoring(input_name, n)
        self.instrumented_sorts += 1
        if scoring == "analytic":
            return self._analytic_sort(input_name, n)
        data = generate(input_name, self.config, n, seed=self.seed)
        # "auto" may resolve to fused per point while the runner keeps a
        # memo for other points; only the vectorized sorter takes it.
        memo = self.memo if scoring == "vectorized" else None
        return PairwiseMergeSort(
            self.config,
            padding=self.padding,
            scoring=scoring,
            memo=memo,
            mitigation=self.mitigation,
        ).sort(data, score_blocks=self.score_blocks, seed=self.seed)

    def _exact_point(self, input_name: str, n: int) -> BenchPoint:
        result = self._instrumented_sort(input_name, n)
        cost = result.kernel_cost(self.warps_per_sm)
        return self._to_point(input_name, n, cost, result.replays_per_element())

    def _synthesized_point(self, input_name: str, n: int) -> BenchPoint:
        rates = self._calibrate(input_name)
        cost, replays_per_element = self._synthesize_cost(n, rates)
        return self._to_point(input_name, n, cost, replays_per_element)

    def _calibrate(self, input_name: str) -> CalibratedRates:
        if input_name in self._calibrations:
            return self._calibrations[input_name]
        n_cal = self._calibration_size()
        key = rates = None
        if self.cache is not None:
            key = bench_cache.rates_key(
                self.config,
                padding=self.padding,
                input_name=input_name,
                calibration_size=n_cal,
                score_blocks=self.score_blocks,
                seed=self.seed,
                mitigation=(
                    None if self.mitigation == "none" else self.mitigation
                ),
            )
            rates = self.cache.get_rates(key)
        if rates is None:
            rates = CalibratedRates.from_result(
                self._instrumented_sort(input_name, n_cal)
            )
            if key is not None:
                self.cache.put_rates(key, rates)
        self._calibrations[input_name] = rates
        return rates

    def _synthesize_cost(
        self, n: int, rates: CalibratedRates
    ) -> tuple[KernelCost, float]:
        cfg = self.config
        rounds = cfg.num_global_rounds(n)

        shared_cycles = rates.base_shared_cycles * n
        shared_steps = rates.base_shared_steps * n
        replays = rates.base_replays * n
        shared_cycles += rates.global_shared_cycles * n * rounds
        shared_steps += rates.global_shared_steps * n * rounds
        replays += rates.global_replays * n * rounds

        # Global traffic, closed form (mirrors PairwiseMergeSort exactly):
        # base: 2N words streamed; each global round: 2N streamed + the
        # per-block mutual binary searches.
        words = 2 * n
        transactions = 2 * (-(-n // cfg.w))
        blocks = n // cfg.tile_size
        run = cfg.tile_size
        for _ in range(rounds):
            words += 2 * n
            transactions += 2 * (-(-n // cfg.w))
            probes = blocks * 2 * ceil_log2(run + 1)
            transactions += probes
            words += probes
            run *= 2

        # Base compute comes from the calibration (register-phase comparator
        # ops + 3n/w per *block* round); only the global rounds are the flat
        # 3n/w merge term. Deriving the base as another 3n/w understates it
        # and made compute_warp_instructions jump at exact_threshold.
        compute = round(rates.base_compute * n) + (3 * n // cfg.w) * rounds
        cost = KernelCost(
            shared_cycles=round(shared_cycles),
            shared_steps=round(shared_steps),
            global_transactions=transactions,
            global_words=words,
            compute_warp_instructions=compute,
            kernel_launches=1 + 2 * rounds,
            warps_per_sm=self.warps_per_sm,
            element_bytes=cfg.element_bytes,
        )
        return cost, replays / n

    def _to_point(
        self, input_name: str, n: int, cost: KernelCost, replays_per_element: float
    ) -> BenchPoint:
        ms = self.timing.milliseconds(cost)
        return BenchPoint(
            config_name=self.config.name,
            device_name=self.device.name,
            input_name=input_name,
            num_elements=n,
            milliseconds=ms,
            throughput_meps=n / (ms * 1e-3) / 1e6,
            replays_per_element=replays_per_element,
            shared_cycles=cost.shared_cycles,
            global_transactions=cost.global_transactions,
        )

    def sweep(self, input_name: str, sizes) -> list[BenchPoint]:
        """Run a whole size sweep for one input kind."""
        return [self.run_point(input_name, n) for n in sizes]
