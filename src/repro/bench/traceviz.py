"""Trace visualization: per-step bank-pressure heat maps in ASCII.

A conflict number summarizes a trace; the heat map *shows* it: rows are
banks, columns are lock-step iterations, cells are request counts. The
constructed worst case appears as the characteristic hot diagonal (bank
``s + j`` at step ``j``); random inputs as uniform speckle; padded runs as
a scattered diagonal.
"""

from __future__ import annotations

import numpy as np

from repro.dmm.trace import AccessTrace
from repro.errors import ValidationError
from repro.utils.validation import check_power_of_two

__all__ = ["bank_pressure", "heat_map"]

#: Glyph ramp for request counts 0, 1, 2, … (saturating).
_RAMP = " .:-=+*#%@"


def bank_pressure(trace: AccessTrace, num_banks: int) -> np.ndarray:
    """``(banks, steps)`` matrix of per-bank request counts (no broadcast
    dedup — this is *element* pressure, the alignment view)."""
    num_banks = check_power_of_two(num_banks, "num_banks")
    counts = np.zeros((num_banks, trace.num_steps), dtype=np.int64)
    if trace.num_accesses:
        step_idx, lane_idx = np.nonzero(trace.active)
        banks = trace.addresses[step_idx, lane_idx] % num_banks
        np.add.at(counts, (banks, step_idx), 1)
    return counts


def heat_map(
    trace: AccessTrace, num_banks: int, *, title: str = "", max_steps: int = 64
) -> str:
    """Render a trace as an ASCII bank×step heat map.

    >>> import numpy as np
    >>> from repro.dmm.trace import AccessTrace
    >>> t = AccessTrace.from_dense(np.array([[0, 4], [1, 5]]))
    >>> print(heat_map(t, 4))  # doctest: +NORMALIZE_WHITESPACE
    bank  0 │:
    bank  1 │ :
    bank  2 │
    bank  3 │
             steps 0..1, glyphs: ' '=0 '.'=1 ':'=2 ... '@'=9+
    """
    if max_steps < 1:
        raise ValidationError(f"max_steps must be >= 1, got {max_steps}")
    counts = bank_pressure(trace, num_banks)[:, :max_steps]
    lines = [title] if title else []
    for bank in range(counts.shape[0]):
        row = "".join(
            _RAMP[min(int(c), len(_RAMP) - 1)] for c in counts[bank]
        ).rstrip()
        lines.append(f"bank {bank:2d} │{row}")
    shown = counts.shape[1]
    lines.append(
        f"         steps 0..{max(shown - 1, 0)}, glyphs: ' '=0 '.'=1 ':'=2 "
        f"... '@'={len(_RAMP) - 1}+"
    )
    return "\n".join(lines)
