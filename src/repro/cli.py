"""Command-line interface: ``python -m repro`` / ``repro-mergesort``.

Subcommands:

* ``construct`` — print a worst-case warp layout (paper Fig. 3 style);
* ``simulate`` — sort one input through the instrumented simulator and
  report per-round conflicts and simulated runtime;
* ``sweep`` — a throughput size sweep for one (preset, device, input);
* ``figure`` — regenerate a paper figure (1, 3, 4, 5, 6, or ``theory``);
* ``cache`` — inspect or clear the on-disk bench-result cache.

The sweep-driven commands (``sweep``, ``figure 4/5/6``, ``grid``,
``reproduce``) accept ``--jobs N`` to fan independent points out over a
worker pool and ``--cache`` / ``--cache-dir`` to reuse previously
computed points and calibrations from disk; per-point progress/timing
lines go to stderr so long sweeps stay observable.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.adversary.assignment import construct_warp_assignment
from repro.bench import slowdown_stats
from repro.bench.ascii_plot import bank_matrix_str, line_plot, table
from repro.bench.cache import BenchCache
from repro.bench.parallel import WorkItem, cache_ref, run_points
from repro.bench.figures import figure1, figure3, figure4, figure5, figure6, theory_table
from repro.bench.report import (
    render_figure4,
    render_figure5,
    render_figure6,
    render_theory_table,
)
from repro.gpu.device import get_device
from repro.gpu.occupancy import occupancy
from repro.inputs.generators import GENERATORS, generate
from repro.sort.pairwise import PairwiseMergeSort
from repro.sort.presets import preset

__all__ = ["main"]


def _add_bench_exec_args(p: argparse.ArgumentParser) -> None:
    """Shared parallel/caching options for the sweep-driven commands."""
    p.add_argument(
        "--jobs", "-j", type=int, default=1, metavar="N",
        help="worker processes for independent sweep points (default 1)",
    )
    p.add_argument(
        "--cache", action=argparse.BooleanOptionalAction, default=False,
        help="reuse bench points/calibrations from the on-disk cache",
    )
    p.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache location (implies --cache; default "
        "~/.cache/repro-mergesort)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mergesort",
        description="Worst-case inputs for GPU pairwise merge sort "
        "(Berney & Sitchinava, IPPS 2020) — simulator and bench harness.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("construct", help="print a worst-case warp layout")
    p.add_argument("--warp", type=int, default=32, help="warp width w")
    p.add_argument("--elements", "-E", type=int, default=15, help="E per thread")

    p = sub.add_parser("simulate", help="run one instrumented sort")
    p.add_argument("--preset", default="thrust-maxwell")
    p.add_argument("--device", default="quadro-m4000")
    p.add_argument("--input", default="worst-case", choices=sorted(GENERATORS))
    p.add_argument("--tiles", type=int, default=64, help="input size in tiles (2^k)")
    p.add_argument("--score-blocks", type=int, default=8)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--memo", action=argparse.BooleanOptionalAction, default=True,
        help="memoize conflict scoring by rank→address pattern "
        "(--no-memo disables; results are bit-identical either way)",
    )

    p = sub.add_parser("sweep", help="throughput sweep, random vs one input")
    p.add_argument("--preset", default="thrust-maxwell")
    p.add_argument("--device", default="quadro-m4000")
    p.add_argument("--input", default="worst-case", choices=sorted(GENERATORS))
    p.add_argument("--max-elements", type=int, default=300_000_000)
    p.add_argument("--exact-threshold", type=int, default=1 << 20)
    p.add_argument("--score-blocks", type=int, default=8)
    p.add_argument("--seed", type=int, default=0)
    _add_bench_exec_args(p)

    p = sub.add_parser("figure", help="regenerate a paper figure")
    p.add_argument("which", choices=["1", "3", "4", "5", "6", "theory"])
    p.add_argument("--max-elements", type=int, default=300_000_000)
    p.add_argument("--markdown", action="store_true", help="emit markdown tables")
    p.add_argument("--json", metavar="PATH", default=None,
                   help="also write the figure data as JSON")
    _add_bench_exec_args(p)

    p = sub.add_parser(
        "grid",
        help="profile an (E, b) grid on a device: occupancy, random/worst "
        "throughput, slowdown",
    )
    p.add_argument("--device", default="quadro-m4000")
    p.add_argument("--es", default="7,9,11,13,15,17,23,31")
    p.add_argument("--bs", default="128,256,512")
    p.add_argument("--target-elements", type=int, default=30_000_000)
    p.add_argument("--top", type=int, default=12)
    _add_bench_exec_args(p)

    p = sub.add_parser(
        "reproduce",
        help="run the whole experiment registry against the paper's bands "
        "and print PASS/FAIL verdicts",
    )
    p.add_argument("--full", action="store_true",
                   help="paper-scale sweeps (minutes) instead of quick mode")
    p.add_argument("--only", default=None,
                   help="run a single experiment by id")
    _add_bench_exec_args(p)

    p = sub.add_parser(
        "cache",
        help="inspect or clear the on-disk bench-result cache",
    )
    p.add_argument("action", choices=["stats", "clear"])
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="cache location (default ~/.cache/repro-mergesort)")

    p = sub.add_parser(
        "analyze",
        help="expected-case analysis: measured beta1/beta2 vs inversions, "
        "plus balls-in-bins predictions",
    )
    p.add_argument("--preset", default="mgpu-maxwell")
    p.add_argument("--tiles", type=int, default=32)
    p.add_argument("--seed", type=int, default=0)
    return parser


def _cmd_construct(args) -> int:
    wa = construct_warp_assignment(args.warp, args.elements)
    print(
        f"w={wa.warp_size} E={wa.elements_per_thread} target bank s="
        f"{wa.target_bank} aligned={wa.aligned_count()} "
        f"(max possible E^2={wa.elements_per_thread ** 2})"
    )
    print("thread tuples (A-count, B-count), * = scans A first:")
    print(
        "  "
        + " ".join(
            f"({a},{b}){'*' if f else ' '}"
            for (a, b), f in zip(wa.tuples, wa.a_first)
        )
    )
    a_owners, b_owners = wa.bank_matrix()
    print(bank_matrix_str(a_owners, label="A list (entries are thread ids):"))
    print(bank_matrix_str(b_owners, label="B list:"))
    return 0


def _cmd_simulate(args) -> int:
    config = preset(args.preset)
    device = get_device(args.device)
    n = config.tile_size * args.tiles
    data = generate(args.input, config, n, seed=args.seed)
    result = PairwiseMergeSort(config, memo="auto" if args.memo else None).sort(
        data, score_blocks=args.score_blocks, seed=args.seed
    )
    ok = bool(np.array_equal(result.values, np.sort(data)))
    occ = occupancy(device, config.block_size, config.shared_bytes_per_block)
    cost = result.kernel_cost(occ.warps_per_sm)
    from repro.gpu.timing import TimingModel

    model = TimingModel(device)
    rows = [
        {
            "round": r.label,
            "kind": r.kind,
            "merge cycles": round(r.merge_report.total_transactions * r.scale),
            "partition cycles": round(r.partition_report.total_transactions * r.scale),
            "replays": round(r.replays),
        }
        for r in result.rounds
    ]
    print(table(rows))
    print(
        f"\nsorted correctly: {ok}   occupancy: {occ.occupancy:.0%} "
        f"({occ.blocks_per_sm} blocks/SM, limiter: {occ.limiter})"
    )
    print(
        f"N={n:,}  conflicts/elem={result.replays_per_element():.2f}  "
        f"simulated {model.milliseconds(cost):.3f} ms  "
        f"({model.throughput_meps(cost, n):.0f} Melem/s on {device.name})"
    )
    if result.memo_stats is not None:
        print(f"memoized scoring: {result.memo_stats}")
    if args.input == "worst-case":
        from repro.adversary.verify import verify_worst_case

        report = verify_worst_case(config, data, score_blocks=args.score_blocks)
        print(f"worst-case verification: {report.summary()}")
    return 0


def _bench_cache(args) -> BenchCache | None:
    """The cache selected by ``--cache`` / ``--cache-dir`` (or ``None``)."""
    if getattr(args, "cache", False) or getattr(args, "cache_dir", None):
        return BenchCache(args.cache_dir)
    return None


def _progress_printer():
    """Per-point progress/timing lines on stderr."""

    def emit(event) -> None:
        print(event.describe(), file=sys.stderr, flush=True)

    return emit


def _cmd_sweep(args) -> int:
    config = preset(args.preset)
    device = get_device(args.device)
    sizes = [n for n in config.valid_sizes(args.max_elements) if n >= 100_000]
    cache_dir, use_cache = cache_ref(_bench_cache(args))
    items = [
        WorkItem(
            config=config,
            device=device,
            input_name=name,
            num_elements=n,
            exact_threshold=args.exact_threshold,
            score_blocks=args.score_blocks,
            seed=args.seed,
            cache_dir=cache_dir,
            use_cache=use_cache,
        )
        for name in ("random", args.input)
        for n in sizes
    ]
    points = run_points(items, jobs=args.jobs, progress=_progress_printer())
    _print_memo_stats(jobs=args.jobs)
    base, other = points[: len(sizes)], points[len(sizes):]
    rows = [
        {
            "N": p.num_elements,
            "random Melem/s": p.throughput_meps,
            f"{args.input} Melem/s": q.throughput_meps,
            "slowdown %": (q.milliseconds / p.milliseconds - 1) * 100,
        }
        for p, q in zip(base, other)
    ]
    print(table(rows))
    print(f"\n{args.input} vs random: {slowdown_stats(base, other)}")
    print(
        line_plot(
            {
                "random": (sizes, [p.throughput_meps for p in base]),
                args.input: (sizes, [p.throughput_meps for p in other]),
            },
            title=f"{config.name} on {device.name} (Melem/s vs N, log x)",
        )
    )
    return 0


def _cmd_figure(args) -> int:
    def maybe_json(data) -> None:
        if args.json:
            from repro.bench.export import write_json

            path = write_json(data, args.json)
            print(f"\nfigure data written to {path}")

    if args.which == "1":
        data = figure1()
        print(f"Figure 1: sorted order, w={data['w']}, E={data['E']}, "
              f"aligned={data['aligned']}")
        print(bank_matrix_str(data["a_owners"], label="A list:"))
        print(bank_matrix_str(data["b_owners"], label="B list:"))
        maybe_json(data)
        return 0
    if args.which == "3":
        data = figure3()
        for key, sub in data.items():
            print(
                f"Figure 3 ({key} E): w={sub['w']}, E={sub['E']}, "
                f"s={sub['target_bank']}, aligned={sub['aligned']}"
            )
            print(bank_matrix_str(sub["a_owners"], label="A list:"))
            print(bank_matrix_str(sub["b_owners"], label="B list:"))
        maybe_json(data)
        return 0
    if args.which == "theory":
        rows = theory_table()
        print(render_theory_table(rows) if args.markdown else table(rows))
        maybe_json({"rows": rows})
        return 0

    builders = {"4": (figure4, render_figure4), "5": (figure5, render_figure5),
                "6": (figure6, render_figure6)}
    build, render = builders[args.which]
    data = build(
        max_elements=args.max_elements,
        jobs=args.jobs,
        cache=_bench_cache(args),
        progress=_progress_printer(),
    )
    print(render(data))
    maybe_json(data)
    if args.which in ("4", "5") and not args.markdown:
        panels = [k for k in data if k != "device"]
        for key in panels:
            panel = data[key]
            print(
                line_plot(
                    {
                        "random": (
                            panel["sizes"],
                            [p.throughput_meps for p in panel["random"]],
                        ),
                        "worst": (
                            panel["sizes"],
                            [p.throughput_meps for p in panel["worst"]],
                        ),
                    },
                    title=f"{panel['config']} on {data['device']}",
                )
            )
    return 0


def _cmd_analyze(args) -> int:
    from repro.analysis.beta import measure_betas
    from repro.analysis.expected import (
        expected_replays_per_step,
        max_load_monte_carlo,
    )

    config = preset(args.preset)
    n = config.tile_size * args.tiles
    rows = []
    for name in ("sorted", "sawtooth", "random", "conflict-heavy",
                 "worst-case"):
        est = measure_betas(
            config, generate(name, config, n, seed=args.seed),
            with_inversions=True,
        )
        rows.append(
            {
                "input": name,
                "inversions": est.inversion_count,
                "beta1": est.beta1,
                "beta2": est.beta2,
            }
        )
    print(f"{config.name}, N = {n:,} (beta = extra cycles per warp step)\n")
    print(table(rows))
    mc, se = max_load_monte_carlo(config.w, trials=10000, seed=args.seed)
    print(
        f"\nballs-in-bins (one step, {config.w} uniform requests): expected "
        f"serialization {mc:.2f} cycles (±{se:.3f}), expected replays "
        f"{expected_replays_per_step(config.w):.2f}"
    )
    print("Karsin et al. measured beta1 = 3.1, beta2 = 2.2 on hardware "
          "(paper Section II-A); the worst-case input drives beta2 to Θ(E).")
    return 0


def _cmd_grid(args) -> int:
    from repro.bench.grid import grid_search

    device = get_device(args.device)
    es = [int(x) for x in args.es.split(",") if x]
    bs = [int(x) for x in args.bs.split(",") if x]
    points = grid_search(
        device,
        es,
        bs,
        target_elements=args.target_elements,
        jobs=args.jobs,
        cache=_bench_cache(args),
        progress=_progress_printer(),
    )
    print(f"(E, b) grid on {device.name}, best random-input configs first:\n")
    print(table([p.as_row() for p in points[: args.top]]))
    if points:
        best = points[0]
        print(
            f"\nbest random-input config: E={best.elements_per_thread}, "
            f"b={best.block_size} (occupancy {best.occupancy:.0%}, "
            f"worst-case slowdown {best.slowdown_percent:.1f}%)"
        )
    return 0


def _cmd_reproduce(args) -> int:
    from repro.bench.experiments import run_all, run_experiment

    quick = not args.full
    cache = _bench_cache(args)
    results = (
        [run_experiment(args.only, quick=quick, jobs=args.jobs, cache=cache)]
        if args.only
        else run_all(quick=quick, jobs=args.jobs, cache=cache)
    )
    print(f"reproduction run ({'quick' if quick else 'full'} mode):\n")
    for result in results:
        print(result.summary())
        for line in result.details:
            print(line)
    failed = [r for r in results if not r.passed]
    print(
        f"\n{len(results) - len(failed)}/{len(results)} experiments passed"
        + (f"; failed: {', '.join(r.experiment_id for r in failed)}"
           if failed else "")
    )
    return 1 if failed else 0


def _print_memo_stats(jobs: int = 1) -> None:
    """Conflict-memo summary on stderr after a sweep-driven command.

    Only this process's memos are visible — with ``--jobs > 1`` each
    worker holds its own, so the line is tagged accordingly.
    """
    from repro.dmm.memo import ConflictMemo

    stats = ConflictMemo.process_stats()
    if not stats.lookups:
        return
    scope = "this process; workers keep their own" if jobs > 1 else "all sorts"
    print(f"conflict memo ({scope}): {stats}", file=sys.stderr, flush=True)


def _cmd_cache(args) -> int:
    from repro.dmm.memo import ConflictMemo

    cache = BenchCache(args.cache_dir)
    if args.action == "stats":
        print(cache.stats())
        print(f"conflict memo (this process): {ConflictMemo.process_stats()}")
        return 0
    removed = cache.clear()
    print(f"removed {removed} cache entries from {cache.cache_dir}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "construct": _cmd_construct,
        "simulate": _cmd_simulate,
        "sweep": _cmd_sweep,
        "figure": _cmd_figure,
        "analyze": _cmd_analyze,
        "grid": _cmd_grid,
        "reproduce": _cmd_reproduce,
        "cache": _cmd_cache,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
