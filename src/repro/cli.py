"""Command-line interface: ``python -m repro`` / ``repro-mergesort``.

Subcommands:

* ``construct`` — print a worst-case warp layout (paper Fig. 3 style);
* ``simulate`` — sort one input through the instrumented simulator and
  report per-round conflicts and simulated runtime;
* ``sweep`` — a throughput size sweep for one (preset, device, input);
* ``matrix`` — the adversary-vs-mitigation robustness matrix: every
  input family × sort backend × mitigation layout, scored exactly;
* ``figure`` — regenerate a paper figure (1, 3, 4, 5, 6, or ``theory``);
* ``cache`` — inspect, clear, or prune the on-disk bench-result cache;
* ``serve`` — run the long-lived generation-and-scoring daemon
  (:mod:`repro.service`);
* ``request`` — send one request to a running daemon instead of
  cold-starting the library in this process.

The sweep-driven commands (``sweep``, ``figure 4/5/6``, ``grid``,
``reproduce``) accept ``--jobs N`` to fan independent points out over a
worker pool and ``--cache`` / ``--cache-dir`` to reuse previously
computed points and calibrations from disk; per-point progress/timing
lines go to stderr so long sweeps stay observable.

Exit codes: 0 success, 2 invalid input (bad arguments, unknown presets,
malformed requests — also argparse's usage-error code), 3 internal
errors (simulator inconsistencies, unreachable/failing service), 1
verification failures from ``reproduce`` and unexpected crashes.
"""

from __future__ import annotations

import argparse
import sys

#: Exit codes (see module docstring). Validation matches argparse's 2.
EXIT_OK = 0
EXIT_VALIDATION = 2
EXIT_INTERNAL = 3

import numpy as np

from repro.adversary.assignment import construct_warp_assignment
from repro.bench import slowdown_stats
from repro.bench.ascii_plot import bank_matrix_str, line_plot, table
from repro.bench.cache import BenchCache
from repro.bench.figures import figure1, figure3, figure4, figure5, figure6, theory_table
from repro.bench.report import (
    render_figure4,
    render_figure5,
    render_figure6,
    render_theory_table,
)
from repro.engine import (
    SortTask,
    WorkItem,
    cache_ref,
    create_engine,
    execute_items,
)
from repro.engine.registry import (
    DEFAULT_SCORING,
    SCORING_MODES,
    SIMULATOR_SCORINGS,
    engine_for_scoring,
    scoring_for_engine,
)
from repro.gpu.device import get_device
from repro.gpu.occupancy import occupancy
from repro.inputs.generators import GENERATORS, generate
from repro.mitigation import MITIGATION_MODES, reconcile_mitigation
from repro.sort.presets import preset

__all__ = ["main"]


def _add_bench_exec_args(p: argparse.ArgumentParser) -> None:
    """Shared parallel/caching options for the sweep-driven commands."""
    p.add_argument(
        "--jobs", "-j", type=int, default=1, metavar="N",
        help="worker processes for independent sweep points (default 1)",
    )
    p.add_argument(
        "--cache", action=argparse.BooleanOptionalAction, default=False,
        help="reuse bench points/calibrations from the on-disk cache",
    )
    p.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="cache location (implies --cache; default "
        "~/.cache/repro-mergesort)",
    )


def _add_mitigation_arg(p: argparse.ArgumentParser) -> None:
    """Shared ``--mitigation`` option for the scoring commands."""
    modes = ", ".join(MITIGATION_MODES)
    p.add_argument(
        "--mitigation", default="none", metavar="SPEC",
        help=f"layout defense applied to shared-memory addresses: one of "
        f"{modes} (padding takes an optional width, e.g. padding:2; "
        "see docs/MITIGATIONS.md; default none)",
    )


def _package_version() -> str:
    """Installed distribution version, falling back to the source tree's."""
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:  # not installed (PYTHONPATH=src runs)
        from repro import __version__

        return __version__


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mergesort",
        description="Worst-case inputs for GPU pairwise merge sort "
        "(Berney & Sitchinava, IPPS 2020) — simulator and bench harness.",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {_package_version()}",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("construct", help="print a worst-case warp layout")
    p.add_argument("--warp", type=int, default=32, help="warp width w")
    p.add_argument("--elements", "-E", type=int, default=15, help="E per thread")

    p = sub.add_parser("simulate", help="run one instrumented sort")
    p.add_argument("--preset", default="thrust-maxwell")
    p.add_argument("--device", default="quadro-m4000")
    p.add_argument("--input", default="worst-case", choices=sorted(GENERATORS))
    p.add_argument("--tiles", type=int, default=64, help="input size in tiles (2^k)")
    p.add_argument("--score-blocks", type=int, default=8)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--scoring", default="vectorized",
        choices=list(SIMULATOR_SCORINGS),
        help="round-scoring engine: vectorized (default), loop (the "
        "per-tile oracle), fused (single-pass rounds, compiled kernels "
        "when built — bit-identical, ~10x), or analytic (closed-form, "
        "constructed families only — bit-identical and ~1000x faster)",
    )
    p.add_argument(
        "--memo", action=argparse.BooleanOptionalAction, default=True,
        help="memoize conflict scoring by rank→address pattern "
        "(--no-memo disables; results are bit-identical either way)",
    )
    p.add_argument(
        "--engine", default=None,
        choices=["inline-loop", "inline-vectorized", "inline-memoized",
                 "inline-fused", "analytic"],
        help="execution engine by registry name; overrides "
        "--scoring/--memo (whose combination otherwise picks the engine "
        "through the same registry)",
    )
    _add_mitigation_arg(p)

    p = sub.add_parser("sweep", help="throughput sweep, random vs one input")
    p.add_argument("--preset", default="thrust-maxwell")
    p.add_argument("--device", default="quadro-m4000")
    p.add_argument("--input", default="worst-case", choices=sorted(GENERATORS))
    p.add_argument("--max-elements", type=int, default=300_000_000)
    p.add_argument("--exact-threshold", type=int, default=1 << 20)
    p.add_argument("--score-blocks", type=int, default=8)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--scoring", default=DEFAULT_SCORING,
        choices=list(SCORING_MODES),
        help="auto (default) scores analytic-eligible constructed-family "
        "points closed-form and simulates the rest; results are "
        "bit-identical either way",
    )
    p.add_argument(
        "--engine", default=None,
        choices=["inline", "pool", "service", "sharded"],
        help="execution engine: inline (serial; the --jobs 1 default), "
        "pool (worker processes; the --jobs N default), service (a "
        "running repro-mergesort serve daemon at --url), or sharded "
        "(a fleet of daemons, consistent-hashed per request; --url "
        "takes a comma-separated list). Points are bit-identical "
        "across all of them",
    )
    p.add_argument(
        "--url", default="http://127.0.0.1:8787",
        help="daemon URL for --engine service, or a comma-separated "
        "shard URL list for --engine sharded (default %(default)s)",
    )
    _add_mitigation_arg(p)
    _add_bench_exec_args(p)

    p = sub.add_parser(
        "matrix",
        help="adversary-vs-mitigation robustness matrix: input family x "
        "sort backend x mitigation, scored exactly",
    )
    p.add_argument(
        "--inputs", default=",".join(
            ("sorted", "random", "conflict-heavy", "worst-case")
        ),
        help="comma-separated input families (default %(default)s)",
    )
    p.add_argument(
        "--backends", default="pairwise,bitonic,multiway",
        help="comma-separated sort backends (default %(default)s)",
    )
    p.add_argument(
        "--mitigations", default="none,padding:1,cfree-sort,cfree-permute",
        help="comma-separated mitigation specs (default %(default)s)",
    )
    p.add_argument("--tiles", type=int, default=8,
                   help="input size in tiles of 256 (power of two so the "
                   "bitonic backend can share the grid; default 8)")
    p.add_argument("--score-blocks", type=int, default=None,
                   help="sampled blocks per round (default: score every "
                   "block — exact cells)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--cells", action="store_true",
                   help="also print one grep-friendly line per cell")
    p.add_argument("--json", metavar="PATH", default=None,
                   help="also write the matrix as JSON")

    p = sub.add_parser("figure", help="regenerate a paper figure")
    p.add_argument("which", choices=["1", "3", "4", "5", "6", "theory"])
    p.add_argument("--max-elements", type=int, default=300_000_000)
    p.add_argument("--markdown", action="store_true", help="emit markdown tables")
    p.add_argument("--json", metavar="PATH", default=None,
                   help="also write the figure data as JSON")
    _add_bench_exec_args(p)

    p = sub.add_parser(
        "grid",
        help="profile an (E, b) grid on a device: occupancy, random/worst "
        "throughput, slowdown",
    )
    p.add_argument("--device", default="quadro-m4000")
    p.add_argument("--es", default="7,9,11,13,15,17,23,31")
    p.add_argument("--bs", default="128,256,512")
    p.add_argument("--target-elements", type=int, default=30_000_000)
    p.add_argument("--top", type=int, default=12)
    _add_bench_exec_args(p)

    p = sub.add_parser(
        "reproduce",
        help="run the whole experiment registry against the paper's bands "
        "and print PASS/FAIL verdicts",
    )
    p.add_argument("--full", action="store_true",
                   help="paper-scale sweeps (minutes) instead of quick mode")
    p.add_argument("--only", default=None,
                   help="run a single experiment by id")
    _add_bench_exec_args(p)

    p = sub.add_parser(
        "cache",
        help="inspect, clear, or prune the on-disk bench-result cache",
    )
    p.add_argument("action", choices=["stats", "clear", "prune"])
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="cache location (default ~/.cache/repro-mergesort)")
    p.add_argument(
        "--max-mb", type=float, default=None, metavar="N",
        help="prune: evict least-recently-written entries until the cache "
        "holds at most N MiB",
    )

    p = sub.add_parser(
        "serve",
        help="run the generation-and-scoring daemon (see docs/SERVICE.md)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8787,
                   help="listen port (0 = ephemeral, reported in the log)")
    p.add_argument("--queue-limit", type=int, default=8, metavar="N",
                   help="max concurrently admitted computations; beyond it "
                   "new non-coalesced requests get HTTP 429 (default 8)")
    p.add_argument("--request-timeout", type=float, default=600.0,
                   metavar="SECONDS", help="per-request deadline (default 600)")
    p.add_argument("--drain-timeout", type=float, default=60.0,
                   metavar="SECONDS",
                   help="how long shutdown waits for in-flight work "
                   "(default 60)")
    p.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                   help="worker processes for /sweep fan-out (default 1)")
    p.add_argument(
        "--cache", action=argparse.BooleanOptionalAction, default=False,
        help="attach the on-disk bench cache to /sweep",
    )
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="cache location (implies --cache)")
    p.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="run N worker daemons on ephemeral ports behind a "
        "consistent-hash shard router listening on --port; the default "
        "1 runs a single daemon on --port with no router",
    )
    p.add_argument(
        "--quota-per-minute", type=int, default=0, metavar="N",
        help="per-client compute-request quota (requests/minute, then "
        "HTTP 429; 0 = unlimited); enforced by the router with "
        "--shards > 1, by the daemon itself otherwise",
    )
    p.add_argument(
        "--chunk-concurrency", type=int, default=4, metavar="N",
        help="concurrent chunks per scheduled job manifest "
        "(--shards > 1 only; default 4)",
    )

    p = sub.add_parser(
        "request",
        help="send one request to a running daemon (serve) and print the "
        "result",
    )
    p.add_argument(
        "action",
        choices=["healthz", "stats", "construct", "simulate", "sweep",
                 "job", "shutdown"],
    )
    p.add_argument("--url", default="http://127.0.0.1:8787",
                   help="base URL of the daemon (default %(default)s)")
    p.add_argument("--timeout", type=float, default=630.0,
                   help="client socket timeout in seconds")
    p.add_argument("--preset", default="thrust-maxwell")
    p.add_argument("--device", default="quadro-m4000",
                   help="sweep only; simulate results are device-independent")
    p.add_argument("--input", default="worst-case", choices=sorted(GENERATORS))
    p.add_argument("--tiles", type=int, default=64,
                   help="construct/simulate input size in tiles")
    p.add_argument("--max-elements", type=int, default=2_000_000,
                   help="sweep size ceiling")
    p.add_argument("--exact-threshold", type=int, default=1 << 20)
    p.add_argument("--score-blocks", type=int, default=8)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--scoring", default=None,
        choices=list(SCORING_MODES),
        help="scoring engine forwarded to the daemon (simulate defaults "
        "to vectorized, sweep to auto)",
    )
    p.add_argument(
        "--engine", default=None, metavar="NAME",
        help="in-process engine name whose scoring/memo wire fields to "
        "forward (exclusive with --scoring; pool/service are execution "
        "strategies, not scorers, and are rejected)",
    )
    _add_mitigation_arg(p)
    p.add_argument("--out", default=None, metavar="PATH",
                   help="construct: also save the permutation as .npy")
    p.add_argument("--chunk-sizes", type=int, default=4,
                   help="job: sweep sizes per scheduler chunk")
    p.add_argument(
        "--mitigations", default=None, metavar="SPECS",
        help="job: comma-separated mitigation specs to cross the sweep "
        "grid with (the matrix experiment's sharded-service leg; "
        "exclusive with --mitigation)",
    )
    p.add_argument("--max-retries", type=int, default=2,
                   help="job: re-queues per chunk on worker failure")
    p.add_argument("--no-wait", action="store_true",
                   help="job: print the job_id and return without polling")

    p = sub.add_parser(
        "bench",
        help="micro-benchmark the scoring kernels (record_timing-shaped "
        "JSON, gateable with benchmarks/check_regression.py)",
    )
    p.add_argument("action", choices=["kernels"])
    p.add_argument("--preset", default="thrust-maxwell")
    p.add_argument("--tiles", type=int, default=16,
                   help="working-set size in tiles (N = tiles*bE)")
    p.add_argument("--repeat", type=int, default=5,
                   help="samples per kernel; the median is reported")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--json", metavar="PATH", default=None,
                   help="also write the timings as a bench JSON document")

    p = sub.add_parser(
        "analyze",
        help="expected-case analysis: measured beta1/beta2 vs inversions, "
        "plus balls-in-bins predictions",
    )
    p.add_argument("--preset", default="mgpu-maxwell")
    p.add_argument("--tiles", type=int, default=32)
    p.add_argument("--seed", type=int, default=0)
    return parser


def _cmd_construct(args) -> int:
    wa = construct_warp_assignment(args.warp, args.elements)
    print(
        f"w={wa.warp_size} E={wa.elements_per_thread} target bank s="
        f"{wa.target_bank} aligned={wa.aligned_count()} "
        f"(max possible E^2={wa.elements_per_thread ** 2})"
    )
    print("thread tuples (A-count, B-count), * = scans A first:")
    print(
        "  "
        + " ".join(
            f"({a},{b}){'*' if f else ' '}"
            for (a, b), f in zip(wa.tuples, wa.a_first)
        )
    )
    a_owners, b_owners = wa.bank_matrix()
    print(bank_matrix_str(a_owners, label="A list (entries are thread ids):"))
    print(bank_matrix_str(b_owners, label="B list:"))
    return 0


def _cmd_simulate(args) -> int:
    from repro.errors import ValidationError

    config = preset(args.preset)
    device = get_device(args.device)
    n = config.tile_size * args.tiles
    data = generate(args.input, config, n, seed=args.seed)
    layout = reconcile_mitigation(args.mitigation, field="--mitigation")
    engine_name = args.engine or engine_for_scoring(
        args.scoring, memoized=args.memo
    )
    if engine_name == "analytic" and not layout.analytic_supported:
        raise ValidationError(
            f"the analytic engine cannot model mitigation {layout.spec!r}; "
            "use a simulated engine (e.g. --scoring fused)"
        )
    result = create_engine(engine_name).run_sort(
        SortTask(
            config=config,
            input_name=args.input,
            num_elements=n,
            score_blocks=args.score_blocks,
            seed=args.seed,
            values=data,
            mitigation=layout.spec,
        )
    )
    ok = bool(np.array_equal(result.values, np.sort(data)))
    # Occupancy is charged at the mitigation's physical footprint (the
    # stock layout's for "none").
    occ = occupancy(device, config.block_size, layout.shared_bytes(config))
    cost = result.kernel_cost(occ.warps_per_sm)
    from repro.gpu.timing import TimingModel

    model = TimingModel(device)
    rows = [
        {
            "round": r.label,
            "kind": r.kind,
            "merge cycles": round(r.merge_report.total_transactions * r.scale),
            "partition cycles": round(r.partition_report.total_transactions * r.scale),
            "replays": round(r.replays),
        }
        for r in result.rounds
    ]
    print(table(rows))
    print(
        f"\nsorted correctly: {ok}   occupancy: {occ.occupancy:.0%} "
        f"({occ.blocks_per_sm} blocks/SM, limiter: {occ.limiter})"
    )
    print(
        f"N={n:,}  conflicts/elem={result.replays_per_element():.2f}  "
        f"simulated {model.milliseconds(cost):.3f} ms  "
        f"({model.throughput_meps(cost, n):.0f} Melem/s on {device.name})"
    )
    if layout.spec != "none":
        print(f"mitigation: {layout.describe()}")
    if result.memo_stats is not None:
        print(f"memoized scoring: {result.memo_stats}")
    if args.input == "worst-case" and layout.spec == "none":
        # Verification asserts the *stock* layout serializes; under a
        # mitigation the whole point is that it no longer does.
        from repro.adversary.verify import verify_worst_case

        report = verify_worst_case(config, data, score_blocks=args.score_blocks)
        print(f"worst-case verification: {report.summary()}")
    return 0


def _bench_cache(args) -> BenchCache | None:
    """The cache selected by ``--cache`` / ``--cache-dir`` (or ``None``)."""
    if getattr(args, "cache", False) or getattr(args, "cache_dir", None):
        return BenchCache(args.cache_dir)
    return None


def _progress_printer(stream=None):
    """Per-point progress/timing lines (stderr by default).

    Each event is rendered with one atomic ``write`` + an explicit
    ``flush`` so concurrent writers (worker callbacks, server log lines,
    CI annotations) never interleave mid-line and piped output never
    stalls in a block buffer. On a TTY, intermediate points update one
    live line in place (CR + erase) and only the final point commits a
    newline; on non-TTY streams — CI logs, files, pipes — this falls
    back to plain line-buffered output, one full line per event.
    """
    if stream is None:
        stream = sys.stderr
    tty = bool(getattr(stream, "isatty", lambda: False)())

    def emit(event) -> None:
        line = event.describe()
        if tty:
            end = "\n" if event.done >= event.total else "\r"
            text = f"\x1b[2K{line}{end}"
        else:
            text = f"{line}\n"
        try:
            stream.write(text)
            stream.flush()
        except (OSError, ValueError):
            pass  # broken pipe / closed log: progress is best-effort

    return emit


def _cmd_sweep(args) -> int:
    config = preset(args.preset)
    device = get_device(args.device)
    layout = reconcile_mitigation(args.mitigation, field="--mitigation")
    sizes = [n for n in config.valid_sizes(args.max_elements) if n >= 100_000]
    cache_dir, use_cache = cache_ref(_bench_cache(args))
    items = [
        WorkItem(
            config=config,
            device=device,
            input_name=name,
            num_elements=n,
            exact_threshold=args.exact_threshold,
            score_blocks=args.score_blocks,
            seed=args.seed,
            scoring=args.scoring,
            mitigation=layout.spec,
            cache_dir=cache_dir,
            use_cache=use_cache,
        )
        for name in ("random", args.input)
        for n in sizes
    ]
    progress = _progress_printer()
    if args.engine is None:
        # Default routing: serial inline for --jobs 1, a pool otherwise —
        # the same decision the service daemon makes.
        points = execute_items(items, jobs=args.jobs, progress=progress)
    else:
        kwargs = {}
        if args.engine == "pool":
            kwargs["jobs"] = max(args.jobs, 1)
        elif args.engine == "service":
            kwargs["url"] = args.url
        elif args.engine == "sharded":
            kwargs["urls"] = args.url  # comma-separated list accepted
        with create_engine(args.engine, **kwargs) as engine:
            points = engine.run_points(items, progress=progress)
    _print_memo_stats(jobs=args.jobs)
    base, other = points[: len(sizes)], points[len(sizes):]
    rows = [
        {
            "N": p.num_elements,
            "random Melem/s": p.throughput_meps,
            f"{args.input} Melem/s": q.throughput_meps,
            "slowdown %": (q.milliseconds / p.milliseconds - 1) * 100,
        }
        for p, q in zip(base, other)
    ]
    print(table(rows))
    print(f"\n{args.input} vs random: {slowdown_stats(base, other)}")
    print(
        line_plot(
            {
                "random": (sizes, [p.throughput_meps for p in base]),
                args.input: (sizes, [p.throughput_meps for p in other]),
            },
            title=f"{config.name} on {device.name} (Melem/s vs N, log x)",
        )
    )
    return 0


def _cmd_matrix(args) -> int:
    from repro.bench.matrix import run_matrix

    result = run_matrix(
        input_names=tuple(x for x in args.inputs.split(",") if x),
        backends=tuple(x for x in args.backends.split(",") if x),
        mitigations=tuple(x for x in args.mitigations.split(",") if x),
        tiles=args.tiles,
        score_blocks=args.score_blocks,
        seed=args.seed,
    )
    print(
        f"adversary-vs-mitigation matrix: {result.config.name} "
        f"(E={result.config.E}, b={result.config.b}, w={result.config.w}), "
        f"N={result.num_elements:,}, cells show conflicts/elem "
        "(xconflict-factor)\n"
    )
    print(result.table())
    if args.cells:
        print()
        for cell in result.cells:
            print(cell.describe())
    if args.json:
        import dataclasses as _dc

        from repro.bench.export import write_json

        path = write_json(
            {
                "num_elements": result.num_elements,
                "inputs": list(result.input_names),
                "backends": list(result.backends),
                "mitigations": list(result.mitigations),
                "cells": [_dc.asdict(c) for c in result.cells],
            },
            args.json,
        )
        print(f"\nmatrix data written to {path}")
    return 0


def _cmd_figure(args) -> int:
    def maybe_json(data) -> None:
        if args.json:
            from repro.bench.export import write_json

            path = write_json(data, args.json)
            print(f"\nfigure data written to {path}")

    if args.which == "1":
        data = figure1()
        print(f"Figure 1: sorted order, w={data['w']}, E={data['E']}, "
              f"aligned={data['aligned']}")
        print(bank_matrix_str(data["a_owners"], label="A list:"))
        print(bank_matrix_str(data["b_owners"], label="B list:"))
        maybe_json(data)
        return 0
    if args.which == "3":
        data = figure3()
        for key, sub in data.items():
            print(
                f"Figure 3 ({key} E): w={sub['w']}, E={sub['E']}, "
                f"s={sub['target_bank']}, aligned={sub['aligned']}"
            )
            print(bank_matrix_str(sub["a_owners"], label="A list:"))
            print(bank_matrix_str(sub["b_owners"], label="B list:"))
        maybe_json(data)
        return 0
    if args.which == "theory":
        rows = theory_table()
        print(render_theory_table(rows) if args.markdown else table(rows))
        maybe_json({"rows": rows})
        return 0

    builders = {"4": (figure4, render_figure4), "5": (figure5, render_figure5),
                "6": (figure6, render_figure6)}
    build, render = builders[args.which]
    data = build(
        max_elements=args.max_elements,
        jobs=args.jobs,
        cache=_bench_cache(args),
        progress=_progress_printer(),
    )
    print(render(data))
    maybe_json(data)
    if args.which in ("4", "5") and not args.markdown:
        panels = [k for k in data if k != "device"]
        for key in panels:
            panel = data[key]
            print(
                line_plot(
                    {
                        "random": (
                            panel["sizes"],
                            [p.throughput_meps for p in panel["random"]],
                        ),
                        "worst": (
                            panel["sizes"],
                            [p.throughput_meps for p in panel["worst"]],
                        ),
                    },
                    title=f"{panel['config']} on {data['device']}",
                )
            )
    return 0


def _cmd_analyze(args) -> int:
    from repro.analysis.beta import measure_betas
    from repro.analysis.expected import (
        expected_replays_per_step,
        max_load_monte_carlo,
    )

    config = preset(args.preset)
    n = config.tile_size * args.tiles
    rows = []
    for name in ("sorted", "sawtooth", "random", "conflict-heavy",
                 "worst-case"):
        est = measure_betas(
            config, generate(name, config, n, seed=args.seed),
            with_inversions=True,
        )
        rows.append(
            {
                "input": name,
                "inversions": est.inversion_count,
                "beta1": est.beta1,
                "beta2": est.beta2,
            }
        )
    print(f"{config.name}, N = {n:,} (beta = extra cycles per warp step)\n")
    print(table(rows))
    mc, se = max_load_monte_carlo(config.w, trials=10000, seed=args.seed)
    print(
        f"\nballs-in-bins (one step, {config.w} uniform requests): expected "
        f"serialization {mc:.2f} cycles (±{se:.3f}), expected replays "
        f"{expected_replays_per_step(config.w):.2f}"
    )
    print("Karsin et al. measured beta1 = 3.1, beta2 = 2.2 on hardware "
          "(paper Section II-A); the worst-case input drives beta2 to Θ(E).")
    return 0


def _cmd_bench(args) -> int:
    import json

    from repro.bench.kernels import kernel_benchmarks
    from repro.dmm import fused as dmm_fused

    config = preset(args.preset)
    timings = kernel_benchmarks(
        config, tiles=args.tiles, repeat=args.repeat, seed=args.seed
    )
    print(
        f"kernel micro-benchmarks: {config.name}, N = "
        f"{config.tile_size * args.tiles:,}, backend = "
        f"{dmm_fused.active_backend()}, median of {args.repeat}\n"
    )
    for name, entry in timings.items():
        print(
            f"  {name:24s} {entry['seconds'] * 1000:9.3f}ms  "
            f"(min {entry['min_seconds'] * 1000:.3f}ms, "
            f"iqr ±{entry['iqr_seconds'] * 1000:.3f}ms)"
        )
    if not dmm_fused.native_enabled():
        print(
            "\n  note: compiled backend unavailable — round-scorer rows "
            "skipped (build with `python setup.py build_ext --inplace`)"
        )
    if args.json:
        import platform

        document = {
            "schema": 1,
            "python": platform.python_version(),
            "timings": timings,
        }
        with open(args.json, "w") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")
        print(f"\nkernel timings written to {args.json}")
    return 0


def _cmd_grid(args) -> int:
    from repro.bench.grid import grid_search

    device = get_device(args.device)
    es = [int(x) for x in args.es.split(",") if x]
    bs = [int(x) for x in args.bs.split(",") if x]
    points = grid_search(
        device,
        es,
        bs,
        target_elements=args.target_elements,
        jobs=args.jobs,
        cache=_bench_cache(args),
        progress=_progress_printer(),
    )
    print(f"(E, b) grid on {device.name}, best random-input configs first:\n")
    print(table([p.as_row() for p in points[: args.top]]))
    if points:
        best = points[0]
        print(
            f"\nbest random-input config: E={best.elements_per_thread}, "
            f"b={best.block_size} (occupancy {best.occupancy:.0%}, "
            f"worst-case slowdown {best.slowdown_percent:.1f}%)"
        )
    return 0


def _cmd_reproduce(args) -> int:
    from repro.bench.experiments import run_all, run_experiment

    quick = not args.full
    cache = _bench_cache(args)
    results = (
        [run_experiment(args.only, quick=quick, jobs=args.jobs, cache=cache)]
        if args.only
        else run_all(quick=quick, jobs=args.jobs, cache=cache)
    )
    print(f"reproduction run ({'quick' if quick else 'full'} mode):\n")
    for result in results:
        print(result.summary())
        for line in result.details:
            print(line)
    failed = [r for r in results if not r.passed]
    print(
        f"\n{len(results) - len(failed)}/{len(results)} experiments passed"
        + (f"; failed: {', '.join(r.experiment_id for r in failed)}"
           if failed else "")
    )
    return 1 if failed else 0


def _print_memo_stats(jobs: int = 1) -> None:
    """Conflict-memo summary on stderr after a sweep-driven command.

    Pool workers ship their per-item :class:`MemoStats` deltas back with
    every result (see :mod:`repro.engine.pool`), so with ``--jobs > 1``
    the process aggregate printed here includes worker activity too.
    """
    from repro.dmm.memo import ConflictMemo

    stats = ConflictMemo.process_stats()
    if not stats.lookups:
        return
    scope = "all sorts incl. pool workers" if jobs > 1 else "all sorts"
    print(f"conflict memo ({scope}): {stats}", file=sys.stderr, flush=True)


def _cmd_cache(args) -> int:
    from repro.dmm.memo import ConflictMemo
    from repro.errors import ValidationError

    cache = BenchCache(args.cache_dir)
    if args.action == "stats":
        print(cache.stats())
        print(f"conflict memo (this process): {ConflictMemo.process_stats()}")
        by_mitigation = ConflictMemo.mitigation_stats()
        if by_mitigation:
            print("conflict memo by mitigation:")
            for spec, (hits, misses) in by_mitigation.items():
                total = hits + misses
                rate = hits / total if total else 0.0
                print(
                    f"  {spec:16s} hits={hits} misses={misses} "
                    f"hit-rate={rate:.0%}"
                )
        return 0
    if args.action == "prune":
        if args.max_mb is None or args.max_mb < 0:
            raise ValidationError(
                "cache prune requires --max-mb N (N >= 0)"
            )
        result = cache.prune(int(args.max_mb * 1024 * 1024))
        print(f"{cache.cache_dir}: {result}")
        return 0
    removed = cache.clear()
    print(f"removed {removed} cache entries from {cache.cache_dir}")
    return 0


def _cmd_serve(args) -> int:
    from repro.errors import ValidationError
    from repro.service.server import ServiceConfig, serve_forever

    if args.shards < 1:
        raise ValidationError(f"--shards must be >= 1, got {args.shards}")
    single = args.shards == 1
    config = ServiceConfig(
        host=args.host,
        # With a fleet the workers take ephemeral ports; the router owns
        # the requested port so clients keep one stable address.
        port=args.port if single else 0,
        queue_limit=args.queue_limit,
        request_timeout=args.request_timeout,
        drain_timeout=args.drain_timeout,
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=bool(args.cache or args.cache_dir),
        quota_per_minute=args.quota_per_minute if single else 0,
    )
    if single:
        return serve_forever(config)
    from repro.service.shard import RouterConfig, serve_fleet

    router = RouterConfig(
        host=args.host,
        port=args.port,
        request_timeout=args.request_timeout,
        forward_timeout=max(args.request_timeout - 10.0, 1.0),
        drain_timeout=args.drain_timeout,
        quota_per_minute=args.quota_per_minute,
        chunk_concurrency=args.chunk_concurrency,
    )
    return serve_fleet(config, router, args.shards)


def _request_scoring(args) -> tuple[str | None, bool]:
    """Wire (scoring, memo) fields for ``request``, honoring --engine.

    ``--engine`` names an in-process engine; the registry translates it
    to the equivalent wire fields (and rejects pool/service, which are
    execution strategies with nothing to forward). ``"auto"`` maps to
    ``None`` so each endpoint's server-side default applies.
    """
    if args.engine is None:
        return args.scoring, True
    if args.scoring is not None:
        from repro.errors import ValidationError

        raise ValidationError(
            "--engine and --scoring are mutually exclusive (an engine "
            "name already implies its scoring)"
        )
    fields = scoring_for_engine(args.engine)
    scoring = fields["scoring"]
    return (None if scoring == "auto" else scoring), fields["memo"]


def _cmd_request(args) -> int:
    import json

    from repro.service.client import ServiceClient

    scoring, memo = _request_scoring(args)
    # Canonicalize client-side so typos fail fast; "none" is dropped from
    # the wire (the server default) to keep old-server compatibility.
    spec = reconcile_mitigation(args.mitigation, field="--mitigation").spec
    mitigation = None if spec == "none" else spec
    client = ServiceClient(args.url, timeout=args.timeout)
    if args.action in ("healthz", "stats", "shutdown"):
        print(json.dumps(getattr(client, args.action)(), indent=2))
        return 0

    if args.action == "construct":
        config = preset(args.preset)
        values = client.construct(preset=args.preset, tiles=args.tiles)
        n = len(values)
        head = ", ".join(str(v) for v in values[:8])
        print(
            f"constructed worst-case permutation: N={n:,} "
            f"({args.tiles} tiles of {config.tile_size}) [{head}, ...]"
        )
        if args.out:
            np.save(args.out, values)
            print(f"saved to {args.out}")
        return 0

    if args.action == "simulate":
        reply = client.simulate(
            preset=args.preset,
            input=args.input,
            tiles=args.tiles,
            score_blocks=args.score_blocks,
            seed=args.seed,
            scoring=scoring,
            memo=memo,
            mitigation=mitigation,
        )
        result = reply.result
        rows = [
            {
                "round": r.label,
                "kind": r.kind,
                "merge cycles": round(r.merge_report.total_transactions * r.scale),
                "partition cycles": round(
                    r.partition_report.total_transactions * r.scale
                ),
                "replays": round(r.replays),
            }
            for r in result.rounds
        ]
        print(table(rows))
        print(
            f"\nsorted correctly: {reply.sorted_ok}   "
            f"served by coalescing: {reply.coalesced}"
        )
        print(
            f"N={result.num_elements:,}  "
            f"conflicts/elem={result.replays_per_element():.2f}"
        )
        if result.memo_stats is not None:
            print(f"memoized scoring (server-side): {result.memo_stats}")
        return 0

    if args.action == "job":
        from repro.service.protocol import point_from_obj

        manifest = {
            "preset": args.preset,
            "device": args.device,
            "inputs": ["random", args.input],
            "max_elements": args.max_elements,
            "exact_threshold": args.exact_threshold,
            "score_blocks": args.score_blocks,
            "seed": args.seed,
            "chunk_sizes": args.chunk_sizes,
            "max_retries": args.max_retries,
        }
        if scoring is not None:
            manifest["scoring"] = scoring
        if args.mitigations is not None:
            if mitigation is not None:
                from repro.errors import ValidationError

                raise ValidationError(
                    "--mitigations and --mitigation are mutually exclusive"
                )
            manifest["mitigations"] = [
                x for x in args.mitigations.split(",") if x
            ]
        elif mitigation is not None:
            manifest["mitigation"] = mitigation
        ack = client.submit_job(manifest)
        print(
            f"job {ack['job_id']} submitted: {ack['chunks']} chunks "
            f"(poll with GET /jobs/{ack['job_id']})"
        )
        if args.no_wait:
            return 0
        status = client.wait_for_job(ack["job_id"], timeout=args.timeout)
        if status["status"] != "done":
            for entry in status.get("errors", []):
                print(f"chunk {entry['chunk']}: {entry['error']}",
                      file=sys.stderr)
            print(f"job {ack['job_id']} failed", file=sys.stderr)
            return 3
        points = [point_from_obj(p) for p in status["points"]]
        per_input = len(status["sizes"])
        # A matrix-capable manifest (--mitigations) returns one full
        # sweep block per mitigation, in manifest order.
        specs = status.get("mitigations", [None])
        per_block = per_input * len(status["inputs"])
        for i, spec in enumerate(specs):
            block = points[i * per_block : (i + 1) * per_block]
            base, other = block[:per_input], block[per_input:]
            rows = [
                {
                    "N": p.num_elements,
                    "random Melem/s": p.throughput_meps,
                    f"{args.input} Melem/s": q.throughput_meps,
                    "slowdown %": (q.milliseconds / p.milliseconds - 1) * 100,
                }
                for p, q in zip(base, other)
            ]
            if spec is not None:
                print(f"mitigation={spec}:")
            print(table(rows))
            print(f"{args.input} vs random: {slowdown_stats(base, other)}\n")
        print(
            f"job complete (chunks={status['chunks']['done']}, "
            f"retries={status['retries']})"
        )
        return 0

    # sweep
    reply = client.sweep(
        preset=args.preset,
        device=args.device,
        inputs=["random", args.input],
        max_elements=args.max_elements,
        exact_threshold=args.exact_threshold,
        score_blocks=args.score_blocks,
        seed=args.seed,
        scoring=scoring,
        mitigation=mitigation,
    )
    per_input = len(reply.sizes)
    base = reply.points[:per_input]
    other = reply.points[per_input:]
    rows = [
        {
            "N": p.num_elements,
            "random Melem/s": p.throughput_meps,
            f"{args.input} Melem/s": q.throughput_meps,
            "slowdown %": (q.milliseconds / p.milliseconds - 1) * 100,
        }
        for p, q in zip(base, other)
    ]
    print(table(rows))
    print(f"\n{args.input} vs random: {slowdown_stats(base, other)}")
    if reply.coalesced:
        print("(served by coalescing with an identical in-flight sweep)")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    0 on success; :data:`EXIT_VALIDATION` (2) when the input was invalid
    (bad preset, malformed request, rejected arguments);
    :data:`EXIT_INTERNAL` (3) when the library or a remote service
    failed internally. Unexpected exceptions still propagate (exit 1
    with a traceback) so real bugs stay loud.
    """
    from repro.errors import (
        ConfigurationError,
        ConstructionError,
        ReproError,
        ValidationError,
    )

    args = _build_parser().parse_args(argv)
    handlers = {
        "construct": _cmd_construct,
        "simulate": _cmd_simulate,
        "sweep": _cmd_sweep,
        "matrix": _cmd_matrix,
        "figure": _cmd_figure,
        "analyze": _cmd_analyze,
        "grid": _cmd_grid,
        "bench": _cmd_bench,
        "reproduce": _cmd_reproduce,
        "cache": _cmd_cache,
        "serve": _cmd_serve,
        "request": _cmd_request,
    }
    try:
        return handlers[args.command](args)
    except (ValidationError, ConfigurationError, ConstructionError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_VALIDATION
    except ReproError as exc:
        print(f"internal error: {exc}", file=sys.stderr)
        return EXIT_INTERNAL


if __name__ == "__main__":
    sys.exit(main())
