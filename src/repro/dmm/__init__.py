"""Distributed Memory Machine (DMM) model — Section II-B of the paper.

The DMM consists of ``w`` synchronous processors and ``w`` memory modules
(banks). Memory of size ``M`` is viewed as a ``w × ⌈M/w⌉`` matrix: address
``x`` lives in bank ``x mod w``, and contiguous addresses are laid out
column-major. In each time step every processor may issue one request, but a
bank serves one request per cycle — concurrent requests to the *same bank*
serialize (a *bank conflict*), while concurrent reads of the *same address*
broadcast in a single cycle (CREW with broadcast, footnote 1 of the paper).

This package provides:

* :mod:`repro.dmm.banks` — the address ↔ (bank, column) geometry;
* :mod:`repro.dmm.trace` — per-warp access traces (one address per processor
  per lock-step iteration);
* :mod:`repro.dmm.conflicts` — exact, vectorized conflict accounting over a
  trace, exposing all three metrics used in the paper and by Nvidia's
  profilers (serialized transactions, replays, conflict degree);
* :mod:`repro.dmm.machine` — a small CREW DMM interpreter that executes a
  trace step by step and enforces the exclusive-write rule;
* :mod:`repro.dmm.memo` — content-addressed memoization of conflict
  reports keyed by the rank→address pattern they score.
"""

from repro.dmm.banks import BankGeometry
from repro.dmm.conflicts import ConflictReport, count_conflicts, report_segments
from repro.dmm.machine import DMM, MemoryImage
from repro.dmm.memo import ConflictMemo, MemoStats
from repro.dmm.trace import AccessKind, AccessTrace

__all__ = [
    "AccessKind",
    "AccessTrace",
    "BankGeometry",
    "ConflictMemo",
    "ConflictReport",
    "count_conflicts",
    "DMM",
    "MemoryImage",
    "MemoStats",
    "report_segments",
]
