"""Bank geometry: the address ↔ (bank, column) mapping of the DMM.

The paper (and every CUDA generation since Fermi) maps address ``x`` to bank
``x mod w`` where ``w`` is simultaneously the warp width and the number of
banks. Viewing memory as a ``w × ⌈M/w⌉`` matrix with contiguous addresses
column-major makes alignment arguments geometric: a "column" is one address
per bank, and a warp scanning ``w`` consecutive addresses touches each bank
exactly once.

Addresses here are *element* addresses (the paper sorts 4-byte ints, and one
bank serves one 4-byte word per cycle, so element address == word address).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.utils.validation import check_nonnegative_int, check_power_of_two

__all__ = ["BankGeometry"]


@dataclass(frozen=True)
class BankGeometry:
    """Geometry of a banked memory with ``num_banks`` banks.

    Parameters
    ----------
    num_banks:
        Number of banks ``w``; must be a power of two (32 on all real CUDA
        hardware, but the theory — and our tests — exercise other widths).

    Examples
    --------
    >>> geo = BankGeometry(16)
    >>> geo.bank_of(35)
    3
    >>> geo.column_of(35)
    2
    >>> geo.address_of(bank=3, column=2)
    35
    """

    num_banks: int

    def __post_init__(self) -> None:
        check_power_of_two(self.num_banks, "num_banks")

    def bank_of(self, address):
        """Bank index of an element address (scalar or array)."""
        if isinstance(address, np.ndarray):
            if np.any(address < 0):
                raise ValidationError("addresses must be nonnegative")
            return address % self.num_banks
        return check_nonnegative_int(address, "address") % self.num_banks

    def column_of(self, address):
        """Column (row offset within the bank) of an element address."""
        if isinstance(address, np.ndarray):
            if np.any(address < 0):
                raise ValidationError("addresses must be nonnegative")
            return address // self.num_banks
        return check_nonnegative_int(address, "address") // self.num_banks

    def address_of(self, bank: int, column: int) -> int:
        """Element address of ``(bank, column)`` — inverse of the two maps."""
        bank = check_nonnegative_int(bank, "bank")
        column = check_nonnegative_int(column, "column")
        if bank >= self.num_banks:
            raise ValidationError(
                f"bank must be < num_banks={self.num_banks}, got {bank}"
            )
        return column * self.num_banks + bank

    def columns_for(self, size: int) -> int:
        """Number of columns needed to hold ``size`` contiguous elements."""
        size = check_nonnegative_int(size, "size")
        return -(-size // self.num_banks)

    def as_matrix(self, data: np.ndarray, fill=-1) -> np.ndarray:
        """Lay ``data`` out as the paper's ``w × ⌈M/w⌉`` bank matrix.

        Row ``i`` of the result is bank ``i``; contiguous addresses run down
        the columns. Positions past ``len(data)`` are set to ``fill``. This is
        the layout used by Figures 1–3 of the paper and by
        :mod:`repro.bench.figures` to render them.
        """
        data = np.asarray(data)
        if data.ndim != 1:
            raise ValidationError(f"data must be 1-D, got shape {data.shape}")
        cols = self.columns_for(data.size)
        padded = np.full(cols * self.num_banks, fill, dtype=data.dtype)
        padded[: data.size] = data
        # Column-major: address a -> (bank a % w, column a // w).
        return padded.reshape(cols, self.num_banks).T
