"""Exact bank-conflict accounting over access traces.

Three related metrics appear in the paper and in practice; this module
computes all of them so every statement can be tested against the construct:

* **transactions** — per warp-step, the number of serialized cycles the step
  costs: ``max_b (#distinct-address requests to bank b)``. A conflict-free
  step costs 1. The paper's "``E²`` total bank conflicts" for the small-``E``
  construction is the *sum of transactions* over the ``E`` merge steps
  contributed by the aligned accesses (``E`` steps × ``E``-way degree).
* **replays** — what Nvidia's profilers count
  (``l1tex__data_bank_conflicts`` / ``shared_ld_bank_conflict``): per step,
  ``Σ_b max(#requests_b − 1, 0)``, i.e. extra cycles beyond the first.
* **degree** — the worst per-step serialization ``max_j transactions_j``;
  Lemma 1 bounds it by ``min(⌈k/w⌉, w)``.

Concurrent reads of the *same address* broadcast (cost one request) —
footnote 1 of the paper; concurrent writes to the same address are a CREW
violation detected by :mod:`repro.dmm.machine`, not here.

Everything is vectorized: the counter runs over a whole trace as three
NumPy passes regardless of the number of steps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dmm.trace import AccessKind, AccessTrace
from repro.utils.validation import check_power_of_two

__all__ = ["ConflictReport", "count_conflicts", "step_transactions"]


@dataclass(frozen=True)
class ConflictReport:
    """Aggregate conflict metrics for one trace (or a merged set of traces).

    Attributes
    ----------
    num_banks:
        Bank count ``w`` the trace was scored against.
    num_steps:
        Lock-step iterations scored.
    num_accesses:
        Total element accesses (before broadcast deduplication).
    num_requests:
        Bank requests after broadcast deduplication.
    total_transactions:
        Serialized cycles: ``Σ_j max_b requests_b(j)``.
    total_replays:
        Profiler-style conflicts: ``Σ_j Σ_b (requests_b(j) − 1)⁺``.
    max_degree:
        Worst single-step serialization.
    step_period:
        One period of per-step costs; the full per-step array is this
        period repeated ``step_repeats`` times. :meth:`scaled` reports
        keep only the period (``scaled(k)`` multiplies ``step_repeats``),
        so scaling never materializes the tiled array — the synthesized
        path scales single-tile traces by very large block counts.
    step_repeats:
        How many times ``step_period`` repeats (1 for directly counted
        traces); ``len(step_period) * step_repeats == num_steps``.
    """

    num_banks: int
    num_steps: int
    num_accesses: int
    num_requests: int
    total_transactions: int
    total_replays: int
    max_degree: int
    step_period: np.ndarray
    step_repeats: int = 1

    @property
    def per_step_transactions(self) -> np.ndarray:
        """Length-``num_steps`` int array of per-step costs.

        Materialized on demand for repeated (scaled) reports; prefer the
        summary counters or :attr:`step_period` when the repeat factor is
        large.
        """
        if self.step_repeats == 1:
            return self.step_period
        return np.tile(self.step_period, self.step_repeats)

    @property
    def conflict_free_cycles(self) -> int:
        """Cycles the trace would cost with zero conflicts (= active steps)."""
        return int(np.count_nonzero(self.step_period)) * self.step_repeats

    @property
    def slowdown_factor(self) -> float:
        """Serialized cycles / conflict-free cycles (1.0 = conflict free)."""
        base = self.conflict_free_cycles
        return float(self.total_transactions) / base if base else 1.0

    @property
    def replays_per_access(self) -> float:
        """Average profiler-style conflicts per element access."""
        return self.total_replays / self.num_accesses if self.num_accesses else 0.0

    def merged(self, other: "ConflictReport") -> "ConflictReport":
        """Combine two reports as if the traces ran back to back.

        Used to aggregate per-warp reports into per-round and per-sort
        totals. Requires matching bank counts.
        """
        if self.num_banks != other.num_banks:
            from repro.errors import SimulationError

            raise SimulationError(
                f"cannot merge reports with {self.num_banks} and "
                f"{other.num_banks} banks"
            )
        # Keep a lazily repeated side intact when the other contributes no
        # steps; otherwise the concatenation must materialize both.
        if other.num_steps == 0:
            period, repeats = self.step_period, self.step_repeats
        elif self.num_steps == 0:
            period, repeats = other.step_period, other.step_repeats
        else:
            period = np.concatenate(
                [self.per_step_transactions, other.per_step_transactions]
            )
            repeats = 1
        return ConflictReport(
            num_banks=self.num_banks,
            num_steps=self.num_steps + other.num_steps,
            num_accesses=self.num_accesses + other.num_accesses,
            num_requests=self.num_requests + other.num_requests,
            total_transactions=self.total_transactions + other.total_transactions,
            total_replays=self.total_replays + other.total_replays,
            max_degree=max(self.max_degree, other.max_degree),
            step_period=period,
            step_repeats=repeats,
        )

    def scaled(self, factor: int) -> "ConflictReport":
        """Report for ``factor`` identical copies of this trace.

        The fast simulation path uses this: the constructed adversarial input
        is periodic across warps/blocks, so one representative trace scored
        once stands in for all of them. Only the repeat count grows — the
        per-step period is shared, so scaling by a huge block count costs
        O(1) memory.
        """
        if factor < 0:
            from repro.errors import ValidationError

            raise ValidationError(f"factor must be nonnegative, got {factor}")
        return ConflictReport(
            num_banks=self.num_banks,
            num_steps=self.num_steps * factor,
            num_accesses=self.num_accesses * factor,
            num_requests=self.num_requests * factor,
            total_transactions=self.total_transactions * factor,
            total_replays=self.total_replays * factor,
            max_degree=self.max_degree if factor else 0,
            step_period=self.step_period,
            step_repeats=self.step_repeats * factor,
        )

    @staticmethod
    def empty(num_banks: int) -> "ConflictReport":
        """The identity element for :meth:`merged`."""
        return ConflictReport(
            num_banks=num_banks,
            num_steps=0,
            num_accesses=0,
            num_requests=0,
            total_transactions=0,
            total_replays=0,
            max_degree=0,
            step_period=np.empty(0, dtype=np.int64),
        )


def _request_counts(trace: AccessTrace, num_banks: int) -> np.ndarray:
    """Per-(step, bank) request counts after broadcast deduplication.

    Returns a ``(num_steps, num_banks)`` int64 matrix.
    """
    steps = trace.num_steps
    counts = np.zeros((steps, num_banks), dtype=np.int64)
    if trace.num_accesses == 0:
        return counts

    step_idx, lane_idx = np.nonzero(trace.active)
    addrs = trace.addresses[step_idx, lane_idx]

    if trace.kind is AccessKind.READ:
        # Broadcast: identical (step, address) pairs collapse to one request.
        span = int(addrs.max()) + 1
        keys = step_idx * span + addrs
        unique_keys = np.unique(keys)
        step_idx = unique_keys // span
        addrs = unique_keys % span
    # Writes to the same address never broadcast (and same-address concurrent
    # writes are illegal under CREW — caught by the machine, not scored here).

    banks = addrs % num_banks
    flat = np.bincount(step_idx * num_banks + banks, minlength=steps * num_banks)
    counts[:] = flat.reshape(steps, num_banks)
    return counts


def step_transactions(trace: AccessTrace, num_banks: int) -> np.ndarray:
    """Per-step serialized cycle counts (``max_b requests_b``)."""
    num_banks = check_power_of_two(num_banks, "num_banks")
    counts = _request_counts(trace, num_banks)
    if counts.size == 0:
        return np.zeros(trace.num_steps, dtype=np.int64)
    return counts.max(axis=1)


def count_conflicts(trace: AccessTrace, num_banks: int) -> ConflictReport:
    """Score a trace against ``num_banks`` banks.

    Examples
    --------
    A warp of 4 lanes reading one full column is conflict free:

    >>> import numpy as np
    >>> from repro.dmm.trace import AccessTrace
    >>> t = AccessTrace.from_dense(np.array([[0, 1, 2, 3]]))
    >>> count_conflicts(t, 4).total_replays
    0

    All four lanes hitting bank 0 with distinct addresses serialize 4-way:

    >>> t = AccessTrace.from_dense(np.array([[0, 4, 8, 12]]))
    >>> r = count_conflicts(t, 4)
    >>> (r.total_transactions, r.total_replays, r.max_degree)
    (4, 3, 4)

    Reading the *same* address broadcasts:

    >>> t = AccessTrace.from_dense(np.array([[4, 4, 4, 4]]))
    >>> count_conflicts(t, 4).total_transactions
    1
    """
    num_banks = check_power_of_two(num_banks, "num_banks")
    counts = _request_counts(trace, num_banks)
    per_step = (
        counts.max(axis=1)
        if counts.size
        else np.zeros(trace.num_steps, dtype=np.int64)
    )
    num_requests = int(counts.sum())
    replays = int(np.maximum(counts - 1, 0).sum())
    return ConflictReport(
        num_banks=num_banks,
        num_steps=trace.num_steps,
        num_accesses=trace.num_accesses,
        num_requests=num_requests,
        total_transactions=int(per_step.sum()),
        total_replays=replays,
        max_degree=int(per_step.max()) if per_step.size else 0,
        step_period=per_step.astype(np.int64),
    )
