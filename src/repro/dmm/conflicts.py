"""Exact bank-conflict accounting over access traces.

Three related metrics appear in the paper and in practice; this module
computes all of them so every statement can be tested against the construct:

* **transactions** — per warp-step, the number of serialized cycles the step
  costs: ``max_b (#distinct-address requests to bank b)``. A conflict-free
  step costs 1. The paper's "``E²`` total bank conflicts" for the small-``E``
  construction is the *sum of transactions* over the ``E`` merge steps
  contributed by the aligned accesses (``E`` steps × ``E``-way degree).
* **replays** — what Nvidia's profilers count
  (``l1tex__data_bank_conflicts`` / ``shared_ld_bank_conflict``): per step,
  ``Σ_b max(#requests_b − 1, 0)``, i.e. extra cycles beyond the first.
* **degree** — the worst per-step serialization ``max_j transactions_j``;
  Lemma 1 bounds it by ``min(⌈k/w⌉, w)``.

Concurrent reads of the *same address* broadcast (cost one request) —
footnote 1 of the paper; concurrent writes to the same address are a CREW
violation detected by :mod:`repro.dmm.machine`, not here.

Everything is vectorized: the counter runs over a whole trace as three
NumPy passes regardless of the number of steps.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dmm.trace import AccessKind, AccessTrace
from repro.utils.validation import check_power_of_two

__all__ = [
    "ConflictReport",
    "count_conflicts",
    "report_segments",
    "step_transactions",
]


@dataclass(frozen=True)
class ConflictReport:
    """Aggregate conflict metrics for one trace (or a merged set of traces).

    Attributes
    ----------
    num_banks:
        Bank count ``w`` the trace was scored against.
    num_steps:
        Lock-step iterations scored.
    num_accesses:
        Total element accesses (before broadcast deduplication).
    num_requests:
        Bank requests after broadcast deduplication.
    total_transactions:
        Serialized cycles: ``Σ_j max_b requests_b(j)``.
    total_replays:
        Profiler-style conflicts: ``Σ_j Σ_b (requests_b(j) − 1)⁺``.
    max_degree:
        Worst single-step serialization.
    step_segments:
        The per-step cost sequence as a run-length-compressed segment list
        of ``(period, repeats)`` pairs: the full per-step array is the
        concatenation of each period tiled ``repeats`` times. Directly
        counted traces hold one ``(per_step, 1)`` segment; :meth:`scaled`
        multiplies repeat counts and :meth:`merged` concatenates segment
        lists, so neither ever materializes the ``O(steps·repeats)``
        array — the synthesized path scales single-tile traces by very
        large block counts.
    """

    num_banks: int
    num_steps: int
    num_accesses: int
    num_requests: int
    total_transactions: int
    total_replays: int
    max_degree: int
    step_segments: tuple = ()

    @property
    def step_period(self) -> np.ndarray:
        """One period of per-step costs (materialized for multi-segment
        reports; prefer :attr:`step_segments` for those)."""
        if not self.step_segments:
            return np.empty(0, dtype=np.int64)
        if len(self.step_segments) == 1:
            return self.step_segments[0][0]
        return self.per_step_transactions

    @property
    def step_repeats(self) -> int:
        """How many times :attr:`step_period` repeats to span the report."""
        if len(self.step_segments) == 1:
            return self.step_segments[0][1]
        return 1

    @property
    def per_step_transactions(self) -> np.ndarray:
        """Length-``num_steps`` int array of per-step costs.

        Materialized on demand for repeated (scaled) reports; prefer the
        summary counters or :attr:`step_segments` when repeat factors are
        large.
        """
        if not self.step_segments:
            return np.empty(0, dtype=np.int64)
        parts = [
            np.tile(period, repeats) if repeats > 1 else period
            for period, repeats in self.step_segments
        ]
        return parts[0] if len(parts) == 1 else np.concatenate(parts)

    @property
    def conflict_free_cycles(self) -> int:
        """Cycles the trace would cost with zero conflicts (= active steps)."""
        return sum(
            int(np.count_nonzero(period)) * repeats
            for period, repeats in self.step_segments
        )

    @property
    def slowdown_factor(self) -> float:
        """Serialized cycles / conflict-free cycles (1.0 = conflict free)."""
        base = self.conflict_free_cycles
        return float(self.total_transactions) / base if base else 1.0

    @property
    def replays_per_access(self) -> float:
        """Average profiler-style conflicts per element access."""
        return self.total_replays / self.num_accesses if self.num_accesses else 0.0

    def merged(self, other: "ConflictReport") -> "ConflictReport":
        """Combine two reports as if the traces ran back to back.

        Used to aggregate per-warp reports into per-round and per-sort
        totals. Requires matching bank counts.
        """
        if self.num_banks != other.num_banks:
            from repro.errors import SimulationError

            raise SimulationError(
                f"cannot merge reports with {self.num_banks} and "
                f"{other.num_banks} banks"
            )
        # Concatenating the segment lists keeps both sides' laziness: a
        # report scaled by a huge block count merges in O(1) memory.
        return ConflictReport(
            num_banks=self.num_banks,
            num_steps=self.num_steps + other.num_steps,
            num_accesses=self.num_accesses + other.num_accesses,
            num_requests=self.num_requests + other.num_requests,
            total_transactions=self.total_transactions + other.total_transactions,
            total_replays=self.total_replays + other.total_replays,
            max_degree=max(self.max_degree, other.max_degree),
            step_segments=self.step_segments + other.step_segments,
        )

    def scaled(self, factor: int) -> "ConflictReport":
        """Report for ``factor`` identical copies of this trace.

        The fast simulation path uses this: the constructed adversarial input
        is periodic across warps/blocks, so one representative trace scored
        once stands in for all of them. Only the repeat count grows — the
        per-step period is shared, so scaling by a huge block count costs
        O(1) memory.
        """
        if factor < 0:
            from repro.errors import ValidationError

            raise ValidationError(f"factor must be nonnegative, got {factor}")
        if factor == 0:
            segments = ()
        elif len(self.step_segments) <= 1:
            segments = tuple(
                (period, repeats * factor)
                for period, repeats in self.step_segments
            )
        else:
            # Multi-segment sequence repeated whole: tuple repetition keeps
            # each segment's period shared (O(segments·factor) references).
            segments = self.step_segments * factor
        return ConflictReport(
            num_banks=self.num_banks,
            num_steps=self.num_steps * factor,
            num_accesses=self.num_accesses * factor,
            num_requests=self.num_requests * factor,
            total_transactions=self.total_transactions * factor,
            total_replays=self.total_replays * factor,
            max_degree=self.max_degree if factor else 0,
            step_segments=segments,
        )

    @staticmethod
    def empty(num_banks: int) -> "ConflictReport":
        """The identity element for :meth:`merged`."""
        return ConflictReport(
            num_banks=num_banks,
            num_steps=0,
            num_accesses=0,
            num_requests=0,
            total_transactions=0,
            total_replays=0,
            max_degree=0,
            step_segments=(),
        )


def _request_counts(trace: AccessTrace, num_banks: int) -> np.ndarray:
    """Per-(step, bank) request counts after broadcast deduplication.

    Returns a ``(num_steps, num_banks)`` int64 matrix.
    """
    steps = trace.num_steps
    if trace.num_accesses == 0:
        return np.zeros((steps, num_banks), dtype=np.int64)

    # Inactive lanes hold NO_ACCESS (< 0, an AccessTrace invariant) and so
    # sort below every valid address: a row-wise sort + neighbor comparison
    # deduplicates per step without the hash pass a global ``np.unique``
    # would pay (the warp width is tiny, so the sort is effectively linear
    # in the trace size).
    addrs = trace.addresses
    if trace.kind is AccessKind.READ:
        # Broadcast: identical (step, address) pairs collapse to one request.
        addrs = np.sort(addrs, axis=1)
        keep = np.empty(addrs.shape, dtype=bool)
        keep[:, 0] = addrs[:, 0] >= 0
        if addrs.shape[1] > 1:
            keep[:, 1:] = (addrs[:, 1:] >= 0) & (addrs[:, 1:] != addrs[:, :-1])
    else:
        # Writes to the same address never broadcast (and same-address
        # concurrent writes are illegal under CREW — caught by the machine,
        # not scored here).
        keep = trace.active

    # num_banks is a power of two, so bank = addr & (w − 1).
    keys = addrs & np.int64(num_banks - 1)
    keys += np.arange(steps, dtype=np.int64)[:, None] * num_banks
    flat = np.bincount(keys[keep], minlength=steps * num_banks)
    return flat.reshape(steps, num_banks).astype(np.int64, copy=False)


def step_transactions(trace: AccessTrace, num_banks: int) -> np.ndarray:
    """Per-step serialized cycle counts (``max_b requests_b``)."""
    num_banks = check_power_of_two(num_banks, "num_banks")
    counts = _request_counts(trace, num_banks)
    if counts.size == 0:
        return np.zeros(trace.num_steps, dtype=np.int64)
    return counts.max(axis=1)


def report_segments(
    trace: AccessTrace, num_banks: int, boundaries: np.ndarray
) -> list[ConflictReport]:
    """Score one stacked trace, split into independent per-segment reports.

    ``boundaries`` is a nondecreasing int array of step indices starting at
    0 and ending at ``trace.num_steps``; segment ``i`` covers steps
    ``boundaries[i]:boundaries[i+1]``. Because every conflict metric is
    additive over steps, scoring the stacked trace once and slicing is
    bit-identical to scoring each segment's sub-trace separately — but pays
    the request-counting pass only once. The memoized scoring path uses
    this to turn one batched round pass into per-tile cacheable reports.
    """
    num_banks = check_power_of_two(num_banks, "num_banks")
    boundaries = np.asarray(boundaries, dtype=np.int64)
    if (
        boundaries.ndim != 1
        or boundaries.size < 1
        or boundaries[0] != 0
        or boundaries[-1] != trace.num_steps
        or np.any(np.diff(boundaries) < 0)
    ):
        from repro.errors import ValidationError

        raise ValidationError(
            f"boundaries must rise from 0 to num_steps={trace.num_steps}, "
            f"got {boundaries!r}"
        )

    counts = _request_counts(trace, num_banks)
    if counts.size:
        per_step = counts.max(axis=1)
        step_requests = counts.sum(axis=1)
        step_replays = np.maximum(counts - 1, 0).sum(axis=1)
    else:
        per_step = np.zeros(trace.num_steps, dtype=np.int64)
        step_requests = per_step
        step_replays = per_step
    step_accesses = trace.active.sum(axis=1)

    reports = []
    for lo, hi in zip(boundaries[:-1], boundaries[1:]):
        seg = per_step[lo:hi]
        if seg.size == 0:
            reports.append(ConflictReport.empty(num_banks))
            continue
        seg = seg.copy()  # own the memory: these reports outlive the trace
        reports.append(
            ConflictReport(
                num_banks=num_banks,
                num_steps=int(hi - lo),
                num_accesses=int(step_accesses[lo:hi].sum()),
                num_requests=int(step_requests[lo:hi].sum()),
                total_transactions=int(seg.sum()),
                total_replays=int(step_replays[lo:hi].sum()),
                max_degree=int(seg.max()),
                step_segments=((seg, 1),),
            )
        )
    return reports


def count_conflicts(trace: AccessTrace, num_banks: int) -> ConflictReport:
    """Score a trace against ``num_banks`` banks.

    Examples
    --------
    A warp of 4 lanes reading one full column is conflict free:

    >>> import numpy as np
    >>> from repro.dmm.trace import AccessTrace
    >>> t = AccessTrace.from_dense(np.array([[0, 1, 2, 3]]))
    >>> count_conflicts(t, 4).total_replays
    0

    All four lanes hitting bank 0 with distinct addresses serialize 4-way:

    >>> t = AccessTrace.from_dense(np.array([[0, 4, 8, 12]]))
    >>> r = count_conflicts(t, 4)
    >>> (r.total_transactions, r.total_replays, r.max_degree)
    (4, 3, 4)

    Reading the *same* address broadcasts:

    >>> t = AccessTrace.from_dense(np.array([[4, 4, 4, 4]]))
    >>> count_conflicts(t, 4).total_transactions
    1
    """
    num_banks = check_power_of_two(num_banks, "num_banks")
    counts = _request_counts(trace, num_banks)
    per_step = (
        counts.max(axis=1)
        if counts.size
        else np.zeros(trace.num_steps, dtype=np.int64)
    )
    num_requests = int(counts.sum())
    replays = int(np.maximum(counts - 1, 0).sum())
    per_step = per_step.astype(np.int64)
    return ConflictReport(
        num_banks=num_banks,
        num_steps=trace.num_steps,
        num_accesses=trace.num_accesses,
        num_requests=num_requests,
        total_transactions=int(per_step.sum()),
        total_replays=replays,
        max_degree=int(per_step.max()) if per_step.size else 0,
        step_segments=((per_step, 1),) if per_step.size else (),
    )
