"""Fused conflict counting: round aggregates without ``AccessTrace``.

The classic scoring pipeline materializes, per round, the ``(E, threads)``
address matrices, a dense probe-step matrix, and :class:`AccessTrace`
objects, then reduces them with a sort + bincount pass. The fused path
(``scoring="fused"``) collapses that dataflow: counting goes straight from
addresses to the handful of :class:`~repro.dmm.conflicts.ConflictReport`
counters via bincounts over flattened ``(step-row, bank)`` keys, and — when
the optional compiled backend is importable — straight from the pre-merge
values to the counters with no intermediate arrays at all.

This module owns the three counting primitives and the backend switch:

* :func:`report_from_per_step` — assemble a :class:`ConflictReport` from a
  per-step transaction sequence plus the access/request/replay counters
  (the shape both backends reduce to);
* :func:`permutation_stage_report` — merge-stage scoring of ``(tiles, bE)``
  rank→address rows. Each row is a permutation of its tile's cells, so two
  lanes of one step can never read the same address: broadcast
  deduplication is provably a no-op and the whole stage is one bincount —
  no row sort, no trace;
* :func:`dense_report` — partition-stage scoring of a stacked
  ``(rows, w)`` physical-address matrix, bit-identical to
  ``count_conflicts(AccessTrace.from_dense(dense), w)`` without building
  the trace.

Backend switch: :func:`native_enabled` is true when the optional compiled
module :mod:`repro._fused_native` imported successfully and the
``REPRO_FORCE_NUMPY`` environment variable is unset/``0``. The toggle is
read per call, so tests can flip backends without re-importing; both
backends are bit-identical (``tests/sort/test_fused_equivalence.py``).
"""

from __future__ import annotations

import os

import numpy as np

from repro.dmm.conflicts import ConflictReport

__all__ = [
    "FORCE_NUMPY_ENV",
    "active_backend",
    "dense_report",
    "native_enabled",
    "native_module",
    "permutation_stage_report",
    "report_from_per_step",
]

#: Environment variable disabling the compiled backend at runtime (any
#: value other than empty/``0``); the numpy fused path is used instead.
FORCE_NUMPY_ENV = "REPRO_FORCE_NUMPY"

try:  # pragma: no cover - exercised via both CI legs
    from repro import _fused_native as _native
except ImportError:  # the extension is optional by design
    _native = None


def native_module():
    """The compiled module, or ``None`` when it is not importable."""
    return _native


def native_enabled() -> bool:
    """Whether fused scoring dispatches to the compiled backend."""
    if _native is None:
        return False
    return os.environ.get(FORCE_NUMPY_ENV, "").strip() in ("", "0")


def active_backend() -> str:
    """``"native"`` or ``"numpy"`` — what fused scoring would use now."""
    return "native" if native_enabled() else "numpy"


def report_from_per_step(
    num_banks: int,
    per_step: np.ndarray,
    num_accesses: int,
    num_requests: int,
    total_replays: int,
) -> ConflictReport:
    """Assemble a :class:`ConflictReport` from fused counters.

    ``per_step`` is the per-step transaction sequence in trace-row order;
    transactions/max-degree derive from it, the other counters are passed
    through. An empty sequence yields :meth:`ConflictReport.empty`,
    matching what the trace-based path produces for an empty stack.
    """
    per_step = np.ascontiguousarray(per_step, dtype=np.int64)
    if per_step.size == 0:
        return ConflictReport.empty(num_banks)
    return ConflictReport(
        num_banks=num_banks,
        num_steps=int(per_step.size),
        num_accesses=int(num_accesses),
        num_requests=int(num_requests),
        total_transactions=int(per_step.sum()),
        total_replays=int(total_replays),
        max_degree=int(per_step.max()),
        step_segments=((per_step, 1),),
    )


def permutation_stage_report(
    addr_by_rank: np.ndarray,
    elements_per_thread: int,
    warp_size: int,
    padding: int,
) -> ConflictReport:
    """Merge-stage report for ``(tiles, bE)`` rank→address rows, fused.

    Each row must be a permutation of ``[0, bE)`` — true for every merge
    round's rank→address map (block rounds permute the tile, global rounds
    permute the block's A∪B window). Distinct logical addresses stay
    distinct under padding, so no broadcast can occur within a step:
    ``requests == accesses`` and per-step replays are ``w − occupied
    banks``. One bincount over flattened ``(tile, warp, step, bank)`` keys
    replaces the reshape → stack → trace → sort-dedup pipeline.
    """
    rows2d = np.ascontiguousarray(addr_by_rank, dtype=np.int64)
    tiles, ranks = rows2d.shape
    e = elements_per_thread
    w = warp_size
    wpb = ranks // e // w
    rows_per_tile = wpb * e
    # Trace row of rank r within its tile: warp-major, step-minor.
    r = np.arange(ranks, dtype=np.int64)
    rowmap = (r // (w * e)) * e + r % e
    phys = rows2d if not padding else rows2d + (rows2d // w) * padding
    keys = (
        np.arange(tiles, dtype=np.int64)[:, None] * rows_per_tile + rowmap
    ) * w + (phys & np.int64(w - 1))
    counts = np.bincount(
        keys.ravel(), minlength=tiles * rows_per_tile * w
    ).reshape(-1, w)
    per_step = counts.max(axis=1)
    accesses = tiles * ranks
    replays = accesses - int(np.count_nonzero(counts))
    return report_from_per_step(w, per_step, accesses, accesses, replays)


def dense_report(dense: np.ndarray, num_banks: int) -> ConflictReport:
    """Score a stacked ``(rows, w)`` physical-address matrix directly.

    Bit-identical to ``count_conflicts(AccessTrace.from_dense(dense),
    num_banks)`` — same row-sort broadcast dedup, same bincount — minus
    the trace object and its activity-mask copies. Negative entries mark
    inactive lanes.
    """
    dense = np.asarray(dense, dtype=np.int64)
    if dense.size == 0:
        return ConflictReport.empty(num_banks)
    addrs = np.sort(dense, axis=1)
    keep = np.empty(addrs.shape, dtype=bool)
    keep[:, 0] = addrs[:, 0] >= 0
    if addrs.shape[1] > 1:
        keep[:, 1:] = (addrs[:, 1:] >= 0) & (addrs[:, 1:] != addrs[:, :-1])
    steps = addrs.shape[0]
    keys = addrs & np.int64(num_banks - 1)
    keys += np.arange(steps, dtype=np.int64)[:, None] * num_banks
    counts = (
        np.bincount(keys[keep], minlength=steps * num_banks)
        .reshape(steps, num_banks)
        .astype(np.int64, copy=False)
    )
    per_step = counts.max(axis=1)
    return report_from_per_step(
        num_banks,
        per_step,
        num_accesses=int((dense >= 0).sum()),
        num_requests=int(counts.sum()),
        total_replays=int(np.maximum(counts - 1, 0).sum()),
    )
