"""A small executable CREW DMM.

:mod:`repro.dmm.conflicts` *scores* traces combinatorially; this module
additionally *executes* them against a memory image, which gives us an
independent check that the simulated kernels read/write what they think they
do, and a place to enforce the CREW rule (concurrent same-address writes are
forbidden).

The machine is deliberately simple: ``w`` processors issue at most one
request per step; the memory responds in ``transactions`` serialized cycles
(per :func:`repro.dmm.conflicts.step_transactions`); reads return values,
writes commit values. Arbitrary inter-step computation stays in the kernels —
the machine models only the memory system, exactly like the DMM of Mehlhorn
and Vishkin as used in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dmm.conflicts import ConflictReport, count_conflicts
from repro.dmm.trace import AccessKind, AccessTrace
from repro.errors import SimulationError, ValidationError
from repro.utils.validation import check_nonnegative_int, check_power_of_two

__all__ = ["DMM", "MemoryImage"]


@dataclass
class MemoryImage:
    """A flat word-addressed memory holding int64 values.

    ``size`` may be 0: an empty image has no addressable words, rejects
    every access, and snapshots to an empty array.
    """

    size: int
    _words: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        check_nonnegative_int(self.size, "size")
        self._words = np.zeros(self.size, dtype=np.int64)

    @classmethod
    def from_array(cls, data) -> "MemoryImage":
        """Create an image initialized with (and exactly sized to) ``data``."""
        data = np.asarray(data, dtype=np.int64)
        if data.ndim != 1:
            raise ValidationError(f"data must be 1-D, got shape {data.shape}")
        image = cls(size=int(data.size))
        image._words[:] = data
        return image

    def read(self, addresses: np.ndarray) -> np.ndarray:
        """Gather values at ``addresses`` (bounds-checked)."""
        self._check_bounds(addresses)
        return self._words[addresses]

    def write(self, addresses: np.ndarray, values: np.ndarray) -> None:
        """Scatter ``values`` to ``addresses`` (bounds-checked)."""
        self._check_bounds(addresses)
        self._words[addresses] = np.asarray(values, dtype=np.int64)

    def snapshot(self) -> np.ndarray:
        """A copy of the full memory contents."""
        return self._words.copy()

    def _check_bounds(self, addresses: np.ndarray) -> None:
        addresses = np.asarray(addresses)
        if addresses.size and (
            int(addresses.min()) < 0 or int(addresses.max()) >= self.size
        ):
            raise SimulationError(
                f"address out of bounds for memory of size {self.size}: "
                f"range [{addresses.min()}, {addresses.max()}]"
            )


@dataclass
class DMM:
    """A ``w``-processor, ``w``-bank CREW Distributed Memory Machine.

    Parameters
    ----------
    num_processors:
        Processor and bank count ``w`` (power of two).
    memory:
        The backing :class:`MemoryImage`.
    """

    num_processors: int
    memory: MemoryImage
    cycles: int = 0

    def __post_init__(self) -> None:
        check_power_of_two(self.num_processors, "num_processors")

    def execute(self, trace: AccessTrace) -> tuple[np.ndarray, ConflictReport]:
        """Run a trace against memory, accumulating serialized cycles.

        Returns
        -------
        values:
            For READ traces, a ``(steps, lanes)`` array of the values read
            (0 where the lane was inactive). For WRITE traces the lanes'
            *written* values echoed back (the kernels use traces whose
            addresses double as values in self-check mode).
        report:
            The conflict accounting for the trace.
        """
        if trace.num_lanes != self.num_processors:
            raise SimulationError(
                f"trace has {trace.num_lanes} lanes but machine has "
                f"{self.num_processors} processors"
            )
        report = count_conflicts(trace, self.num_processors)
        self.cycles += report.total_transactions

        values = np.zeros_like(trace.addresses)
        if trace.kind is AccessKind.READ:
            active = trace.active
            if active.any():
                values[active] = self.memory.read(trace.addresses[active])
            return values, report

        # WRITE: enforce exclusive write per step.
        for j in range(trace.num_steps):
            mask = trace.active[j]
            addrs = trace.addresses[j, mask]
            if addrs.size != np.unique(addrs).size:
                raise SimulationError(
                    f"CREW violation: concurrent writes to the same address "
                    f"in step {j}"
                )
            self.memory.write(addrs, addrs)
            values[j, mask] = addrs
        return values, report
