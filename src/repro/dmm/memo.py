"""Content-addressed memoization of conflict reports.

The constructed adversarial inputs are *periodic with the block's pattern
at every round* (DESIGN.md §5), and many benign inputs (sorted, reverse,
sawtooth) are just as repetitive: for a fixed configuration, the
rank→address pattern a tile presents to the conflict counter recurs across
tiles of one round, across rounds of one sort, and across the points of a
size sweep — the block-level rounds of an ``N = 122880`` point and an
``N = 983040`` point are bit-identical work. Scoring is a pure function of
that pattern, so this module caches finished
:class:`~repro.dmm.conflicts.ConflictReport` pairs under a digest of
everything that determines them:

* the **physical rank→address row** of the tile (post-padding addresses are
  a pure function of the logical row and the padding knob, so the logical
  row is hashed together with the padding field);
* the **scoring context** — round kind, run length, ``w``, ``E``, padding —
  via :meth:`ConflictMemo.context`;
* for global rounds, the tile's **A-window length** ``na`` (two blocks can
  share a rank→address permutation while splitting it differently between
  the A and B windows, which changes the β₁ probe sequence).

Why the digest is *exact*, including the β₁ (partition) stage: the
merge-path bisection probes compare elements of the tile's A window against
its B window, and ``A[i] <= B[j]`` holds iff ``A[i]`` precedes ``B[j]`` in
the stable (A-first) merge — which is precisely what the rank→address
pattern encodes. Identical patterns therefore replay identical probe
sequences, even in the presence of duplicate keys.

Two granularities share one :class:`ConflictMemo`:

* **tile entries** — ``digest → (merge_report, partition_report)`` for one
  scored tile/block;
* **round entries** — ``digest of the round's tile-digest sequence → the
  assembled round report pair``, so a repeated round costs one lookup.

The memo is in-memory and process-local (the on-disk
:class:`~repro.bench.cache.BenchCache` persists *results*; this layer
de-duplicates *work* inside a process or worker). Entries are bounded by
``max_entries`` with FIFO eviction; all reports stored are frozen
dataclasses, safe to share between results.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.dmm.conflicts import ConflictReport
from repro.errors import ValidationError
from repro.utils.validation import check_positive_int

__all__ = ["CONTEXT_FIELDS", "ConflictMemo", "MemoStats"]

#: The scoring-context fields a memo digest binds, in digest order. This is
#: the single source of truth for "what determines a conflict report": the
#: engine layer folds the same tuple into its warm-runner fingerprints
#: (:func:`repro.engine.tasks.runner_key`), so cache identity and memo
#: identity can never drift apart silently. Deliberately *absent*: the
#: scoring backend (``vectorized``/``loop``/``fused`` are bit-identical by
#: contract — ``tests/sort/test_fused_equivalence.py`` — so entries written
#: under one backend must be served to the others).
CONTEXT_FIELDS = (
    "kind",
    "num_banks",
    "elements_per_thread",
    "run_length",
    "padding",
    "mitigation",
)

#: Short digest labels per context field (``kind`` is emitted bare).
_CONTEXT_LABELS = {
    "num_banks": "w",
    "elements_per_thread": "E",
    "run_length": "L",
    "padding": "pad",
    "mitigation": "mit",
}

#: Digest width (bytes) for pattern keys; 128-bit blake2b is collision-safe
#: at any realistic sweep size and hashes a tile row in microseconds.
_DIGEST_SIZE = 16

#: Per-entry bookkeeping overhead estimate (dict slot + report objects),
#: added on top of the stored per-step arrays when accounting bytes.
_ENTRY_OVERHEAD = 256


@dataclass(frozen=True)
class MemoStats:
    """Hit/miss/footprint summary of a :class:`ConflictMemo`.

    ``hits``/``misses`` count lookups (tile and round alike);
    ``tile_entries``/``round_entries`` and ``stored_bytes`` describe the
    retained cache content.
    """

    hits: int
    misses: int
    tile_entries: int
    round_entries: int
    stored_bytes: int

    @property
    def lookups(self) -> int:
        """Total lookups performed."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the memo (0.0 when unused)."""
        return self.hits / self.lookups if self.lookups else 0.0

    def __str__(self) -> str:
        return (
            f"{self.hits} hits / {self.misses} misses "
            f"({self.hit_rate:.0%} hit rate), "
            f"{self.tile_entries} tile + {self.round_entries} round entries, "
            f"{self.stored_bytes:,} bytes"
        )


def _pair_bytes(pair: tuple[ConflictReport, ConflictReport]) -> int:
    """Approximate retained bytes of one cached report pair."""
    total = _ENTRY_OVERHEAD
    for report in pair:
        for period, _ in report.step_segments:
            total += period.nbytes
    return total


class ConflictMemo:
    """Content-addressed cache of finished conflict-report pairs.

    One memo may be shared freely: across the rounds of a sort, the sorts
    of a :class:`~repro.bench.runner.SweepRunner`, the members of a
    permutation family, or the items a :mod:`repro.bench.parallel` worker
    executes. Sharing only ever widens the hit pool — every entry is keyed
    by the full scoring context, so entries from different configurations
    never collide.

    Parameters
    ----------
    max_entries:
        Bound on *tile* entries (round entries are bounded by the same
        number). When exceeded, the oldest entry is evicted (FIFO) — random
        inputs produce an unbounded stream of unique patterns, and the
        bound keeps a long sweep's footprint flat.
    """

    #: Process-wide aggregates across every memo instance (reported by the
    #: CLI ``cache stats`` command alongside the on-disk cache).
    _process_hits = 0
    _process_misses = 0
    _process_tile_entries = 0
    _process_round_entries = 0
    _process_bytes = 0

    #: Process-wide ``mitigation spec → (hits, misses)`` breakdown. The
    #: memo itself is mitigation-blind (the spec is folded into every
    #: digest), so the sorters attribute their lookup deltas here via
    #: :meth:`record_mitigation`; ``cache stats`` and the service
    #: ``/stats`` read it to make matrix sweeps debuggable per layout.
    _process_by_mitigation: dict[str, tuple[int, int]] = {}

    def __init__(self, max_entries: int = 1 << 16):
        self.max_entries = check_positive_int(max_entries, "max_entries")
        self._tiles: dict[bytes, tuple[ConflictReport, ConflictReport]] = {}
        self._rounds: dict[bytes, tuple[ConflictReport, ConflictReport]] = {}
        self.hits = 0
        self.misses = 0
        self.stored_bytes = 0

    # -- keys ----------------------------------------------------------------

    @staticmethod
    def context(
        kind: str,
        *,
        num_banks: int,
        elements_per_thread: int,
        run_length: int,
        padding: int,
        mitigation: str = "none",
    ) -> bytes:
        """Digest prefix binding entries to one scoring situation.

        Exactly the :data:`CONTEXT_FIELDS`, serialized ``kind|w=..|E=..|
        L=..|pad=..|mit=..|``. ``mitigation`` is the canonical spec
        string of the shared-memory layout the reports were scored
        under — pattern rows are hashed *pre-remap* (logical addresses),
        so the layout must enter the digest the same way ``padding``
        always has.
        """
        values = {
            "kind": kind,
            "num_banks": num_banks,
            "elements_per_thread": elements_per_thread,
            "run_length": run_length,
            "padding": padding,
            "mitigation": mitigation,
        }
        parts = [str(values[CONTEXT_FIELDS[0]])] + [
            f"{_CONTEXT_LABELS[field]}={values[field]}"
            for field in CONTEXT_FIELDS[1:]
        ]
        return ("|".join(parts) + "|").encode("ascii")

    @staticmethod
    def tile_digests(
        context: bytes,
        rows: np.ndarray,
        extra: np.ndarray | None = None,
    ) -> list[bytes]:
        """Digest each row of a ``(tiles, ranks)`` rank→address matrix.

        ``extra`` optionally appends one int64 per row to the hashed bytes
        (the global rounds' per-block A-window length ``na``).

        Runs of consecutive identical rows are detected first (one
        vectorized comparison pass), so a periodic round — the common case
        this cache exists for, where every tile repeats one pattern — pays
        the cryptographic hash once per *stretch*, not once per tile.
        """
        rows = np.ascontiguousarray(rows, dtype=np.int64)
        if rows.ndim != 2:
            raise ValidationError(
                f"pattern rows must be 2-D (tiles, ranks), got {rows.shape}"
            )
        if extra is not None:
            extra = np.ascontiguousarray(extra, dtype=np.int64)
            if extra.shape != (rows.shape[0],):
                raise ValidationError(
                    f"extra must have shape ({rows.shape[0]},), got {extra.shape}"
                )
            rows = np.concatenate([rows, extra[:, None]], axis=1)
        num = rows.shape[0]
        if num == 0:
            return []
        same_as_prev = np.zeros(num, dtype=bool)
        if num > 1:
            same_as_prev[1:] = (rows[1:] == rows[:-1]).all(axis=1)
        digests: list[bytes] = []
        prev = b""
        for i in range(num):
            if not same_as_prev[i]:
                h = hashlib.blake2b(context, digest_size=_DIGEST_SIZE)
                h.update(rows[i].tobytes())
                prev = h.digest()
            digests.append(prev)
        return digests

    @staticmethod
    def round_digest(context: bytes, tile_digests: list[bytes]) -> bytes:
        """Digest of a whole round: its ordered tile-digest sequence."""
        h = hashlib.blake2b(context, digest_size=_DIGEST_SIZE)
        for digest in tile_digests:
            h.update(digest)
        return h.digest()

    # -- lookups -------------------------------------------------------------

    def _get(self, table: dict, key: bytes):
        pair = table.get(key)
        if pair is None:
            self.misses += 1
            ConflictMemo._process_misses += 1
            return None
        self.hits += 1
        ConflictMemo._process_hits += 1
        return pair

    def _put(self, table: dict, key: bytes, pair, counter: str) -> None:
        if key in table:
            return
        if len(table) >= self.max_entries:
            # FIFO eviction: dicts preserve insertion order, so the first
            # key is the oldest entry.
            oldest = next(iter(table))
            evicted = table.pop(oldest)
            freed = _pair_bytes(evicted)
            self.stored_bytes -= freed
            ConflictMemo._process_bytes -= freed
            setattr(
                ConflictMemo, counter, getattr(ConflictMemo, counter) - 1
            )
        table[key] = pair
        added = _pair_bytes(pair)
        self.stored_bytes += added
        ConflictMemo._process_bytes += added
        setattr(ConflictMemo, counter, getattr(ConflictMemo, counter) + 1)

    def get_tile(self, key: bytes):
        """Tile-level lookup; ``None`` on miss (counted)."""
        return self._get(self._tiles, key)

    def put_tile(
        self, key: bytes, pair: tuple[ConflictReport, ConflictReport]
    ) -> None:
        """Store one scored tile's ``(merge, partition)`` report pair."""
        self._put(self._tiles, key, pair, "_process_tile_entries")

    def get_round(self, key: bytes):
        """Round-level lookup; ``None`` on miss (counted)."""
        return self._get(self._rounds, key)

    def put_round(
        self, key: bytes, pair: tuple[ConflictReport, ConflictReport]
    ) -> None:
        """Store one assembled round's ``(merge, partition)`` report pair."""
        self._put(self._rounds, key, pair, "_process_round_entries")

    # -- stats ---------------------------------------------------------------

    def stats(
        self, *, hits_base: int = 0, misses_base: int = 0
    ) -> MemoStats:
        """Snapshot of this memo (optionally as a delta from a baseline).

        ``hits_base``/``misses_base`` subtract earlier counter values, so a
        caller can report the hits and misses of one sort against a shared
        long-lived memo.
        """
        return MemoStats(
            hits=self.hits - hits_base,
            misses=self.misses - misses_base,
            tile_entries=len(self._tiles),
            round_entries=len(self._rounds),
            stored_bytes=self.stored_bytes,
        )

    @classmethod
    def process_stats(cls) -> MemoStats:
        """Aggregate across every memo created in this process.

        Includes deltas absorbed from worker processes via
        :meth:`absorb_stats`, so a pool-running parent reports fleet-wide
        memo activity rather than only its own.
        """
        return MemoStats(
            hits=cls._process_hits,
            misses=cls._process_misses,
            tile_entries=cls._process_tile_entries,
            round_entries=cls._process_round_entries,
            stored_bytes=cls._process_bytes,
        )

    @classmethod
    def absorb_stats(cls, delta: MemoStats) -> None:
        """Fold a worker process's :class:`MemoStats` delta into this one.

        The ``_process_*`` counters are per-process: under pooled
        execution each worker mutates its own copies and the parent's
        aggregate would silently under-report (``cache stats``, sweep
        memo lines, and the service ``/stats`` all read it). Workers
        therefore snapshot their counters around each work item and ship
        the difference back; the parent folds it in here. Entry/byte
        deltas can be negative (FIFO eviction in the worker) — they are
        folded as-is so the aggregate tracks net retained state.
        """
        cls._process_hits += delta.hits
        cls._process_misses += delta.misses
        cls._process_tile_entries += delta.tile_entries
        cls._process_round_entries += delta.round_entries
        cls._process_bytes += delta.stored_bytes

    @classmethod
    def record_mitigation(cls, spec: str, hits: int, misses: int) -> None:
        """Attribute memo lookups to a mitigation spec.

        Called by the memoized scoring paths with their per-sort lookup
        deltas (the memo cannot see the spec at ``_get`` time — it is
        baked into the digest bytes).
        """
        if not hits and not misses:
            return
        prev_hits, prev_misses = cls._process_by_mitigation.get(spec, (0, 0))
        cls._process_by_mitigation[spec] = (
            prev_hits + hits,
            prev_misses + misses,
        )

    @classmethod
    def mitigation_stats(cls) -> dict[str, tuple[int, int]]:
        """Process-wide ``spec → (hits, misses)``, sorted by spec."""
        return dict(sorted(cls._process_by_mitigation.items()))

    @classmethod
    def mitigation_stats_delta(
        cls, baseline: dict[str, tuple[int, int]]
    ) -> dict[str, tuple[int, int]]:
        """Per-spec change since a :meth:`mitigation_stats` snapshot.

        Worker-side half of the pool stats-shipping protocol, alongside
        :meth:`process_stats_delta`.
        """
        delta: dict[str, tuple[int, int]] = {}
        for spec, (hits, misses) in cls._process_by_mitigation.items():
            base_hits, base_misses = baseline.get(spec, (0, 0))
            if hits - base_hits or misses - base_misses:
                delta[spec] = (hits - base_hits, misses - base_misses)
        return delta

    @classmethod
    def absorb_mitigation_stats(
        cls, delta: dict[str, tuple[int, int]]
    ) -> None:
        """Fold a worker's :meth:`mitigation_stats_delta` into this
        process's breakdown (parent-side half of the protocol)."""
        for spec, (hits, misses) in delta.items():
            cls.record_mitigation(spec, hits, misses)

    @classmethod
    def process_stats_delta(cls, baseline: MemoStats) -> MemoStats:
        """Change in :meth:`process_stats` since ``baseline`` was taken.

        The worker-side half of the stats-shipping protocol: snapshot
        before a work item, call this after, send the result to the
        parent's :meth:`absorb_stats`.
        """
        now = cls.process_stats()
        return MemoStats(
            hits=now.hits - baseline.hits,
            misses=now.misses - baseline.misses,
            tile_entries=now.tile_entries - baseline.tile_entries,
            round_entries=now.round_entries - baseline.round_entries,
            stored_bytes=now.stored_bytes - baseline.stored_bytes,
        )
