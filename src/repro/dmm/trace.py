"""Access traces: what a warp asked of shared memory, step by step.

A trace is a dense ``(steps, w)`` int64 matrix of element addresses plus a
same-shaped boolean activity mask: entry ``(j, i)`` is the address processor
(lane) ``i`` requested in lock-step iteration ``j``; inactive lanes are
masked out and conventionally hold :data:`NO_ACCESS`.

Traces are the hand-off format between the simulated kernels
(:mod:`repro.mergepath.kernels`, :mod:`repro.sort`) and the conflict counter
(:mod:`repro.dmm.conflicts`): kernels *record*, the counter *scores*. Keeping
them as plain arrays keeps the whole pipeline vectorizable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

import numpy as np

from repro.errors import SimulationError, ValidationError
from repro.utils.validation import check_positive_int

__all__ = ["AccessKind", "AccessTrace", "NO_ACCESS", "TraceBuilder"]

#: Sentinel address for an inactive lane in a trace step.
NO_ACCESS: int = -1


class AccessKind(Enum):
    """Whether a trace records loads or stores (CREW treats them differently:
    concurrent same-address *reads* broadcast, concurrent same-address
    *writes* are forbidden)."""

    READ = "read"
    WRITE = "write"


@dataclass(frozen=True)
class AccessTrace:
    """An immutable per-warp access trace.

    Attributes
    ----------
    addresses:
        ``(steps, lanes)`` int64 array of element addresses; exactly
        ``NO_ACCESS`` where ``active`` is ``False`` (the constructor
        normalizes inactive entries, so consumers may scan ``addresses``
        without re-masking).
    active:
        ``(steps, lanes)`` bool array marking which lanes issued a request.
    kind:
        Whether the trace records reads or writes.
    """

    addresses: np.ndarray
    active: np.ndarray
    kind: AccessKind = AccessKind.READ

    def __post_init__(self) -> None:
        addresses = np.asarray(self.addresses, dtype=np.int64)
        active = np.asarray(self.active, dtype=bool)
        if addresses.ndim != 2:
            raise ValidationError(
                f"trace addresses must be 2-D (steps, lanes), got {addresses.shape}"
            )
        if active.shape != addresses.shape:
            raise ValidationError(
                f"active mask shape {active.shape} != addresses shape "
                f"{addresses.shape}"
            )
        if np.any(addresses[active] < 0):
            raise ValidationError("active lanes must carry nonnegative addresses")
        if not active.all():
            addresses = np.where(active, addresses, np.int64(NO_ACCESS))
        object.__setattr__(self, "addresses", addresses)
        object.__setattr__(self, "active", active)

    @property
    def num_steps(self) -> int:
        """Number of lock-step iterations recorded."""
        return self.addresses.shape[0]

    @property
    def num_lanes(self) -> int:
        """Warp width ``w`` of the recording kernel."""
        return self.addresses.shape[1]

    @property
    def num_accesses(self) -> int:
        """Total number of element accesses (active lane-steps)."""
        return int(self.active.sum())

    @classmethod
    def from_dense(cls, addresses, kind: AccessKind = AccessKind.READ) -> "AccessTrace":
        """Build a trace from a dense address matrix.

        Entries equal to :data:`NO_ACCESS` (or any negative value) are treated
        as inactive lanes.
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        if addresses.ndim == 1:
            addresses = addresses[None, :]
        if addresses.ndim != 2:
            raise ValidationError(
                f"trace addresses must be 2-D (steps, lanes), got {addresses.shape}"
            )
        active = addresses >= 0
        clean = np.where(active, addresses, np.int64(NO_ACCESS))
        # Every class invariant holds by construction here; skip
        # __post_init__'s re-validation (this is the simulator's hot
        # constructor — every scored trace passes through it).
        trace = object.__new__(cls)
        object.__setattr__(trace, "addresses", clean)
        object.__setattr__(trace, "active", active)
        object.__setattr__(trace, "kind", kind)
        return trace

    def concat(self, other: "AccessTrace") -> "AccessTrace":
        """Concatenate two traces of the same width and kind in time."""
        if self.num_lanes != other.num_lanes:
            raise SimulationError(
                f"cannot concatenate traces with {self.num_lanes} and "
                f"{other.num_lanes} lanes"
            )
        if self.kind is not other.kind:
            raise SimulationError("cannot concatenate READ and WRITE traces")
        return AccessTrace(
            addresses=np.vstack([self.addresses, other.addresses]),
            active=np.vstack([self.active, other.active]),
            kind=self.kind,
        )


@dataclass
class TraceBuilder:
    """Mutable accumulator for building an :class:`AccessTrace` step by step.

    Kernels append one row per lock-step iteration; lanes that did not issue
    a request in that iteration pass :data:`NO_ACCESS`.
    """

    num_lanes: int
    kind: AccessKind = AccessKind.READ
    _rows: list = field(default_factory=list)

    def __post_init__(self) -> None:
        check_positive_int(self.num_lanes, "num_lanes")

    def add_step(self, addresses) -> None:
        """Record one lock-step iteration (length-``num_lanes`` addresses)."""
        row = np.asarray(addresses, dtype=np.int64)
        if row.shape != (self.num_lanes,):
            raise ValidationError(
                f"step must have shape ({self.num_lanes},), got {row.shape}"
            )
        self._rows.append(row)

    def build(self) -> AccessTrace:
        """Freeze the accumulated steps into an immutable trace."""
        if not self._rows:
            dense = np.empty((0, self.num_lanes), dtype=np.int64)
        else:
            dense = np.vstack(self._rows)
        return AccessTrace.from_dense(dense, kind=self.kind)
