"""Pluggable execution engines: one plan→execute path for every scorer.

``repro.engine`` is the single dispatch point for producing
:class:`~repro.sort.pairwise.SortResult`\\ s and
:class:`~repro.bench.metrics.BenchPoint`\\ s. Engines register by name
(:func:`engine_names` / :func:`create_engine`):

====================  ====================================================
``inline``            in-process, ``scoring="auto"`` routing + memo
``inline-loop``       in-process per-tile reference oracle
``inline-vectorized``  in-process batched scoring, no memo
``inline-memoized``    in-process batched scoring with a pattern memo
``analytic``          closed form (constructed families, O(rounds)/task)
``pool``              warm ``ProcessPoolExecutor`` fan-out
``service``           a running ``repro-mergesort serve`` daemon
``sharded``           a fleet of daemons, consistent-hashed per request
====================  ====================================================

All of them are bit-identical wherever their inputs overlap — enforced
by the parametrized ``tests/engine/test_engine_equivalence.py`` suite
against the loop oracle, which is the correctness gate any future
engine (sharded service, native kernel) inherits by registering.

This ``__init__`` eagerly exposes only the import-light contract
(:mod:`~repro.engine.base`, :mod:`~repro.engine.registry`); the concrete
engines and the work-item machinery load lazily on first attribute
access, so low-level modules (``sort/pairwise``, ``bench/runner``, the
service protocol) can import the registry without cycles.
"""

from repro.engine.base import ExecutionEngine, ExecutionPlan, SortTask
from repro.engine.registry import (
    DEFAULT_SCORING,
    SCORING_MODES,
    SIMULATOR_SCORINGS,
    check_scoring,
    create_engine,
    engine_for_scoring,
    engine_names,
    register_engine,
    resolve_scoring,
    scoring_for_engine,
)

__all__ = [
    "DEFAULT_SCORING",
    "SCORING_MODES",
    "SIMULATOR_SCORINGS",
    "AnalyticExecutionEngine",
    "ExecutionEngine",
    "ExecutionPlan",
    "InlineEngine",
    "PoolEngine",
    "ProgressEvent",
    "ServiceEngine",
    "ShardedEngine",
    "SortTask",
    "WorkItem",
    "cache_ref",
    "check_scoring",
    "create_engine",
    "engine_for_scoring",
    "engine_names",
    "execute_items",
    "register_engine",
    "resolve_scoring",
    "scoring_for_engine",
    "shared_inline_engine",
    "sweep_items",
]

#: Lazily imported attributes → their defining submodule.
_LAZY = {
    "AnalyticExecutionEngine": "repro.engine.analytic",
    "InlineEngine": "repro.engine.inline",
    "PoolEngine": "repro.engine.pool",
    "ProgressEvent": "repro.engine.tasks",
    "ServiceEngine": "repro.engine.service",
    "ShardedEngine": "repro.engine.sharded",
    "WorkItem": "repro.engine.tasks",
    "cache_ref": "repro.engine.tasks",
    "execute_items": "repro.engine.dispatch",
    "shared_inline_engine": "repro.engine.dispatch",
    "sweep_items": "repro.engine.tasks",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module 'repro.engine' has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(module_name), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
