"""Closed-form execution: the :mod:`repro.analytic` engine as a backend.

A thin adapter — an :class:`~repro.engine.inline.InlineEngine` pinned to
``scoring="analytic"``, registered as ``"analytic"``. Sort plans go
through ``PairwiseMergeSort(scoring="analytic")`` (which owns the
per-config :class:`~repro.analytic.AnalyticEngine` caches), so repeated
tasks on one engine instance reuse class/round/stats tables exactly like
the service daemon's warm sorters. Point plans execute items by their
own ``scoring`` field like every engine; build items with
``scoring="analytic"`` for the exact-at-every-size sweep behavior.

Ineligible inputs fail loudly with a
:class:`~repro.errors.ValidationError` (only the four constructed
families — sorted, reverse, sawtooth, worst-case — have closed forms),
which is the same contract the scoring mode has everywhere else.
"""

from __future__ import annotations

from repro.engine.inline import InlineEngine
from repro.engine.registry import register_engine

__all__ = ["AnalyticExecutionEngine"]


class AnalyticExecutionEngine(InlineEngine):
    """Serves sort plans from the closed form; O(rounds) per task."""

    name = "analytic"

    def __init__(self, cache=None):
        super().__init__(scoring="analytic", memo=None, cache=cache)


register_engine("analytic", lambda **kw: AnalyticExecutionEngine(**kw))
