"""Execution-engine contract: one ``plan → execute`` path for every scorer.

The repo produces :class:`~repro.sort.pairwise.SortResult`\\ s and
:class:`~repro.bench.metrics.BenchPoint`\\ s through five historically
separate code paths — the per-tile loop oracle, the vectorized scorer,
the memoized vectorized scorer, the closed-form analytic engine, and the
service daemon — plus two execution strategies (in-process and process
pool). :class:`ExecutionEngine` collapses them behind one interface:

* :meth:`ExecutionEngine.plan` turns a homogeneous batch of tasks (all
  :class:`SortTask` or all :class:`~repro.engine.tasks.WorkItem`) into an
  :class:`ExecutionPlan`;
* :meth:`ExecutionPlan.execute` runs the plan and returns results in
  task order — ``SortResult``\\ s for sort plans, ``BenchPoint``\\ s for
  point plans.

The division of labor is deliberate:

* For **sort plans** the engine *is* the scorer: ``inline-loop`` scores
  with the per-tile oracle, ``analytic`` with the closed form, and so on.
  :class:`SortTask` therefore carries no scoring field.
* For **point plans** the engine is the *execution strategy* (serial
  in-process, process pool, remote daemon) and each
  :class:`~repro.engine.tasks.WorkItem` carries its own ``scoring`` mode,
  because one sweep legitimately mixes closed-form and simulated points
  (``scoring="auto"``). Routing for ``"auto"`` is decided in exactly one
  place: :func:`repro.engine.registry.resolve_scoring`.

Bit-identity is the contract: every registered engine must produce
bit-identical results wherever its inputs are eligible, enforced by
``tests/engine/test_engine_equivalence.py`` against the loop oracle.
This module is import-light on purpose (only :mod:`repro.errors`) so the
sort/bench/service layers can import it without cycles.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

from repro.errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    import numpy as np

    from repro.bench.metrics import BenchPoint
    from repro.sort.config import SortConfig
    from repro.sort.pairwise import SortResult

__all__ = ["ExecutionEngine", "ExecutionPlan", "SortTask"]


@dataclass(frozen=True)
class SortTask:
    """One instrumented-sort request, independent of how it executes.

    ``values`` optionally pins the exact input array (callers that
    already generated data, e.g. the service daemon checking
    ``sorted_ok``); when ``None`` the engine generates
    ``generate(input_name, config, num_elements, seed=seed)`` itself.
    Engines that cannot ship raw arrays (the service engine) require
    ``values is None`` and reject the task otherwise.
    """

    config: "SortConfig"
    input_name: str
    num_elements: int
    padding: int = 0
    score_blocks: int | None = None
    seed: int = 0
    values: "np.ndarray | None" = None
    #: Shared-memory layout defense, as a canonical spec string (see
    #: :mod:`repro.mitigation.registry`); reconciled with ``padding`` by
    #: the executing sorter.
    mitigation: str = "none"

    def describe(self) -> str:
        """Human-readable label for logs and errors."""
        return (
            f"{self.config.name} · {self.input_name} "
            f"· N={self.num_elements:,}"
        )


@dataclass(frozen=True)
class ExecutionPlan:
    """A validated, homogeneous batch of tasks bound to one engine.

    ``kind`` is ``"sort"`` (tasks are :class:`SortTask`) or ``"points"``
    (tasks are :class:`~repro.engine.tasks.WorkItem`); an empty plan is
    ``"points"`` by convention and executes to ``[]``.
    """

    engine: "ExecutionEngine"
    kind: str
    tasks: tuple

    def execute(self, *, progress: Callable | None = None) -> list:
        """Run every task; results come back in task order.

        ``progress`` (point plans only) receives one
        :class:`~repro.engine.tasks.ProgressEvent` per completed point,
        in completion order.
        """
        if not self.tasks:
            return []
        if self.kind == "sort":
            return self.engine._execute_sorts(self.tasks)
        return self.engine._execute_points(self.tasks, progress)


class ExecutionEngine(abc.ABC):
    """Abstract base of every registered engine.

    Concrete engines implement :meth:`_execute_sorts` and
    :meth:`_execute_points`; callers go through :meth:`plan` /
    :meth:`run_sort` / :meth:`run_points`. Engines may hold warm state
    (sorter caches, calibrated runners, worker pools) — :meth:`close`
    releases whatever is owned.
    """

    #: Registry name; concrete classes override.
    name: str = "abstract"

    def plan(self, tasks: Sequence) -> ExecutionPlan:
        """Validate a batch of tasks and bind it to this engine."""
        tasks = tuple(tasks)
        if not tasks:
            return ExecutionPlan(engine=self, kind="points", tasks=())
        kinds = {_task_kind(task) for task in tasks}
        if len(kinds) != 1:
            raise ValidationError(
                "a plan must be homogeneous: all SortTask or all WorkItem, "
                f"got a mix of {sorted(kinds)}"
            )
        return ExecutionPlan(engine=self, kind=kinds.pop(), tasks=tasks)

    def run_sort(self, task: SortTask) -> "SortResult":
        """Plan and execute one sort task."""
        return self.plan([task]).execute()[0]

    def run_points(
        self, items: Sequence, *, progress: Callable | None = None
    ) -> "list[BenchPoint]":
        """Plan and execute a batch of sweep points, in item order."""
        return self.plan(items).execute(progress=progress)

    # -- subclass hooks ------------------------------------------------------

    @abc.abstractmethod
    def _execute_sorts(self, tasks: tuple) -> list:
        """Execute a tuple of :class:`SortTask`\\ s, in order."""

    @abc.abstractmethod
    def _execute_points(self, items: tuple, progress: Callable | None) -> list:
        """Execute a tuple of :class:`~repro.engine.tasks.WorkItem`\\ s."""

    def close(self) -> None:
        """Release owned resources (pools, connections); idempotent."""

    def __enter__(self) -> "ExecutionEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _task_kind(task) -> str:
    if isinstance(task, SortTask):
        return "sort"
    # WorkItem lives in repro.engine.tasks, which imports the bench layer;
    # duck-type here to keep this module import-light.
    if hasattr(task, "input_name") and hasattr(task, "device"):
        return "points"
    raise ValidationError(
        f"plan() takes SortTask or WorkItem instances, got {type(task).__name__}"
    )
