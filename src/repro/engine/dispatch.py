"""Convenience dispatch: items in, points out, engine chosen for you.

:func:`execute_items` is the one-call replacement for the old
``bench/parallel.run_points`` signature: a borrowed pool routes through
a :class:`~repro.engine.pool.PoolEngine` wrapper, ``jobs > 1`` creates
(and tears down) an owned pool, and the serial path runs on one shared
process-level :class:`~repro.engine.inline.InlineEngine` — preserving
the old module-global runner table's semantics, where calibrations and
conflict memos stay warm across serial calls within a process.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Sequence

from repro.engine.inline import InlineEngine
from repro.engine.pool import PoolEngine
from repro.engine.tasks import ProgressEvent, WorkItem
from repro.errors import ValidationError

__all__ = ["execute_items", "shared_inline_engine"]

_SHARED_INLINE: InlineEngine | None = None


def shared_inline_engine() -> InlineEngine:
    """The process-level serial engine (warm across calls)."""
    global _SHARED_INLINE
    if _SHARED_INLINE is None:
        _SHARED_INLINE = InlineEngine()
    return _SHARED_INLINE


def execute_items(
    items: Sequence[WorkItem],
    *,
    jobs: int = 1,
    progress: Callable[[ProgressEvent], None] | None = None,
    pool: ProcessPoolExecutor | None = None,
) -> list:
    """Execute work items, preserving input order in the result list.

    Parameters
    ----------
    items:
        The sweep points to run.
    jobs:
        Worker processes; ``1`` runs serially in-process (no pool).
        Ignored when ``pool`` is given.
    progress:
        Optional callback invoked once per completed point (completion
        order, not submission order, under pooled execution).
    pool:
        Optional externally owned :class:`ProcessPoolExecutor` to borrow
        instead of creating (and tearing down) a private one. Long-lived
        callers — the :mod:`repro.service` daemon above all — pass a
        warm pool so worker processes keep their runner tables
        (calibrations + conflict memos) across calls. The caller owns
        the pool's lifecycle; it is never shut down here.
    """
    if jobs < 1:
        raise ValidationError(f"jobs must be >= 1, got {jobs}")
    items = list(items)
    if pool is not None:
        return PoolEngine(pool=pool).run_points(items, progress=progress)
    if jobs == 1 or len(items) <= 1:
        return shared_inline_engine().run_points(items, progress=progress)
    engine = PoolEngine(jobs=min(jobs, len(items)))
    try:
        return engine.run_points(items, progress=progress)
    finally:
        engine.close()
