"""In-process execution: the loop / vectorized / memoized / auto scorers.

One :class:`InlineEngine` instance is warm state: it caches
:class:`~repro.sort.pairwise.PairwiseMergeSort` instances per
(config, padding, resolved scoring) for sort plans, and a
fingerprint-keyed :class:`~repro.bench.runner.SweepRunner` table for
point plans (the serial equivalent of a pool worker's table — same
:func:`~repro.engine.tasks.runner_for` core, same staleness fix).

Registered names (see :mod:`repro.engine.registry`):

==================  ======================================================
``inline``          ``scoring="auto"``, memoized — the general-purpose
                    engine; each sort task routes through
                    :func:`~repro.engine.registry.resolve_scoring`
``inline-loop``     the per-tile reference oracle
``inline-vectorized``  batched scoring, no memo
``inline-memoized``    batched scoring with a shared pattern memo
``inline-fused``    single-pass fused scoring (compiled backend when built)
==================  ======================================================
"""

from __future__ import annotations

from typing import Callable

from repro.dmm.memo import ConflictMemo
from repro.engine.base import ExecutionEngine, SortTask
from repro.engine.registry import (
    DEFAULT_SCORING,
    check_scoring,
    register_engine,
    resolve_scoring,
)
from repro.engine.tasks import ProgressEvent, execute_item
from repro.errors import ValidationError
from repro.inputs.generators import generate

__all__ = ["InlineEngine"]


class InlineEngine(ExecutionEngine):
    """Runs plans in this process.

    Parameters
    ----------
    scoring:
        Scoring mode applied to **sort plans** ("auto" routes per task).
        Point plans are self-describing — each
        :class:`~repro.engine.tasks.WorkItem` carries its own ``scoring``
        — so this knob does not apply to them.
    memo:
        ``"auto"`` (default) builds one engine-private
        :class:`~repro.dmm.memo.ConflictMemo` when the scoring mode can
        use it (vectorized or auto), shared across every sort this
        engine runs; pass a memo to share wider or ``None`` to disable.
        An explicit memo with loop/analytic scoring is rejected, matching
        :class:`~repro.bench.runner.SweepRunner`.
    """

    name = "inline"

    def __init__(
        self,
        scoring: str = DEFAULT_SCORING,
        memo: ConflictMemo | None | str = "auto",
        cache=None,
    ):
        check_scoring(scoring)
        if isinstance(memo, str) and memo == "auto":
            memo = (
                ConflictMemo() if scoring in ("vectorized", "auto") else None
            )
        elif isinstance(memo, ConflictMemo) and scoring in (
            "loop",
            "analytic",
            "fused",
        ):
            raise ValidationError(
                "memoization applies only to simulated vectorized scoring; "
                f"scoring={scoring!r} stays memo-free"
            )
        self.scoring = scoring
        self.memo = memo
        self.cache = cache
        self._sorters: dict[tuple, object] = {}
        self._runners: dict[str, object] = {}

    # -- sort plans ----------------------------------------------------------

    def _sorter_for(
        self, config, padding: int, scoring: str, mitigation: str = "none"
    ):
        from repro.sort.pairwise import PairwiseMergeSort

        key = (config, padding, scoring, mitigation)
        sorter = self._sorters.get(key)
        if sorter is None:
            memo = self.memo if scoring == "vectorized" else None
            sorter = PairwiseMergeSort(
                config,
                padding=padding,
                scoring=scoring,
                memo=memo,
                mitigation=mitigation,
            )
            self._sorters[key] = sorter
        return sorter

    def _execute_sorts(self, tasks: tuple) -> list:
        results = []
        for task in tasks:
            mitigation = getattr(task, "mitigation", "none")
            scoring = resolve_scoring(
                self.scoring,
                config=task.config,
                input_name=task.input_name,
                num_elements=task.num_elements,
                mitigation=mitigation,
            )
            sorter = self._sorter_for(
                task.config, task.padding, scoring, mitigation
            )
            data = task.values
            if data is None:
                data = generate(
                    task.input_name, task.config, task.num_elements,
                    seed=task.seed,
                )
            results.append(
                sorter.sort(
                    data, score_blocks=task.score_blocks, seed=task.seed
                )
            )
        return results

    # -- point plans ---------------------------------------------------------

    def _execute_points(
        self, items: tuple, progress: Callable | None
    ) -> list:
        total = len(items)
        results = []
        for i, item in enumerate(items):
            point, elapsed, from_cache = execute_item(item, self._runners)
            results.append(point)
            if progress is not None:
                progress(
                    ProgressEvent(i + 1, total, item, point, elapsed, from_cache)
                )
        return results


def _inline_factory(name: str, scoring: str, memoized: bool):
    def make(*, memo=None, cache=None) -> InlineEngine:
        # An explicit memo passes through (loop scoring then rejects it);
        # otherwise memoized variants resolve "auto", plain ones disable.
        resolved = memo if memo is not None else ("auto" if memoized else None)
        engine = InlineEngine(scoring=scoring, memo=resolved, cache=cache)
        engine.name = name
        return engine

    return make


register_engine("inline", _inline_factory("inline", "auto", True))
register_engine("inline-loop", _inline_factory("inline-loop", "loop", False))
register_engine(
    "inline-vectorized",
    _inline_factory("inline-vectorized", "vectorized", False),
)
register_engine(
    "inline-memoized", _inline_factory("inline-memoized", "vectorized", True)
)
register_engine(
    "inline-fused", _inline_factory("inline-fused", "fused", False)
)
