"""Process-pool execution: warm workers for sweeps and batched sorts.

:class:`PoolEngine` subsumes the fan-out half of the old
``bench/parallel.run_points``: point plans are submitted item-by-item to
a :class:`~concurrent.futures.ProcessPoolExecutor` and collected in
completion order (results still return in item order). Each worker
process keeps module-level warm state — a fingerprint-keyed
:class:`~repro.bench.runner.SweepRunner` table for points (the
:func:`~repro.engine.tasks.runner_key` core, so a config or device
change can never hit a stale runner) and an
:class:`~repro.engine.inline.InlineEngine` per scoring mode for sorts —
amortizing calibrations and conflict memos across every plan the pool
executes.

The pool is either *owned* (``jobs=N`` — created lazily, shut down by
:meth:`PoolEngine.close`) or *borrowed* (``pool=...`` — a long-lived
caller such as the service daemon manages its lifecycle; the engine
never shuts it down).

Determinism: a point's result depends only on the item's fields (every
input and block-sampling choice is seeded per point), so pooled and
serial execution produce bit-identical results — enforced by
``tests/bench/test_parallel.py`` and the engine-equivalence suite.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Callable

from repro.dmm.memo import ConflictMemo
from repro.engine.base import ExecutionEngine, SortTask
from repro.engine.registry import (
    DEFAULT_SCORING,
    check_scoring,
    register_engine,
)
from repro.engine.tasks import ProgressEvent, WorkItem, execute_item
from repro.errors import ValidationError

__all__ = ["PoolEngine"]


#: Per-worker warm state (each worker process gets its own copies).
_WORKER_RUNNERS: dict = {}
_WORKER_ENGINES: dict = {}


def _worker_point(item: WorkItem):
    """Run one sweep point in a worker.

    Returns ``(point, seconds, from_cache, memo_delta, mit_delta)``. The
    memo delta is this item's change to the *worker's* process-wide
    :class:`~repro.dmm.memo.ConflictMemo` counters — class attributes
    that only ever mutate in whichever process runs the sort, so without
    shipping them back the parent's ``cache stats`` / sweep memo lines /
    service ``/stats`` under-report every pooled run. ``mit_delta`` is
    the matching per-mitigation hit/miss breakdown delta.
    """
    before = ConflictMemo.process_stats()
    mit_before = ConflictMemo.mitigation_stats()
    point, seconds, from_cache = execute_item(item, _WORKER_RUNNERS)
    return (
        point,
        seconds,
        from_cache,
        ConflictMemo.process_stats_delta(before),
        ConflictMemo.mitigation_stats_delta(mit_before),
    )


def _worker_sort(task: SortTask, scoring: str, memoized: bool):
    """Run one sort task in a worker, reusing a per-mode inline engine.

    Returns ``(result, memo_delta, mit_delta)`` — see
    :func:`_worker_point` for why the deltas travel with the result.
    """
    from repro.engine.inline import InlineEngine

    key = (scoring, memoized)
    engine = _WORKER_ENGINES.get(key)
    if engine is None:
        engine = InlineEngine(
            scoring=scoring, memo="auto" if memoized else None
        )
        _WORKER_ENGINES[key] = engine
    before = ConflictMemo.process_stats()
    mit_before = ConflictMemo.mitigation_stats()
    result = engine.run_sort(task)
    return (
        result,
        ConflictMemo.process_stats_delta(before),
        ConflictMemo.mitigation_stats_delta(mit_before),
    )


class PoolEngine(ExecutionEngine):
    """Executes plans on a (warm) process pool.

    Parameters
    ----------
    jobs:
        Worker count for an owned pool; created lazily on first use and
        shut down by :meth:`close`. Ignored when ``pool`` is given.
    pool:
        Externally owned executor to borrow instead. The caller keeps
        lifecycle responsibility; borrowing preserves the workers' warm
        runner tables across engine instances.
    scoring, memoized:
        Scoring mode for **sort plans**, resolved per task in the worker
        (the default "auto" routes through the registry like every other
        path). Point plans are self-describing via ``WorkItem.scoring``.
    """

    name = "pool"

    def __init__(
        self,
        jobs: int | None = None,
        *,
        pool: ProcessPoolExecutor | None = None,
        scoring: str = DEFAULT_SCORING,
        memoized: bool = True,
    ):
        if pool is None:
            if jobs is None:
                raise ValidationError(
                    "PoolEngine needs jobs=N (owned pool) or pool=... "
                    "(borrowed executor)"
                )
            if jobs < 1:
                raise ValidationError(f"jobs must be >= 1, got {jobs}")
        self.scoring = check_scoring(scoring)
        self.memoized = bool(memoized)
        self._jobs = jobs
        self._borrowed = pool
        self._owned: ProcessPoolExecutor | None = None

    @property
    def pool(self) -> ProcessPoolExecutor:
        """The executor in use, creating the owned one lazily."""
        if self._borrowed is not None:
            return self._borrowed
        if self._owned is None:
            self._owned = ProcessPoolExecutor(max_workers=self._jobs)
        return self._owned

    def close(self) -> None:
        if self._owned is not None:
            self._owned.shutdown(wait=True, cancel_futures=True)
            self._owned = None

    # -- plans ---------------------------------------------------------------

    def _execute_sorts(self, tasks: tuple) -> list:
        futures = {
            self.pool.submit(
                _worker_sort, task, self.scoring, self.memoized
            ): i
            for i, task in enumerate(tasks)
        }
        results = [None] * len(tasks)
        for future in as_completed(futures):
            result, memo_delta, mit_delta = future.result()
            ConflictMemo.absorb_stats(memo_delta)
            ConflictMemo.absorb_mitigation_stats(mit_delta)
            results[futures[future]] = result
        return results

    def _execute_points(
        self, items: tuple, progress: Callable | None
    ) -> list:
        total = len(items)
        results = [None] * total
        futures = {
            self.pool.submit(_worker_point, item): i
            for i, item in enumerate(items)
        }
        done = 0
        for future in as_completed(futures):
            i = futures[future]
            point, elapsed, from_cache, memo_delta, mit_delta = future.result()
            ConflictMemo.absorb_stats(memo_delta)
            ConflictMemo.absorb_mitigation_stats(mit_delta)
            results[i] = point
            done += 1
            if progress is not None:
                progress(
                    ProgressEvent(
                        done, total, items[i], point, elapsed, from_cache
                    )
                )
        return results


register_engine("pool", lambda **kw: PoolEngine(**kw))
