"""Engine registry and the single source of truth for scoring modes.

Every layer that accepts a ``scoring`` knob — ``PairwiseMergeSort``,
``SweepRunner``, ``WorkItem``, the service protocol, the CLI — validates
it against the constants here, and ``"auto"`` routing is decided in
exactly one place, :func:`resolve_scoring`. Before this module existed
each layer kept its own literal tuple and its own copy of the
eligibility check, which is how the ``WorkItem`` default drifted from
the sweep default (serial and ``--jobs`` runs silently took different
paths).

Engines register under short names (see :func:`engine_names`); builtin
registration is lazy — the first :func:`create_engine` /
:func:`engine_names` call imports the concrete engine modules — so that
importing this module stays cheap and cycle-free from anywhere in the
package.
"""

from __future__ import annotations

import threading
from typing import Callable

from repro.errors import ValidationError

__all__ = [
    "DEFAULT_SCORING",
    "SCORING_MODES",
    "SIMULATOR_SCORINGS",
    "check_scoring",
    "create_engine",
    "engine_for_scoring",
    "engine_names",
    "register_engine",
    "resolve_scoring",
    "scoring_for_engine",
]

#: Scoring modes an instrumented sort accepts directly.
SIMULATOR_SCORINGS = ("vectorized", "loop", "analytic", "fused")

#: All scoring modes, including the routed ``"auto"``.
SCORING_MODES = ("auto",) + SIMULATOR_SCORINGS

#: The one default every sweep entry point shares: ``WorkItem``,
#: ``SweepRunner``, the CLI, and the service all start from ``"auto"``
#: so analytic-eligible constructed-family points go closed-form
#: regardless of which path submitted them.
DEFAULT_SCORING = "auto"


def check_scoring(
    value: str, *, allow_auto: bool = True, field: str = "scoring"
) -> str:
    """Validate a scoring mode, returning it unchanged.

    Raises :class:`~repro.errors.ValidationError` naming the accepted
    modes — the same message from every layer, parse-time in the service
    protocol and construction-time in the runners.
    """
    choices = SCORING_MODES if allow_auto else SIMULATOR_SCORINGS
    if value not in choices:
        quoted = ", ".join(f"'{c}'" for c in choices)
        raise ValidationError(
            f"{field} must be one of {quoted}; got {value!r}"
        )
    return value


def resolve_scoring(
    scoring: str,
    *,
    config,
    input_name: str,
    num_elements: int,
    mitigation: str = "none",
) -> str:
    """THE ``"auto"`` routing decision, shared by every execution path.

    Returns a concrete simulator scoring: ``"auto"`` resolves to
    ``"analytic"`` when the (input, config, N) point is analytic-eligible
    *and* the mitigation backend is analytically modeled, and to
    ``"fused"`` otherwise (the single-pass simulated path — it beats
    ``"vectorized"`` even without the compiled backend and is
    bit-identical to it); explicit modes pass through unchanged, except
    that explicit ``"analytic"`` with an unmodeled mitigation is a
    :class:`~repro.errors.ValidationError` here, before any sorter is
    built — matrix cells must never report closed-form numbers for
    layouts the model doesn't cover. (Explicit ``"analytic"`` on an
    ineligible *input* still fails loudly downstream, by design.)
    """
    mode = check_scoring(scoring)
    from repro.mitigation.registry import reconcile_mitigation

    layout = reconcile_mitigation(mitigation)
    if mode == "analytic" and not layout.analytic_supported:
        raise ValidationError(
            "scoring='analytic' cannot model mitigation "
            f"{layout.spec!r}; use a simulated scoring for this layout"
        )
    if mode != "auto":
        return mode
    if not layout.analytic_supported:
        return "fused"
    from repro.analytic import is_analytic_eligible

    return (
        "analytic"
        if is_analytic_eligible(input_name, config, num_elements)
        else "fused"
    )


# -- registry ---------------------------------------------------------------

_FACTORIES: dict[str, Callable] = {}
_BUILTINS_LOADED = False
_BUILTINS_GUARD = threading.RLock()


def register_engine(
    name: str, factory: Callable, *, replace: bool = False
) -> None:
    """Register an engine factory under ``name``.

    ``factory(**kwargs)`` must return an
    :class:`~repro.engine.base.ExecutionEngine`. Re-registering an
    existing name requires ``replace=True`` so typos do not silently
    shadow builtins.
    """
    if not replace and name in _FACTORIES:
        raise ValidationError(
            f"engine {name!r} is already registered (pass replace=True "
            "to override)"
        )
    _FACTORIES[name] = factory


def _ensure_builtins() -> None:
    """Import the builtin engine modules (each registers itself).

    Thread-safe: concurrent first callers (e.g. shard-fleet workers
    booting in parallel threads) serialize on the guard, and the loaded
    flag only flips once every builtin has registered — setting it
    before the imports let a racing thread observe an empty registry.
    The lock is reentrant so an engine module consulting the registry
    mid-import cannot deadlock.
    """
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    with _BUILTINS_GUARD:
        if _BUILTINS_LOADED:
            return
        from repro.engine import (  # noqa: F401
            analytic,
            inline,
            pool,
            service,
            sharded,
        )

        _BUILTINS_LOADED = True


def engine_names() -> tuple[str, ...]:
    """Registered engine names, sorted."""
    _ensure_builtins()
    return tuple(sorted(_FACTORIES))


def create_engine(name: str, **kwargs):
    """Instantiate a registered engine by name."""
    _ensure_builtins()
    factory = _FACTORIES.get(name)
    if factory is None:
        known = ", ".join(sorted(_FACTORIES))
        raise ValidationError(f"unknown engine {name!r}; known: {known}")
    return factory(**kwargs)


# -- scoring ↔ engine-name mapping ------------------------------------------

#: Inline engine name per (scoring, memoized) — the wire/CLI translation
#: table. ``"auto"`` maps to the general-purpose ``"inline"`` engine,
#: which routes per task through :func:`resolve_scoring`.
_ENGINE_BY_SCORING = {
    ("auto", True): "inline",
    ("auto", False): "inline",
    ("vectorized", True): "inline-memoized",
    ("vectorized", False): "inline-vectorized",
    ("loop", True): "inline-loop",
    ("loop", False): "inline-loop",
    ("fused", True): "inline-fused",
    ("fused", False): "inline-fused",
    ("analytic", True): "analytic",
    ("analytic", False): "analytic",
}

#: Wire fields per engine name; pool/service are execution strategies
#: with no wire equivalent and are deliberately absent.
_SCORING_BY_ENGINE = {
    "inline": {"scoring": "auto", "memo": True},
    "inline-memoized": {"scoring": "vectorized", "memo": True},
    "inline-vectorized": {"scoring": "vectorized", "memo": False},
    "inline-loop": {"scoring": "loop", "memo": False},
    "inline-fused": {"scoring": "fused", "memo": False},
    "analytic": {"scoring": "analytic", "memo": False},
}


def engine_for_scoring(scoring: str, *, memoized: bool = True) -> str:
    """The in-process engine name serving a scoring mode."""
    check_scoring(scoring)
    return _ENGINE_BY_SCORING[(scoring, bool(memoized))]


def scoring_for_engine(name: str) -> dict:
    """Wire fields (``scoring``, ``memo``) equivalent to an engine name.

    Raises for engines that are execution strategies rather than scorers
    (``pool``, ``service``) — there is nothing to forward for them.
    """
    fields = _SCORING_BY_ENGINE.get(name)
    if fields is None:
        known = ", ".join(sorted(_SCORING_BY_ENGINE))
        raise ValidationError(
            f"engine {name!r} has no wire equivalent (forwardable engines: "
            f"{known})"
        )
    return dict(fields)
