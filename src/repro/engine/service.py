"""Remote execution: plans served by a running ``repro-mergesort serve``.

:class:`ServiceEngine` routes sort plans through ``POST /simulate`` and
point plans through ``POST /sweep`` on a daemon, via the blocking
:class:`~repro.service.client.ServiceClient`. The daemon is where the
warm state lives (process-lifetime conflict memo, optional disk cache,
warm worker pool), so a cold client process still gets warm-path
latencies — that is the point of using this engine.

Constraints inherited from the wire protocol:

* Sort tasks must be *named* inputs (``values=None``): the protocol
  ships generator names + seeds, not raw arrays, precisely so requests
  stay small and coalescible.
* A point's device must be one the server knows
  (:func:`repro.gpu.device.get_device` by name); a locally modified
  :class:`~repro.gpu.device.DeviceSpec` is rejected client-side rather
  than silently served with the server's registered parameters.

Results are decoded back to real :class:`~repro.sort.pairwise.SortResult`
/ :class:`~repro.bench.metrics.BenchPoint` objects — the serialization
layer round-trips bit-identically (enforced by the service tests), so
this engine sits in the same equivalence suite as the local ones.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.engine.base import ExecutionEngine, SortTask
from repro.engine.registry import check_scoring, register_engine
from repro.engine.tasks import ProgressEvent, WorkItem
from repro.errors import ValidationError
from repro.gpu.device import get_device
from repro.sort.serialize import config_to_obj

__all__ = ["ServiceEngine"]


class ServiceEngine(ExecutionEngine):
    """Executes plans on a remote daemon.

    Parameters
    ----------
    url:
        Base URL of a running daemon (ignored when ``client`` is given).
    client:
        An existing :class:`~repro.service.client.ServiceClient` to use.
    timeout:
        Client socket timeout per request (seconds).
    scoring:
        Scoring forwarded with **sort plans**; ``None`` (default) leaves
        the choice to the server (vectorized + memo). Point plans forward
        each item's own ``scoring`` field.
    memoized:
        ``memo`` field forwarded with sort plans (server-side memo).
    """

    name = "service"

    def __init__(
        self,
        url: str = "http://127.0.0.1:8787",
        *,
        client=None,
        timeout: float = 630.0,
        scoring: str | None = None,
        memoized: bool = True,
    ):
        if client is None:
            from repro.service.client import ServiceClient

            client = ServiceClient(url, timeout=timeout)
        if scoring is not None:
            check_scoring(scoring, allow_auto=False)
        self.client = client
        self.scoring = scoring
        self.memoized = bool(memoized)

    # -- plans ---------------------------------------------------------------

    def _execute_sorts(self, tasks: tuple) -> list:
        results = []
        for task in tasks:
            if task.values is not None:
                raise ValidationError(
                    "the service engine sends named inputs, not raw "
                    f"arrays; build the task for {task.describe()} with "
                    "values=None"
                )
            reply = self.client.simulate(
                config=config_to_obj(task.config),
                input=task.input_name,
                num_elements=task.num_elements,
                padding=task.padding,
                score_blocks=task.score_blocks,
                seed=task.seed,
                memo=self.memoized,
                scoring=self.scoring,
                mitigation=(
                    None if task.mitigation == "none" else task.mitigation
                ),
            )
            results.append(reply.result)
        return results

    def _execute_points(
        self, items: tuple, progress: Callable | None
    ) -> list:
        total = len(items)
        results = []
        for i, item in enumerate(items):
            _check_served_device(item)
            start = time.perf_counter()
            reply = self.client.sweep(
                config=config_to_obj(item.config),
                device=item.device.name,
                inputs=[item.input_name],
                sizes=[item.num_elements],
                exact_threshold=item.exact_threshold,
                score_blocks=item.score_blocks,
                seed=item.seed,
                padding=item.padding,
                scoring=item.scoring,
                mitigation=(
                    None if item.mitigation == "none" else item.mitigation
                ),
            )
            elapsed = time.perf_counter() - start
            point = reply.points[0]
            results.append(point)
            if progress is not None:
                # Whether the *server* had the point cached is not on the
                # wire; coalescing with an identical in-flight sweep is
                # the closest client-visible equivalent.
                progress(
                    ProgressEvent(
                        i + 1, total, item, point, elapsed, reply.coalesced
                    )
                )
        return results


def _check_served_device(item: WorkItem) -> None:
    """Reject devices the server would resolve to different parameters."""
    registered = get_device(item.device.name)
    if registered != item.device:
        raise ValidationError(
            f"device {item.device.name!r} differs from the registered "
            "spec of the same name; the service resolves devices by name "
            "and would score against the registered parameters"
        )


register_engine("service", lambda **kw: ServiceEngine(**kw))
