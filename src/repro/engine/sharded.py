"""Sharded remote execution: plans fanned out across a daemon fleet.

:class:`ShardedEngine` is the client-side twin of the shard router's
hash ring (:class:`repro.service.shard.HashRing`): each plan element is
fingerprinted with the *protocol's* coalescing key and consistent-hashed
onto one of N shard URLs, so identical work always reaches the same
daemon — which is the precondition for that daemon's single-flight
coalescing and warm memo to apply. Distinct elements spread across the
fleet and execute concurrently (one thread per in-flight request,
bounded by ``max_concurrency``), turning a fleet of daemons into one
:class:`~repro.engine.base.ExecutionEngine` behind
``sweep --engine sharded``.

Two deployment shapes share this engine:

* ``urls`` pointing at the worker daemons directly — the engine *is*
  the router (same ring, client-side), no extra hop;
* a single URL pointing at a :class:`~repro.service.shard.ShardRouter`
  — the ring is degenerate and every request takes the router hop,
  gaining its fleet-wide single flight and failover.

Like :class:`~repro.engine.service.ServiceEngine`, results decode back
into real library types and sit in the bit-identity equivalence suite;
ordering is preserved regardless of which shard answered first.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor, as_completed
from typing import Callable

from repro.engine.base import ExecutionEngine, SortTask
from repro.engine.registry import check_scoring, register_engine
from repro.engine.service import _check_served_device
from repro.engine.tasks import ProgressEvent, WorkItem
from repro.errors import ValidationError
from repro.sort.serialize import config_to_obj

__all__ = ["ShardedEngine"]


class ShardedEngine(ExecutionEngine):
    """Executes plans across a consistent-hashed fleet of daemons.

    Parameters
    ----------
    urls:
        Shard base URLs (workers directly, or one router URL). Accepts
        a list or a single comma-separated string (the CLI form).
    timeout:
        Client socket timeout per request (seconds).
    scoring, memoized:
        Forwarded with **sort plans** exactly as in
        :class:`~repro.engine.service.ServiceEngine`; point plans are
        self-describing.
    max_concurrency:
        In-flight requests across the fleet. Defaults to four per
        shard — enough to keep every shard busy without flooding any
        single admission gate from one client.
    """

    name = "sharded"

    def __init__(
        self,
        urls: list[str] | str,
        *,
        timeout: float = 630.0,
        scoring: str | None = None,
        memoized: bool = True,
        max_concurrency: int | None = None,
        client_id: str | None = None,
    ):
        from repro.service.client import ServiceClient
        from repro.service.shard import HashRing

        if isinstance(urls, str):
            urls = [url.strip() for url in urls.split(",") if url.strip()]
        if not urls:
            raise ValidationError("the sharded engine needs at least one URL")
        if scoring is not None:
            check_scoring(scoring, allow_auto=False)
        self.ring = HashRing(list(urls))
        self.clients = {
            url: ServiceClient(url, timeout=timeout, client_id=client_id)
            for url in urls
        }
        self.scoring = scoring
        self.memoized = bool(memoized)
        if max_concurrency is None:
            max_concurrency = 4 * len(urls)
        if max_concurrency < 1:
            raise ValidationError(
                f"max_concurrency must be >= 1, got {max_concurrency}"
            )
        self.max_concurrency = max_concurrency

    def _client_for(self, key: str):
        return self.clients[self.ring.node_for(key)]

    # -- plans ---------------------------------------------------------------

    def _run_sort(self, task: SortTask):
        from repro.service.protocol import SimulateRequest

        payload = {
            "config": config_to_obj(task.config),
            "input": task.input_name,
            "num_elements": task.num_elements,
            "padding": task.padding,
            "mitigation": task.mitigation,
            "score_blocks": task.score_blocks,
            "seed": task.seed,
            "memo": self.memoized,
        }
        if self.scoring is not None:
            payload["scoring"] = self.scoring
        # Hash the exact fingerprint the server will coalesce on, so the
        # engine's routing agrees with every other client of the fleet.
        key = SimulateRequest.from_payload(payload).coalesce_key()
        reply = self._client_for(key).simulate(
            config=config_to_obj(task.config),
            input=task.input_name,
            num_elements=task.num_elements,
            padding=task.padding,
            mitigation=task.mitigation,
            score_blocks=task.score_blocks,
            seed=task.seed,
            memo=self.memoized,
            scoring=self.scoring,
        )
        return reply.result

    def _execute_sorts(self, tasks: tuple) -> list:
        for task in tasks:
            if task.values is not None:
                raise ValidationError(
                    "the sharded engine sends named inputs, not raw "
                    f"arrays; build the task for {task.describe()} with "
                    "values=None"
                )
        return self._fan_out(tasks, self._run_sort)

    def _run_point(self, item: WorkItem):
        from repro.service.protocol import SweepRequest

        payload = {
            "config": config_to_obj(item.config),
            "device": item.device.name,
            "inputs": [item.input_name],
            "sizes": [item.num_elements],
            "exact_threshold": item.exact_threshold,
            "score_blocks": item.score_blocks,
            "seed": item.seed,
            "padding": item.padding,
            "mitigation": item.mitigation,
            "scoring": item.scoring,
        }
        key = SweepRequest.from_payload(payload).coalesce_key()
        start = time.perf_counter()
        reply = self._client_for(key).sweep(
            config=config_to_obj(item.config),
            device=item.device.name,
            inputs=[item.input_name],
            sizes=[item.num_elements],
            exact_threshold=item.exact_threshold,
            score_blocks=item.score_blocks,
            seed=item.seed,
            padding=item.padding,
            mitigation=item.mitigation,
            scoring=item.scoring,
        )
        return reply.points[0], time.perf_counter() - start, reply.coalesced

    def _execute_points(
        self, items: tuple, progress: Callable | None
    ) -> list:
        for item in items:
            _check_served_device(item)
        total = len(items)
        results = [None] * total
        done = 0
        with ThreadPoolExecutor(
            max_workers=min(self.max_concurrency, max(1, total)),
            thread_name_prefix="repro-sharded",
        ) as executor:
            futures = {
                executor.submit(self._run_point, item): i
                for i, item in enumerate(items)
            }
            for future in as_completed(futures):
                i = futures[future]
                point, elapsed, coalesced = future.result()
                results[i] = point
                done += 1
                if progress is not None:
                    progress(
                        ProgressEvent(
                            done, total, items[i], point, elapsed, coalesced
                        )
                    )
        return results

    def _fan_out(self, tasks: tuple, run: Callable) -> list:
        results = [None] * len(tasks)
        with ThreadPoolExecutor(
            max_workers=min(self.max_concurrency, max(1, len(tasks))),
            thread_name_prefix="repro-sharded",
        ) as executor:
            futures = {
                executor.submit(run, task): i for i, task in enumerate(tasks)
            }
            for future in as_completed(futures):
                results[futures[future]] = future.result()
        return results


register_engine("sharded", lambda **kw: ShardedEngine(**kw))
