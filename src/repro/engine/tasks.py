"""Picklable sweep work items and the shared per-item execution core.

:class:`WorkItem` / :class:`ProgressEvent` / :func:`sweep_items` /
:func:`cache_ref` moved here from :mod:`repro.bench.parallel` with the
execution-engine refactor (the old module re-exports them, so external
imports keep working). The per-item execution core — a runner table
keyed by content-addressed fingerprint plus :func:`execute_item` — is
shared by the serial :class:`~repro.engine.inline.InlineEngine` path and
by every :class:`~repro.engine.pool.PoolEngine` worker process.

The runner table key is :func:`runner_key`: a
:func:`repro.bench.cache.fingerprint` over *every* field of the item's
runner configuration, including the full
:class:`~repro.gpu.device.DeviceSpec` field set. The previous table
keyed devices by ``device.name`` only, so a long-lived pool whose
workers predated a device/config change could serve stale runners — two
specs sharing a marketing name but differing in clocks or SM counts
collided (regression-tested in ``tests/bench/test_parallel.py``).
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.engine.registry import DEFAULT_SCORING

if TYPE_CHECKING:  # pragma: no cover - runtime imports stay lazy so this
    # module is importable from anywhere in the bench layer without cycles
    from repro.bench.cache import BenchCache
    from repro.bench.metrics import BenchPoint
    from repro.bench.runner import SweepRunner
    from repro.gpu.device import DeviceSpec
    from repro.sort.config import SortConfig

__all__ = [
    "ProgressEvent",
    "WorkItem",
    "cache_ref",
    "execute_item",
    "runner_for",
    "runner_key",
    "sweep_items",
]


@dataclass(frozen=True)
class WorkItem:
    """One picklable sweep point: everything a worker needs to run it."""

    config: SortConfig
    device: DeviceSpec
    input_name: str
    num_elements: int
    exact_threshold: int = 1 << 21
    score_blocks: int | None = 8
    seed: int = 0
    padding: int = 0
    #: Runner scoring mode ("auto" | "vectorized" | "loop" | "analytic");
    #: see :class:`~repro.bench.runner.SweepRunner`. The default is the
    #: registry-wide :data:`~repro.engine.registry.DEFAULT_SCORING`
    #: ("auto"), shared with ``SweepRunner`` and every CLI/service entry
    #: point, so serial and pooled sweeps resolve the same engine for
    #: every point.
    scoring: str = DEFAULT_SCORING
    #: Shared-memory layout defense, as a canonical spec string (see
    #: :mod:`repro.mitigation.registry`).
    mitigation: str = "none"
    cache_dir: str | None = None
    use_cache: bool = False

    def describe(self) -> str:
        """Human-readable label for progress lines."""
        return (
            f"{self.config.name} · {self.device.name} · {self.input_name} "
            f"· N={self.num_elements:,}"
        )


@dataclass(frozen=True)
class ProgressEvent:
    """Emitted to the ``progress`` callback after each completed point."""

    done: int
    total: int
    item: WorkItem
    point: BenchPoint
    seconds: float
    from_cache: bool

    def describe(self) -> str:
        """One progress/timing line."""
        tag = " (cached)" if self.from_cache else ""
        return f"[{self.done}/{self.total}] {self.item.describe()} · " \
               f"{self.seconds:.2f}s{tag}"


def cache_ref(cache: BenchCache | None) -> tuple[str | None, bool]:
    """Picklable (cache_dir, use_cache) reference to a cache instance."""
    if cache is None:
        return None, False
    return str(cache.cache_dir), True


def sweep_items(
    config: SortConfig,
    device: DeviceSpec,
    input_names: Sequence[str],
    sizes: Iterable[int],
    *,
    exact_threshold: int = 1 << 21,
    score_blocks: int | None = 8,
    seed: int = 0,
    padding: int = 0,
    scoring: str = DEFAULT_SCORING,
    mitigation: str = "none",
    cache: BenchCache | None = None,
) -> list[WorkItem]:
    """Work items for a size sweep of each input family, in sweep order."""
    cache_dir, use_cache = cache_ref(cache)
    return [
        WorkItem(
            config=config,
            device=device,
            input_name=name,
            num_elements=n,
            exact_threshold=exact_threshold,
            score_blocks=score_blocks,
            seed=seed,
            padding=padding,
            scoring=scoring,
            mitigation=mitigation,
            cache_dir=cache_dir,
            use_cache=use_cache,
        )
        for name in input_names
        for n in sizes
    ]


# -- per-item execution core ------------------------------------------------


def runner_key(item: WorkItem) -> str:
    """Content-addressed key of the runner an item needs.

    Fingerprints the *entire* runner configuration — notably the full
    device field set, not just ``device.name`` — so a config or device
    change can never be served by a stale warm runner in a long-lived
    worker process.
    """
    from repro.bench.cache import fingerprint
    from repro.dmm.memo import CONTEXT_FIELDS

    return fingerprint(
        {
            "kind": "runner",
            # Folding the memo's context-field tuple in means a change to
            # what the memo digests (a new field, a reorder) retires every
            # warm runner — their private memos keyed the old way.
            "memo_context_fields": list(CONTEXT_FIELDS),
            "config": dataclasses.asdict(item.config),
            "device": dataclasses.asdict(item.device),
            "exact_threshold": item.exact_threshold,
            "score_blocks": item.score_blocks,
            "seed": item.seed,
            "padding": item.padding,
            "scoring": item.scoring,
            "mitigation": item.mitigation,
            "cache_dir": item.cache_dir,
            "use_cache": item.use_cache,
        }
    )


def runner_for(item: WorkItem, table: dict[str, SweepRunner]) -> SweepRunner:
    """The table's runner for this item, built on first use.

    Runners are warm state: calibrations and the runner-private conflict
    memo are reused across every item that maps to the same key.
    """
    from repro.bench.cache import BenchCache
    from repro.bench.runner import SweepRunner

    key = runner_key(item)
    runner = table.get(key)
    if runner is None:
        cache = BenchCache(item.cache_dir) if item.use_cache else None
        runner = SweepRunner(
            item.config,
            item.device,
            exact_threshold=item.exact_threshold,
            score_blocks=item.score_blocks,
            seed=item.seed,
            padding=item.padding,
            scoring=item.scoring,
            mitigation=item.mitigation,
            cache=cache,
        )
        table[key] = runner
    return runner


def execute_item(
    item: WorkItem, table: dict[str, SweepRunner]
) -> tuple[BenchPoint, float, bool]:
    """Run one work item; returns (point, seconds, served-from-cache)."""
    runner = runner_for(item, table)
    hits_before = runner.cache.hits if runner.cache is not None else 0
    start = time.perf_counter()
    point = runner.run_point(item.input_name, item.num_elements)
    elapsed = time.perf_counter() - start
    from_cache = runner.cache is not None and runner.cache.hits > hits_before
    return point, elapsed, from_cache
