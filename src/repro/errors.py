"""Exception hierarchy for the :mod:`repro` package.

All errors raised deliberately by this library derive from :class:`ReproError`
so callers can catch library failures without also swallowing programming
errors (``TypeError``/``ValueError`` raised by NumPy, etc.). Input-validation
failures additionally derive from the matching builtin so that idiomatic
``except ValueError`` call sites keep working.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "BackpressureError",
    "ConfigurationError",
    "ConstructionError",
    "ServiceError",
    "SimulationError",
    "ValidationError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ValidationError(ReproError, ValueError):
    """An argument failed validation (wrong range, parity, type, ...)."""


class ConfigurationError(ReproError, ValueError):
    """A sort/device configuration is internally inconsistent.

    Example: a thread-block size ``b`` that is not a power of two, or a
    shared-memory tile that exceeds the device's per-SM shared memory.
    """


class ConstructionError(ReproError):
    """The adversarial input construction could not be carried out.

    Raised when the requested ``(w, E)`` pair falls outside the regime the
    paper's theorems cover (e.g. ``GCD(w, E) not in {1, E}`` for an exact
    construction) and no fallback was requested.
    """


class SimulationError(ReproError):
    """The GPU simulator detected an internal inconsistency.

    Example: a warp trace whose step count disagrees with the kernel's
    declared number of lock-step iterations.
    """


class ServiceError(ReproError):
    """A :mod:`repro.service` request failed.

    ``status`` carries the HTTP status code when the failure came from a
    server response (0 for transport-level failures such as a refused
    connection), so callers can distinguish client mistakes (4xx) from
    server-side trouble.
    """

    def __init__(self, message: str, *, status: int = 0):
        super().__init__(message)
        self.status = status


class BackpressureError(ServiceError):
    """The service rejected a request because its admission queue is full.

    ``retry_after`` echoes the server's ``Retry-After`` hint (seconds).
    """

    def __init__(self, message: str, *, retry_after: float = 1.0):
        super().__init__(message, status=429)
        self.retry_after = retry_after
