"""GPU hardware model: devices, occupancy, memory systems, timing.

This package is the stand-in for the physical GPUs of the paper's Section IV
(a Quadro M4000 and an RTX 2080 Ti). It models exactly the architectural
features the paper's analysis depends on:

* **devices** (:mod:`repro.gpu.device`) — per-device resource limits (SMs,
  cores, shared memory per SM, resident-thread limits, clocks, bandwidth);
* **occupancy** (:mod:`repro.gpu.occupancy`) — how many thread blocks of a
  given shape fit on an SM, reproducing the paper's 100 % vs 75 % occupancy
  arithmetic for the two Thrust parameter presets;
* **shared memory** (:mod:`repro.gpu.shared_memory`) — the banked scratchpad,
  delegating conflict accounting to :mod:`repro.dmm`;
* **global memory** (:mod:`repro.gpu.global_memory`) — the coalescing model
  counting 32-word transactions per warp access;
* **timing** (:mod:`repro.gpu.timing`) — a calibrated latency/throughput
  model mapping instruction and transaction counts to simulated
  milliseconds, from which the throughput figures are regenerated.
"""

from repro.gpu.device import (
    DEVICES,
    GTX_770,
    QUADRO_M4000,
    RTX_2080_TI,
    DeviceSpec,
    get_device,
)
from repro.gpu.global_memory import CoalescingModel, GlobalTraffic
from repro.gpu.occupancy import OccupancyResult, occupancy
from repro.gpu.shared_memory import SharedMemory
from repro.gpu.timing import KernelCost, TimingModel

__all__ = [
    "CoalescingModel",
    "DEVICES",
    "DeviceSpec",
    "GTX_770",
    "GlobalTraffic",
    "KernelCost",
    "OccupancyResult",
    "QUADRO_M4000",
    "RTX_2080_TI",
    "SharedMemory",
    "TimingModel",
    "get_device",
    "occupancy",
]
