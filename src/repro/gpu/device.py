"""Device catalog: the GPUs of the paper's evaluation, as resource specs.

Only the parameters the paper's analysis actually touches are modeled:
warp width / bank count, SM count and per-SM limits (for occupancy), core
count ``P`` (the divisor in the ``A_g``/``A_s`` formulas of Section II-A),
clock and memory bandwidth (for the timing model). Numbers come from the
paper's Section IV-A and Nvidia's published specifications.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError
from repro.utils.validation import (
    check_positive_int,
    check_power_of_two,
)

__all__ = [
    "DEVICES",
    "DeviceSpec",
    "GTX_770",
    "QUADRO_M4000",
    "RTX_2080_TI",
    "get_device",
]

KIB = 1024
GB = 10**9  # the paper uses GB = 1e9 B and KiB = 2^10 B (footnote 3)


@dataclass(frozen=True)
class DeviceSpec:
    """Resource description of one GPU.

    Attributes
    ----------
    name:
        Marketing name, e.g. ``"Quadro M4000"``.
    compute_capability:
        CUDA compute capability as ``(major, minor)``.
    num_sms:
        Streaming multiprocessor count.
    cores_per_sm:
        CUDA cores per SM; ``num_cores`` is the paper's ``P``.
    warp_size:
        Threads per warp = shared-memory banks ``w`` (32 on all real CUDA
        devices; the theory supports any power of two).
    shared_mem_per_sm:
        Usable shared memory per SM in bytes.
    max_threads_per_sm:
        Resident-thread limit per SM.
    max_blocks_per_sm:
        Resident-block limit per SM.
    global_mem_bytes:
        Global memory capacity.
    core_clock_hz:
        Boost core clock (shared-memory cycles are issued at this rate).
    mem_bandwidth_bytes_per_s:
        Peak global-memory bandwidth.
    global_latency_cycles:
        Typical global-memory load latency in core cycles (used by the
        timing model's latency-hiding term).
    shared_latency_cycles:
        Shared-memory load latency in core cycles for a conflict-free access.
    shared_tx_per_cycle:
        Sustained shared-memory warp transactions issued per SM per cycle.
        1.0 on Maxwell/Kepler (dedicated shared-memory path, up to 64
        resident warps hiding issue latency); lower on Turing, whose
        load/store units are shared with the unified L1 and whose
        resident-warp pool is half Maxwell's.
    """

    name: str
    compute_capability: tuple[int, int]
    num_sms: int
    cores_per_sm: int
    warp_size: int
    shared_mem_per_sm: int
    max_threads_per_sm: int
    max_blocks_per_sm: int
    global_mem_bytes: int
    core_clock_hz: float
    mem_bandwidth_bytes_per_s: float
    global_latency_cycles: int = 400
    shared_latency_cycles: int = 24
    shared_tx_per_cycle: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.shared_tx_per_cycle <= 2.0:
            raise ValidationError(
                f"shared_tx_per_cycle must be in (0, 2], got "
                f"{self.shared_tx_per_cycle}"
            )
        check_positive_int(self.num_sms, "num_sms")
        check_positive_int(self.cores_per_sm, "cores_per_sm")
        check_power_of_two(self.warp_size, "warp_size")
        check_positive_int(self.shared_mem_per_sm, "shared_mem_per_sm")
        check_positive_int(self.max_threads_per_sm, "max_threads_per_sm")
        check_positive_int(self.max_blocks_per_sm, "max_blocks_per_sm")
        if self.core_clock_hz <= 0 or self.mem_bandwidth_bytes_per_s <= 0:
            raise ValidationError("clock and bandwidth must be positive")

    @property
    def num_cores(self) -> int:
        """Total physical cores — the ``P`` of the Section II-A formulas."""
        return self.num_sms * self.cores_per_sm

    @property
    def num_banks(self) -> int:
        """Shared-memory banks per SM (equal to the warp size)."""
        return self.warp_size

    @property
    def max_warps_per_sm(self) -> int:
        """Resident-warp limit per SM."""
        return self.max_threads_per_sm // self.warp_size

    def fits_in_global(self, num_elements: int, element_bytes: int = 4) -> bool:
        """Whether a problem (input + output buffers) fits in global memory.

        Pairwise merge sort is not in-place: it ping-pongs between two
        ``N``-element buffers, so the footprint is ``2·N·element_bytes``.
        """
        num_elements = check_positive_int(num_elements, "num_elements")
        element_bytes = check_positive_int(element_bytes, "element_bytes")
        return 2 * num_elements * element_bytes <= self.global_mem_bytes


#: Quadro M4000 (Maxwell, CC 5.2) — paper Section IV-A.
QUADRO_M4000 = DeviceSpec(
    name="Quadro M4000",
    compute_capability=(5, 2),
    num_sms=13,
    cores_per_sm=128,  # 13 SMs x 128 = 1664 cores, per the paper
    warp_size=32,
    shared_mem_per_sm=96 * KIB,
    max_threads_per_sm=2048,
    max_blocks_per_sm=32,
    global_mem_bytes=8 * GB,
    core_clock_hz=773e6,
    mem_bandwidth_bytes_per_s=192e9,
    global_latency_cycles=368,
    shared_latency_cycles=24,
    shared_tx_per_cycle=0.8,
)

#: RTX 2080 Ti (Turing, CC 7.5) — paper Section IV-A. The 96 KiB unified
#: L1/shared is configured as 64 KiB shared + 32 KiB L1, as the paper's
#: occupancy arithmetic implies (3 x 17 KiB blocks resident, 13 KiB unused).
RTX_2080_TI = DeviceSpec(
    name="RTX 2080 Ti",
    compute_capability=(7, 5),
    num_sms=68,
    cores_per_sm=64,  # 68 SMs x 64 = 4352 cores, per the paper
    warp_size=32,
    shared_mem_per_sm=64 * KIB,
    max_threads_per_sm=1024,  # Turing: "up to 1024 resident threads per SM"
    max_blocks_per_sm=16,
    global_mem_bytes=11 * GB,
    core_clock_hz=1545e6,
    mem_bandwidth_bytes_per_s=616e9,
    global_latency_cycles=434,
    shared_latency_cycles=19,
    shared_tx_per_cycle=0.3,
)

#: GTX 770 (Kepler, CC 3.0) — the device of Karsin et al.'s conflict-heavy
#: experiments that this paper generalizes (Section II-C).
GTX_770 = DeviceSpec(
    name="GTX 770",
    compute_capability=(3, 0),
    num_sms=8,
    cores_per_sm=192,
    warp_size=32,
    shared_mem_per_sm=48 * KIB,
    max_threads_per_sm=2048,
    max_blocks_per_sm=16,
    global_mem_bytes=2 * GB,
    core_clock_hz=1046e6,
    mem_bandwidth_bytes_per_s=224e9,
    global_latency_cycles=301,
    shared_latency_cycles=33,
)

#: All known devices, keyed by a normalized short name.
DEVICES: dict[str, DeviceSpec] = {
    "quadro-m4000": QUADRO_M4000,
    "rtx-2080-ti": RTX_2080_TI,
    "gtx-770": GTX_770,
}


def get_device(name: str) -> DeviceSpec:
    """Look up a device by (case/space-insensitive) name.

    >>> get_device("Quadro M4000").num_cores
    1664
    """
    key = name.strip().lower().replace(" ", "-").replace("_", "-")
    try:
        return DEVICES[key]
    except KeyError:
        known = ", ".join(sorted(DEVICES))
        raise ValidationError(f"unknown device {name!r}; known: {known}") from None
