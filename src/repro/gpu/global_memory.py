"""Global-memory coalescing model.

Global memory serves warp accesses in *transactions* of ``warp_size``
consecutive words: a warp reading ``warp_size`` contiguous aligned words
costs one transaction; a warp gathering from ``k`` distinct
``warp_size``-word segments costs ``k``. This is the access model behind the
paper's ``A_g`` metric (Section II-A) — the pairwise merge sort is engineered
so tile loads and stores are fully coalesced, while the partitioning stage's
mutual binary searches are scattered.

The model here only *counts* transactions; values move through plain NumPy
arrays. Counting is exact and vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ValidationError
from repro.utils.validation import check_positive_int, check_power_of_two

__all__ = ["CoalescingModel", "GlobalTraffic"]


@dataclass
class GlobalTraffic:
    """Accumulated global-memory traffic counters.

    Attributes
    ----------
    transactions:
        Number of ``warp_size``-word memory transactions issued.
    words:
        Number of useful words actually transferred (≤ transactions × w).
    """

    transactions: int = 0
    words: int = 0

    def merged(self, other: "GlobalTraffic") -> "GlobalTraffic":
        """Sum of two traffic counters."""
        return GlobalTraffic(
            transactions=self.transactions + other.transactions,
            words=self.words + other.words,
        )

    def scaled(self, factor: int) -> "GlobalTraffic":
        """Traffic for ``factor`` identical repetitions."""
        if factor < 0:
            raise ValidationError(f"factor must be nonnegative, got {factor}")
        return GlobalTraffic(
            transactions=self.transactions * factor, words=self.words * factor
        )

    def efficiency(self, warp_size: int) -> float:
        """Useful words per transferred word (1.0 = perfectly coalesced)."""
        if self.transactions == 0:
            return 1.0
        return self.words / (self.transactions * warp_size)


@dataclass
class CoalescingModel:
    """Counts transactions for warp-shaped global accesses.

    Parameters
    ----------
    warp_size:
        Words per transaction segment (power of two).
    """

    warp_size: int
    traffic: GlobalTraffic = field(default_factory=GlobalTraffic)

    def __post_init__(self) -> None:
        check_power_of_two(self.warp_size, "warp_size")

    def warp_access(self, addresses: np.ndarray) -> int:
        """Account one warp access at the given word addresses.

        Negative addresses mark inactive lanes. Returns the number of
        transactions the access cost (number of distinct
        ``warp_size``-aligned segments touched).
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        active = addresses >= 0
        if not active.any():
            return 0
        segments = np.unique(addresses[active] // self.warp_size)
        self.traffic.transactions += int(segments.size)
        self.traffic.words += int(active.sum())
        return int(segments.size)

    def streamed_copy(self, num_words: int) -> int:
        """Account a fully coalesced bulk copy of ``num_words`` words
        (tile loads/stores, which the merge sort performs with unit-stride
        warp accesses). Returns the transaction count."""
        num_words = check_positive_int(num_words, "num_words")
        transactions = -(-num_words // self.warp_size)
        self.traffic.transactions += transactions
        self.traffic.words += num_words
        return transactions

    def scattered_access(self, num_accesses: int) -> int:
        """Account ``num_accesses`` independent scattered word accesses
        (binary-search probes: each probe touches its own segment)."""
        num_accesses = check_positive_int(num_accesses, "num_accesses")
        self.traffic.transactions += num_accesses
        self.traffic.words += num_accesses
        return num_accesses

    def reset(self) -> GlobalTraffic:
        """Return the accumulated traffic and start a fresh counter."""
        traffic, self.traffic = self.traffic, GlobalTraffic()
        return traffic
