"""Occupancy calculator.

Reproduces the paper's Section IV-A arithmetic: with ``E = 17, b = 256``
each block needs 17 KiB of shared memory, so 3 blocks (768 threads) fit per
RTX 2080 Ti SM — 75 % theoretical occupancy; with ``E = 15, b = 512`` each
block needs 30 KiB, so 2 blocks (1024 threads) fit — 100 % occupancy.

Occupancy matters to the timing model because resident warps are what hides
global-memory latency: the paper expects (and finds, on random inputs) the
100 %-occupancy preset to win.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.gpu.device import DeviceSpec
from repro.utils.validation import check_positive_int

__all__ = ["OccupancyResult", "occupancy"]


@dataclass(frozen=True)
class OccupancyResult:
    """Resolved residency of one kernel configuration on one device."""

    device: DeviceSpec
    threads_per_block: int
    shared_bytes_per_block: int
    blocks_per_sm: int
    #: Binding constraint: "shared", "threads", or "blocks".
    limiter: str

    @property
    def threads_per_sm(self) -> int:
        """Resident threads per SM."""
        return self.blocks_per_sm * self.threads_per_block

    @property
    def warps_per_sm(self) -> int:
        """Resident warps per SM."""
        return self.threads_per_sm // self.device.warp_size

    @property
    def occupancy(self) -> float:
        """Theoretical occupancy: resident threads / device limit."""
        return self.threads_per_sm / self.device.max_threads_per_sm

    @property
    def shared_bytes_used(self) -> int:
        """Shared memory consumed per SM."""
        return self.blocks_per_sm * self.shared_bytes_per_block

    @property
    def shared_bytes_unused(self) -> int:
        """Shared memory left idle per SM."""
        return self.device.shared_mem_per_sm - self.shared_bytes_used


def occupancy(
    device: DeviceSpec,
    threads_per_block: int,
    shared_bytes_per_block: int,
) -> OccupancyResult:
    """Compute how many blocks of the given shape are resident per SM.

    Raises
    ------
    ConfigurationError
        If a single block already exceeds a per-SM resource.

    Examples
    --------
    The paper's two RTX 2080 Ti presets:

    >>> from repro.gpu.device import RTX_2080_TI
    >>> occupancy(RTX_2080_TI, 256, 17 * 1024).occupancy
    0.75
    >>> occupancy(RTX_2080_TI, 512, 30 * 1024).occupancy
    1.0
    """
    threads_per_block = check_positive_int(threads_per_block, "threads_per_block")
    shared_bytes_per_block = check_positive_int(
        shared_bytes_per_block, "shared_bytes_per_block"
    )
    if threads_per_block > device.max_threads_per_sm:
        raise ConfigurationError(
            f"block of {threads_per_block} threads exceeds the per-SM limit "
            f"of {device.max_threads_per_sm} on {device.name}"
        )
    if shared_bytes_per_block > device.shared_mem_per_sm:
        raise ConfigurationError(
            f"block needs {shared_bytes_per_block} B of shared memory but "
            f"{device.name} has {device.shared_mem_per_sm} B per SM"
        )

    by_shared = device.shared_mem_per_sm // shared_bytes_per_block
    by_threads = device.max_threads_per_sm // threads_per_block
    by_blocks = device.max_blocks_per_sm
    blocks = min(by_shared, by_threads, by_blocks)
    limiter = (
        "shared"
        if blocks == by_shared
        else ("threads" if blocks == by_threads else "blocks")
    )
    return OccupancyResult(
        device=device,
        threads_per_block=threads_per_block,
        shared_bytes_per_block=shared_bytes_per_block,
        blocks_per_sm=blocks,
        limiter=limiter,
    )
