"""Shared memory: a banked, conflict-scored scratchpad for one thread block.

This is the bridge between the GPU layer and the DMM model: a
:class:`SharedMemory` holds the block's tile (the ``bE`` keys being merged),
answers reads/writes, and scores every warp access through
:mod:`repro.dmm.conflicts`. Kernels talk to it in warp-sized vectorized
requests — one call per lock-step iteration — which keeps the simulation
NumPy-bound rather than Python-bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dmm.banks import BankGeometry
from repro.dmm.conflicts import ConflictReport, count_conflicts
from repro.dmm.trace import AccessKind, AccessTrace
from repro.errors import SimulationError, ValidationError
from repro.utils.validation import check_positive_int, check_power_of_two

__all__ = ["SharedMemory"]


@dataclass
class SharedMemory:
    """A banked scratchpad of ``size`` elements with ``num_banks`` banks.

    Parameters
    ----------
    size:
        Capacity in elements (the block tile, typically ``bE``).
    num_banks:
        Bank count ``w`` (power of two).

    The object accumulates a :class:`~repro.dmm.conflicts.ConflictReport`
    across all accesses made through it; kernels snapshot/merge these into
    per-round instrumentation.
    """

    size: int
    num_banks: int
    _data: np.ndarray = field(init=False, repr=False)
    _report: ConflictReport = field(init=False, repr=False)

    def __post_init__(self) -> None:
        check_positive_int(self.size, "size")
        check_power_of_two(self.num_banks, "num_banks")
        self._data = np.zeros(self.size, dtype=np.int64)
        self._report = ConflictReport.empty(self.num_banks)

    @property
    def geometry(self) -> BankGeometry:
        """The bank geometry of this scratchpad."""
        return BankGeometry(self.num_banks)

    @property
    def report(self) -> ConflictReport:
        """Conflicts accumulated so far."""
        return self._report

    def reset_report(self) -> ConflictReport:
        """Return the accumulated report and start a fresh one."""
        report, self._report = self._report, ConflictReport.empty(self.num_banks)
        return report

    def load_tile(self, data: np.ndarray, offset: int = 0) -> None:
        """Bulk-initialize the tile (models the coalesced global→shared copy;
        conflict accounting for that copy is handled by the caller since a
        strided coalesced copy is conflict-free by construction)."""
        data = np.asarray(data, dtype=np.int64)
        if offset < 0 or offset + data.size > self.size:
            raise ValidationError(
                f"tile of {data.size} elements at offset {offset} does not "
                f"fit in shared memory of size {self.size}"
            )
        self._data[offset : offset + data.size] = data

    def contents(self) -> np.ndarray:
        """A copy of the full tile."""
        return self._data.copy()

    def warp_read(self, addresses: np.ndarray) -> np.ndarray:
        """One warp lock-step read: ``addresses`` is one address per lane,
        negative = inactive. Returns the values (0 for inactive lanes) and
        accounts the conflicts."""
        trace = AccessTrace.from_dense(
            np.asarray(addresses, dtype=np.int64)[None, :], kind=AccessKind.READ
        )
        self._score(trace)
        out = np.zeros(trace.num_lanes, dtype=np.int64)
        mask = trace.active[0]
        addrs = trace.addresses[0, mask]
        self._check_bounds(addrs)
        out[mask] = self._data[addrs]
        return out

    def warp_write(self, addresses: np.ndarray, values: np.ndarray) -> None:
        """One warp lock-step write (CREW: same-address concurrent writes
        raise)."""
        addresses = np.asarray(addresses, dtype=np.int64)
        trace = AccessTrace.from_dense(addresses[None, :], kind=AccessKind.WRITE)
        mask = trace.active[0]
        addrs = trace.addresses[0, mask]
        if addrs.size != np.unique(addrs).size:
            raise SimulationError("CREW violation: concurrent writes to one address")
        self._score(trace)
        self._check_bounds(addrs)
        self._data[addrs] = np.asarray(values, dtype=np.int64)[mask]

    def score_trace(self, trace: AccessTrace) -> ConflictReport:
        """Score a whole pre-recorded trace (the batched fast path) and fold
        it into the accumulated report."""
        report = count_conflicts(trace, self.num_banks)
        self._report = self._report.merged(report)
        return report

    def _score(self, trace: AccessTrace) -> None:
        self._report = self._report.merged(count_conflicts(trace, self.num_banks))

    def _check_bounds(self, addrs: np.ndarray) -> None:
        if addrs.size and (int(addrs.min()) < 0 or int(addrs.max()) >= self.size):
            raise SimulationError(
                f"shared-memory address out of bounds (size {self.size}): "
                f"[{addrs.min()}, {addrs.max()}]"
            )
