"""Timing model: counted work → simulated milliseconds.

The simulator produces *exact* counts (shared-memory serialized cycles,
global transactions, kernel launches); this module folds them into a runtime
using a small, documented throughput/latency model:

* **global memory** is bandwidth-bound; effectiveness scales with how many
  resident warps are available to hide latency (the occupancy knee), which
  is how the paper's "E=15, b=512 wins on random inputs" effect enters;
* **shared memory** retires one warp transaction per SM per core cycle, so
  serialized (conflicted) transactions translate linearly into time — the
  Karsin et al. correlation between bank conflicts and runtime that the
  paper leans on;
* **compute** retires at the cores' issue rate and matters only as a floor;
* phases within a kernel overlap, so the kernel cost is the max of the three
  streams plus a fixed per-launch overhead.

Absolute numbers are therefore synthetic-but-principled; every figure in
EXPERIMENTS.md compares *shapes* (ratios, crossovers, growth), which the
model preserves because they are driven by the exact counts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ValidationError
from repro.gpu.device import DeviceSpec
from repro.utils.validation import check_nonnegative_int

__all__ = ["KernelCost", "TimingModel"]


@dataclass
class KernelCost:
    """Counted work of one simulated kernel (or a whole sort).

    Attributes
    ----------
    shared_cycles:
        Total serialized shared-memory warp transactions across all warps
        (``Σ ConflictReport.total_transactions``).
    shared_steps:
        What the same work would cost conflict-free (active warp steps).
    global_transactions:
        Coalescing-model transaction count.
    global_words:
        Useful words moved through global memory.
    compute_warp_instructions:
        Non-memory warp instructions (comparisons, index arithmetic).
    kernel_launches:
        Number of kernel launches (one per merge round per kernel type).
    warps_per_sm:
        Resident warps per SM at this kernel's occupancy.
    element_bytes:
        Key size in bytes (the paper uses 4-byte ints).
    """

    shared_cycles: int = 0
    shared_steps: int = 0
    global_transactions: int = 0
    global_words: int = 0
    compute_warp_instructions: int = 0
    kernel_launches: int = 0
    warps_per_sm: int = 32
    element_bytes: int = 4

    def merged(self, other: "KernelCost") -> "KernelCost":
        """Combine two sequential cost records (keeps the min residency,
        since the slower-occupancy phase gates latency hiding)."""
        return KernelCost(
            shared_cycles=self.shared_cycles + other.shared_cycles,
            shared_steps=self.shared_steps + other.shared_steps,
            global_transactions=self.global_transactions + other.global_transactions,
            global_words=self.global_words + other.global_words,
            compute_warp_instructions=(
                self.compute_warp_instructions + other.compute_warp_instructions
            ),
            kernel_launches=self.kernel_launches + other.kernel_launches,
            warps_per_sm=min(self.warps_per_sm, other.warps_per_sm),
            element_bytes=self.element_bytes,
        )

    def scaled(self, factor: float) -> "KernelCost":
        """Scale all extensive counters (fast path: one sampled block → all
        blocks)."""
        if factor < 0:
            raise ValidationError(f"factor must be nonnegative, got {factor}")
        return KernelCost(
            shared_cycles=round(self.shared_cycles * factor),
            shared_steps=round(self.shared_steps * factor),
            global_transactions=round(self.global_transactions * factor),
            global_words=round(self.global_words * factor),
            compute_warp_instructions=round(self.compute_warp_instructions * factor),
            kernel_launches=self.kernel_launches,
            warps_per_sm=self.warps_per_sm,
            element_bytes=self.element_bytes,
        )


@dataclass
class TimingModel:
    """Maps :class:`KernelCost` counters to simulated time on a device.

    Parameters
    ----------
    device:
        The simulated GPU.
    latency_knee_warps:
        Resident warps per SM needed to fully hide global-memory latency;
        below the knee, effective bandwidth degrades linearly. Default 16
        (≈ 400-cycle latency / ~25-cycle issue interval).
    shared_knee_warps:
        Resident warps per SM needed to saturate the shared-memory pipeline.
    launch_overhead_s:
        Fixed cost per kernel launch (host → device round trip).
    compute_ipc:
        Warp instructions retired per SM per cycle.
    overlap:
        Fraction of the *non-dominant* streams hidden under the dominant
        one. 1.0 = perfect overlap (pure ``max``), 0.0 = fully serial
        (sum). Within a thread block the tile load and the shared-memory
        merge are dependent, but resident blocks overlap each other, so
        the realistic value sits between — default 0.55, calibrated so the
        random-vs-worst slowdown magnitudes land in the paper's reported
        range while both extremes' *shapes* are count-driven.
    """

    device: DeviceSpec
    latency_knee_warps: int = 16
    shared_knee_warps: int = 8
    launch_overhead_s: float = 4e-6
    compute_ipc: float = 1.0
    overlap: float = 0.55
    #: Achievable fraction of peak DRAM bandwidth for the sort's streaming
    #: pattern (STREAM-style copies typically sustain 70–80 % of peak).
    bandwidth_efficiency: float = 0.75

    def __post_init__(self) -> None:
        if self.latency_knee_warps < 1 or self.shared_knee_warps < 1:
            raise ValidationError("knee warp counts must be >= 1")
        if self.launch_overhead_s < 0:
            raise ValidationError("launch overhead must be nonnegative")
        if self.compute_ipc <= 0:
            raise ValidationError("compute IPC must be positive")
        if not 0.0 <= self.overlap <= 1.0:
            raise ValidationError("overlap must be in [0, 1]")

    # -- individual streams ------------------------------------------------

    def global_seconds(self, cost: KernelCost) -> float:
        """Time for the global-memory stream."""
        check_nonnegative_int(cost.global_transactions, "global_transactions")
        bytes_moved = (
            cost.global_transactions * self.device.warp_size * cost.element_bytes
        )
        hiding = min(1.0, cost.warps_per_sm / self.latency_knee_warps)
        effective_bw = (
            self.device.mem_bandwidth_bytes_per_s * self.bandwidth_efficiency * hiding
        )
        return bytes_moved / effective_bw

    def shared_seconds(self, cost: KernelCost) -> float:
        """Time for the shared-memory stream (serialized transactions)."""
        check_nonnegative_int(cost.shared_cycles, "shared_cycles")
        saturation = min(1.0, cost.warps_per_sm / self.shared_knee_warps)
        rate = (
            self.device.num_sms
            * self.device.core_clock_hz
            * self.device.shared_tx_per_cycle
            * saturation
        )
        return cost.shared_cycles / rate

    def compute_seconds(self, cost: KernelCost) -> float:
        """Time for the arithmetic stream."""
        rate = self.device.num_sms * self.device.core_clock_hz * self.compute_ipc
        saturation = min(1.0, cost.warps_per_sm / self.shared_knee_warps)
        return cost.compute_warp_instructions / (rate * saturation)

    # -- headline ----------------------------------------------------------

    def seconds(self, cost: KernelCost) -> float:
        """Total simulated runtime for a cost record.

        The dominant stream sets the floor; a ``1 − overlap`` share of the
        remaining streams leaks past it (imperfect cross-block overlap of
        dependent phases).
        """
        streams = [
            self.global_seconds(cost),
            self.shared_seconds(cost),
            self.compute_seconds(cost),
        ]
        dominant = max(streams)
        residual = (1.0 - self.overlap) * (sum(streams) - dominant)
        return dominant + residual + cost.kernel_launches * self.launch_overhead_s

    def milliseconds(self, cost: KernelCost) -> float:
        """Total simulated runtime in milliseconds."""
        return self.seconds(cost) * 1e3

    def throughput_meps(self, cost: KernelCost, num_elements: int) -> float:
        """Throughput in millions of elements per second."""
        return num_elements / self.seconds(cost) / 1e6
