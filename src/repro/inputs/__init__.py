"""Input generators for experiments.

One registry of named generators covering everything the paper (and its
related work) sorts: uniform random permutations, sorted / reverse-sorted
data, few-unique keys, Karsin-style conflict-heavy heuristics, and the
constructed worst case of :mod:`repro.adversary`.
"""

from repro.inputs.generators import (
    GENERATORS,
    conflict_heavy_input,
    few_unique_input,
    generate,
    pad_to_tiles,
    random_input,
    reverse_sorted_input,
    sawtooth_input,
    sorted_input,
    worst_case_input,
)

__all__ = [
    "GENERATORS",
    "conflict_heavy_input",
    "few_unique_input",
    "generate",
    "pad_to_tiles",
    "random_input",
    "reverse_sorted_input",
    "sawtooth_input",
    "sorted_input",
    "worst_case_input",
]
