"""Named input generators.

Every generator takes ``(config, num_elements, seed)`` — the configuration
matters because the adversarial (and conflict-heavy) inputs are
parameter-specific — and returns an int64 array. The :data:`GENERATORS`
registry maps the names used by the CLI and the bench harness.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import ValidationError
from repro.sort.config import SortConfig
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive_int

__all__ = [
    "GENERATORS",
    "conflict_heavy_input",
    "few_unique_input",
    "generate",
    "pad_to_tiles",
    "random_input",
    "reverse_sorted_input",
    "sawtooth_input",
    "sorted_input",
    "worst_case_input",
]


def random_input(config: SortConfig, num_elements: int, seed=None) -> np.ndarray:
    """A uniform random permutation of ``0 … N−1`` (the paper's baseline)."""
    n = check_positive_int(num_elements, "num_elements")
    return as_generator(seed).permutation(n).astype(np.int64)


def sorted_input(config: SortConfig, num_elements: int, seed=None) -> np.ndarray:
    """Already-sorted keys — the worst case when ``GCD(w, E) = E``."""
    return np.arange(check_positive_int(num_elements, "num_elements"), dtype=np.int64)


def reverse_sorted_input(
    config: SortConfig, num_elements: int, seed=None
) -> np.ndarray:
    """Strictly decreasing keys (maximum inversions)."""
    n = check_positive_int(num_elements, "num_elements")
    return np.arange(n - 1, -1, -1, dtype=np.int64)


def few_unique_input(
    config: SortConfig, num_elements: int, seed=None, num_values: int = 16
) -> np.ndarray:
    """Random keys drawn from a tiny alphabet (stresses tie handling)."""
    n = check_positive_int(num_elements, "num_elements")
    num_values = check_positive_int(num_values, "num_values")
    return as_generator(seed).integers(0, num_values, size=n, dtype=np.int64)


def sawtooth_input(
    config: SortConfig, num_elements: int, seed=None, teeth: int = 8
) -> np.ndarray:
    """``teeth`` ascending runs — a classic partially-sorted workload."""
    n = check_positive_int(num_elements, "num_elements")
    teeth = check_positive_int(teeth, "teeth")
    period = max(1, n // teeth)
    base = np.arange(n, dtype=np.int64) % period
    # Disambiguate equal phases across teeth so keys stay distinct.
    return base * teeth + np.arange(n, dtype=np.int64) // period


def conflict_heavy_input(
    config: SortConfig, num_elements: int, seed=None
) -> np.ndarray:
    """A Karsin et al.-style *conflict-heavy* input.

    Karsin et al. hand-built, per-parameter inputs that cause "a large
    number of bank conflicts" and slow the sorts relative to random inputs,
    without a worst-case guarantee (paper Section II-C). This generator
    reproduces that spirit: a random-looking input whose **last two merge
    rounds** carry the adversarial interleaving — heavy, measurably slower
    than random, but provably short of the full construction; the gap is
    itself a result the benches report.
    """
    from repro.adversary.assignment import construct_warp_assignment
    from repro.adversary.permutation import unmerge_through_rounds

    n = config.validate_input_size(num_elements)
    assignment = construct_warp_assignment(config.w, config.E)
    return unmerge_through_rounds(
        config,
        np.arange(n, dtype=np.int64),
        assignment,
        target_runs={n // 2, n // 4},
        off_target="random",
        seed=seed,
    )


def worst_case_input(
    config: SortConfig, num_elements: int, seed=None
) -> np.ndarray:
    """The paper's constructed worst case (Theorems 3/9) for this config."""
    # Imported lazily: repro.sort's convenience exports pull in this module,
    # and the adversary packages build on repro.sort.
    from repro.adversary.permutation import worst_case_permutation

    return worst_case_permutation(config, num_elements)


def pad_to_tiles(values: np.ndarray, config: SortConfig, pad_value=None) -> np.ndarray:
    """Pad an arbitrary-length input up to the next valid size ``bE·2^k``.

    Padding uses ``pad_value`` (default: one above the maximum, so padding
    sorts to the tail and can be sliced off).
    """
    values = np.asarray(values)
    if values.ndim != 1:
        raise ValidationError(f"values must be 1-D, got shape {values.shape}")
    if values.size == 0:
        raise ValidationError("cannot pad an empty input")
    tile = config.tile_size
    tiles = -(-values.size // tile)
    if tiles & (tiles - 1):
        tiles = 1 << tiles.bit_length()
    target = tiles * tile
    if target == values.size:
        return values.copy()
    if pad_value is None:
        pad_value = values.max() + 1
    out = np.full(target, pad_value, dtype=values.dtype)
    out[: values.size] = values
    return out


GENERATORS: dict[str, Callable[..., np.ndarray]] = {
    "random": random_input,
    "sorted": sorted_input,
    "reverse": reverse_sorted_input,
    "few-unique": few_unique_input,
    "sawtooth": sawtooth_input,
    "conflict-heavy": conflict_heavy_input,
    "worst-case": worst_case_input,
}


def generate(
    name: str, config: SortConfig, num_elements: int, seed=None
) -> np.ndarray:
    """Dispatch to a named generator.

    >>> from repro.sort.config import SortConfig
    >>> cfg = SortConfig(elements_per_thread=3, block_size=8, warp_size=4)
    >>> generate("sorted", cfg, 4).tolist()
    [0, 1, 2, 3]
    """
    try:
        factory = GENERATORS[name]
    except KeyError:
        known = ", ".join(sorted(GENERATORS))
        raise ValidationError(f"unknown generator {name!r}; known: {known}") from None
    return factory(config, num_elements, seed)
