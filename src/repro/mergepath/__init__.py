"""GPU Merge Path (Green, McColl, Bader 2012) — the pairwise-merge substrate.

The pairwise merge sort of the paper merges two sorted lists with ``t``
threads in two stages:

* **partitioning** (:mod:`repro.mergepath.partition`) — each thread finds,
  via a mutual binary search along its "diagonal", the start of its
  ``n/t``-element quantile in both lists;
* **merging** (:mod:`repro.mergepath.serial_merge`) — each thread serially
  merges its quantile, reading its elements in increasing value order.

:mod:`repro.mergepath.kernels` assembles these into warp-shaped access
traces for conflict scoring.
"""

from repro.mergepath.partition import (
    merge_path_partition,
    merge_path_search,
    partition_many_with_trace,
    partition_with_trace,
)
from repro.mergepath.serial_merge import (
    interleaving_addresses,
    merge_values,
    stable_merge_interleaving,
    unmerge,
)
from repro.mergepath.kernels import (
    merge_stage_trace,
    stack_warp_steps,
    thread_rank_addresses,
)

__all__ = [
    "interleaving_addresses",
    "merge_path_partition",
    "merge_path_search",
    "merge_stage_trace",
    "merge_values",
    "partition_many_with_trace",
    "partition_with_trace",
    "stable_merge_interleaving",
    "stack_warp_steps",
    "thread_rank_addresses",
    "unmerge",
]
