"""Fused round kernels: merge + partition + conflict scoring in one pass.

This is the ``scoring="fused"`` hot path of :class:`PairwiseMergeSort`. The
classic pipeline runs four materializing stages per round —
``batched_rank_addresses`` → ``partition_many_with_trace`` →
``stack_group_warp_steps`` → ``count_conflicts`` — each allocating arrays
proportional to the round size. The fused layer collapses them:

* **native backend** (:mod:`repro._fused_native`, built by ``setup.py``):
  :func:`merge_pairs` replaces the round's stable ``argsort`` with a
  row-wise two-pointer merge, and :func:`fused_block_reports` /
  :func:`fused_global_reports` walk each scored tile once — reconstructing
  its merge interleaving locally (per-pair serial merges for block rounds,
  merge-path window splits for global rounds), bisecting the β₁ diagonals
  lane-compressed, and histogramming banks per warp-step — emitting only
  the per-step transaction sequences and the scalar counters a
  :class:`~repro.dmm.conflicts.ConflictReport` needs. No order array, no
  address matrices, no traces.
* **numpy fallback** (extension absent or ``REPRO_FORCE_NUMPY=1``): the
  sorter keeps the argsort merge and reuses its probe helpers, but counts
  through :func:`repro.dmm.fused.permutation_stage_report` /
  :func:`repro.dmm.fused.dense_report` instead of building traces.

Both backends are bit-identical to the ``scoring="loop"`` oracle
(``tests/sort/test_fused_equivalence.py``).
"""

from __future__ import annotations

import numpy as np

from repro.dmm import fused as dmm_fused
from repro.dmm.conflicts import ConflictReport

__all__ = [
    "fused_block_reports",
    "fused_global_reports",
    "merge_pairs",
    "native_round_ready",
]


def native_round_ready(flat_pre: np.ndarray) -> bool:
    """Whether the compiled kernels can take this round's value buffer.

    The native kernels are int64-only by design (the simulator's key
    type); other dtypes fall back to the numpy fused path, which accepts
    anything ``argsort`` does.
    """
    return (
        dmm_fused.native_enabled()
        and flat_pre.dtype == np.int64
        and flat_pre.flags.c_contiguous
    )


def merge_pairs(
    mat: np.ndarray, run: int, out: np.ndarray | None = None
) -> np.ndarray:
    """Stable (A-first) merge of every ``(2·run)`` row of ``mat``, native.

    Bit-identical to ``np.take_along_axis(mat, np.argsort(mat, axis=1,
    kind="stable"), axis=1)`` for rows made of two sorted halves, without
    materializing the order array — callers must check
    :func:`native_round_ready` first. ``out``, if given, must be a
    distinct C-contiguous int64 array of ``mat``'s shape; the merge
    writes into it (and returns it) instead of allocating.
    """
    native = dmm_fused.native_module()
    if out is None:
        return native.merge_pairs(mat, run)
    return native.merge_pairs(mat, run, out)


def _round_reports(raw: tuple, num_banks: int) -> tuple[ConflictReport, ConflictReport]:
    """Native 8-tuple → (merge_report, partition_report)."""
    m_ps, m_acc, m_req, m_rep, p_ps, p_acc, p_req, p_rep = raw
    return (
        dmm_fused.report_from_per_step(num_banks, m_ps, m_acc, m_req, m_rep),
        dmm_fused.report_from_per_step(num_banks, p_ps, p_acc, p_req, p_rep),
    )


def fused_block_reports(
    flat_pre: np.ndarray,
    scored: np.ndarray,
    run: int,
    elements_per_thread: int,
    block_size: int,
    warp_size: int,
    padding: int,
) -> tuple[ConflictReport, ConflictReport]:
    """Score the given tiles of a block round straight from ``flat_pre``."""
    raw = dmm_fused.native_module().score_block_round(
        flat_pre,
        scored,
        run,
        elements_per_thread,
        block_size,
        warp_size,
        padding,
    )
    return _round_reports(raw, warp_size)


def fused_global_reports(
    flat_pre: np.ndarray,
    scored: np.ndarray,
    run: int,
    elements_per_thread: int,
    block_size: int,
    warp_size: int,
    padding: int,
) -> tuple[ConflictReport, ConflictReport]:
    """Score the given blocks of a global round straight from ``flat_pre``."""
    raw = dmm_fused.native_module().score_global_round(
        flat_pre,
        scored,
        run,
        elements_per_thread,
        block_size,
        warp_size,
        padding,
    )
    return _round_reports(raw, warp_size)
