"""Warp-shaped trace assembly for the merging stage.

After partitioning, thread ``t`` of a merge reads its ``E`` assigned
elements in increasing value order — one element per lock-step iteration
``j``. In trace terms: the address matrix has shape ``(E, num_threads)``
with entry ``(j, t)`` = address of the ``j``-th smallest element of thread
``t``'s quantile. Splitting that matrix into ``w``-lane column groups gives
the per-warp traces the conflict model scores.

The address of output rank ``r`` comes straight from the merge interleaving
(:func:`repro.mergepath.serial_merge.interleaving_addresses`); thread ``t``
owns ranks ``tE … tE+E−1``. This makes the whole merging stage one reshape —
no per-element Python.
"""

from __future__ import annotations

import numpy as np

from repro.dmm.trace import AccessTrace
from repro.errors import ValidationError
from repro.utils.validation import check_positive_int

__all__ = [
    "merge_stage_trace",
    "stack_warp_steps",
    "thread_rank_addresses",
    "warp_traces",
]


def stack_warp_steps(step_matrix: np.ndarray, warp_size: int) -> np.ndarray:
    """Fold a ``(steps, num_threads)`` matrix into ``(steps·warps, warp_size)``.

    Warps execute independently, and total conflict metrics are additive
    across warps, so scoring the *stacked* matrix as a single trace equals
    scoring each warp separately and merging — at a fraction of the Python
    overhead. ``num_threads`` must be a multiple of ``warp_size``.
    """
    step_matrix = np.asarray(step_matrix, dtype=np.int64)
    if step_matrix.ndim != 2:
        raise ValidationError(
            f"step matrix must be 2-D (steps, threads), got {step_matrix.shape}"
        )
    steps, threads = step_matrix.shape
    if threads % warp_size:
        raise ValidationError(
            f"thread count {threads} is not a multiple of warp size {warp_size}"
        )
    num_warps = threads // warp_size
    return (
        step_matrix.reshape(steps, num_warps, warp_size)
        .transpose(1, 0, 2)
        .reshape(steps * num_warps, warp_size)
    )


def thread_rank_addresses(
    rank_addresses: np.ndarray, elements_per_thread: int
) -> np.ndarray:
    """Reshape per-rank addresses into the ``(E, num_threads)`` step matrix.

    ``rank_addresses[r]`` is where output rank ``r`` lives; thread ``t``
    reads ranks ``tE+j`` at step ``j``.
    """
    rank_addresses = np.asarray(rank_addresses, dtype=np.int64)
    e = check_positive_int(elements_per_thread, "elements_per_thread")
    if rank_addresses.ndim != 1 or rank_addresses.size % e:
        raise ValidationError(
            f"rank addresses of size {rank_addresses.size} do not divide into "
            f"threads of {e} elements"
        )
    # (threads, E) -> transpose -> (E, threads): row j = step j.
    return rank_addresses.reshape(-1, e).T


def merge_stage_trace(
    rank_addresses: np.ndarray,
    elements_per_thread: int,
    warp_size: int,
) -> list[AccessTrace]:
    """Per-warp merging-stage traces for one merge.

    Threads are grouped into warps of ``warp_size`` in thread order; a
    trailing partial warp is padded with inactive lanes. Returns one trace
    per warp, each with ``E`` steps.
    """
    warp_size = check_positive_int(warp_size, "warp_size")
    matrix = thread_rank_addresses(rank_addresses, elements_per_thread)
    return warp_traces(matrix, warp_size)


def warp_traces(step_matrix: np.ndarray, warp_size: int) -> list[AccessTrace]:
    """Split a ``(steps, num_threads)`` address matrix into per-warp traces.

    Negative addresses mark inactive lanes; a trailing partial warp is
    padded to full width with inactive lanes.
    """
    step_matrix = np.asarray(step_matrix, dtype=np.int64)
    if step_matrix.ndim != 2:
        raise ValidationError(
            f"step matrix must be 2-D (steps, threads), got {step_matrix.shape}"
        )
    steps, threads = step_matrix.shape
    num_warps = -(-threads // warp_size)
    padded = np.full((steps, num_warps * warp_size), -1, dtype=np.int64)
    padded[:, :threads] = step_matrix
    return [
        AccessTrace.from_dense(padded[:, k * warp_size : (k + 1) * warp_size])
        for k in range(num_warps)
    ]
