"""Warp-shaped trace assembly for the merging stage.

After partitioning, thread ``t`` of a merge reads its ``E`` assigned
elements in increasing value order — one element per lock-step iteration
``j``. In trace terms: the address matrix has shape ``(E, num_threads)``
with entry ``(j, t)`` = address of the ``j``-th smallest element of thread
``t``'s quantile. Splitting that matrix into ``w``-lane column groups gives
the per-warp traces the conflict model scores.

The address of output rank ``r`` comes straight from the merge interleaving
(:func:`repro.mergepath.serial_merge.interleaving_addresses`); thread ``t``
owns ranks ``tE … tE+E−1``. This makes the whole merging stage one reshape —
no per-element Python.
"""

from __future__ import annotations

import numpy as np

from repro.dmm.trace import AccessTrace
from repro.errors import ValidationError
from repro.utils.validation import check_positive_int

__all__ = [
    "batched_rank_addresses",
    "merge_stage_trace",
    "stack_group_warp_steps",
    "stack_warp_steps",
    "thread_rank_addresses",
    "warp_traces",
]


def stack_warp_steps(step_matrix: np.ndarray, warp_size: int) -> np.ndarray:
    """Fold a ``(steps, num_threads)`` matrix into ``(steps·warps, warp_size)``.

    Warps execute independently, and total conflict metrics are additive
    across warps, so scoring the *stacked* matrix as a single trace equals
    scoring each warp separately and merging — at a fraction of the Python
    overhead. ``num_threads`` must be a multiple of ``warp_size``.
    """
    step_matrix = np.asarray(step_matrix, dtype=np.int64)
    if step_matrix.ndim != 2:
        raise ValidationError(
            f"step matrix must be 2-D (steps, threads), got {step_matrix.shape}"
        )
    steps, threads = step_matrix.shape
    if threads % warp_size:
        raise ValidationError(
            f"thread count {threads} is not a multiple of warp size "
            f"{warp_size}; stack_warp_steps folds full warps only — for a "
            f"trailing partial warp use warp_traces, which pads it with "
            f"inactive lanes"
        )
    num_warps = threads // warp_size
    return (
        step_matrix.reshape(steps, num_warps, warp_size)
        .transpose(1, 0, 2)
        .reshape(steps * num_warps, warp_size)
    )


def thread_rank_addresses(
    rank_addresses: np.ndarray, elements_per_thread: int
) -> np.ndarray:
    """Reshape per-rank addresses into the ``(E, num_threads)`` step matrix.

    ``rank_addresses[r]`` is where output rank ``r`` lives; thread ``t``
    reads ranks ``tE+j`` at step ``j``.
    """
    rank_addresses = np.asarray(rank_addresses, dtype=np.int64)
    e = check_positive_int(elements_per_thread, "elements_per_thread")
    if rank_addresses.ndim != 1 or rank_addresses.size % e:
        raise ValidationError(
            f"rank addresses of size {rank_addresses.size} do not divide into "
            f"threads of {e} elements"
        )
    # (threads, E) -> transpose -> (E, threads): row j = step j.
    return rank_addresses.reshape(-1, e).T


def batched_rank_addresses(
    rank_addresses: np.ndarray, elements_per_thread: int
) -> np.ndarray:
    """Batched :func:`thread_rank_addresses` over many tiles at once.

    ``rank_addresses`` has shape ``(tiles, ranks)``: row ``g`` is one tile's
    per-rank address map. Returns the ``(E, tiles·threads)`` step matrix
    whose columns are tile-major — identical to horizontally concatenating
    each tile's ``thread_rank_addresses`` result, so (for thread counts
    that are warp multiples) feeding it to :func:`stack_warp_steps` equals
    stacking the per-tile matrices one after another.
    """
    rank_addresses = np.asarray(rank_addresses, dtype=np.int64)
    e = check_positive_int(elements_per_thread, "elements_per_thread")
    if rank_addresses.ndim != 2 or rank_addresses.shape[1] % e:
        raise ValidationError(
            f"batched rank addresses of shape {rank_addresses.shape} do not "
            f"divide into (tiles, threads x {e} elements)"
        )
    tiles, ranks = rank_addresses.shape
    threads = ranks // e
    # (tiles, threads, E) -> (E, tiles, threads): step-major, tile-major.
    return (
        rank_addresses.reshape(tiles, threads, e)
        .transpose(2, 0, 1)
        .reshape(e, tiles * threads)
    )


def stack_group_warp_steps(
    step_matrix: np.ndarray,
    num_groups: int,
    warp_size: int,
    return_group_rows: bool = False,
) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
    """Per-group :func:`stack_warp_steps` with trailing-idle-step trimming.

    ``step_matrix`` is ``(steps, num_groups·group_size)``: the lanes of
    ``num_groups`` independent lock-step groups (e.g. one thread block per
    scored tile) recorded side by side, where a group whose lanes all
    converged early holds only negative (inactive) entries in its trailing
    steps. Equivalent to splitting into per-group matrices, dropping each
    group's trailing all-inactive steps, applying :func:`stack_warp_steps`
    to each, and stacking the results in group order — without the
    per-group Python loop.

    With ``return_group_rows=True``, also returns the length-``num_groups``
    int64 array of output rows each group contributed (``kept_steps ·
    warps_per_group``), so callers can split the stacked matrix back into
    per-group chunks (the memoized scoring path does, to cache per-tile
    reports).
    """
    step_matrix = np.asarray(step_matrix, dtype=np.int64)
    if step_matrix.ndim != 2:
        raise ValidationError(
            f"step matrix must be 2-D (steps, lanes), got {step_matrix.shape}"
        )
    num_groups = check_positive_int(num_groups, "num_groups")
    steps, lanes = step_matrix.shape
    if lanes % num_groups:
        raise ValidationError(
            f"lane count {lanes} is not a multiple of {num_groups} groups"
        )
    group_size = lanes // num_groups
    if group_size % warp_size:
        raise ValidationError(
            f"group size {group_size} is not a multiple of warp size {warp_size}"
        )
    warps = group_size // warp_size
    if steps == 0:
        stacked = np.empty((0, warp_size), dtype=np.int64)
        if return_group_rows:
            return stacked, np.zeros(num_groups, dtype=np.int64)
        return stacked

    cube = step_matrix.reshape(steps, num_groups, group_size)
    group_active = (cube >= 0).any(axis=2)  # (steps, num_groups)
    has_any = group_active.any(axis=0)
    # Steps kept per group: up to (and including) its last active step.
    kept = np.where(
        has_any, steps - np.argmax(group_active[::-1], axis=0), 0
    )
    # (group, warp, step, lane) C-order matches per-group stack_warp_steps
    # output (warp-major steps) concatenated in group order.
    by_group = cube.reshape(steps, num_groups, warps, warp_size).transpose(
        1, 2, 0, 3
    )
    keep = np.arange(steps)[None, :] < kept[:, None]  # (groups, steps)
    keep = np.broadcast_to(keep[:, None, :], (num_groups, warps, steps))
    stacked = by_group[keep]
    if return_group_rows:
        return stacked, (kept * warps).astype(np.int64)
    return stacked


def merge_stage_trace(
    rank_addresses: np.ndarray,
    elements_per_thread: int,
    warp_size: int,
) -> list[AccessTrace]:
    """Per-warp merging-stage traces for one merge.

    Threads are grouped into warps of ``warp_size`` in thread order; a
    trailing partial warp is padded with inactive lanes. Returns one trace
    per warp, each with ``E`` steps.
    """
    warp_size = check_positive_int(warp_size, "warp_size")
    matrix = thread_rank_addresses(rank_addresses, elements_per_thread)
    return warp_traces(matrix, warp_size)


def warp_traces(step_matrix: np.ndarray, warp_size: int) -> list[AccessTrace]:
    """Split a ``(steps, num_threads)`` address matrix into per-warp traces.

    Negative addresses mark inactive lanes; a trailing partial warp is
    padded to full width with inactive lanes.
    """
    step_matrix = np.asarray(step_matrix, dtype=np.int64)
    if step_matrix.ndim != 2:
        raise ValidationError(
            f"step matrix must be 2-D (steps, threads), got {step_matrix.shape}"
        )
    steps, threads = step_matrix.shape
    num_warps = -(-threads // warp_size)
    padded = np.full((steps, num_warps * warp_size), -1, dtype=np.int64)
    padded[:, :threads] = step_matrix
    return [
        AccessTrace.from_dense(padded[:, k * warp_size : (k + 1) * warp_size])
        for k in range(num_warps)
    ]
