"""Merge Path partitioning: diagonal (mutual) binary searches.

For sorted lists ``A`` and ``B`` and a *diagonal* ``d`` (an output rank),
the merge-path split point is the unique ``i`` such that the first ``d``
elements of the stable merge consist of ``A[:i]`` and ``B[:d−i]``. Stability
follows Thrust: on equal keys, ``A`` elements come first.

Two entry points:

* :func:`merge_path_search` — one diagonal, pure Python ints, the reference
  implementation the property tests check everything against;
* :func:`partition_with_trace` — all threads' diagonals at once, vectorized,
  recording every probe address so the partition stage's bank conflicts
  (the paper's ``β₁``) can be scored.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dmm.trace import NO_ACCESS, AccessTrace
from repro.errors import ValidationError
from repro.utils.validation import check_nonnegative_int

__all__ = ["PartitionResult", "merge_path_partition", "merge_path_search", "partition_with_trace"]


def merge_path_search(a: np.ndarray, b: np.ndarray, diagonal: int) -> tuple[int, int]:
    """Split point ``(i, j)`` with ``i + j = diagonal`` for a stable merge.

    ``i`` is the number of elements the first ``diagonal`` output slots take
    from ``a`` (ties resolved a-first, matching Thrust).

    Examples
    --------
    >>> import numpy as np
    >>> merge_path_search(np.array([1, 3, 5]), np.array([2, 4, 6]), 3)
    (2, 1)
    """
    a = np.asarray(a)
    b = np.asarray(b)
    diagonal = check_nonnegative_int(diagonal, "diagonal")
    if diagonal > a.size + b.size:
        raise ValidationError(
            f"diagonal {diagonal} exceeds |A| + |B| = {a.size + b.size}"
        )
    lo = max(0, diagonal - b.size)
    hi = min(diagonal, a.size)
    while lo < hi:
        mid = (lo + hi) // 2
        # Stable (a-first) split: a[mid] belongs to the first `diagonal`
        # outputs iff a[mid] <= b[diagonal - mid - 1].
        if a[mid] <= b[diagonal - mid - 1]:
            lo = mid + 1
        else:
            hi = mid
    return lo, diagonal - lo


def merge_path_partition(
    a: np.ndarray, b: np.ndarray, num_parts: int
) -> tuple[np.ndarray, np.ndarray]:
    """Split points for ``num_parts`` equal quantiles of the merged output.

    Returns arrays ``ai``, ``bj`` of length ``num_parts + 1``: part ``p``
    merges ``a[ai[p]:ai[p+1]]`` with ``b[bj[p]:bj[p+1]]``. The total length
    must divide evenly by ``num_parts``.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if num_parts < 1:
        raise ValidationError(f"num_parts must be >= 1, got {num_parts}")
    total = a.size + b.size
    if total % num_parts:
        raise ValidationError(
            f"|A| + |B| = {total} is not divisible by num_parts = {num_parts}"
        )
    quantile = total // num_parts
    diagonals = np.arange(num_parts + 1, dtype=np.int64) * quantile
    ai, bj, _ = partition_with_trace(a, b, diagonals)
    return ai, bj


@dataclass(frozen=True)
class PartitionResult:
    """Vectorized partition output plus its probe trace."""

    a_index: np.ndarray
    b_index: np.ndarray
    trace: AccessTrace


def partition_many_with_trace(
    values: np.ndarray,
    a_base: np.ndarray,
    a_len: np.ndarray,
    b_base: np.ndarray,
    b_len: np.ndarray,
    diagonals: np.ndarray,
    trace_a_base: np.ndarray | None = None,
    trace_b_base: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Many independent merge-path searches over windows of one flat buffer.

    Each *lane* ``t`` searches its own ``(A, B)`` pair: ``A`` is
    ``values[a_base[t] : a_base[t] + a_len[t]]`` (sorted), ``B`` likewise,
    and ``diagonals[t]`` is the output rank to split at. This is the shape
    of the block-level merge rounds, where one thread block hosts many
    sub-warp merge groups and every thread bisects simultaneously in
    lock-step.

    ``trace_a_base`` / ``trace_b_base`` translate probe indices into the
    *addresses* recorded in the trace (tile-local shared-memory addresses,
    which differ from the flat-buffer indices when the trace is scored
    against a per-tile address space); they default to ``a_base``/``b_base``.

    Returns
    -------
    (a_split, dense_steps):
        Per-lane ``A`` split counts, and the dense ``(steps, lanes)`` probe
        address matrix (``NO_ACCESS`` where a lane's search had converged).
        Each bisection iteration contributes two steps (the ``A`` probe and
        the ``B`` probe — separate load instructions).
    """
    values = np.asarray(values)
    a_base = np.asarray(a_base, dtype=np.int64)
    a_len = np.asarray(a_len, dtype=np.int64)
    b_base = np.asarray(b_base, dtype=np.int64)
    b_len = np.asarray(b_len, dtype=np.int64)
    diagonals = np.asarray(diagonals, dtype=np.int64)
    if trace_a_base is None:
        trace_a_base = a_base
    if trace_b_base is None:
        trace_b_base = b_base
    trace_a_base = np.asarray(trace_a_base, dtype=np.int64)
    trace_b_base = np.asarray(trace_b_base, dtype=np.int64)

    lanes = diagonals.size
    shapes = {
        a_base.shape, a_len.shape, b_base.shape, b_len.shape,
        diagonals.shape, trace_a_base.shape, trace_b_base.shape,
    }
    if shapes != {(lanes,)}:
        raise ValidationError("all per-lane arrays must share one 1-D shape")
    if np.any(diagonals < 0) or np.any(diagonals > a_len + b_len):
        raise ValidationError("diagonals out of range [0, |A| + |B|]")

    lo = np.maximum(0, diagonals - b_len)
    hi = np.minimum(diagonals, a_len)

    # A lane's bisection interval of span s converges in at most
    # bit_length(s) iterations (two probe steps each); preallocating the
    # dense probe matrix avoids a per-iteration row list + vstack, and
    # compressing to the still-searching lane set keeps late iterations
    # (most lanes already converged) from paying full-width passes.
    max_span = int((hi - lo).max()) if lanes else 0
    dense = np.full(
        (2 * max_span.bit_length(), lanes), NO_ACCESS, dtype=np.int64
    )
    row = 0
    idx = np.nonzero(lo < hi)[0]
    while idx.size:
        l = lo[idx]
        h = hi[idx]
        mid = (l + h) // 2
        b_probe = diagonals[idx] - mid - 1

        dense[row, idx] = trace_a_base[idx] + mid
        dense[row + 1, idx] = trace_b_base[idx] + b_probe
        row += 2

        take_a = values[a_base[idx] + mid] <= values[b_base[idx] + b_probe]
        new_lo = np.where(take_a, mid + 1, l)
        new_hi = np.where(take_a, h, mid)
        lo[idx] = new_lo
        hi[idx] = new_hi
        idx = idx[new_lo < new_hi]

    return lo, dense[:row]


def partition_with_trace(
    a: np.ndarray,
    b: np.ndarray,
    diagonals: np.ndarray,
    a_base: int = 0,
    b_base: int = 0,
) -> tuple[np.ndarray, np.ndarray, AccessTrace]:
    """All diagonals' split points at once, with probe addresses recorded.

    Each bisection iteration issues two lock-step accesses per active lane —
    a probe of ``a[mid]`` and of ``b[d − mid − 1]`` — recorded as two trace
    steps (they are separate load instructions on the GPU). Lanes whose
    search has converged go inactive.

    Parameters
    ----------
    a, b:
        The sorted lists.
    diagonals:
        Output ranks to split at (one per searching thread).
    a_base, b_base:
        Address offsets of the two lists within the memory the trace is
        scored against (shared-memory tile or global buffer).

    Returns
    -------
    (a_index, b_index, trace)
    """
    a = np.asarray(a)
    b = np.asarray(b)
    diagonals = np.asarray(diagonals, dtype=np.int64)
    if diagonals.ndim != 1:
        raise ValidationError("diagonals must be 1-D")
    if diagonals.size and (
        int(diagonals.min()) < 0 or int(diagonals.max()) > a.size + b.size
    ):
        raise ValidationError("diagonals out of range [0, |A| + |B|]")

    lo = np.maximum(0, diagonals - b.size).astype(np.int64)
    hi = np.minimum(diagonals, a.size).astype(np.int64)

    lanes = diagonals.size
    max_span = int((hi - lo).max()) if lanes else 0
    dense = np.full(
        (2 * max_span.bit_length(), lanes), NO_ACCESS, dtype=np.int64
    )
    row = 0
    while True:
        active = lo < hi
        if not active.any():
            break
        mid = (lo + hi) // 2
        b_probe = diagonals - mid - 1

        dense[row, active] = a_base + mid[active]
        dense[row + 1, active] = b_base + b_probe[active]
        row += 2

        take_a = np.zeros(lanes, dtype=bool)
        take_a[active] = a[mid[active]] <= b[b_probe[active]]
        lo = np.where(take_a, mid + 1, lo)
        hi = np.where(active & ~take_a, mid, hi)

    trace = AccessTrace.from_dense(dense[:row])
    return lo, diagonals - lo, trace
