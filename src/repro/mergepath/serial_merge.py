"""Stable pairwise merging as interleavings.

The key representation trick of the whole reproduction: a stable merge of
sorted ``A`` and ``B`` is fully described by its **interleaving** — a boolean
array ``src_a`` over output ranks, ``True`` where the element came from
``A``. From the interleaving we can

* reconstruct the merged values (:func:`merge_values` uses it implicitly),
* compute the *address* each output rank was read from
  (:func:`interleaving_addresses`) — which is all the conflict model needs,
* and, crucially for the adversary, run the merge *backwards*
  (:func:`unmerge`): split a sorted array into the two inputs that would
  merge into it with a prescribed interleaving.

All functions are O(n) or O(n log n) NumPy, no Python-level loops.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError

__all__ = [
    "interleaving_addresses",
    "merge_values",
    "stable_merge_interleaving",
    "unmerge",
]


def _check_sorted(x: np.ndarray, name: str) -> np.ndarray:
    x = np.asarray(x)
    if x.ndim != 1:
        raise ValidationError(f"{name} must be 1-D, got shape {x.shape}")
    if x.size > 1 and np.any(x[1:] < x[:-1]):
        raise ValidationError(f"{name} must be sorted nondecreasing")
    return x


def stable_merge_interleaving(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Interleaving of the stable (a-first) merge of two sorted lists.

    Returns a bool array of length ``|A| + |B|``; ``True`` marks output
    ranks taken from ``a``.

    Examples
    --------
    >>> import numpy as np
    >>> stable_merge_interleaving(np.array([1, 4]), np.array([2, 3]))
    array([ True, False, False,  True])
    """
    a = _check_sorted(a, "a")
    b = _check_sorted(b, "b")
    # Output rank of a[k] = k + (# of b-elements strictly smaller), because
    # ties resolve a-first; rank of b[m] = m + (# of a-elements <= b[m]).
    rank_a = np.arange(a.size, dtype=np.int64) + np.searchsorted(b, a, side="left")
    src_a = np.zeros(a.size + b.size, dtype=bool)
    src_a[rank_a] = True
    return src_a


def merge_values(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """The stable merge of two sorted lists (values)."""
    a = _check_sorted(a, "a")
    b = _check_sorted(b, "b")
    src_a = stable_merge_interleaving(a, b)
    out = np.empty(a.size + b.size, dtype=np.result_type(a, b))
    out[src_a] = a
    out[~src_a] = b
    return out


def interleaving_addresses(
    src_a: np.ndarray, a_base: int = 0, b_base: int | None = None
) -> np.ndarray:
    """Address each output rank is read from, given the interleaving.

    ``A`` occupies addresses ``a_base, a_base+1, …``; ``B`` occupies
    ``b_base, …``. By default ``B`` sits immediately after ``A`` (the
    shared-memory tile layout of the block merge kernels: keys of ``A``
    then keys of ``B``).

    >>> import numpy as np
    >>> src = np.array([True, False, False, True])
    >>> interleaving_addresses(src).tolist()
    [0, 2, 3, 1]
    """
    src_a = np.asarray(src_a, dtype=bool)
    if src_a.ndim != 1:
        raise ValidationError("interleaving must be 1-D")
    num_a = int(src_a.sum())
    if b_base is None:
        b_base = a_base + num_a
    # Within-list consumption index: how many same-list elements precede me.
    csum = np.cumsum(src_a)
    idx_in_a = csum - 1  # valid where src_a
    idx_in_b = np.arange(src_a.size, dtype=np.int64) - csum  # valid where ~src_a
    return np.where(src_a, a_base + idx_in_a, b_base + idx_in_b).astype(np.int64)


def unmerge(merged: np.ndarray, src_a: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Run a merge backwards: split ``merged`` per the interleaving.

    If ``merged`` is sorted, then ``merge_values(a, b) == merged`` and —
    provided the keys are distinct — ``stable_merge_interleaving(a, b) ==
    src_a``. This is the engine of the adversarial input construction
    (DESIGN.md §5): prescribe the interleaving at each merge round, then
    unmerge the sorted output top-down into the initial permutation.

    >>> import numpy as np
    >>> a, b = unmerge(np.array([10, 20, 30, 40]),
    ...               np.array([True, False, False, True]))
    >>> a.tolist(), b.tolist()
    ([10, 40], [20, 30])
    """
    merged = np.asarray(merged)
    src_a = np.asarray(src_a, dtype=bool)
    if merged.shape != src_a.shape:
        raise ValidationError(
            f"merged shape {merged.shape} != interleaving shape {src_a.shape}"
        )
    return merged[src_a], merged[~src_a]
