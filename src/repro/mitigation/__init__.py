"""Bank-conflict mitigations — the other side of the paper's argument.

Section I recalls that *bank-conflict-free* algorithms avoid worst cases at
the price of extra complexity; the canonical lightweight mitigation is the
Dotsenko et al. **co-prime padding** trick the paper cites: skew the shared
memory layout so logical column walks no longer pile onto one bank. This
package implements it for the merge sort simulator, which lets the bench
suite quantify both sides of the trade-off against the constructed inputs:

* padding neutralizes the adversarial alignment (conflicts collapse to the
  random-input level, input-independently), but
* it inflates the shared-memory tile, which costs occupancy — exactly the
  "comes at a price" the paper warns about.
"""

from repro.mitigation.padding import (
    pad_addresses,
    padded_size,
    padded_shared_bytes,
)

__all__ = ["pad_addresses", "padded_shared_bytes", "padded_size"]
