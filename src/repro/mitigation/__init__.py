"""Bank-conflict mitigations — the other side of the paper's argument.

Section I recalls that *bank-conflict-free* algorithms avoid worst cases
at the price of extra complexity; this package makes the defenses
first-class. Four backends sit behind one :class:`Mitigation` contract
(address remap + shared-memory cost model) and a registry mirroring the
execution-engine one:

* ``none`` — identity layout, the paper's full attack surface;
* ``padding`` — the Dotsenko et al. co-prime padding trick the paper
  cites: neutralizes adversarial alignment at an occupancy price;
* ``cfree-sort`` — the Sitchinava–Weichert bank-conflict-free sorting
  layout (arXiv:1306.5076): bank = lane, zero conflicts by construction;
* ``cfree-permute`` — Afshani–Sitchinava conflict-free permuting
  (arXiv:1507.01391): same guarantee via a double-pitch staging buffer,
  at twice the footprint.

Every scoring path (vectorized, memoized, fused, analytic-gated), the
sweep runner, the service protocol, and the CLI dispatch through
:func:`create_mitigation` / :func:`reconcile_mitigation`; the
``matrix`` experiment (``repro-mergesort matrix``) crosses the backends
against every input family and sort backend. The original padding
helpers remain importable from here unchanged.
"""

from repro.mitigation.base import Mitigation
from repro.mitigation.padding import (
    pad_addresses,
    padded_size,
    padded_shared_bytes,
)
from repro.mitigation.registry import (
    DEFAULT_MITIGATION,
    MITIGATION_MODES,
    check_mitigation,
    create_mitigation,
    mitigation_names,
    reconcile_mitigation,
    register_mitigation,
)

__all__ = [
    "DEFAULT_MITIGATION",
    "MITIGATION_MODES",
    "Mitigation",
    "check_mitigation",
    "create_mitigation",
    "mitigation_names",
    "pad_addresses",
    "padded_shared_bytes",
    "padded_size",
    "reconcile_mitigation",
    "register_mitigation",
]
