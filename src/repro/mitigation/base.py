"""The :class:`Mitigation` contract every defense backend implements.

A mitigation is a *shared-memory layout policy*: it decides where each
logical tile index physically lands (and therefore which bank services
it) plus what the layout costs in shared-memory footprint. The simulator
records logical tile indices everywhere; a mitigation's :meth:`remap`
is applied to the recorded dense warp-step matrices *before* conflict
scoring, exactly where ``pad_addresses`` used to be hard-wired.

The contract has four load-bearing pieces:

``remap(dense, warp_size)``
    Map a dense ``(rows, warp_size)`` step matrix of logical addresses
    to physical addresses. Columns are warp lanes; negative entries are
    inactive lanes and must pass through unchanged. Lane-aware schemes
    (the cfree backends) key off the *column index*, which is stable
    under the memoized path's tile-subset stacking — a remap must never
    depend on the global row position or memo bit-identity breaks.

``shared_bytes(config)``
    Physical shared-memory footprint of one block tile under the
    layout. This is the occupancy side of the trade-off: it feeds
    :func:`repro.gpu.occupancy.occupancy` through
    :class:`~repro.bench.runner.SweepRunner`.

``analytic_supported``
    Whether the closed-form analytic engine models this layout.
    ``scoring="analytic"`` with an unsupported mitigation is a typed
    :class:`~repro.errors.ValidationError` — matrix cells must never
    report closed-form numbers for layouts the model doesn't cover.

``native_padding``
    ``int`` when the layout is expressible as Dotsenko padding (``0``
    for ``none``), which keeps the compiled fused kernels eligible;
    ``None`` forces the numpy fused path, which scores the explicitly
    remapped dense matrices.

Backends register themselves with
:func:`repro.mitigation.registry.register_mitigation` and are summoned
by spec string (``"none"``, ``"padding:1"``, ``"cfree-sort"``,
``"cfree-permute"``) via
:func:`~repro.mitigation.registry.create_mitigation`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.sort.config import SortConfig

__all__ = ["Mitigation"]


class Mitigation(ABC):
    """Shared-memory layout policy: address remap + cost model.

    Instances must be immutable, hashable, and picklable — they ride
    inside sorter-cache keys, frozen work items, and pool workers. The
    canonical :attr:`spec` string is the wire/fingerprint form; two
    instances with equal specs must behave identically.
    """

    #: Registry name of the backend family (``"padding"`` for every pad
    #: width); :attr:`spec` is the fully-parameterized form.
    name: str = "mitigation"

    #: Whether the closed-form analytic engine models this layout.
    analytic_supported: bool = False

    #: Dotsenko pad width when the layout is plain padding (``0`` means
    #: the identity layout), else ``None`` — which routes fused scoring
    #: to the numpy path so the remap is applied explicitly.
    native_padding: int | None = None

    @property
    @abstractmethod
    def spec(self) -> str:
        """Canonical spec string (``"padding:2"``), used in memo
        contexts, cache keys, wire payloads, and CLI output."""

    @abstractmethod
    def remap(self, dense: np.ndarray, warp_size: int) -> np.ndarray:
        """Physical addresses for a dense ``(..., warp_size)`` logical
        step matrix; negative (inactive-lane) entries pass through."""

    @abstractmethod
    def shared_bytes(self, config: SortConfig) -> int:
        """Physical shared-memory bytes one block tile occupies."""

    # -- uniform plumbing ----------------------------------------------

    def describe(self) -> str:
        """One human-readable line for tables and ``--help`` text."""
        return self.spec

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(spec={self.spec!r})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Mitigation):
            return NotImplemented
        return self.spec == other.spec

    def __hash__(self) -> int:
        return hash((type(self).__module__, "mitigation", self.spec))
