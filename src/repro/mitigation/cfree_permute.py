"""Afshani–Sitchinava conflict-free permuting layout (arXiv:1507.01391).

Their result: any permutation can be realized in shared memory without
bank conflicts by staging it through a double-buffered, bank-aligned
scratch layout. The simulator models the data layout that makes the
permutation conflict-free: lane ``j`` owns a bank-aligned column in a
*double-pitch* buffer — element ``a`` lands at
``(a // w) · 2w + j`` — so reads drain one half-row while writes fill
the other, and every simultaneous warp access still touches ``w``
distinct banks (``phys mod w == j``). Zero conflicts for any access
pattern, same as :mod:`repro.mitigation.cfree_sort`, but at twice the
shared-memory pitch: a tile of ``T`` elements costs
``ceil(T / w) · 2w`` physical cells, which is the occupancy price the
matrix experiment charges this backend.

Like the cfree-sort layout, the remap keys off the dense-matrix column
index only — stable under the memoized path's tile-subset re-stacking —
and is outside both the analytic model and the compiled padded kernels.
"""

from __future__ import annotations

import numpy as np

from repro.mitigation.base import Mitigation
from repro.mitigation.cfree_sort import lane_aligned_remap, lane_aligned_size
from repro.sort.config import SortConfig

__all__ = ["CFreePermuteMitigation"]


class CFreePermuteMitigation(Mitigation):
    """Double-pitch bank = lane layout; conflict-free permuting."""

    name = "cfree-permute"
    analytic_supported = False
    native_padding: int | None = None

    @property
    def spec(self) -> str:
        return "cfree-permute"

    def remap(self, dense: np.ndarray, warp_size: int) -> np.ndarray:
        return lane_aligned_remap(dense, warp_size, pitch_rows=2)

    def shared_bytes(self, config: SortConfig) -> int:
        return (
            lane_aligned_size(
                config.tile_size, config.warp_size, pitch_rows=2
            )
            * config.element_bytes
        )

    def describe(self) -> str:
        return "cfree-permute (Afshani–Sitchinava double-buffered columns)"
