"""Sitchinava–Weichert bank-conflict-free sorting layout (arXiv:1306.5076).

Their framework restructures shared-memory access so each lane owns a
private bank-aligned column: element ``a`` touched by lane ``j`` is
stored at physical address ``(a // w) · w + j``. Because
``phys mod w == j`` and the ``w`` lanes of a warp step are distinct by
construction, *every* simultaneous warp access lands on ``w`` distinct
banks — zero conflicts for any access pattern, including all of the
paper's constructed worst-case families.

The price is the framework's restructuring cost, which the simulator
models as the bank-aligned pitch: each logical row of ``w`` elements
occupies a full ``w``-element physical row, so a tile of ``T`` elements
needs ``ceil(T / w) · w`` physical cells. (The lane-ownership scheme
also rules out the closed-form analytic model and the compiled padded
kernels — scoring runs through the numpy dense path, where the remap is
explicit.)

The remap keys off the dense matrix *column index* (the lane), which is
exactly what :func:`repro.dmm.stack_warp_steps` fixes per warp step and
what the memoized path preserves when it re-stacks tile subsets, so
memo bit-identity holds.
"""

from __future__ import annotations

import numpy as np

from repro.mitigation.base import Mitigation
from repro.sort.config import SortConfig

__all__ = ["CFreeSortMitigation", "lane_aligned_remap", "lane_aligned_size"]


def lane_aligned_remap(
    dense: np.ndarray, warp_size: int, *, pitch_rows: int = 1
) -> np.ndarray:
    """Bank = lane remap of a dense ``(..., warp_size)`` step matrix.

    ``phys = (a // w) · pitch_rows · w + lane`` — the lane is the index
    along the trailing axis. Negative (inactive-lane) entries pass
    through unchanged.
    """
    dense = np.asarray(dense, dtype=np.int64)
    if dense.shape[-1] != warp_size:
        raise ValueError(
            "lane-aligned remap needs dense (..., warp_size) matrices: "
            f"got trailing axis {dense.shape[-1]} for warp_size {warp_size}"
        )
    lanes = np.arange(warp_size, dtype=np.int64)
    out = (dense // warp_size) * (pitch_rows * warp_size) + lanes
    return np.where(dense >= 0, out, dense)


def lane_aligned_size(
    logical_size: int, warp_size: int, *, pitch_rows: int = 1
) -> int:
    """Physical cells a lane-aligned tile of ``logical_size`` occupies."""
    if logical_size <= 0:
        return 0
    rows = -(-logical_size // warp_size)
    return rows * pitch_rows * warp_size


class CFreeSortMitigation(Mitigation):
    """Bank = lane layout; conflict-free by construction."""

    name = "cfree-sort"
    analytic_supported = False
    native_padding: int | None = None

    @property
    def spec(self) -> str:
        return "cfree-sort"

    def remap(self, dense: np.ndarray, warp_size: int) -> np.ndarray:
        return lane_aligned_remap(dense, warp_size, pitch_rows=1)

    def shared_bytes(self, config: SortConfig) -> int:
        return (
            lane_aligned_size(
                config.tile_size, config.warp_size, pitch_rows=1
            )
            * config.element_bytes
        )

    def describe(self) -> str:
        return "cfree-sort (Sitchinava–Weichert bank-aligned columns)"
