"""The identity layout — no mitigation, the paper's attack surface.

Logical tile indices *are* physical addresses, so the constructed
worst-case families hit their full conflict factors. This is the
baseline every matrix row is measured against, and the only backend
whose cost model is exactly ``config.shared_bytes_per_block``.
"""

from __future__ import annotations

import numpy as np

from repro.mitigation.base import Mitigation
from repro.sort.config import SortConfig

__all__ = ["NoMitigation"]


class NoMitigation(Mitigation):
    """Identity remap; analytic-eligible; native pad width 0."""

    name = "none"
    analytic_supported = True
    native_padding: int | None = 0

    @property
    def spec(self) -> str:
        return "none"

    def remap(self, dense: np.ndarray, warp_size: int) -> np.ndarray:
        return np.asarray(dense, dtype=np.int64)

    def shared_bytes(self, config: SortConfig) -> int:
        return config.shared_bytes_per_block

    def describe(self) -> str:
        return "none (identity layout, full attack surface)"
