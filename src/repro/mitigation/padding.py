"""Dotsenko-style shared-memory padding.

Logical tile index ``a`` is stored at physical address
``a + (a // w) · pad``: every ``w`` contiguous elements, ``pad`` unused
cells are skipped, rotating subsequent columns across banks. With
``GCD(w, w + pad) = ...`` — for the standard ``pad = 1`` — a logical column
walk ``kw, kw+1, …`` maps to banks ``(k + j) mod w``: the column index
enters the bank, so the adversarial "many threads scanning same-bank
columns" pattern spreads across all banks.

The transform is applied to recorded traces *before* scoring (addresses are
logical tile indices everywhere in the simulator), which models a kernel
whose shared arrays are declared with the padded pitch.
"""

from __future__ import annotations

import numpy as np

from repro.mitigation.base import Mitigation
from repro.sort.config import SortConfig
from repro.utils.validation import check_nonnegative_int, check_power_of_two

__all__ = [
    "PaddingMitigation",
    "pad_addresses",
    "padded_shared_bytes",
    "padded_size",
]


def pad_addresses(addresses: np.ndarray, warp_size: int, padding: int) -> np.ndarray:
    """Map logical tile indices to padded physical addresses.

    Negative entries (inactive lanes) pass through unchanged. ``padding=0``
    is the identity.

    >>> import numpy as np
    >>> pad_addresses(np.array([0, 3, 4, 8, -1]), 4, 1).tolist()
    [0, 3, 5, 10, -1]
    """
    warp_size = check_power_of_two(warp_size, "warp_size")
    padding = check_nonnegative_int(padding, "padding")
    addresses = np.asarray(addresses, dtype=np.int64)
    if padding == 0:
        return addresses
    active = addresses >= 0
    out = addresses.copy()
    out[active] += (addresses[active] // warp_size) * padding
    return out


def padded_size(logical_size: int, warp_size: int, padding: int) -> int:
    """Physical elements needed for a padded tile of ``logical_size``."""
    logical_size = check_nonnegative_int(logical_size, "logical_size")
    warp_size = check_power_of_two(warp_size, "warp_size")
    padding = check_nonnegative_int(padding, "padding")
    if logical_size == 0:
        return 0
    last = logical_size - 1
    return int(last + (last // warp_size) * padding) + 1


def padded_shared_bytes(config: SortConfig, padding: int) -> int:
    """Shared-memory footprint of a padded block tile — the occupancy cost
    of the mitigation."""
    return (
        padded_size(config.tile_size, config.warp_size, padding)
        * config.element_bytes
    )


class PaddingMitigation(Mitigation):
    """Registry backend wrapping the module's padding transform.

    ``PaddingMitigation(pad).remap`` is :func:`pad_addresses` verbatim
    (bit-identity with the legacy path is regression-tested in
    ``tests/mitigation/test_matrix_equivalence.py``), and the analytic
    engine already models Dotsenko padding, so the backend stays
    analytic-eligible and keeps the compiled fused kernels in play via
    :attr:`native_padding`.
    """

    name = "padding"
    analytic_supported = True

    def __init__(self, padding: int = 1) -> None:
        self._padding = check_nonnegative_int(padding, "padding")

    @property
    def padding(self) -> int:
        """Dotsenko pad width: skipped cells per ``warp_size`` stride."""
        return self._padding

    @property
    def native_padding(self) -> int:  # type: ignore[override]
        return self._padding

    @property
    def spec(self) -> str:
        return f"padding:{self._padding}"

    def remap(self, dense: np.ndarray, warp_size: int) -> np.ndarray:
        return pad_addresses(dense, warp_size, self._padding)

    def shared_bytes(self, config: SortConfig) -> int:
        return padded_shared_bytes(config, self._padding)

    def describe(self) -> str:
        return f"padding:{self._padding} (Dotsenko co-prime pad)"
