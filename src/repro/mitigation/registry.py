"""Mitigation registry and the single source of truth for specs.

Mirrors :mod:`repro.engine.registry`: every layer that accepts a
``mitigation`` knob — ``PairwiseMergeSort``, ``SweepRunner``,
``WorkItem``, the service protocol, the CLI — validates it against the
constants here, and the padding/mitigation reconciliation is decided in
exactly one place, :func:`reconcile_mitigation`.

Backends register under family names (``"none"``, ``"padding"``,
``"cfree-sort"``, ``"cfree-permute"``); a *spec string* optionally
parameterizes the family after a colon (``"padding:2"``). Builtin
registration is lazy so importing this module stays cheap and
cycle-free from anywhere in the package.
"""

from __future__ import annotations

import threading
from typing import Callable

from repro.errors import ValidationError
from repro.mitigation.base import Mitigation

__all__ = [
    "DEFAULT_MITIGATION",
    "MITIGATION_MODES",
    "check_mitigation",
    "create_mitigation",
    "mitigation_names",
    "reconcile_mitigation",
    "register_mitigation",
]

#: The one default every entry point shares. A bare ``padding=N`` knob
#: with the default mitigation reconciles to ``"padding:N"`` — the
#: legacy surface keeps working unchanged.
DEFAULT_MITIGATION = "none"

#: Builtin backend families, in table/CLI display order.
MITIGATION_MODES = ("none", "padding", "cfree-sort", "cfree-permute")


# -- registry ---------------------------------------------------------------

_FACTORIES: dict[str, Callable[..., Mitigation]] = {}
_BUILTINS_LOADED = False
_BUILTINS_GUARD = threading.RLock()


def register_mitigation(
    name: str, factory: Callable[..., Mitigation], *, replace: bool = False
) -> None:
    """Register a mitigation factory under a family ``name``.

    ``factory()`` (or ``factory(param)`` for parameterized families like
    padding) must return a :class:`~repro.mitigation.base.Mitigation`.
    Re-registering an existing name requires ``replace=True`` so typos
    do not silently shadow builtins.
    """
    if not replace and name in _FACTORIES:
        raise ValidationError(
            f"mitigation {name!r} is already registered (pass replace=True "
            "to override)"
        )
    _FACTORIES[name] = factory


def _ensure_builtins() -> None:
    """Import the builtin backend modules (registered below).

    Thread-safe and reentrant for the same reasons as the engine
    registry's loader: shard-fleet workers boot in parallel threads, and
    the flag only flips once every builtin is in the table.
    """
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    with _BUILTINS_GUARD:
        if _BUILTINS_LOADED:
            return
        from repro.mitigation.cfree_permute import CFreePermuteMitigation
        from repro.mitigation.cfree_sort import CFreeSortMitigation
        from repro.mitigation.none import NoMitigation
        from repro.mitigation.padding import PaddingMitigation

        _FACTORIES.setdefault("none", lambda: NoMitigation())
        _FACTORIES.setdefault(
            "padding", lambda padding=1: PaddingMitigation(padding)
        )
        _FACTORIES.setdefault("cfree-sort", lambda: CFreeSortMitigation())
        _FACTORIES.setdefault(
            "cfree-permute", lambda: CFreePermuteMitigation()
        )
        _BUILTINS_LOADED = True


def mitigation_names() -> tuple[str, ...]:
    """Registered mitigation family names, sorted."""
    _ensure_builtins()
    return tuple(sorted(_FACTORIES))


def _split_spec(spec: str, field: str) -> tuple[str, str | None]:
    if not isinstance(spec, str) or not spec:
        raise ValidationError(f"{field} must be a non-empty spec string")
    name, sep, param = spec.partition(":")
    return name, (param if sep else None)


def create_mitigation(spec: str, *, field: str = "mitigation") -> Mitigation:
    """Instantiate a backend from a spec string.

    ``"none"``, ``"padding"`` (pad 1), ``"padding:2"``, ``"cfree-sort"``,
    ``"cfree-permute"`` — family name, optionally ``:parameter``. Raises
    a :class:`~repro.errors.ValidationError` naming the known families
    for anything else, the same message from every layer (parse-time in
    the service protocol, construction-time in the sorters).
    """
    _ensure_builtins()
    name, param = _split_spec(spec, field)
    factory = _FACTORIES.get(name)
    if factory is None:
        known = ", ".join(sorted(_FACTORIES))
        raise ValidationError(
            f"unknown {field} {spec!r}; known backends: {known}"
        )
    if param is None:
        return factory()
    if name != "padding":
        raise ValidationError(
            f"{field} backend {name!r} takes no parameter; got {spec!r}"
        )
    try:
        width = int(param)
    except ValueError:
        raise ValidationError(
            f"{field} padding width must be an integer; got {spec!r}"
        ) from None
    if width < 0:
        raise ValidationError(
            f"{field} padding width must be >= 0; got {spec!r}"
        )
    return factory(width)


def check_mitigation(value: str, *, field: str = "mitigation") -> str:
    """Validate a spec string, returning its canonical form.

    Canonicalization matters for fingerprints: ``"padding"`` becomes
    ``"padding:1"`` so the wire form, the memo context, and the cache
    key all agree on one spelling per layout.
    """
    return create_mitigation(value, field=field).spec


def reconcile_mitigation(
    mitigation: str | Mitigation | None,
    padding: int = 0,
    *,
    field: str = "mitigation",
) -> Mitigation:
    """THE padding/mitigation reconciliation, shared by every layer.

    * default mitigation + ``padding=N>0`` → ``padding:N`` (the legacy
      knob keeps working);
    * a padding-family mitigation + a ``padding`` knob must agree on the
      width — disagreeing is a :class:`~repro.errors.ValidationError`,
      not a silent preference;
    * any other mitigation + ``padding>0`` is contradictory and raises.
    """
    if isinstance(mitigation, Mitigation):
        resolved = mitigation
    else:
        spec = DEFAULT_MITIGATION if mitigation is None else mitigation
        resolved = create_mitigation(spec, field=field)
    if padding:
        if resolved.spec == DEFAULT_MITIGATION:
            return create_mitigation(f"padding:{padding}", field=field)
        if resolved.native_padding != padding:
            raise ValidationError(
                f"conflicting layout request: padding={padding} with "
                f"{field}={resolved.spec!r}"
            )
    return resolved
