"""A long-lived generation-and-scoring service for the reproduction.

``repro-mergesort serve`` starts an asyncio daemon (hand-rolled
HTTP/1.1, stdlib only) that amortizes the library's cold-start costs —
calibration sorts, the conflict memo, the on-disk bench cache, the
sweep worker pool — across every request of its lifetime, with
single-flight request coalescing, bounded-admission backpressure
(HTTP 429), per-request deadlines, and graceful SIGTERM drain.

See :mod:`repro.service.server` for the daemon,
:mod:`repro.service.client` for the matching blocking client, and
``docs/SERVICE.md`` for the endpoint reference and ops runbook.
"""

from repro.service.batching import AdmissionGate, SingleFlight
from repro.service.client import ServiceClient, SimulateReply, SweepReply
from repro.service.protocol import (
    PROTOCOL_VERSION,
    ConstructRequest,
    SimulateRequest,
    SweepRequest,
)
from repro.service.server import (
    ReproService,
    ServiceConfig,
    run_service,
    serve_forever,
)
from repro.service.stats import ServiceStats

__all__ = [
    "AdmissionGate",
    "ConstructRequest",
    "PROTOCOL_VERSION",
    "ReproService",
    "ServiceClient",
    "ServiceConfig",
    "ServiceStats",
    "SimulateReply",
    "SimulateRequest",
    "SingleFlight",
    "SweepReply",
    "SweepRequest",
    "run_service",
    "serve_forever",
]
