"""Single-flight request coalescing and bounded admission.

The batching layer is what makes the daemon cheaper than ``N`` cold CLI
invocations even under bursty identical traffic:

* :class:`SingleFlight` — identical in-flight requests (same
  content-addressed fingerprint, the ones :mod:`repro.bench.cache`
  already computes) share one underlying computation. The first caller
  for a key becomes the *leader* and runs the work; everyone else joins
  the leader's future. Joining is race-free because all bookkeeping
  happens between awaits on the single event loop.
* :class:`AdmissionGate` — a bounded counter of admitted leaders. When
  full, new work is rejected immediately (HTTP 429 + ``Retry-After``)
  instead of queueing unboundedly; coalesced waiters never consume a
  slot (they cost nothing to serve).
* :class:`ClientQuotas` — per-client token buckets (requests per
  minute), so one chatty client cannot starve the shared admission
  queue. Clients identify via the ``X-Client-Id`` header or fall back
  to their peer address.

A waiter that times out abandons only its own wait — the leader's
computation is shielded and keeps running for the remaining waiters and
for the admission ledger.
"""

from __future__ import annotations

import asyncio
import time
from typing import Awaitable, Callable

from repro.service.stats import ServiceStats

__all__ = ["AdmissionGate", "ClientQuotas", "SingleFlight"]


class AdmissionGate:
    """Bounded count of concurrently admitted computations."""

    def __init__(self, limit: int, stats: ServiceStats):
        if limit < 1:
            raise ValueError(f"admission limit must be >= 1, got {limit}")
        self.limit = limit
        self._stats = stats

    def try_enter(self) -> bool:
        """Claim a slot; ``False`` (caller should 429) when saturated."""
        if self._stats.in_flight >= self.limit:
            self._stats.rejected += 1
            return False
        self._stats.note_admitted()
        return True

    def exit(self) -> None:
        """Release a previously claimed slot."""
        self._stats.note_released()


class ClientQuotas:
    """Per-client token buckets: at most ``per_minute`` compute requests
    per client per minute, refilled continuously.

    Buckets start full (a burst up to the full minute's allowance is
    fine) and refill at ``per_minute / 60`` tokens per second. All
    bookkeeping happens on the event loop, so no locking. The client
    table is bounded: once it outgrows ``max_clients``, idle buckets
    (refilled back to full) are dropped — they are indistinguishable
    from never-seen clients.
    """

    def __init__(
        self,
        per_minute: int,
        stats: ServiceStats,
        *,
        max_clients: int = 4096,
        clock: Callable[[], float] = time.monotonic,
    ):
        if per_minute < 1:
            raise ValueError(f"quota must be >= 1/minute, got {per_minute}")
        self.per_minute = per_minute
        self.rate = per_minute / 60.0
        self.max_clients = max_clients
        self._stats = stats
        self._clock = clock
        #: client id -> (tokens, last refill timestamp)
        self._buckets: dict[str, tuple[float, float]] = {}

    def _refill(self, client: str, now: float) -> float:
        tokens, last = self._buckets.get(client, (float(self.per_minute), now))
        return min(float(self.per_minute), tokens + (now - last) * self.rate)

    def try_consume(self, client: str) -> float | None:
        """Spend one token; ``None`` when admitted, else seconds to wait.

        The returned wait is how long until one token refills — callers
        surface it as ``Retry-After`` on the 429.
        """
        now = self._clock()
        tokens = self._refill(client, now)
        if tokens < 1.0:
            self._stats.quota_rejected += 1
            return (1.0 - tokens) / self.rate
        self._buckets[client] = (tokens - 1.0, now)
        if len(self._buckets) > self.max_clients:
            self._evict_idle(now)
        return None

    def _evict_idle(self, now: float) -> None:
        full = float(self.per_minute)
        for client in [
            c for c in self._buckets if self._refill(c, now) >= full
        ]:
            del self._buckets[client]


class SingleFlight:
    """Coalesce identical in-flight computations by fingerprint."""

    def __init__(self, stats: ServiceStats):
        self._stats = stats
        self._inflight: dict[str, asyncio.Future] = {}
        #: Leader tasks still running — the graceful-drain wait set.
        self.tasks: set[asyncio.Task] = set()

    def __len__(self) -> int:
        return len(self._inflight)

    async def run(
        self,
        key: str,
        start: Callable[[], Awaitable],
        *,
        gate: AdmissionGate,
        timeout: float | None,
    ):
        """Run (or join) the computation for ``key``.

        ``start`` is invoked only by the leader and must return an
        awaitable producing the result. Raises
        :class:`asyncio.TimeoutError` if *this* caller's deadline
        expires (the shared computation keeps running), and re-raises
        whatever the computation raised for every caller that joined it.
        Returns ``(result, coalesced)``.

        Raises :class:`BlockingIOError` when the admission gate is full
        — the caller maps this to HTTP 429. The check happens before the
        key is published, so a rejected leader leaves no trace for later
        identical requests to join.
        """
        fut = self._inflight.get(key)
        if fut is not None:
            self._stats.coalesced += 1
            result = await asyncio.wait_for(asyncio.shield(fut), timeout)
            return result, True

        # No await between the lookup above and the insert below: on a
        # single event loop this makes leader election atomic.
        if not gate.try_enter():
            raise BlockingIOError("admission queue full")
        self._stats.primary += 1
        loop = asyncio.get_running_loop()
        fut = loop.create_future()
        self._inflight[key] = fut
        task = loop.create_task(self._lead(key, fut, start, gate))
        self.tasks.add(task)
        task.add_done_callback(self.tasks.discard)
        result = await asyncio.wait_for(asyncio.shield(fut), timeout)
        return result, False

    async def _lead(
        self,
        key: str,
        fut: asyncio.Future,
        start: Callable[[], Awaitable],
        gate: AdmissionGate,
    ) -> None:
        try:
            result = await start()
        except BaseException as exc:  # noqa: BLE001 - forwarded to waiters
            if not fut.cancelled():
                fut.set_exception(exc)
                # If every waiter timed out before the failure landed,
                # nobody retrieves it; mark it consumed to silence the
                # "exception was never retrieved" warning.
                fut.add_done_callback(lambda f: f.exception())
        else:
            if not fut.cancelled():
                fut.set_result(result)
        finally:
            self._inflight.pop(key, None)
            gate.exit()

    async def drain(self, timeout: float | None) -> bool:
        """Wait for all in-flight leaders; ``True`` if everything finished."""
        if not self.tasks:
            return True
        _, pending = await asyncio.wait(set(self.tasks), timeout=timeout)
        return not pending
