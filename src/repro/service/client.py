"""Small blocking client for the generation-and-scoring daemon.

Used by ``repro-mergesort request`` (and by tests/CI) so consumers can
target a warm long-lived server instead of cold-starting the library.
Transport is stdlib :mod:`http.client`; responses decode back into the
same library types a direct call returns —
:class:`~repro.sort.pairwise.SortResult` from ``/simulate``,
:class:`numpy.ndarray` from ``/construct``,
:class:`~repro.bench.metrics.BenchPoint` lists from ``/sweep`` — so the
two paths are interchangeable (and bit-identical, which the service
tests enforce).

Failures map onto the library's exception hierarchy: HTTP 4xx raises
:class:`~repro.errors.ValidationError` (429 specifically raises
:class:`~repro.errors.BackpressureError` carrying the server's
``Retry-After`` hint) and transport errors or 5xx raise
:class:`~repro.errors.ServiceError`.
"""

from __future__ import annotations

import email.utils
import http.client
import json
import socket
import time
from dataclasses import dataclass
from urllib.parse import urlsplit

import numpy as np

from repro.bench.metrics import BenchPoint
from repro.errors import BackpressureError, ServiceError, ValidationError
from repro.service.protocol import point_from_obj
from repro.sort.pairwise import SortResult
from repro.sort.serialize import array_from_obj, result_from_obj

__all__ = ["ServiceClient", "SimulateReply", "SweepReply", "parse_retry_after"]

#: Backoff (seconds) when a 429 carries no usable ``Retry-After``.
_DEFAULT_RETRY_AFTER = 1.0


def parse_retry_after(header: str | None) -> float:
    """Decode a ``Retry-After`` header into a backoff in seconds.

    RFC 9110 allows either a non-negative integer of seconds or an
    HTTP-date; proxies in the wild also emit junk. A 429 is a
    *backpressure* signal — it must surface as a typed
    :class:`~repro.errors.BackpressureError`, never as a client-side
    ``ValueError`` from ``float(header)`` — so anything unparseable
    falls back to a small default instead of raising.
    """
    if header is None:
        return _DEFAULT_RETRY_AFTER
    header = header.strip()
    try:
        seconds = float(header)
    except ValueError:
        pass
    else:
        # Negative or non-finite values are nonsense; clamp to default.
        if seconds >= 0.0 and seconds == seconds and seconds != float("inf"):
            return seconds
        return _DEFAULT_RETRY_AFTER
    try:
        when = email.utils.parsedate_to_datetime(header)
    except (TypeError, ValueError):
        return _DEFAULT_RETRY_AFTER
    if when is None:
        return _DEFAULT_RETRY_AFTER
    return max(0.0, when.timestamp() - time.time())


@dataclass(frozen=True)
class SimulateReply:
    """Decoded ``/simulate`` response."""

    result: SortResult
    sorted_ok: bool
    coalesced: bool


@dataclass(frozen=True)
class SweepReply:
    """Decoded ``/sweep`` response (points in input-major item order)."""

    points: list[BenchPoint]
    inputs: list[str]
    sizes: list[int]
    coalesced: bool


class ServiceClient:
    """Blocking JSON-over-HTTP client for one daemon.

    Parameters
    ----------
    base_url:
        ``http://host:port`` of a running ``repro-mergesort serve``.
    timeout:
        Socket timeout per request (seconds); should exceed the server's
        per-request deadline so the server, not the client, decides when
        a computation is too slow.
    """

    def __init__(
        self,
        base_url: str = "http://127.0.0.1:8787",
        *,
        timeout: float = 630.0,
        client_id: str | None = None,
    ):
        split = urlsplit(base_url if "//" in base_url else f"http://{base_url}")
        if split.scheme not in ("", "http"):
            raise ValidationError(f"unsupported scheme {split.scheme!r} (http only)")
        if not split.hostname:
            raise ValidationError(f"no host in service URL {base_url!r}")
        self.host = split.hostname
        self.port = split.port or 8787
        self.timeout = timeout
        #: Sent as ``X-Client-Id`` on every request; quota-enabled
        #: servers meter by it (falling back to the peer address).
        self.client_id = client_id

    # -- transport -----------------------------------------------------------

    def _roundtrip(
        self, method: str, path: str, payload: dict | None = None
    ) -> tuple[int, str | None, bytes]:
        """One HTTP exchange → ``(status, retry_after_header, raw_body)``."""
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        headers = {"Content-Type": "application/json"}
        if self.client_id is not None:
            headers["X-Client-Id"] = self.client_id
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )
        try:
            conn.request(method, path, body=body, headers=headers)
            response = conn.getresponse()
            status = response.status
            retry_after = response.getheader("Retry-After")
            raw = response.read()
        except (OSError, socket.timeout, http.client.HTTPException) as exc:
            raise ServiceError(
                f"service at http://{self.host}:{self.port} unreachable: {exc}"
            ) from exc
        finally:
            conn.close()
        return status, retry_after, raw

    def request(self, method: str, path: str, payload: dict | None = None) -> dict:
        """One HTTP round-trip; returns the decoded JSON body."""
        status, retry_after, raw = self._roundtrip(method, path, payload)
        try:
            decoded = json.loads(raw) if raw else {}
        except ValueError:
            decoded = {"error": raw.decode("utf-8", "replace")}
        if status == 429:
            raise BackpressureError(
                decoded.get("error", "server busy"),
                retry_after=parse_retry_after(retry_after),
            )
        if 400 <= status < 500:
            raise ValidationError(
                f"{path}: {decoded.get('error', f'HTTP {status}')}"
            )
        if status >= 500:
            raise ServiceError(
                f"{path}: {decoded.get('error', f'HTTP {status}')}",
                status=status,
            )
        return decoded

    # -- control endpoints ---------------------------------------------------

    def healthz(self) -> dict:
        """Liveness probe."""
        return self.request("GET", "/healthz")

    def stats(self) -> dict:
        """The server's counter snapshot."""
        return self.request("GET", "/stats")

    def metrics(self) -> str:
        """The server's counters in Prometheus text format."""
        status, _, raw = self._roundtrip("GET", "/metrics")
        text = raw.decode("utf-8", "replace")
        if status != 200:
            raise ServiceError(f"/metrics: HTTP {status}: {text}", status=status)
        return text

    def shutdown(self) -> dict:
        """Ask the server to drain and exit."""
        return self.request("POST", "/shutdown")

    # -- job scheduler (shard router only) -----------------------------------

    def submit_job(self, manifest: dict) -> dict:
        """Submit a chunked job manifest; returns ``{"job_id": ...}``."""
        return self.request("POST", "/jobs", manifest)

    def job_status(self, job_id: str) -> dict:
        """Am-I-done probe: chunk counts, and points once complete."""
        return self.request("GET", f"/jobs/{job_id}")

    def wait_for_job(
        self, job_id: str, *, timeout: float = 600.0, poll: float = 0.1
    ) -> dict:
        """Poll :meth:`job_status` until the job reports ``done``."""
        deadline = time.monotonic() + timeout
        while True:
            status = self.job_status(job_id)
            if status.get("done"):
                return status
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {status.get('status')!r} "
                    f"after {timeout:g}s"
                )
            time.sleep(poll)

    # -- compute endpoints ---------------------------------------------------

    def construct(
        self,
        *,
        preset: str | None = None,
        config: dict | None = None,
        tiles: int | None = None,
        num_elements: int | None = None,
        encoding: str = "b64",
    ) -> np.ndarray:
        """Fetch an adversarial permutation."""
        payload = _body(
            preset=preset,
            config=config,
            tiles=tiles,
            num_elements=num_elements,
            encoding=encoding,
        )
        reply = self.request("POST", "/construct", payload)
        values = reply["values"]
        if reply.get("encoding") == "json":
            return np.asarray(values, dtype=np.int64)
        return array_from_obj(values)

    def simulate(
        self,
        *,
        preset: str | None = None,
        config: dict | None = None,
        input: str = "worst-case",
        tiles: int | None = None,
        num_elements: int | None = None,
        score_blocks: int | None = 8,
        seed: int = 0,
        include_values: bool = True,
        memo: bool = True,
        scoring: str | None = None,
        padding: int | None = None,
        mitigation: str | None = None,
    ) -> SimulateReply:
        """Run one instrumented sort on the server.

        ``scoring=None`` leaves the engine choice to the server (its
        default is ``"vectorized"``); pass ``"analytic"`` for the
        closed-form path on constructed families. ``padding`` simulates
        the padded shared-memory layout (server default 0, the stock
        layout); ``mitigation`` selects a registered layout defense by
        spec string (server default ``"none"``).
        """
        payload = _body(
            preset=preset,
            config=config,
            input=input,
            tiles=tiles,
            num_elements=num_elements,
            seed=seed,
            include_values=include_values,
            memo=memo,
            scoring=scoring,
            padding=padding,
            mitigation=mitigation,
        )
        # None means "score every block" (the protocol's explicit null),
        # not "use the server default of 8" — so it must survive _body.
        payload["score_blocks"] = score_blocks
        reply = self.request("POST", "/simulate", payload)
        return SimulateReply(
            result=result_from_obj(reply["result"]),
            sorted_ok=bool(reply["sorted_ok"]),
            coalesced=bool(reply.get("coalesced", False)),
        )

    def sweep(
        self,
        *,
        preset: str | None = None,
        config: dict | None = None,
        device: str = "quadro-m4000",
        inputs: list[str] | None = None,
        sizes: list[int] | None = None,
        max_elements: int | None = None,
        min_elements: int = 0,
        exact_threshold: int = 1 << 20,
        score_blocks: int | None = 8,
        seed: int = 0,
        scoring: str | None = None,
        padding: int | None = None,
        mitigation: str | None = None,
    ) -> SweepReply:
        """Run a grid of bench points on the server.

        ``scoring=None`` leaves the engine choice to the server (its
        default is ``"auto"``: closed-form for analytic-eligible
        constructed-family points, simulated for the rest).
        """
        payload = _body(
            preset=preset,
            config=config,
            device=device,
            inputs=inputs,
            sizes=sizes,
            max_elements=max_elements,
            min_elements=min_elements,
            exact_threshold=exact_threshold,
            seed=seed,
            scoring=scoring,
            padding=padding,
            mitigation=mitigation,
        )
        # As in simulate(): an explicit null means "score every block".
        payload["score_blocks"] = score_blocks
        reply = self.request("POST", "/sweep", payload)
        return SweepReply(
            points=[point_from_obj(p) for p in reply["points"]],
            inputs=list(reply["inputs"]),
            sizes=[int(s) for s in reply["sizes"]],
            coalesced=bool(reply.get("coalesced", False)),
        )


def _body(**fields) -> dict:
    """Drop ``None`` fields so server-side defaults apply."""
    return {name: value for name, value in fields.items() if value is not None}
