"""Prometheus text exposition of the service counters.

``GET /metrics`` on every daemon (and on the shard router) renders the
same counter snapshot ``GET /stats`` serves as JSON, in the Prometheus
text format (version 0.0.4) — plain ``# HELP``/``# TYPE`` preambles and
one sample per line — so a scrape target needs nothing beyond the
daemon itself. The renderer is tolerant by design: it walks whatever
sections are present in the payload (worker daemons and the router
expose slightly different ones) and skips the rest, so one renderer
serves every process in a fleet.

The memo samples come in two flavours: ``repro_memo_*`` is the daemon's
own request-serving memo, while ``repro_memo_process_*`` is the
process-wide aggregate *including deltas absorbed from pool and shard
workers* (see :meth:`repro.dmm.memo.ConflictMemo.absorb_stats`) — the
fleet-inclusive number an operator should graph.
"""

from __future__ import annotations

__all__ = ["CONTENT_TYPE", "render_metrics"]

#: The content type Prometheus scrapers expect for text exposition.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_PREFIX = "repro"


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


class _Lines:
    """Accumulates samples, emitting each metric's preamble once."""

    def __init__(self) -> None:
        self._lines: list[str] = []
        self._declared: set[str] = set()

    def sample(
        self,
        name: str,
        value,
        *,
        kind: str = "counter",
        help: str = "",
        labels: dict | None = None,
    ) -> None:
        if value is None:
            return
        name = f"{_PREFIX}_{name}"
        if name not in self._declared:
            self._declared.add(name)
            if help:
                self._lines.append(f"# HELP {name} {help}")
            self._lines.append(f"# TYPE {name} {kind}")
        label_str = ""
        if labels:
            inner = ",".join(
                f'{key}="{_escape_label(val)}"'
                for key, val in sorted(labels.items())
            )
            label_str = "{" + inner + "}"
        if isinstance(value, bool):
            value = int(value)
        if isinstance(value, float):
            rendered = repr(value)
        else:
            rendered = str(int(value))
        self._lines.append(f"{name}{label_str} {rendered}")

    def render(self) -> str:
        return "\n".join(self._lines) + "\n"


def render_metrics(payload: dict) -> str:
    """Render one ``/stats``-shaped payload as Prometheus text."""
    out = _Lines()
    out.sample(
        "uptime_seconds",
        payload.get("uptime_seconds"),
        kind="gauge",
        help="Seconds since this daemon started.",
    )
    for path, count in sorted(payload.get("requests", {}).items()):
        out.sample(
            "requests_total",
            count,
            help="HTTP requests seen, by path (including rejected ones).",
            labels={"path": path},
        )

    batching = payload.get("batching", {})
    out.sample(
        "coalesce_primary_total",
        batching.get("primary"),
        help="Single-flight leaders that actually ran a computation.",
    )
    out.sample(
        "coalesce_hits_total",
        batching.get("coalesced"),
        help="Requests served by joining an identical in-flight leader.",
    )
    out.sample(
        "queue_depth",
        batching.get("in_flight"),
        kind="gauge",
        help="Computations currently admitted (current queue depth).",
    )
    out.sample(
        "queue_depth_peak",
        batching.get("peak_in_flight"),
        kind="gauge",
        help="High-water mark of admitted computations.",
    )
    out.sample(
        "queue_limit",
        payload.get("queue_limit"),
        kind="gauge",
        help="Admission-gate capacity.",
    )

    backpressure = payload.get("backpressure", {})
    out.sample(
        "rejected_total",
        backpressure.get("rejected"),
        help="429 responses from a full admission queue.",
    )
    out.sample(
        "quota_rejected_total",
        backpressure.get("quota_rejected"),
        help="429 responses from an exhausted per-client quota.",
    )

    for outcome, count in sorted(payload.get("responses", {}).items()):
        out.sample(
            "responses_total",
            count,
            help="Finished requests by outcome.",
            labels={"outcome": outcome},
        )
    for kind, count in sorted(payload.get("executed", {}).items()):
        out.sample(
            "executed_total",
            count,
            help="Computations actually executed (post-coalescing).",
            labels={"kind": kind},
        )
    out.sample(
        "connections_total",
        payload.get("connections"),
        help="TCP connections accepted.",
    )

    for scope, section in (("", "memo"), ("process_", "memo_process")):
        memo = payload.get(section)
        if not memo:
            continue
        what = (
            "this daemon's request-serving memo"
            if not scope
            else "the process-wide aggregate incl. pool/shard workers"
        )
        out.sample(
            f"memo_{scope}hits_total",
            memo.get("hits"),
            help=f"Conflict-memo hits of {what}.",
        )
        out.sample(
            f"memo_{scope}misses_total",
            memo.get("misses"),
            help=f"Conflict-memo misses of {what}.",
        )
        for kind in ("tile", "round"):
            out.sample(
                f"memo_{scope}entries",
                memo.get(f"{kind}_entries"),
                kind="gauge",
                help=f"Retained conflict-memo entries of {what}.",
                labels={"kind": kind},
            )
        out.sample(
            f"memo_{scope}bytes",
            memo.get("stored_bytes"),
            kind="gauge",
            help=f"Approximate retained bytes of {what}.",
        )

    cache = payload.get("bench_cache")
    if cache:
        out.sample(
            "bench_cache_hits_total",
            cache.get("hits"),
            help="On-disk bench-cache hits of this daemon.",
        )
        out.sample(
            "bench_cache_misses_total",
            cache.get("misses"),
            help="On-disk bench-cache misses of this daemon.",
        )
        out.sample(
            "bench_cache_bytes",
            cache.get("total_bytes"),
            kind="gauge",
            help="Bytes currently stored in the on-disk bench cache.",
        )

    # Router-only sections: per-shard routing and scheduler gauges.
    for url, count in sorted(payload.get("shard_requests", {}).items()):
        out.sample(
            "shard_forwarded_total",
            count,
            help="Requests forwarded to each shard.",
            labels={"shard": url},
        )
    for url, up in sorted(payload.get("shard_health", {}).items()):
        out.sample(
            "shard_up",
            up,
            kind="gauge",
            help="Whether the last forward to this shard succeeded.",
            labels={"shard": url},
        )
    # "jobs" is scheduler state on the router but the worker-pool size
    # (an int) on a worker daemon — only the former renders here.
    jobs = payload.get("jobs")
    if isinstance(jobs, dict):
        for state, count in sorted(jobs.items()):
            out.sample(
                "jobs",
                count,
                kind="gauge",
                help="Scheduler jobs by state.",
                labels={"state": state},
            )
    chunks = payload.get("chunks")
    if isinstance(chunks, dict):
        for state, count in sorted(chunks.items()):
            out.sample(
                "job_chunks",
                count,
                kind="gauge",
                help="Scheduler chunks by state, across all jobs.",
                labels={"state": state},
            )
    out.sample(
        "chunk_retries_total",
        payload.get("chunk_retries"),
        help="Chunk submissions requeued after a worker failure.",
    )
    return out.render()
