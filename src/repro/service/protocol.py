"""Wire protocol of the generation-and-scoring service.

Every endpoint speaks JSON over HTTP/1.1. This module owns the request
schemas (parsing + validation → typed request objects), the response
payload builders, and the *coalescing fingerprints*: a request's
canonical form is hashed with the same content-addressed
:func:`repro.bench.cache.fingerprint` the disk cache uses, so two
requests coalesce exactly when they are guaranteed to produce identical
payloads.

Schema notes:

* A sort configuration is given either as ``"preset": "<name>"`` or as a
  full ``"config": {...}`` field set (see
  :func:`repro.sort.serialize.config_from_obj`); ``preset`` wins if both
  are present after normalizing to the same canonical dict, identical
  requests phrased either way coalesce.
* ``/simulate`` responses are device-independent (the instrumented sort
  is combinatorial); clients fold results through their own
  occupancy/timing model, so ``device`` is deliberately absent from the
  simulate schema.
* ``/sweep`` never takes a worker count: parallelism is an operator
  decision (``serve --jobs``), not a client one, and results are
  bit-identical either way — so it stays out of the fingerprint too.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.bench.cache import fingerprint
from repro.bench.metrics import BenchPoint
from repro.engine.registry import DEFAULT_SCORING, check_scoring
from repro.errors import ValidationError
from repro.gpu.device import DeviceSpec, get_device
from repro.inputs.generators import GENERATORS
from repro.sort.config import SortConfig
from repro.sort.presets import preset
from repro.sort.serialize import config_from_obj, config_to_obj

__all__ = [
    "PROTOCOL_VERSION",
    "ConstructRequest",
    "SimulateRequest",
    "SweepRequest",
    "point_from_obj",
    "point_to_obj",
]

#: Bump when request/response semantics change; it is part of every
#: coalescing fingerprint, so mixed-version coalescing cannot happen.
PROTOCOL_VERSION = 1

_VALUE_ENCODINGS = ("b64", "json")


def _require_dict(payload, what: str) -> dict:
    if not isinstance(payload, dict):
        raise ValidationError(f"{what} body must be a JSON object")
    return payload


def _int_field(payload: dict, name: str, default=None, *, minimum=None):
    value = payload.get(name, default)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValidationError(f"{name!r} must be an integer, got {value!r}")
    if minimum is not None and value < minimum:
        raise ValidationError(f"{name!r} must be >= {minimum}, got {value}")
    return value


def _bool_field(payload: dict, name: str, default: bool) -> bool:
    value = payload.get(name, default)
    if not isinstance(value, bool):
        raise ValidationError(f"{name!r} must be a boolean, got {value!r}")
    return value


def _resolve_config(payload: dict) -> SortConfig:
    name = payload.get("preset")
    if name is not None:
        if not isinstance(name, str):
            raise ValidationError(f"'preset' must be a string, got {name!r}")
        return preset(name)
    obj = payload.get("config")
    if obj is None:
        raise ValidationError("request needs either 'preset' or 'config'")
    return config_from_obj(_require_dict(obj, "'config'"))


def _resolve_elements(payload: dict, config: SortConfig) -> int:
    """``num_elements`` directly, or ``tiles`` × tile size."""
    n = _int_field(payload, "num_elements", minimum=1)
    tiles = _int_field(payload, "tiles", minimum=1)
    if n is None and tiles is None:
        raise ValidationError("request needs 'num_elements' or 'tiles'")
    if n is not None and tiles is not None:
        raise ValidationError("'num_elements' and 'tiles' are exclusive")
    return n if n is not None else tiles * config.tile_size


def _resolve_input(payload: dict, default: str = "worst-case") -> str:
    name = payload.get("input", default)
    if name not in GENERATORS:
        known = ", ".join(sorted(GENERATORS))
        raise ValidationError(f"unknown input {name!r}; known: {known}")
    return name


def _mitigation_field(payload: dict, default: str = "none") -> str:
    """Parse-time mitigation-spec validation against the registry.

    Same policy as :func:`_scoring_field`: an unknown backend fails here
    as a 400, and the returned spec is *canonical* (``"padding"`` →
    ``"padding:1"``) so identical layouts phrased differently coalesce.
    """
    from repro.mitigation.registry import check_mitigation

    value = payload.get("mitigation", default)
    if not isinstance(value, str):
        raise ValidationError(
            f"'mitigation' must be a spec string, got {value!r}"
        )
    return check_mitigation(value, field="'mitigation'")


def _resolve_layout(payload: dict) -> tuple[int, str]:
    """Normalize the ``padding``/``mitigation`` pair into one layout.

    The legacy ``padding: N`` knob and the ``mitigation: "padding:N"``
    spec describe the same physical layout; reconciling them here means
    (a) a conflicting pair is a 400 at parse time and (b) both phrasings
    canonicalize to identical request fields, so they coalesce.
    """
    from repro.mitigation.registry import reconcile_mitigation

    padding = _int_field(payload, "padding", 0, minimum=0)
    layout = reconcile_mitigation(
        _mitigation_field(payload), padding, field="'mitigation'"
    )
    native = layout.native_padding
    return (native if native is not None else 0, layout.spec)


def _scoring_field(payload: dict, default: str, *, allow_auto: bool) -> str:
    """Parse-time scoring validation against the engine registry.

    An unknown value must fail *here*, as a 400 to the client (exit
    code 2 through the ``request`` CLI) — never as a 500 from deep
    inside a runner or worker. The accepted set comes from
    :mod:`repro.engine.registry`, the same source every execution path
    validates against, so the protocol can never drift from the engines.
    """
    return check_scoring(
        payload.get("scoring", default),
        allow_auto=allow_auto,
        field="'scoring'",
    )


# -- requests ---------------------------------------------------------------


@dataclass(frozen=True)
class ConstructRequest:
    """``POST /construct`` — build one adversarial permutation."""

    config: SortConfig
    num_elements: int
    encoding: str  # "b64" (raw npy bytes) | "json" (plain int list)

    @classmethod
    def from_payload(cls, payload) -> "ConstructRequest":
        payload = _require_dict(payload, "/construct")
        config = _resolve_config(payload)
        encoding = payload.get("encoding", "b64")
        if encoding not in _VALUE_ENCODINGS:
            raise ValidationError(
                f"unknown encoding {encoding!r}; known: {_VALUE_ENCODINGS}"
            )
        return cls(
            config=config,
            num_elements=_resolve_elements(payload, config),
            encoding=encoding,
        )

    def coalesce_key(self) -> str:
        return fingerprint(
            {
                "endpoint": "construct",
                "protocol": PROTOCOL_VERSION,
                "config": config_to_obj(self.config),
                "num_elements": self.num_elements,
                "encoding": self.encoding,
            }
        )


@dataclass(frozen=True)
class SimulateRequest:
    """``POST /simulate`` — one instrumented sort."""

    config: SortConfig
    input_name: str
    num_elements: int
    score_blocks: int | None
    seed: int
    include_values: bool
    memo: bool
    #: "vectorized" | "loop" | "analytic"; the closed-form engine serves
    #: constructed-family requests in microseconds instead of ~100 ms.
    scoring: str
    #: Shared-memory padding of the simulated layout (0 = the stock
    #: layout the paper attacks).
    padding: int
    #: Canonical mitigation spec ("none", "padding:N", "cfree-sort",
    #: "cfree-permute"). Normalized with ``padding`` at parse time: a
    #: bare ``padding: N`` request and an explicit
    #: ``mitigation: "padding:N"`` request describe the same layout and
    #: therefore coalesce.
    mitigation: str

    @classmethod
    def from_payload(cls, payload) -> "SimulateRequest":
        payload = _require_dict(payload, "/simulate")
        config = _resolve_config(payload)
        padding, mitigation = _resolve_layout(payload)
        return cls(
            config=config,
            input_name=_resolve_input(payload),
            num_elements=_resolve_elements(payload, config),
            score_blocks=_int_field(payload, "score_blocks", 8, minimum=1),
            seed=_int_field(payload, "seed", 0, minimum=0),
            include_values=_bool_field(payload, "include_values", True),
            memo=_bool_field(payload, "memo", True),
            scoring=_scoring_field(payload, "vectorized", allow_auto=False),
            padding=padding,
            mitigation=mitigation,
        )

    def coalesce_key(self) -> str:
        return fingerprint(
            {
                "endpoint": "simulate",
                "protocol": PROTOCOL_VERSION,
                "config": config_to_obj(self.config),
                "input": self.input_name,
                "num_elements": self.num_elements,
                "score_blocks": self.score_blocks,
                "seed": self.seed,
                "include_values": self.include_values,
                "memo": self.memo,
                # Part of the fingerprint although results are
                # bit-identical: the reply's memo_stats field differs
                # (None for analytic/loop), so the payloads do too.
                "scoring": self.scoring,
                "padding": self.padding,
                "mitigation": self.mitigation,
            }
        )


@dataclass(frozen=True)
class SweepRequest:
    """``POST /sweep`` — a grid of bench points, served in item order."""

    config: SortConfig
    device: DeviceSpec
    input_names: tuple[str, ...]
    sizes: tuple[int, ...]
    exact_threshold: int
    score_blocks: int | None
    seed: int
    #: "auto" (default: closed-form for analytic-eligible points,
    #: simulated for the rest) | "vectorized" | "loop" | "analytic".
    scoring: str
    #: Shared-memory padding of the simulated layout.
    padding: int
    #: Canonical mitigation spec; normalized with ``padding`` at parse
    #: time (see :class:`SimulateRequest`).
    mitigation: str

    @classmethod
    def from_payload(cls, payload) -> "SweepRequest":
        payload = _require_dict(payload, "/sweep")
        config = _resolve_config(payload)
        padding, mitigation = _resolve_layout(payload)
        device_name = payload.get("device", "quadro-m4000")
        if not isinstance(device_name, str):
            raise ValidationError(f"'device' must be a string, got {device_name!r}")
        device = get_device(device_name)

        names = payload.get("inputs", ["random", "worst-case"])
        if not isinstance(names, list) or not names:
            raise ValidationError("'inputs' must be a nonempty list of names")
        for name in names:
            if name not in GENERATORS:
                known = ", ".join(sorted(GENERATORS))
                raise ValidationError(f"unknown input {name!r}; known: {known}")

        sizes = payload.get("sizes")
        if sizes is not None:
            if not isinstance(sizes, list) or not sizes:
                raise ValidationError("'sizes' must be a nonempty list of ints")
            sizes = tuple(
                _int_field({"n": s}, "n", minimum=1) for s in sizes
            )
        else:
            max_elements = _int_field(payload, "max_elements", minimum=1)
            if max_elements is None:
                raise ValidationError("/sweep needs 'sizes' or 'max_elements'")
            min_elements = _int_field(payload, "min_elements", 0, minimum=0)
            sizes = tuple(
                n
                for n in config.valid_sizes(max_elements)
                if n >= min_elements
            )
            if not sizes:
                raise ValidationError(
                    f"no valid sizes in [{min_elements}, {max_elements}] "
                    f"for tile size {config.tile_size}"
                )
        return cls(
            config=config,
            device=device,
            input_names=tuple(names),
            sizes=sizes,
            exact_threshold=_int_field(
                payload, "exact_threshold", 1 << 20, minimum=1
            ),
            score_blocks=_int_field(payload, "score_blocks", 8, minimum=1),
            seed=_int_field(payload, "seed", 0, minimum=0),
            scoring=_scoring_field(payload, DEFAULT_SCORING, allow_auto=True),
            padding=padding,
            mitigation=mitigation,
        )

    def coalesce_key(self) -> str:
        return fingerprint(
            {
                "endpoint": "sweep",
                "protocol": PROTOCOL_VERSION,
                "config": config_to_obj(self.config),
                "device": dataclasses.asdict(self.device),
                "inputs": list(self.input_names),
                "sizes": list(self.sizes),
                "exact_threshold": self.exact_threshold,
                "score_blocks": self.score_blocks,
                "seed": self.seed,
                # Explicit analytic sweeps are exact above the threshold
                # (not synthesized), so scoring changes the points and
                # must split the fingerprint.
                "scoring": self.scoring,
                "padding": self.padding,
                "mitigation": self.mitigation,
            }
        )


# -- bench points -----------------------------------------------------------


def point_to_obj(point: BenchPoint) -> dict:
    """JSON-safe dump of one bench point (all fields are native scalars)."""
    return dataclasses.asdict(point)


def point_from_obj(obj: dict) -> BenchPoint:
    """Rebuild a :class:`BenchPoint` from :func:`point_to_obj` output."""
    try:
        return BenchPoint(**_require_dict(obj, "bench point"))
    except TypeError as exc:
        raise ValidationError(f"malformed bench point: {exc}") from exc
