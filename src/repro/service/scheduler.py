"""Chunked job scheduler: manifests → chunks → shards, with requeue.

A *job manifest* is a ``/sweep`` payload plus scheduler knobs — the
whole inputs×sizes grid a client wants computed, too large to sit in
one HTTP request/response cycle comfortably. ``POST /jobs`` on the
shard router splits it into **chunks** (one input family × a contiguous
slice of sizes, each a small self-contained ``/sweep`` body), runs the
chunks across the shard fleet with bounded concurrency, and tracks a
:class:`Job` the client polls with the am-I-done probe
``GET /jobs/<id>``.

Failure semantics draw the classic scheduler line between the two error
families:

* **worker failures** (:class:`~repro.errors.ServiceError`: connection
  refused/reset, HTTP 5xx — e.g. a shard killed mid-manifest) requeue
  the chunk, up to ``max_retries`` extra attempts per chunk. Chunks are
  deterministic pure computations, so a retry on any shard produces the
  identical points.
* **validation failures** (:class:`~repro.errors.ValidationError`,
  HTTP 4xx) fail the chunk permanently — resending a malformed payload
  can never succeed — and with it the job.

Chunk payloads are rebuilt in canonical form from the parsed manifest,
so two manifests phrasing the same grid differently (``preset`` vs
``config``, ``max_elements`` vs explicit ``sizes``) produce chunks with
identical coalescing fingerprints — fleet-wide single-flight and the
disk cache both apply to scheduled work exactly as to direct
``/sweep`` calls.

The scheduler itself is transport-agnostic: it drives an async
``submit_chunk(payload) -> reply`` callable the router provides
(consistent-hash routing + failover live there), which keeps this
module unit-testable without sockets.
"""

from __future__ import annotations

import asyncio
import itertools
from collections import Counter, deque
from dataclasses import dataclass, field

from repro.errors import ReproError, ServiceError, ValidationError
from repro.service.protocol import SweepRequest
from repro.sort.serialize import config_to_obj

__all__ = ["Chunk", "Job", "JobScheduler", "split_manifest"]

#: Default sizes per chunk; small enough that a killed worker loses
#: little progress, large enough to amortize per-request overhead.
DEFAULT_CHUNK_SIZES = 4

#: Default extra attempts per chunk after a worker failure.
DEFAULT_MAX_RETRIES = 2

#: Scheduler-only manifest keys, stripped before ``/sweep`` validation.
_SCHEDULER_KEYS = ("chunk_sizes", "max_retries", "mitigations")


@dataclass
class Chunk:
    """One (mitigation, input family) × a contiguous slice of sizes."""

    index: int
    input_name: str
    sizes: tuple[int, ...]
    #: Canonical ``/sweep`` body computing exactly this chunk.
    payload: dict
    mitigation: str = "none"
    attempts: int = 0
    status: str = "pending"  # pending | running | done | failed
    points: list | None = None
    error: str | None = None


@dataclass
class Job:
    """A submitted manifest and the fate of its chunks."""

    job_id: str
    input_names: tuple[str, ...]
    sizes: tuple[int, ...]
    chunks: list[Chunk]
    max_retries: int
    #: Mitigation layouts swept by this job (manifest ``mitigations``
    #: key; a plain manifest sweeps only its own ``mitigation`` field).
    mitigations: tuple[str, ...] = ("none",)
    status: str = "running"  # running | done | failed
    #: Total requeues across all chunks (worker-failure recoveries).
    retries: int = 0

    def chunk_counts(self) -> dict[str, int]:
        counts = Counter(chunk.status for chunk in self.chunks)
        return {
            state: counts.get(state, 0)
            for state in ("pending", "running", "done", "failed")
        }


def _scheduler_int(payload: dict, name: str, default: int, minimum: int) -> int:
    value = payload.get(name, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValidationError(f"{name!r} must be an integer, got {value!r}")
    if value < minimum:
        raise ValidationError(f"{name!r} must be >= {minimum}, got {value}")
    return value


def split_manifest(
    body: dict,
) -> tuple[SweepRequest, list[Chunk], int]:
    """Validate a manifest and split its grid into canonical chunks.

    Returns ``(parsed sweep request, chunks, max_retries)``. Chunk
    order is mitigation-major, then input-major with contiguous size
    slices, so concatenating chunk results in index order reproduces
    the exact item order per mitigation that a single ``/sweep`` of the
    whole manifest would return.

    A manifest may carry a scheduler-only ``mitigations`` list (e.g.
    ``["none", "padding:1", "cfree-sort"]``) to sweep the same grid
    under several layout defenses — the matrix experiment's service
    leg. It is exclusive with the single ``mitigation`` field and with
    a nonzero ``padding``, since each chunk carries exactly one layout.
    """
    if not isinstance(body, dict):
        raise ValidationError("/jobs body must be a JSON object")
    chunk_sizes = _scheduler_int(
        body, "chunk_sizes", DEFAULT_CHUNK_SIZES, minimum=1
    )
    max_retries = _scheduler_int(
        body, "max_retries", DEFAULT_MAX_RETRIES, minimum=0
    )
    mitigations = _mitigations_field(body)
    sweep_body = {
        key: value
        for key, value in body.items()
        if key not in _SCHEDULER_KEYS
    }
    request = SweepRequest.from_payload(sweep_body)
    if mitigations is None:
        mitigations = (request.mitigation,)

    base = {
        "config": config_to_obj(request.config),
        "device": request.device.name,
        "exact_threshold": request.exact_threshold,
        "score_blocks": request.score_blocks,  # null = score every block
        "seed": request.seed,
        "scoring": request.scoring,
        "padding": request.padding,
    }
    chunks: list[Chunk] = []
    for mitigation in mitigations:
        for name in request.input_names:
            for start in range(0, len(request.sizes), chunk_sizes):
                sizes = request.sizes[start : start + chunk_sizes]
                payload = dict(base)
                payload["inputs"] = [name]
                payload["sizes"] = list(sizes)
                payload["mitigation"] = mitigation
                chunks.append(
                    Chunk(
                        index=len(chunks),
                        input_name=name,
                        sizes=sizes,
                        payload=payload,
                        mitigation=mitigation,
                    )
                )
    return request, chunks, max_retries


def _mitigations_field(body: dict) -> tuple[str, ...] | None:
    """Canonicalized ``mitigations`` list, or ``None`` when absent."""
    from repro.mitigation.registry import check_mitigation

    raw = body.get("mitigations")
    if raw is None:
        return None
    if not isinstance(raw, list) or not raw:
        raise ValidationError(
            "'mitigations' must be a nonempty list of spec strings"
        )
    if "mitigation" in body:
        raise ValidationError(
            "'mitigations' and 'mitigation' are exclusive"
        )
    if body.get("padding", 0):
        raise ValidationError(
            "'mitigations' cannot be combined with a nonzero 'padding'; "
            "spell the padded layout as a 'padding:N' entry instead"
        )
    specs = []
    for value in raw:
        if not isinstance(value, str):
            raise ValidationError(
                f"'mitigations' entries must be spec strings, got {value!r}"
            )
        specs.append(check_mitigation(value, field="'mitigations'"))
    if len(set(specs)) != len(specs):
        raise ValidationError("'mitigations' entries must be unique")
    return tuple(specs)


class JobScheduler:
    """Drives chunks through ``submit_chunk`` with retry and requeue.

    Parameters
    ----------
    submit_chunk:
        ``async (payload: dict) -> reply dict`` — the router's routed,
        failover-capable forward of one ``/sweep`` chunk. Must raise
        :class:`~repro.errors.ServiceError` on worker failure and
        :class:`~repro.errors.ValidationError` on a rejected payload.
    chunk_concurrency:
        Chunks of one job in flight at once. Fleet-wide concurrency is
        still governed by each shard's admission gate; this only bounds
        how hard a single job pushes.
    """

    def __init__(self, submit_chunk, *, chunk_concurrency: int = 4):
        if chunk_concurrency < 1:
            raise ValidationError(
                f"chunk_concurrency must be >= 1, got {chunk_concurrency}"
            )
        self._submit_chunk = submit_chunk
        self._concurrency = chunk_concurrency
        self._jobs: dict[str, Job] = {}
        self._seq = itertools.count(1)
        self._tasks: set[asyncio.Task] = set()
        #: Total chunk requeues across every job (exported by /metrics).
        self.chunk_retries = 0

    # -- submission ----------------------------------------------------------

    def submit(self, body: dict) -> dict:
        """Split, register, and launch one manifest; returns the ack."""
        request, chunks, max_retries = split_manifest(body)
        job_id = f"job-{next(self._seq)}-{request.coalesce_key()[:12]}"
        job = Job(
            job_id=job_id,
            input_names=request.input_names,
            sizes=request.sizes,
            chunks=chunks,
            max_retries=max_retries,
            mitigations=tuple(dict.fromkeys(c.mitigation for c in chunks)),
        )
        self._jobs[job_id] = job
        task = asyncio.get_running_loop().create_task(self._run_job(job))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return {
            "job_id": job_id,
            "chunks": len(chunks),
            "max_retries": max_retries,
        }

    async def _run_job(self, job: Job) -> None:
        pending: deque[Chunk] = deque(job.chunks)
        active: set[asyncio.Task] = set()
        try:
            while pending or active:
                while pending and len(active) < self._concurrency:
                    chunk = pending.popleft()
                    chunk.status = "running"
                    active.add(
                        asyncio.get_running_loop().create_task(
                            self._run_chunk(job, chunk)
                        )
                    )
                done, active = await asyncio.wait(
                    active, return_when=asyncio.FIRST_COMPLETED
                )
                for finished in done:
                    chunk, requeue = finished.result()
                    if requeue:
                        pending.append(chunk)
            job.status = (
                "failed"
                if any(c.status == "failed" for c in job.chunks)
                else "done"
            )
        except asyncio.CancelledError:
            # Router shutting down mid-job: mark it failed so a polling
            # client stops waiting, then re-raise for the loop teardown.
            job.status = "failed"
            for task in active:
                task.cancel()
            raise

    async def _run_chunk(self, job: Job, chunk: Chunk) -> tuple[Chunk, bool]:
        try:
            reply = await self._submit_chunk(chunk.payload)
        except ServiceError as exc:
            # Worker failure (killed shard, 5xx): requeue within budget.
            chunk.attempts += 1
            if chunk.attempts <= job.max_retries:
                chunk.status = "pending"
                job.retries += 1
                self.chunk_retries += 1
                return chunk, True
            chunk.status = "failed"
            chunk.error = f"gave up after {chunk.attempts} attempts: {exc}"
            return chunk, False
        except (ValidationError, ReproError) as exc:
            # The payload itself is bad; a retry cannot change that.
            chunk.status = "failed"
            chunk.error = str(exc)
            return chunk, False
        chunk.points = list(reply.get("points", []))
        chunk.status = "done"
        return chunk, False

    # -- probes --------------------------------------------------------------

    def status(self, job_id: str) -> dict | None:
        """The am-I-done probe body for one job; ``None`` if unknown."""
        job = self._jobs.get(job_id)
        if job is None:
            return None
        done = job.status != "running"
        payload = {
            "job_id": job.job_id,
            "status": job.status,
            "done": done,
            "chunks": {"total": len(job.chunks), **job.chunk_counts()},
            "retries": job.retries,
        }
        if job.status == "failed":
            payload["errors"] = [
                {"chunk": c.index, "input": c.input_name, "error": c.error}
                for c in job.chunks
                if c.status == "failed"
            ]
        if job.status == "done":
            # Chunks are mitigation-major then input-major contiguous
            # slices, so index-order concatenation is exactly one big
            # /sweep's item order, repeated per mitigation.
            points: list = []
            for chunk in job.chunks:
                points.extend(chunk.points or [])
            payload["points"] = points
            payload["inputs"] = list(job.input_names)
            payload["sizes"] = list(job.sizes)
            if job.mitigations != ("none",):
                payload["mitigations"] = list(job.mitigations)
        return payload

    def stats(self) -> dict:
        """Aggregate job/chunk gauges for ``/stats`` and ``/metrics``."""
        jobs = Counter(job.status for job in self._jobs.values())
        chunks: Counter = Counter()
        for job in self._jobs.values():
            chunks.update(job.chunk_counts())
        return {
            "jobs": {
                state: jobs.get(state, 0)
                for state in ("running", "done", "failed")
            },
            "chunks": {
                state: chunks.get(state, 0)
                for state in ("pending", "running", "done", "failed")
            },
            "chunk_retries": self.chunk_retries,
        }
