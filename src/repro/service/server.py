"""The asyncio generation-and-scoring daemon.

A long-lived process that amortizes everything a cold CLI invocation
pays per run: one process-lifetime
:class:`~repro.dmm.memo.ConflictMemo` scores repeated rank→address
patterns once across *all* requests, one optional
:class:`~repro.bench.cache.BenchCache` serves sweep points and
calibrations from disk, and (with ``jobs > 1``) one warm
:class:`~concurrent.futures.ProcessPoolExecutor` keeps calibrated
:class:`~repro.bench.runner.SweepRunner`\\ s alive in its workers
between ``/sweep`` requests.

HTTP/1.1 is hand-rolled over :func:`asyncio.start_server` — no
``http.server``, no third-party dependencies. Endpoints:

====================  =====================================================
``POST /construct``   adversarial permutation for a config (base64 or JSON)
``POST /simulate``    instrumented sort → serialized ``SortResult``
``POST /sweep``       grid of bench points via the parallel worker pool
``GET  /healthz``     liveness (+ draining state)
``GET  /stats``       counters, batching/backpressure, memo + cache stats
``GET  /metrics``     the same counters in Prometheus text format
``POST /shutdown``    graceful drain, same path as SIGTERM
====================  =====================================================

The HTTP front (framing, keep-alive, graceful drain, per-client
quotas) lives in :class:`HttpDaemon`, shared with the shard router
(:mod:`repro.service.shard`) — one transport layer, two dispatch
brains.

Request flow for the compute endpoints: parse/validate → fingerprint →
single-flight (identical in-flight requests share one computation) →
bounded admission (full ⇒ 429 + ``Retry-After``) → thread-pool
execution with a per-request deadline (expired ⇒ 504 for that waiter
only). SIGTERM/SIGINT (or ``POST /shutdown``) stop the listener,
let in-flight work finish within ``drain_timeout``, then exit.

Simulations serialize on one process-wide lock: the simulator is a
NumPy hot loop that saturates a core anyway, and the lock keeps the
shared memo's per-sort hit/miss deltas attributable to exactly one
request — which is what makes served ``memo_stats`` reproducible.
Scaling across cores is the job of ``/sweep``'s process pool and of
running several daemons.
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
import threading
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.adversary.permutation import worst_case_permutation
from repro.bench.cache import BenchCache
from repro.dmm.memo import ConflictMemo
from repro.engine import SortTask, create_engine, engine_for_scoring
from repro.engine.base import ExecutionEngine
from repro.engine.tasks import WorkItem
from repro.errors import (
    ConfigurationError,
    ConstructionError,
    ReproError,
    ValidationError,
)
from repro.inputs.generators import generate
from repro.service.batching import AdmissionGate, ClientQuotas, SingleFlight
from repro.service.metrics import CONTENT_TYPE as _METRICS_CONTENT_TYPE
from repro.service.metrics import render_metrics
from repro.service.protocol import (
    ConstructRequest,
    SimulateRequest,
    SweepRequest,
    point_to_obj,
)
from repro.service.stats import ServiceStats
from repro.sort.serialize import array_to_obj, config_to_obj, result_to_obj

__all__ = [
    "HttpDaemon",
    "ServiceConfig",
    "ReproService",
    "run_service",
    "serve_forever",
]

_MAX_HEADER_BYTES = 32 * 1024
_MAX_BODY_BYTES = 64 * 1024 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    502: "Bad Gateway",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

_ENDPOINTS = {
    "/healthz": "GET",
    "/stats": "GET",
    "/metrics": "GET",
    "/shutdown": "POST",
    "/construct": "POST",
    "/simulate": "POST",
    "/sweep": "POST",
}

#: Endpoints the per-client quota meters (control-plane probes stay free).
_QUOTA_PATHS = frozenset({"/construct", "/simulate", "/sweep", "/jobs"})


@dataclass
class ServiceConfig:
    """Operator-facing knobs of one daemon."""

    host: str = "127.0.0.1"
    port: int = 8787  # 0 = pick an ephemeral port (reported in the log)
    #: Maximum concurrently *admitted* computations; beyond it new
    #: (non-coalesced) work is rejected with 429.
    queue_limit: int = 8
    #: Per-request deadline in seconds (each waiter's own clock).
    request_timeout: float = 600.0
    #: How long a shutdown waits for in-flight work before giving up.
    drain_timeout: float = 60.0
    #: Idle keep-alive connections are closed after this many seconds.
    keepalive_timeout: float = 75.0
    #: Worker processes for ``/sweep`` fan-out (1 = in-process, serial).
    jobs: int = 1
    #: Attach the on-disk bench cache (``None`` = memory-only service).
    cache_dir: str | None = None
    use_cache: bool = False
    #: 429 responses advertise this ``Retry-After`` (seconds).
    retry_after: float = 1.0
    #: Per-client compute-request quota (requests/minute; 0 = unlimited).
    #: Clients identify via ``X-Client-Id`` or their peer address.
    quota_per_minute: int = 0
    #: Where log lines go (default ``sys.stderr``).
    log_stream: object = None


class _HttpError(Exception):
    """Malformed request; carries the status to answer with."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


@dataclass
class _HttpRequest:
    method: str
    path: str
    version: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        token = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return token == "keep-alive"
        return token != "close"


class HttpDaemon:
    """Shared HTTP/1.1 front of the worker daemon and the shard router.

    Owns every transport concern — request framing, keep-alive,
    signal-driven graceful drain, per-client quotas — and leaves the
    dispatch brain to subclasses, which implement
    ``_dispatch(request, client) -> (status, payload, extra)`` where
    ``payload`` is a dict (rendered as JSON) or a pre-rendered string
    (plain text, e.g. ``/metrics``). ``config`` must carry the
    transport fields of :class:`ServiceConfig` (``host``, ``port``,
    ``keepalive_timeout``, ``drain_timeout``, ``retry_after``,
    ``quota_per_minute``, ``log_stream``).
    """

    #: Prefix of every log line; subclasses override.
    log_name = "repro.service"

    def __init__(self, config):
        self.config = config
        self.stats = ServiceStats()
        self.single_flight = SingleFlight(self.stats)
        self.quotas = (
            ClientQuotas(config.quota_per_minute, self.stats)
            if config.quota_per_minute
            else None
        )
        self.port: int | None = None
        self._server: asyncio.AbstractServer | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._shutdown_event = asyncio.Event()
        self._conn_tasks: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()
        self._draining = False

    # -- logging -------------------------------------------------------------

    def _log(self, message: str) -> None:
        stream = self.config.log_stream or sys.stderr
        try:
            stream.write(f"[{self.log_name}] {message}\n")
            stream.flush()
        except (OSError, ValueError):
            pass

    # -- lifecycle -----------------------------------------------------------

    async def start(self):
        """Bind the listener (resolving ``port=0``) and warm subclass state."""
        self._loop = asyncio.get_running_loop()
        await self._before_serving()
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._log(
            f"listening on http://{self.config.host}:{self.port} "
            f"({self._describe()})"
        )
        return self

    async def _before_serving(self) -> None:
        """Subclass hook run inside the loop before the listener binds."""

    def _describe(self) -> str:
        """Subclass hook: knob summary for the startup log line."""
        return ""

    def request_shutdown(self) -> None:
        """Begin a graceful drain; safe to call from any thread.

        A no-op once the loop is gone (e.g. the daemon was already
        hard-killed via :meth:`abort`), so fleet teardown can sweep
        every worker without tracking which ones crashed.
        """
        if self._loop is None or self._loop.is_closed():
            return
        try:
            self._loop.call_soon_threadsafe(self._shutdown_event.set)
        except RuntimeError:
            pass  # loop closed between the check and the call

    def abort(self) -> None:
        """Hard-stop the event loop without draining — crash semantics.

        In-flight requests die with reset connections and no responses
        are flushed. Exists for the fleet's kill-a-shard failure paths
        (:meth:`repro.service.shard.ShardFleet.kill`) and their tests;
        operators should use :meth:`request_shutdown`.
        """
        if self._loop is None or self._loop.is_closed():
            return

        def crash() -> None:
            # Close the listener so new connects are refused instead of
            # sitting in the kernel backlog with nobody to answer, and
            # RST live connections so blocked peers fail immediately —
            # without this, clients of a "crashed" shard would hang
            # until their socket timeout.
            if self._server is not None:
                self._server.close()
            for writer in list(self._writers):
                transport = writer.transport
                if transport is not None:
                    transport.abort()
            self._loop.stop()

        try:
            self._loop.call_soon_threadsafe(crash)
        except RuntimeError:
            pass  # loop closed between the check and the call

    def _install_signal_handlers(self) -> None:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    sig,
                    lambda s=sig: (
                        self._log(f"received {signal.Signals(s).name}, draining"),
                        self._shutdown_event.set(),
                    ),
                )
            except (NotImplementedError, ValueError, RuntimeError):
                # Not the main thread (tests) or unsupported platform —
                # shutdown is still reachable via POST /shutdown.
                return

    async def serve_until_shutdown(self) -> bool:
        """Serve until SIGTERM/SIGINT or ``POST /shutdown``; then drain.

        Returns ``True`` when every in-flight computation and connection
        finished inside ``drain_timeout``.
        """
        self._install_signal_handlers()
        await self._shutdown_event.wait()
        self._draining = True
        assert self._server is not None
        self._server.close()
        await self._server.wait_closed()

        began = time.monotonic()
        in_flight = len(self.single_flight.tasks)
        self._log(f"draining: {in_flight} in-flight computation(s)")
        drained = await self.single_flight.drain(self.config.drain_timeout)
        # Let connection handlers flush their final responses, then close
        # whatever is left (idle keep-alive clients).
        if self._conn_tasks:
            grace = max(
                1.0, self.config.drain_timeout - (time.monotonic() - began)
            )
            _, pending = await asyncio.wait(
                set(self._conn_tasks), timeout=grace
            )
            for task in pending:
                task.cancel()
            await asyncio.gather(*pending, return_exceptions=True)

        self._shutdown_executors(drained)
        self._log(
            "drained cleanly"
            if drained
            else f"drain timed out after {self.config.drain_timeout}s"
        )
        return drained

    def _shutdown_executors(self, drained: bool) -> None:
        """Subclass hook: release worker pools after the drain."""

    # -- connection handling -------------------------------------------------

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        self._writers.add(writer)
        self.stats.connections += 1
        try:
            await self._serve_connection(reader, writer)
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
        ):
            pass
        finally:
            self._writers.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (OSError, asyncio.CancelledError):
                pass

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername")
        peer_host = peer[0] if isinstance(peer, tuple) else str(peer or "?")
        while True:
            try:
                request = await asyncio.wait_for(
                    _read_request(reader), self.config.keepalive_timeout
                )
            except asyncio.TimeoutError:
                return
            except _HttpError as exc:
                writer.write(
                    _render_response(
                        exc.status, {"error": str(exc)}, {}, keep_alive=False
                    )
                )
                await writer.drain()
                return
            if request is None:
                return
            began = time.monotonic()
            client = request.headers.get("x-client-id") or peer_host
            status, payload, extra = await self._dispatch(request, client)
            keep = request.keep_alive and not self._draining
            writer.write(_render_response(status, payload, extra, keep_alive=keep))
            await writer.drain()
            self._log(
                f"{request.method} {request.path} -> {status} "
                f"({time.monotonic() - began:.3f}s)"
            )
            if not keep:
                return

    # -- shared dispatch helpers ---------------------------------------------

    async def _dispatch(
        self, request: _HttpRequest, client: str
    ) -> tuple[int, dict | str, dict]:
        raise NotImplementedError

    def _quota_reject(self, client: str) -> tuple[int, dict, dict] | None:
        """A 429 triple when ``client`` is out of quota, else ``None``."""
        if self.quotas is None:
            return None
        wait = self.quotas.try_consume(client)
        if wait is None:
            return None
        return (
            429,
            {
                "error": (
                    f"client quota of {self.quotas.per_minute} "
                    "compute requests/minute exhausted"
                ),
                "retry_after": round(wait, 3),
            },
            {"Retry-After": f"{max(wait, 0.001):.3f}"},
        )


class ReproService(HttpDaemon):
    """One daemon: shared caches, batching layer, and the HTTP front."""

    log_name = "repro.service"

    def __init__(self, config: ServiceConfig):
        super().__init__(config)
        self.memo = ConflictMemo()
        self.cache = (
            BenchCache(config.cache_dir)
            if (config.use_cache or config.cache_dir)
            else None
        )
        self.admission = AdmissionGate(config.queue_limit, self.stats)

        self._executor = ThreadPoolExecutor(
            max_workers=config.queue_limit,
            thread_name_prefix="repro-service",
        )
        self._pool: ProcessPoolExecutor | None = None
        # Warm engines, resolved through the registry: one inline engine
        # per (scoring, memo) simulate variant (each caches sorters per
        # config/padding; the memoized one shares the process-lifetime
        # memo), one serial engine for unpooled sweeps (its runner table
        # is the warm state the old module-global table provided), and a
        # pool engine wrapping self._pool once start() created it.
        self._engines: dict[tuple[str, bool], ExecutionEngine] = {}
        self._serial_points = create_engine("inline")
        self._pool_points: ExecutionEngine | None = None
        self._compute_lock = threading.Lock()

    # -- lifecycle hooks -----------------------------------------------------

    async def _before_serving(self) -> None:
        if self.config.jobs > 1:
            self._pool = ProcessPoolExecutor(max_workers=self.config.jobs)

    def _describe(self) -> str:
        cache = str(self.cache.cache_dir) if self.cache else "off"
        return (
            f"queue_limit={self.config.queue_limit}, "
            f"jobs={self.config.jobs}, cache={cache}"
        )

    def _shutdown_executors(self, drained: bool) -> None:
        # A drain timeout means a sort is still running in the executor;
        # don't block the loop waiting on it (the interpreter will still
        # join the thread at exit, but the caller gets its exit code now).
        self._executor.shutdown(wait=drained, cancel_futures=True)
        if self._pool is not None:
            self._pool.shutdown(wait=drained, cancel_futures=True)

    # -- routing -------------------------------------------------------------

    async def _dispatch(
        self, request: _HttpRequest, client: str
    ) -> tuple[int, dict | str, dict]:
        path = request.path.split("?", 1)[0]
        self.stats.requests[path] += 1
        expected = _ENDPOINTS.get(path)
        if expected is None:
            return 404, {"error": f"unknown endpoint {path!r}"}, {}
        if request.method != expected:
            return (
                405,
                {"error": f"{path} expects {expected}"},
                {"Allow": expected},
            )

        if path == "/healthz":
            return (
                200,
                {
                    "status": "draining" if self._draining else "ok",
                    "uptime_seconds": round(self.stats.uptime_seconds, 3),
                },
                {},
            )
        if path == "/stats":
            return 200, self._stats_payload(), {}
        if path == "/metrics":
            return (
                200,
                render_metrics(self._stats_payload()),
                {"Content-Type": _METRICS_CONTENT_TYPE},
            )
        if path == "/shutdown":
            self._log("shutdown requested via POST /shutdown")
            self.request_shutdown()
            return (
                200,
                {"status": "draining", "in_flight": self.stats.in_flight},
                {},
            )

        rejected = self._quota_reject(client) if path in _QUOTA_PATHS else None
        if rejected is not None:
            return rejected

        try:
            body = json.loads(request.body) if request.body else {}
        except ValueError:
            self.stats.validation_errors += 1
            return 400, {"error": "body is not valid JSON", "kind": "validation"}, {}

        if path == "/construct":
            return await self._serve_compute(
                lambda: ConstructRequest.from_payload(body),
                self._compute_construct,
            )
        if path == "/simulate":
            return await self._serve_compute(
                lambda: SimulateRequest.from_payload(body),
                self._compute_simulate,
            )
        return await self._serve_compute(
            lambda: SweepRequest.from_payload(body), self._compute_sweep
        )

    async def _serve_compute(
        self, parse: Callable, compute: Callable
    ) -> tuple[int, dict, dict]:
        try:
            request = parse()
        except (ValidationError, ConfigurationError, ConstructionError) as exc:
            self.stats.validation_errors += 1
            return 400, {"error": str(exc), "kind": "validation"}, {}
        if self._draining:
            return (
                503,
                {"error": "service is draining"},
                {"Retry-After": f"{self.config.retry_after:g}"},
            )

        loop = asyncio.get_running_loop()

        async def start():
            return await loop.run_in_executor(
                self._executor, lambda: compute(request)
            )

        try:
            payload, coalesced = await self.single_flight.run(
                request.coalesce_key(),
                start,
                gate=self.admission,
                timeout=self.config.request_timeout,
            )
        except BlockingIOError:
            return (
                429,
                {
                    "error": "admission queue full",
                    "retry_after": self.config.retry_after,
                },
                {"Retry-After": f"{self.config.retry_after:g}"},
            )
        except asyncio.TimeoutError:
            self.stats.timeouts += 1
            return (
                504,
                {
                    "error": "request timed out after "
                    f"{self.config.request_timeout:g}s (still computing "
                    "for any coalesced waiters)"
                },
                {},
            )
        except (ValidationError, ConfigurationError, ConstructionError) as exc:
            self.stats.validation_errors += 1
            return 400, {"error": str(exc), "kind": "validation"}, {}
        except ReproError as exc:
            self.stats.internal_errors += 1
            return 500, {"error": str(exc), "kind": "internal"}, {}
        except Exception as exc:  # noqa: BLE001 - last-resort 500
            self.stats.internal_errors += 1
            self._log(
                "unhandled error: "
                + "".join(traceback.format_exception(exc)).rstrip()
            )
            return 500, {"error": str(exc), "kind": "internal"}, {}

        self.stats.completed += 1
        reply = dict(payload)
        reply["ok"] = True
        reply["coalesced"] = coalesced
        return 200, reply, {}

    # -- compute (executor threads) -----------------------------------------

    def _engine_for(self, scoring: str, memo: bool) -> ExecutionEngine:
        """The warm inline engine serving one simulate variant.

        Resolved through the registry's scoring→engine mapping; the
        memoized vectorized variant shares the process-lifetime memo
        (only that path memoizes — loop/analytic engines keep their own
        caches, reused across requests because engines are cached here).
        """
        key = (scoring, memo)
        engine = self._engines.get(key)
        if engine is None:
            name = engine_for_scoring(scoring, memoized=memo)
            kwargs = {"memo": self.memo} if name == "inline-memoized" else {}
            engine = create_engine(name, **kwargs)
            self._engines[key] = engine
        return engine

    def _compute_construct(self, request: ConstructRequest) -> dict:
        data = worst_case_permutation(request.config, request.num_elements)
        self.stats.constructs_executed += 1
        values = (
            data.tolist() if request.encoding == "json" else array_to_obj(data)
        )
        return {
            "config": config_to_obj(request.config),
            "num_elements": int(request.num_elements),
            "encoding": request.encoding,
            "values": values,
        }

    def _compute_simulate(self, request: SimulateRequest) -> dict:
        with self._compute_lock:
            data = generate(
                request.input_name,
                request.config,
                request.num_elements,
                seed=request.seed,
            )
            engine = self._engine_for(request.scoring, request.memo)
            result = engine.run_sort(
                SortTask(
                    config=request.config,
                    input_name=request.input_name,
                    num_elements=request.num_elements,
                    padding=request.padding,
                    score_blocks=request.score_blocks,
                    seed=request.seed,
                    values=data,
                    mitigation=request.mitigation,
                )
            )
            self.stats.sorts_executed += 1
        sorted_ok = bool(np.array_equal(result.values, np.sort(data)))
        return {
            "sorted_ok": sorted_ok,
            "result": result_to_obj(
                result, include_values=request.include_values
            ),
        }

    def _compute_sweep(self, request: SweepRequest) -> dict:
        cache_dir = str(self.cache.cache_dir) if self.cache else None
        items = [
            WorkItem(
                config=request.config,
                device=request.device,
                input_name=name,
                num_elements=n,
                exact_threshold=request.exact_threshold,
                score_blocks=request.score_blocks,
                seed=request.seed,
                padding=request.padding,
                scoring=request.scoring,
                mitigation=request.mitigation,
                cache_dir=cache_dir,
                use_cache=self.cache is not None,
            )
            for name in request.input_names
            for n in request.sizes
        ]
        progress = lambda event: self._log(event.describe())  # noqa: E731
        if self._pool is not None:
            if self._pool_points is None:
                self._pool_points = create_engine("pool", pool=self._pool)
            points = self._pool_points.run_points(items, progress=progress)
        else:
            # The serial engine's runner table is shared across every
            # unpooled sweep, so serialize it like simulations.
            with self._compute_lock:
                points = self._serial_points.run_points(
                    items, progress=progress
                )
        self.stats.sweeps_executed += 1
        return {
            "points": [point_to_obj(p) for p in points],
            "inputs": list(request.input_names),
            "sizes": list(request.sizes),
        }

    # -- stats ---------------------------------------------------------------

    def _stats_payload(self) -> dict:
        payload = self.stats.snapshot()
        payload["queue_limit"] = self.config.queue_limit
        payload["jobs"] = self.config.jobs
        payload["quota_per_minute"] = self.config.quota_per_minute
        payload["memo"] = _memo_obj(self.memo.stats())
        # The process-wide aggregate additionally folds in the deltas
        # shipped back by pool workers (ConflictMemo.absorb_stats) — the
        # fleet-inclusive number /metrics exports for operators.
        payload["memo_process"] = _memo_obj(ConflictMemo.process_stats())
        # Hit/miss attribution per mitigation layout (pool workers ship
        # their deltas home, so this is fleet-inclusive like the above).
        payload["memo_by_mitigation"] = {
            spec: {"hits": hits, "misses": misses}
            for spec, (hits, misses) in ConflictMemo.mitigation_stats().items()
        }
        if self.cache is not None:
            disk = self.cache.stats()
            payload["bench_cache"] = {
                "cache_dir": disk.cache_dir,
                "point_entries": disk.point_entries,
                "rate_entries": disk.rate_entries,
                "total_bytes": disk.total_bytes,
                "hits": self.cache.hits,
                "misses": self.cache.misses,
            }
        else:
            payload["bench_cache"] = None
        return payload


def _memo_obj(stats) -> dict:
    """JSON-safe dump of one :class:`~repro.dmm.memo.MemoStats`."""
    return {
        "hits": stats.hits,
        "misses": stats.misses,
        "tile_entries": stats.tile_entries,
        "round_entries": stats.round_entries,
        "stored_bytes": stats.stored_bytes,
    }


# -- HTTP framing -----------------------------------------------------------


async def _read_request(reader: asyncio.StreamReader) -> _HttpRequest | None:
    """Parse one request; ``None`` on a clean EOF before the first byte."""
    line = await reader.readline()
    if not line:
        return None
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        raise _HttpError(400, "malformed request line")
    method, path, version = parts

    headers: dict[str, str] = {}
    total = len(line)
    while True:
        line = await reader.readline()
        if not line:
            return None  # peer hung up mid-headers
        total += len(line)
        if total > _MAX_HEADER_BYTES:
            raise _HttpError(431, "headers too large")
        if line in (b"\r\n", b"\n"):
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise _HttpError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    raw_length = headers.get("content-length", "0")
    try:
        length = int(raw_length)
    except ValueError:
        raise _HttpError(400, f"bad Content-Length {raw_length!r}") from None
    if length < 0 or length > _MAX_BODY_BYTES:
        raise _HttpError(413, f"body of {length} bytes exceeds the limit")
    body = await reader.readexactly(length) if length else b""
    return _HttpRequest(
        method=method, path=path, version=version, headers=headers, body=body
    )


def _render_response(
    status: int, payload: dict | str, extra: dict, *, keep_alive: bool
) -> bytes:
    """Frame one response. Dict payloads render as JSON; string payloads
    are sent verbatim as text (``/metrics``); ``extra`` may override the
    ``Content-Type``."""
    headers = dict(extra)
    if isinstance(payload, str):
        body = payload.encode("utf-8")
        content_type = headers.pop("Content-Type", "text/plain; charset=utf-8")
    else:
        body = json.dumps(payload).encode("utf-8")
        content_type = headers.pop("Content-Type", "application/json")
    lines = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
        "Server: repro-mergesort",
    ]
    lines.extend(f"{name}: {value}" for name, value in headers.items())
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


# -- entry points -----------------------------------------------------------


async def run_service(
    config: ServiceConfig,
    *,
    on_started: Callable[[ReproService], None] | None = None,
) -> bool:
    """Start a service and serve until shutdown; ``True`` on a clean drain.

    ``on_started`` runs inside the event loop right after the listener is
    bound — tests use it to learn the ephemeral port and keep a handle
    for :meth:`ReproService.request_shutdown`.
    """
    service = ReproService(config)
    await service.start()
    if on_started is not None:
        on_started(service)
    return await service.serve_until_shutdown()


def serve_forever(config: ServiceConfig) -> int:
    """Blocking entry point used by ``repro-mergesort serve``.

    Returns a process exit code: 0 after a clean drain, 1 when the drain
    timed out with work still in flight.
    """
    return 0 if asyncio.run(run_service(config)) else 1
