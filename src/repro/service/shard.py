"""Shard router: consistent-hash fan-out over a fleet of daemons.

One :class:`~repro.service.server.ReproService` coalesces identical
in-flight requests *within* its process. A fleet of N daemons only gets
the same guarantee if identical requests deterministically land on the
same daemon — which is exactly what this router provides: requests are
consistent-hashed by the same content-addressed coalescing fingerprint
:mod:`repro.service.protocol` already computes, so one fingerprint maps
to one shard and single-flight works **fleet-wide**. The router keeps
its own :class:`~repro.service.batching.SingleFlight` on top (identical
requests collapse before a single forward leaves the router), making
the coalescing two-tier, mirroring the two-tier cache underneath
(per-shard in-memory :class:`~repro.dmm.memo.ConflictMemo` → shared
on-disk :class:`~repro.bench.cache.BenchCache` when every worker is
given the same ``cache_dir``).

Pieces:

* :class:`HashRing` — classic consistent hashing with virtual nodes
  (blake2b positions + bisect), so adding/removing a shard only remaps
  ~1/N of the keyspace.
* :class:`ShardRouter` — the HTTP front
  (:class:`~repro.service.server.HttpDaemon` subclass, same framing and
  drain machinery as the worker daemon). Compute endpoints parse just
  far enough to fingerprint, then forward the raw body to the owning
  shard, failing over around dead shards (the computations are
  deterministic, so a replay elsewhere is safe). It also hosts the
  :class:`~repro.service.scheduler.JobScheduler` behind ``POST /jobs``
  / ``GET /jobs/<id>``, ``/metrics`` in Prometheus text, and the same
  per-client quotas as the workers.
* :class:`ShardFleet` — N in-process worker daemons, each in its own
  thread + event loop on an ephemeral port. This is what
  ``repro-mergesort serve --shards N`` runs, and what the tests and the
  load benchmark drive; :meth:`ShardFleet.kill` hard-stops one worker
  to exercise the failover and requeue paths.

Routing failure semantics: direct compute requests fail over — the
ring's preference order visits every shard before giving up with 502.
Scheduler chunks deliberately do *not* fail over in-line; a dead shard
raises :class:`~repro.errors.ServiceError`, the scheduler requeues the
chunk (observable in ``retries``), and the re-submission routes around
the shard via the health marks. Both paths converge: the work lands on
a live shard, once.
"""

from __future__ import annotations

import asyncio
import bisect
import dataclasses
import hashlib
import http.client
import json
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable
from urllib.parse import urlsplit

from repro.dmm.memo import ConflictMemo
from repro.errors import (
    ConfigurationError,
    ConstructionError,
    ServiceError,
    ValidationError,
)
from repro.service.batching import AdmissionGate
from repro.service.metrics import CONTENT_TYPE as _METRICS_CONTENT_TYPE
from repro.service.metrics import render_metrics
from repro.service.scheduler import JobScheduler
from repro.service.server import (
    _QUOTA_PATHS,
    HttpDaemon,
    ReproService,
    ServiceConfig,
    _HttpRequest,
    _memo_obj,
    run_service,
)
from repro.service.protocol import (
    ConstructRequest,
    SimulateRequest,
    SweepRequest,
)

__all__ = [
    "HashRing",
    "RouterConfig",
    "ShardFleet",
    "ShardRouter",
    "run_router",
    "serve_fleet",
]

#: Router endpoints (``GET /jobs/<id>`` is matched by prefix).
_ROUTER_ENDPOINTS = {
    "/healthz": "GET",
    "/stats": "GET",
    "/metrics": "GET",
    "/shutdown": "POST",
    "/construct": "POST",
    "/simulate": "POST",
    "/sweep": "POST",
    "/jobs": "POST",
}

_PARSERS: dict[str, Callable] = {
    "/construct": ConstructRequest.from_payload,
    "/simulate": SimulateRequest.from_payload,
    "/sweep": SweepRequest.from_payload,
}


class HashRing:
    """Consistent hashing of fingerprints onto shard URLs.

    Each node occupies ``replicas`` virtual positions on a 64-bit ring
    (blake2b of ``"url#i"``); a key routes to the first node clockwise
    of its own hash. Virtual nodes smooth the load split, and the
    classic property holds: resizing the fleet remaps only ~1/N of the
    keyspace, so most cached/memoized fingerprints keep their shard.
    """

    def __init__(self, nodes: list[str], *, replicas: int = 64):
        if not nodes:
            raise ValidationError("hash ring needs at least one node")
        if len(set(nodes)) != len(nodes):
            raise ValidationError(f"duplicate nodes in hash ring: {nodes}")
        if replicas < 1:
            raise ValidationError(f"replicas must be >= 1, got {replicas}")
        self.nodes = list(nodes)
        points: list[tuple[int, str]] = []
        for node in nodes:
            for i in range(replicas):
                points.append((self._position(f"{node}#{i}"), node))
        points.sort()
        self._hashes = [h for h, _ in points]
        self._owners = [node for _, node in points]

    @staticmethod
    def _position(token: str) -> int:
        digest = hashlib.blake2b(token.encode("utf-8"), digest_size=8)
        return int.from_bytes(digest.digest(), "big")

    def node_for(self, key: str) -> str:
        """The shard owning ``key`` (a coalescing fingerprint)."""
        return self.preference(key)[0]

    def preference(self, key: str) -> list[str]:
        """Every node, in failover order for ``key``.

        The first entry owns the key; the rest is the deterministic
        order to try when owners are down (distinct nodes in clockwise
        ring order). Depends only on ``key`` and ring membership, so
        every router instance agrees.
        """
        start = bisect.bisect(self._hashes, self._position(key))
        seen: list[str] = []
        for i in range(len(self._owners)):
            node = self._owners[(start + i) % len(self._owners)]
            if node not in seen:
                seen.append(node)
                if len(seen) == len(self.nodes):
                    break
        return seen


@dataclass
class RouterConfig:
    """Operator-facing knobs of the shard router."""

    host: str = "127.0.0.1"
    port: int = 8788  # 0 = pick an ephemeral port
    #: Maximum concurrently forwarded computations (then 429).
    queue_limit: int = 32
    #: Per-request deadline (covers coalesced waiting + the forward).
    request_timeout: float = 600.0
    #: Socket timeout of one forward attempt to one shard.
    forward_timeout: float = 590.0
    drain_timeout: float = 60.0
    keepalive_timeout: float = 75.0
    retry_after: float = 1.0
    #: Per-client compute quota (requests/minute; 0 = unlimited).
    quota_per_minute: int = 0
    #: Virtual nodes per shard on the hash ring.
    replicas: int = 64
    #: How long a shard stays deprioritized after a transport failure.
    down_cooldown: float = 30.0
    #: Concurrent chunks per scheduled job.
    chunk_concurrency: int = 4
    log_stream: object = None


def _split_url(url: str) -> tuple[str, int]:
    split = urlsplit(url if "//" in url else f"http://{url}")
    if not split.hostname:
        raise ValidationError(f"no host in shard URL {url!r}")
    return split.hostname, split.port or 8787


def _forward(
    url: str, method: str, path: str, body: bytes | None, timeout: float
) -> tuple[int, dict, str | None]:
    """One blocking forward to a shard → ``(status, payload, retry_after)``.

    Raises :class:`~repro.errors.ServiceError` only on transport
    failure (unreachable/reset shard); HTTP error statuses are returned
    for the router to interpret.
    """
    host, port = _split_url(url)
    conn = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        conn.request(
            method,
            path,
            body=body,
            headers={"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        status = response.status
        retry_after = response.getheader("Retry-After")
        raw = response.read()
    except (OSError, socket.timeout, http.client.HTTPException) as exc:
        raise ServiceError(f"shard {url} unreachable: {exc}") from exc
    finally:
        conn.close()
    try:
        payload = json.loads(raw) if raw else {}
        if not isinstance(payload, dict):
            payload = {"error": f"non-object response: {payload!r}"}
    except ValueError:
        payload = {"error": raw.decode("utf-8", "replace")}
    return status, payload, retry_after


class ShardRouter(HttpDaemon):
    """Routes requests to the shard owning their fingerprint."""

    log_name = "repro.router"

    def __init__(self, config: RouterConfig, worker_urls: list[str]):
        super().__init__(config)
        self.ring = HashRing(list(worker_urls), replicas=config.replicas)
        self.admission = AdmissionGate(config.queue_limit, self.stats)
        self.scheduler = JobScheduler(
            self._submit_chunk, chunk_concurrency=config.chunk_concurrency
        )
        self._executor = ThreadPoolExecutor(
            max_workers=config.queue_limit,
            thread_name_prefix="repro-router",
        )
        #: Requests forwarded per shard (includes failover retries).
        self.shard_requests: dict[str, int] = dict.fromkeys(self.ring.nodes, 0)
        #: Last-forward health per shard.
        self._healthy: dict[str, bool] = dict.fromkeys(self.ring.nodes, True)
        #: url -> monotonic timestamp of the last transport failure.
        self._down_since: dict[str, float] = {}

    # -- lifecycle hooks -----------------------------------------------------

    def _describe(self) -> str:
        return (
            f"shards={len(self.ring.nodes)}, "
            f"queue_limit={self.config.queue_limit}, "
            f"quota={self.config.quota_per_minute or 'off'}/min"
        )

    def _shutdown_executors(self, drained: bool) -> None:
        self._executor.shutdown(wait=drained, cancel_futures=True)

    # -- routing -------------------------------------------------------------

    def _mark_down(self, url: str) -> None:
        self._healthy[url] = False
        self._down_since[url] = time.monotonic()

    def _mark_up(self, url: str) -> None:
        self._healthy[url] = True
        self._down_since.pop(url, None)

    def _ordered_candidates(self, key: str) -> list[str]:
        """Failover order for ``key``, recently-dead shards last.

        Down marks expire after ``down_cooldown`` so a restarted shard
        regains its keyspace without operator action.
        """
        now = time.monotonic()
        preferred = self.ring.preference(key)
        alive = [
            url
            for url in preferred
            if now - self._down_since.get(url, -1e18)
            >= self.config.down_cooldown
        ]
        dead = [url for url in preferred if url not in alive]
        return alive + dead

    async def _forward_routed(
        self, path: str, body: bytes, key: str, *, failover: bool
    ) -> tuple[int, dict, str | None]:
        """Forward one request to the owning shard (+ optional failover)."""
        loop = asyncio.get_running_loop()
        candidates = self._ordered_candidates(key)
        if not failover:
            candidates = candidates[:1]
        errors: list[str] = []
        for url in candidates:
            self.shard_requests[url] = self.shard_requests.get(url, 0) + 1
            try:
                status, payload, retry_after = await loop.run_in_executor(
                    self._executor,
                    _forward,
                    url,
                    "POST",
                    path,
                    body,
                    self.config.forward_timeout,
                )
            except ServiceError as exc:
                self._mark_down(url)
                self._log(f"shard {url} failed: {exc}")
                errors.append(str(exc))
                continue
            self._mark_up(url)
            if status == 503 and failover:
                # Shard draining: its keyspace temporarily moves on.
                errors.append(f"shard {url} draining")
                continue
            return status, payload, retry_after
        raise ServiceError(
            "no shard could serve the request: " + "; ".join(errors)
        )

    async def _route_compute(
        self, path: str, key: str, body: bytes
    ) -> tuple[int, dict, dict]:
        """Single-flight + forward; mirrors the worker's compute flow."""

        async def start():
            return await self._forward_routed(path, body, key, failover=True)

        try:
            (status, payload, retry_after), coalesced = (
                await self.single_flight.run(
                    key,
                    start,
                    gate=self.admission,
                    timeout=self.config.request_timeout,
                )
            )
        except BlockingIOError:
            return (
                429,
                {
                    "error": "router admission queue full",
                    "retry_after": self.config.retry_after,
                },
                {"Retry-After": f"{self.config.retry_after:g}"},
            )
        except asyncio.TimeoutError:
            self.stats.timeouts += 1
            return (
                504,
                {
                    "error": "request timed out after "
                    f"{self.config.request_timeout:g}s (still computing "
                    "for any coalesced waiters)"
                },
                {},
            )
        except ServiceError as exc:
            self.stats.internal_errors += 1
            return 502, {"error": str(exc), "kind": "routing"}, {}

        extra = {"Retry-After": retry_after} if retry_after else {}
        if status == 200:
            self.stats.completed += 1
            payload = dict(payload)
            # Coalesced at either tier counts: the client's request did
            # not cause a new computation.
            payload["coalesced"] = bool(payload.get("coalesced")) or coalesced
        elif 400 <= status < 500:
            self.stats.validation_errors += 1
        elif status >= 500:
            self.stats.internal_errors += 1
        return status, payload, extra

    async def _submit_chunk(self, payload: dict) -> dict:
        """Scheduler hook: route one chunk, no in-line failover.

        A dead shard raises :class:`~repro.errors.ServiceError`, which
        the scheduler turns into a requeue; the retry then routes around
        the dead shard via the health marks. Coalesces with identical
        direct ``/sweep`` requests through the same single flight.
        """
        request = SweepRequest.from_payload(payload)
        key = request.coalesce_key()
        body = json.dumps(payload).encode("utf-8")

        async def start():
            return await self._forward_routed(
                "/sweep", body, key, failover=False
            )

        try:
            (status, reply, _), _ = await self.single_flight.run(
                key,
                start,
                gate=self.admission,
                timeout=self.config.request_timeout,
            )
        except BlockingIOError as exc:
            raise ServiceError("router admission queue full") from exc
        except asyncio.TimeoutError as exc:
            raise ServiceError(
                f"chunk timed out after {self.config.request_timeout:g}s"
            ) from exc
        if 400 <= status < 500 and status != 429:
            raise ValidationError(
                f"shard rejected chunk: {reply.get('error', status)}"
            )
        if status != 200:
            raise ServiceError(
                f"shard failed chunk: {reply.get('error', status)}",
                status=status,
            )
        return reply

    # -- dispatch ------------------------------------------------------------

    async def _dispatch(
        self, request: _HttpRequest, client: str
    ) -> tuple[int, dict | str, dict]:
        path = request.path.split("?", 1)[0]
        if path.startswith("/jobs/"):
            self.stats.requests["/jobs/<id>"] += 1
            if request.method != "GET":
                return 405, {"error": "/jobs/<id> expects GET"}, {"Allow": "GET"}
            status = self.scheduler.status(path[len("/jobs/") :])
            if status is None:
                return 404, {"error": f"unknown job {path[len('/jobs/'):]!r}"}, {}
            return 200, status, {}

        self.stats.requests[path] += 1
        expected = _ROUTER_ENDPOINTS.get(path)
        if expected is None:
            return 404, {"error": f"unknown endpoint {path!r}"}, {}
        if request.method != expected:
            return (
                405,
                {"error": f"{path} expects {expected}"},
                {"Allow": expected},
            )

        if path == "/healthz":
            return (
                200,
                {
                    "status": "draining" if self._draining else "ok",
                    "uptime_seconds": round(self.stats.uptime_seconds, 3),
                    "shards": {
                        url: "up" if self._healthy.get(url) else "down"
                        for url in self.ring.nodes
                    },
                },
                {},
            )
        if path == "/stats":
            return 200, self._stats_payload(), {}
        if path == "/metrics":
            return (
                200,
                render_metrics(self._stats_payload()),
                {"Content-Type": _METRICS_CONTENT_TYPE},
            )
        if path == "/shutdown":
            self._log("shutdown requested via POST /shutdown")
            self.request_shutdown()
            return (
                200,
                {"status": "draining", "in_flight": self.stats.in_flight},
                {},
            )

        rejected = self._quota_reject(client) if path in _QUOTA_PATHS else None
        if rejected is not None:
            return rejected
        if self._draining:
            return (
                503,
                {"error": "router is draining"},
                {"Retry-After": f"{self.config.retry_after:g}"},
            )

        try:
            body = json.loads(request.body) if request.body else {}
        except ValueError:
            self.stats.validation_errors += 1
            return 400, {"error": "body is not valid JSON", "kind": "validation"}, {}

        if path == "/jobs":
            try:
                ack = self.scheduler.submit(body)
            except (ValidationError, ConfigurationError, ConstructionError) as exc:
                self.stats.validation_errors += 1
                return 400, {"error": str(exc), "kind": "validation"}, {}
            self.stats.completed += 1
            return 202, {"ok": True, **ack}, {}

        try:
            parsed = _PARSERS[path](body)
        except (ValidationError, ConfigurationError, ConstructionError) as exc:
            self.stats.validation_errors += 1
            return 400, {"error": str(exc), "kind": "validation"}, {}
        return await self._route_compute(
            path, parsed.coalesce_key(), request.body
        )

    # -- stats ---------------------------------------------------------------

    def _stats_payload(self) -> dict:
        payload = self.stats.snapshot()
        payload["queue_limit"] = self.config.queue_limit
        payload["quota_per_minute"] = self.config.quota_per_minute
        payload["shards"] = self.ring.nodes
        payload["shard_requests"] = dict(self.shard_requests)
        payload["shard_health"] = dict(self._healthy)
        payload.update(self.scheduler.stats())
        # The router's own process never runs sorts, but pool/shard-worker
        # deltas absorbed into this process would show here; exported for
        # schema parity with the workers.
        payload["memo_process"] = _memo_obj(ConflictMemo.process_stats())
        return payload


# -- in-process fleet --------------------------------------------------------


@dataclass
class _Worker:
    """One fleet member: its thread, config, and live service handle."""

    index: int
    config: ServiceConfig
    thread: threading.Thread | None = None
    ready: threading.Event = field(default_factory=threading.Event)
    holder: dict = field(default_factory=dict)

    @property
    def service(self) -> ReproService | None:
        return self.holder.get("service")

    @property
    def url(self) -> str:
        service = self.service
        if service is None or service.port is None:
            raise ServiceError(f"worker {self.index} is not running")
        return f"http://{service.config.host}:{service.port}"


class ShardFleet:
    """N worker daemons, each in its own thread + event loop.

    Worker ports are always ephemeral (``port=0``); the fleet reports
    the resolved URLs for the router's hash ring. All workers share the
    template config — in particular the same ``cache_dir``, which is
    what makes the on-disk :class:`~repro.bench.cache.BenchCache` the
    fleet-wide second cache tier (its writes are atomic, so concurrent
    shards sharing a directory is safe by construction).
    """

    def __init__(self, worker_config: ServiceConfig, shards: int):
        if shards < 1:
            raise ValidationError(f"shards must be >= 1, got {shards}")
        self._workers = []
        for index in range(shards):
            config = dataclasses.replace(worker_config, port=0)
            self._workers.append(_Worker(index=index, config=config))

    def __len__(self) -> int:
        return len(self._workers)

    @property
    def urls(self) -> list[str]:
        return [worker.url for worker in self._workers]

    def service(self, index: int) -> ReproService:
        service = self._workers[index].service
        if service is None:
            raise ServiceError(f"worker {index} is not running")
        return service

    def start(self, timeout: float = 30.0) -> "ShardFleet":
        """Start every worker and wait until all listeners are bound."""
        for worker in self._workers:
            worker.thread = threading.Thread(
                target=self._run_worker,
                args=(worker,),
                name=f"repro-shard-{worker.index}",
                daemon=True,
            )
            worker.thread.start()
        deadline = time.monotonic() + timeout
        for worker in self._workers:
            remaining = max(0.1, deadline - time.monotonic())
            if not worker.ready.wait(remaining):
                self.stop()
                raise ServiceError(
                    f"worker {worker.index} did not start within {timeout:g}s"
                )
        return self

    @staticmethod
    def _run_worker(worker: _Worker) -> None:
        def on_started(service: ReproService) -> None:
            worker.holder["service"] = service
            worker.ready.set()

        try:
            asyncio.run(run_service(worker.config, on_started=on_started))
        except RuntimeError:
            # Hard kill: the loop was stopped out from under asyncio.run
            # (crash semantics, see ShardFleet.kill).
            pass

    def kill(self, index: int) -> None:
        """Hard-stop one worker without draining — crash simulation.

        In-flight requests on that shard die with reset connections
        (the router marks it down; the scheduler requeues its chunks),
        unlike :meth:`stop`'s graceful drain.
        """
        worker = self._workers[index]
        service = worker.service
        if service is not None:
            service.abort()
        if worker.thread is not None:
            worker.thread.join(timeout=10.0)

    def stop(self, timeout: float = 30.0) -> None:
        """Gracefully drain and join every still-running worker."""
        for worker in self._workers:
            if worker.service is not None:
                worker.service.request_shutdown()
        for worker in self._workers:
            if worker.thread is not None:
                worker.thread.join(timeout=timeout)


# -- entry points ------------------------------------------------------------


async def run_router(
    config: RouterConfig,
    worker_urls: list[str],
    *,
    on_started: Callable[[ShardRouter], None] | None = None,
) -> bool:
    """Start a router and serve until shutdown; ``True`` on clean drain."""
    router = ShardRouter(config, worker_urls)
    await router.start()
    if on_started is not None:
        on_started(router)
    return await router.serve_until_shutdown()


def serve_fleet(
    worker_config: ServiceConfig,
    router_config: RouterConfig,
    shards: int,
) -> int:
    """Blocking entry point of ``repro-mergesort serve --shards N``.

    Boots the worker fleet, then runs the router in the main thread
    until SIGTERM/SIGINT or ``POST /shutdown``; finally drains the
    workers. Exit code 0 on a clean drain end-to-end.
    """
    fleet = ShardFleet(worker_config, shards).start()
    try:
        drained = asyncio.run(run_router(router_config, fleet.urls))
    finally:
        fleet.stop()
    return 0 if drained else 1
