"""Mutable service counters and their ``/stats`` snapshot.

One :class:`ServiceStats` lives for the whole daemon process. Counters
are plain ints mutated from the event loop and (for the ``*_executed``
family) from executor threads — individual increments are atomic under
the GIL and the snapshot is advisory, so no locking is needed.
"""

from __future__ import annotations

import time
from collections import Counter

__all__ = ["ServiceStats"]


class ServiceStats:
    """Request, batching, and backpressure counters for one daemon."""

    def __init__(self) -> None:
        self._started = time.monotonic()
        #: Requests seen, by path (includes rejected/failed ones).
        self.requests: Counter[str] = Counter()
        #: Single-flight accounting: leaders actually ran the work,
        #: coalesced waiters shared a leader's in-flight result.
        self.primary = 0
        self.coalesced = 0
        #: Backpressure and failure accounting.
        self.rejected = 0  # 429: admission queue full
        self.quota_rejected = 0  # 429: per-client quota exhausted
        self.timeouts = 0  # 504: per-request deadline expired
        self.validation_errors = 0  # 400
        self.internal_errors = 0  # 500
        self.completed = 0  # 2xx responses
        #: Work actually executed (post-coalescing, post-cache).
        self.sorts_executed = 0
        self.sweeps_executed = 0
        self.constructs_executed = 0
        #: Admission-gate occupancy.
        self.in_flight = 0
        self.peak_in_flight = 0
        #: Connection accounting.
        self.connections = 0

    @property
    def uptime_seconds(self) -> float:
        """Seconds since the stats object (i.e. the service) was created."""
        return time.monotonic() - self._started

    def note_admitted(self) -> None:
        """Record one admission-gate entry."""
        self.in_flight += 1
        self.peak_in_flight = max(self.peak_in_flight, self.in_flight)

    def note_released(self) -> None:
        """Record one admission-gate exit."""
        self.in_flight -= 1

    def snapshot(self) -> dict:
        """JSON-safe dump served by ``GET /stats``."""
        return {
            "uptime_seconds": round(self.uptime_seconds, 3),
            "requests": dict(self.requests),
            "batching": {
                "primary": self.primary,
                "coalesced": self.coalesced,
                "in_flight": self.in_flight,
                "peak_in_flight": self.peak_in_flight,
            },
            "backpressure": {
                "rejected": self.rejected,
                "quota_rejected": self.quota_rejected,
            },
            "responses": {
                "completed": self.completed,
                "timeouts": self.timeouts,
                "validation_errors": self.validation_errors,
                "internal_errors": self.internal_errors,
            },
            "executed": {
                "construct": self.constructs_executed,
                "simulate": self.sorts_executed,
                "sweep": self.sweeps_executed,
            },
            "connections": self.connections,
        }
