"""Instrumented GPU pairwise merge sort — the Thrust / Modern GPU analogue.

The algorithm (paper Section II-A):

1. **Base case** — tiles of ``bE`` consecutive elements are sorted by one
   thread block each: every thread sorts ``E`` elements in registers with an
   odd-even sorting network, then ``log b`` block-level pairwise merge
   rounds run in shared memory.
2. **Global rounds** — ``⌈log(N/bE)⌉`` pairwise merge rounds; in each, pairs
   of sorted runs are merged, every thread block finding its ``bE``-element
   quantile via mutual binary search in global memory and merging it in
   shared memory with one round of GPU Merge Path.

Every shared-memory access of the partitioning (β₁) and merging (β₂) stages
is recorded and scored through :mod:`repro.dmm`; global traffic is counted
through :mod:`repro.gpu.global_memory`. ``Thrust`` and ``Modern GPU`` are
modeled as parameter presets of this one algorithm (see
:mod:`repro.sort.presets`), which is precisely how the paper treats them.
"""

from repro.sort.any_length import sort_any_length
from repro.sort.bitonic import BitonicSort
from repro.sort.config import SortConfig
from repro.sort.cpu_reference import cpu_merge_sort, is_sorted
from repro.sort.multiway import MultiwaySort
from repro.sort.networks import apply_oddeven_network, oddeven_network
from repro.sort.pairwise import PairwiseMergeSort, RoundStats, SortResult
from repro.sort.reference_kernel import reference_block_merge
from repro.sort.serialize import result_from_obj, result_to_obj, results_identical
from repro.sort.presets import (
    MGPU_MAXWELL,
    THRUST_CC60,
    THRUST_MAXWELL,
    default_presets_for,
    preset,
)

__all__ = [
    "BitonicSort",
    "MGPU_MAXWELL",
    "MultiwaySort",
    "PairwiseMergeSort",
    "RoundStats",
    "SortConfig",
    "SortResult",
    "THRUST_CC60",
    "THRUST_MAXWELL",
    "apply_oddeven_network",
    "cpu_merge_sort",
    "default_presets_for",
    "is_sorted",
    "oddeven_network",
    "preset",
    "reference_block_merge",
    "result_from_obj",
    "result_to_obj",
    "results_identical",
    "sort_any_length",
]
