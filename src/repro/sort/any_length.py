"""Arbitrary-length sorting via pad-and-slice.

The simulator (like the paper's sweeps) wants tidy ``bE·2^k`` inputs;
real callers have whatever they have. This wrapper pads to the next valid
size with above-maximum sentinels (which sort to the tail and are sliced
off), runs the instrumented sort, and rescales the per-element metrics to
the *caller's* element count so instrumentation stays meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ValidationError
from repro.inputs.generators import pad_to_tiles
from repro.sort.config import SortConfig
from repro.sort.pairwise import PairwiseMergeSort, SortResult

__all__ = ["AnyLengthResult", "sort_any_length"]


@dataclass(frozen=True)
class AnyLengthResult:
    """A ragged-input sort: caller-facing values plus the padded run."""

    values: np.ndarray
    padded_result: SortResult
    num_elements: int
    padded_elements: int

    @property
    def padding_overhead(self) -> float:
        """Padded/requested element ratio (1.0 = no padding needed)."""
        return self.padded_elements / self.num_elements

    def replays_per_element(self) -> float:
        """Conflicts per *caller* element (padding work included — the
        padding really is sorted along, exactly as Thrust's ragged-edge
        handling costs real work)."""
        return self.padded_result.total_replays() / self.num_elements


def sort_any_length(
    values: np.ndarray,
    config: SortConfig,
    *,
    padding: int = 0,
    score_blocks: int | None = None,
    seed: int | None = 0,
) -> AnyLengthResult:
    """Sort an arbitrary-length input through the simulator.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.sort.config import SortConfig
    >>> cfg = SortConfig(elements_per_thread=3, block_size=8, warp_size=4)
    >>> out = sort_any_length(np.array([5, 3, 9, 1, 1]), cfg)
    >>> out.values.tolist()
    [1, 1, 3, 5, 9]
    """
    values = np.asarray(values)
    if values.ndim != 1:
        raise ValidationError(f"values must be 1-D, got shape {values.shape}")
    if values.size == 0:
        raise ValidationError("cannot sort an empty input")

    padded = pad_to_tiles(values, config)
    result = PairwiseMergeSort(config, padding=padding).sort(
        padded, score_blocks=score_blocks, seed=seed
    )
    return AnyLengthResult(
        values=result.values[: values.size].copy(),
        padded_result=result,
        num_elements=int(values.size),
        padded_elements=int(padded.size),
    )
