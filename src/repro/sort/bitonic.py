"""Instrumented bitonic sort — the oblivious baseline.

The paper's related work (Peters et al.) lists bitonic sort among GPU
comparison sorts. It is *data-oblivious*: the compare-exchange schedule —
hence every shared-memory address ever touched — depends only on ``N``,
never on the keys. That makes it the natural control for the paper's
attack: its bank-conflict count on the constructed worst-case input is
*identical* to its count on random input, at the price of ``Θ(N log² N)``
work versus merge sort's ``Θ(N log N)``.

Model (classic two-elements-per-thread GPU bitonic):

* stages ``size = 2, 4, …, N``; within a stage, exchange distances
  ``d = size/2, …, 1``;
* steps with ``d ≥ tile`` run in global memory (one coalesced
  read-modify-write sweep of the array each);
* steps with ``d < tile`` run in shared memory on resident tiles of
  ``2b`` elements; their accesses are traced and conflict-scored. Because
  the schedule is oblivious and identical across tiles, one tile is scored
  and scaled exactly.

The well-known low-distance bank conflicts are faithfully reproduced: at
``d < w`` a warp's threads touch only every other address run, giving
2-way (and worse) conflicts — visible in the instrumentation as a
constant, input-independent overhead.
"""

from __future__ import annotations

import numpy as np

from repro.dmm.conflicts import ConflictReport, count_conflicts
from repro.dmm.trace import AccessTrace
from repro.errors import ConfigurationError
from repro.gpu.global_memory import CoalescingModel, GlobalTraffic
from repro.mergepath.kernels import stack_warp_steps
from repro.mitigation.registry import reconcile_mitigation
from repro.sort.pairwise import RoundStats, SortResult
from repro.utils.bits import ilog2, is_power_of_two
from repro.utils.validation import check_positive_int, check_power_of_two

__all__ = ["BitonicSort"]


class BitonicSort:
    """Simulated GPU bitonic sort with full conflict instrumentation.

    Parameters
    ----------
    block_size:
        Threads per block ``b``; each thread owns two elements, so the
        shared tile is ``2b`` elements.
    warp_size:
        Warp width / bank count.
    mitigation:
        Layout defense applied to every traced shared-memory address
        (spec string or :class:`~repro.mitigation.base.Mitigation`;
        default ``"none"``, the stock layout).

    Examples
    --------
    >>> import numpy as np
    >>> sorter = BitonicSort(block_size=8, warp_size=4)
    >>> data = np.random.default_rng(0).permutation(64)
    >>> bool(np.array_equal(sorter.sort(data).values, np.sort(data)))
    True
    """

    def __init__(
        self, block_size: int, warp_size: int = 32, *, mitigation=None
    ):
        self.block_size = check_power_of_two(block_size, "block_size")
        self.warp_size = check_power_of_two(warp_size, "warp_size")
        self.mitigation = reconcile_mitigation(mitigation)
        if block_size < warp_size:
            raise ConfigurationError(
                f"block_size {block_size} must be >= warp_size {warp_size}"
            )

    @property
    def tile_size(self) -> int:
        """Elements resident in shared memory per block: ``2b``."""
        return 2 * self.block_size

    def validate_input_size(self, num_elements: int) -> int:
        """Bitonic sort requires a power-of-two input of at least one tile."""
        num_elements = check_positive_int(num_elements, "num_elements")
        if not is_power_of_two(num_elements) or num_elements < self.tile_size:
            raise ConfigurationError(
                f"bitonic sort needs N = 2^k >= tile {self.tile_size}, "
                f"got {num_elements}"
            )
        return num_elements

    # -- the sort ----------------------------------------------------------

    def sort(self, values: np.ndarray) -> SortResult:
        """Sort ``values``, recording instrumentation per exchange step."""
        arr = np.ascontiguousarray(values).copy()
        n = self.validate_input_size(arr.size)
        result = SortResult(
            values=arr,
            config=_as_config(self),
            num_elements=n,
        )

        idx = np.arange(n, dtype=np.int64)
        log_n = ilog2(n)
        for stage in range(1, log_n + 1):
            size = 1 << stage
            for j in range(stage - 1, -1, -1):
                d = 1 << j
                self._exchange(arr, idx, size, d)
                self._score_step(n, size, d, result)

        result.values = arr
        return result

    @staticmethod
    def _exchange(arr: np.ndarray, idx: np.ndarray, size: int, d: int) -> None:
        """One vectorized compare-exchange step over the whole array."""
        low = (idx & d) == 0
        i = idx[low]
        j = i | d
        ascending = (i & size) == 0
        a, b = arr[i], arr[j]
        swap = (a > b) == ascending
        arr[i] = np.where(swap, b, a)
        arr[j] = np.where(swap, a, b)

    # -- instrumentation -----------------------------------------------------

    def _tile_step_trace(self, d: int) -> np.ndarray:
        """Stacked warp-step address matrix for one shared exchange step of
        one tile (reads; the mirrored writes double the counts)."""
        tile = self.tile_size
        t = np.arange(self.block_size, dtype=np.int64)
        # Thread t's low element: insert a 0 bit at position log2(d).
        i = ((t // d) * (2 * d)) + (t % d)
        matrix = np.vstack([i, i | d])  # two lock-step accesses
        return stack_warp_steps(matrix, self.warp_size)

    def _score_step(self, n: int, size: int, d: int, result: SortResult) -> None:
        tile = self.tile_size
        coalescing = CoalescingModel(self.warp_size)
        if d >= tile:
            # Global step: strided halves, runs of d >= tile >= w words —
            # coalesced read + write of the whole array.
            coalescing.streamed_copy(n)
            coalescing.streamed_copy(n)
            merge_report = ConflictReport.empty(self.warp_size)
            blocks_scored = blocks_total = n // tile
            kind = "global"
        else:
            stacked = self.mitigation.remap(
                self._tile_step_trace(d), self.warp_size
            )
            one_tile = count_conflicts(
                AccessTrace.from_dense(stacked), self.warp_size
            )
            # Reads + writes, identical pattern, across all (identical) tiles.
            merge_report = one_tile.scaled(2 * (n // tile))
            blocks_scored = blocks_total = n // tile
            kind = "block"
            # Tile load/store happen once per *run* of shared steps; charge
            # them on the d == 1 step (end of each stage's shared run).
            if d == 1:
                coalescing.streamed_copy(n)
                coalescing.streamed_copy(n)

        result.rounds.append(
            RoundStats(
                label=f"bitonic-size{size}-d{d}",
                kind=kind,
                run_length=size,
                merge_report=merge_report,
                partition_report=ConflictReport.empty(self.warp_size),
                staging_report=ConflictReport.empty(self.warp_size),
                global_traffic=coalescing.reset(),
                compute_instructions=2 * n // self.warp_size,
                blocks_total=blocks_total,
                blocks_scored=blocks_scored,
            )
        )


def _as_config(sorter: BitonicSort):
    """A SortConfig stand-in so SortResult helpers keep working."""
    from repro.sort.config import SortConfig

    return SortConfig(
        elements_per_thread=2,
        block_size=sorter.block_size,
        warp_size=sorter.warp_size,
        name="bitonic",
    )
