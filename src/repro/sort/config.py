"""Sort configuration: the paper's tuning parameters ``E``, ``b``, ``w``.

``E`` is the number of elements each thread merges per round; ``b`` the
threads per block (a power of two); ``w`` the warp width. The block tile is
``bE`` elements; the total thread count for an ``N``-element sort is
``N/E``. These three numbers drive everything: the shared-memory footprint,
the occupancy, the merge-round count, and — via ``GCD(w, E)`` — the
worst-case bank-conflict structure the paper constructs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.utils.bits import ceil_log2, ilog2, is_power_of_two
from repro.utils.validation import check_positive_int, check_power_of_two

__all__ = ["SortConfig"]


@dataclass(frozen=True)
class SortConfig:
    """Parameters of one pairwise-merge-sort configuration.

    Parameters
    ----------
    elements_per_thread:
        The paper's ``E``.
    block_size:
        Threads per block ``b`` (power of two, multiple of ``warp_size``).
    warp_size:
        Threads per warp = shared-memory banks ``w`` (power of two).
    element_bytes:
        Key size (4 for the paper's experiments).
    name:
        Optional label (e.g. ``"thrust"``) used in reports.
    """

    elements_per_thread: int
    block_size: int
    warp_size: int = 32
    element_bytes: int = 4
    name: str = "pairwise"

    def __post_init__(self) -> None:
        check_positive_int(self.elements_per_thread, "elements_per_thread")
        check_power_of_two(self.block_size, "block_size")
        check_power_of_two(self.warp_size, "warp_size")
        check_positive_int(self.element_bytes, "element_bytes")
        if self.block_size < self.warp_size:
            raise ConfigurationError(
                f"block_size {self.block_size} must be >= warp_size "
                f"{self.warp_size}"
            )

    # -- shorthand matching the paper's notation ----------------------------

    @property
    def E(self) -> int:  # noqa: N802 - paper notation
        """Elements per thread per merge round."""
        return self.elements_per_thread

    @property
    def b(self) -> int:  # noqa: N802 - paper notation
        """Threads per block."""
        return self.block_size

    @property
    def w(self) -> int:  # noqa: N802 - paper notation
        """Warp width / bank count."""
        return self.warp_size

    # -- derived quantities --------------------------------------------------

    @property
    def tile_size(self) -> int:
        """Elements per block tile: ``bE``."""
        return self.block_size * self.elements_per_thread

    @property
    def warps_per_block(self) -> int:
        """Warps per block: ``b / w``."""
        return self.block_size // self.warp_size

    @property
    def shared_bytes_per_block(self) -> int:
        """Shared-memory footprint of the merge kernel's tile."""
        return self.tile_size * self.element_bytes

    @property
    def gcd_we(self) -> int:
        """``GCD(w, E)`` — the paper's alignment parameter ``d``."""
        return math.gcd(self.warp_size, self.elements_per_thread)

    @property
    def is_coprime(self) -> bool:
        """Whether ``w`` and ``E`` are co-prime (the regime of Section III)."""
        return self.gcd_we == 1

    @property
    def num_block_rounds(self) -> int:
        """Block-level merge rounds in the base case: ``log b``."""
        return ilog2(self.block_size)

    def num_global_rounds(self, num_elements: int) -> int:
        """Global merge rounds for an ``N``-element sort: ``⌈log(N/bE)⌉``."""
        num_elements = self.validate_input_size(num_elements)
        return ceil_log2(num_elements // self.tile_size)

    def num_threads(self, num_elements: int) -> int:
        """Total threads launched per round: ``N / E``."""
        return self.validate_input_size(num_elements) // self.elements_per_thread

    def validate_input_size(self, num_elements: int) -> int:
        """Check that ``N`` is a tile multiple with a power-of-two tile count.

        The simulator (like the paper's size sweeps, all of which are
        ``bE · 2^k``) requires clean pairwise rounds; ragged inputs should be
        padded by the caller (``repro.inputs.pad_to_tiles``).
        """
        num_elements = check_positive_int(num_elements, "num_elements")
        tiles, rem = divmod(num_elements, self.tile_size)
        if rem or not is_power_of_two(tiles):
            raise ConfigurationError(
                f"N = {num_elements} must be tile_size ({self.tile_size}) "
                f"x a power of two; nearest valid sizes are "
                f"{self.tile_size * (1 << max(0, (tiles or 1).bit_length() - 1))} "
                f"and {self.tile_size * (1 << (tiles or 1).bit_length())}"
            )
        return num_elements

    def valid_sizes(self, max_elements: int) -> list[int]:
        """All valid input sizes ``bE · 2^k`` up to ``max_elements``."""
        check_positive_int(max_elements, "max_elements")
        sizes = []
        n = self.tile_size
        while n <= max_elements:
            sizes.append(n)
            n *= 2
        return sizes
