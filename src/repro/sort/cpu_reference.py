"""CPU reference sorts and order checks.

The simulator's correctness oracle: every simulated sort must agree with a
straightforward, obviously-correct host-side merge sort (and with
``np.sort``). The bottom-up reference here mirrors the GPU algorithm's
merge tree, which makes divergences easy to localize when a test fails.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError
from repro.mergepath.serial_merge import merge_values

__all__ = ["cpu_merge_sort", "is_sorted"]


def is_sorted(values: np.ndarray) -> bool:
    """Whether a 1-D array is nondecreasing."""
    values = np.asarray(values)
    if values.ndim != 1:
        raise ValidationError(f"values must be 1-D, got shape {values.shape}")
    return bool(values.size < 2 or np.all(values[1:] >= values[:-1]))


def cpu_merge_sort(values: np.ndarray, run_length: int = 1) -> np.ndarray:
    """Bottom-up pairwise merge sort on the host.

    Starts from sorted runs of ``run_length`` (sorting each run with
    ``np.sort``) and doubles, mirroring the GPU algorithm's merge tree.
    Requires ``len(values)`` to be ``run_length × a power of two``.
    """
    values = np.asarray(values)
    if values.ndim != 1:
        raise ValidationError(f"values must be 1-D, got shape {values.shape}")
    n = values.size
    if n == 0:
        return values.copy()
    if run_length < 1 or n % run_length:
        raise ValidationError(
            f"run_length {run_length} must divide the input size {n}"
        )
    runs = n // run_length
    if runs & (runs - 1):
        raise ValidationError(f"number of runs {runs} must be a power of two")

    out = np.sort(values.reshape(runs, run_length), axis=1).reshape(-1).copy()
    width = run_length
    while width < n:
        for base in range(0, n, 2 * width):
            out[base : base + 2 * width] = merge_values(
                out[base : base + width], out[base + width : base + 2 * width]
            )
        width *= 2
    return out
