"""Instrumented K-way merge sort — Karsin et al.'s alternative.

The paper's Section II-C cites multiway merge sort [19, 21] alongside the
pairwise algorithm it attacks. The multiway variant trades per-round
simplicity for *fewer rounds*: ``⌈log_K(N/bE)⌉`` global rounds instead of
``⌈log₂(N/bE)⌉``, slashing the ``A_g`` global-traffic term that motivates
large ``E`` in the first place.

Model:

* the base case (register sort + block-level pairwise rounds up to ``bE``)
  is identical to :class:`~repro.sort.pairwise.PairwiseMergeSort` and is
  delegated to it;
* each multiway round merges groups of ``K`` sorted runs; a block's tile
  holds its ``bE``-rank quantile of a group — the ``K`` source windows
  laid out contiguously — and each thread merges ``E`` elements, reading
  them in value order (one shared access per lock-step, exactly the access
  model of the paper's analysis, traced and conflict-scored);
* the partition stage is modeled as each thread rank-searching its start
  in all ``K`` source windows (``K·⌈log₂ run⌉`` probes, traced), and each
  block boundary doing the same in global memory (counted as scattered
  traffic).

The interesting adversarial question — measured in
``benchmarks/bench_baseline_multiway.py`` — is that the paper's
construction is *pairwise-specific*: under K-way consumption the
engineered alignment partially decoheres, so multiway merge sort is both
faster on random inputs (fewer rounds) and less damaged by this adversary.
(A K-way-specific worst case surely exists; constructing one is open.)
"""

from __future__ import annotations

import numpy as np

from repro.dmm.conflicts import ConflictReport, count_conflicts
from repro.dmm.trace import NO_ACCESS, AccessTrace
from repro.errors import ValidationError
from repro.gpu.global_memory import CoalescingModel, GlobalTraffic
from repro.mergepath.kernels import stack_warp_steps, thread_rank_addresses
from repro.mitigation.registry import reconcile_mitigation
from repro.sort.config import SortConfig
from repro.sort.pairwise import PairwiseMergeSort, RoundStats, SortResult
from repro.utils.bits import ceil_log2
from repro.utils.rng import as_generator
from repro.utils.validation import check_power_of_two

__all__ = ["MultiwaySort"]


class MultiwaySort:
    """Simulated K-way merge sort sharing the pairwise base case.

    Parameters
    ----------
    config:
        Tile shape parameters (``E``, ``b``, ``w``) — same meaning as for
        the pairwise sort.
    k:
        Merge fan-in ``K`` (power of two ≥ 2; ``K = 2`` degenerates to the
        pairwise algorithm round structure).
    mitigation:
        Layout defense applied to every traced shared-memory address —
        in the delegated pairwise base case and in the multiway rounds
        alike (spec string or
        :class:`~repro.mitigation.base.Mitigation`; default ``"none"``).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.sort.config import SortConfig
    >>> cfg = SortConfig(elements_per_thread=3, block_size=4, warp_size=4)
    >>> s = MultiwaySort(cfg, k=4)
    >>> data = np.random.default_rng(0).permutation(cfg.tile_size * 16)
    >>> bool(np.array_equal(s.sort(data).values, np.sort(data)))
    True
    """

    def __init__(self, config: SortConfig, k: int = 4, *, mitigation=None):
        self.config = config
        self.k = check_power_of_two(k, "k")
        self.mitigation = reconcile_mitigation(mitigation)
        if k < 2:
            raise ValidationError(f"fan-in k must be >= 2, got {k}")

    def num_multiway_rounds(self, num_elements: int) -> int:
        """Global rounds: ``⌈log_K(N / bE)⌉``."""
        tiles = self.config.validate_input_size(num_elements) // (
            self.config.tile_size
        )
        rounds = 0
        while tiles > 1:
            tiles = -(-tiles // self.k)
            rounds += 1
        return rounds

    # -- public API ----------------------------------------------------------

    def sort(
        self,
        values: np.ndarray,
        *,
        score_blocks: int | None = None,
        seed: int | None = 0,
    ) -> SortResult:
        """Sort ``values`` with full instrumentation."""
        cfg = self.config
        arr = np.ascontiguousarray(values)
        n = cfg.validate_input_size(arr.size)
        rng = as_generator(seed)

        result = SortResult(values=arr, config=cfg, num_elements=n)

        # Base case: identical to the pairwise algorithm.
        pairwise = PairwiseMergeSort(cfg, mitigation=self.mitigation)
        arr = pairwise._base_register_phase(arr, result)
        run = cfg.E
        while run < min(cfg.tile_size, n):
            arr, _ = pairwise._merge_round(arr, run, result, score_blocks, rng)
            run *= 2

        # Multiway rounds.
        while run < n:
            fan = min(self.k, n // run)
            arr = self._multiway_round(arr, run, fan, result, score_blocks, rng)
            run *= fan
        result.values = arr
        return result

    # -- one K-way round -------------------------------------------------

    def _multiway_round(
        self,
        arr: np.ndarray,
        run: int,
        fan: int,
        result: SortResult,
        score_blocks: int | None,
        rng: np.random.Generator,
    ) -> np.ndarray:
        cfg = self.config
        n = arr.size
        group_width = fan * run
        num_groups = n // group_width

        mat = arr.reshape(num_groups, group_width)
        # Stable argsort of the K concatenated runs == stable K-way merge
        # (ties resolve to the lower run index, the standard convention).
        order = np.argsort(mat, axis=1, kind="stable")
        merged = np.take_along_axis(mat, order, axis=1)

        blocks_per_group = group_width // cfg.tile_size
        blocks_total = num_groups * blocks_per_group
        scored = _choose(blocks_total, score_blocks, rng)

        merge_rows = []
        part_rows = []
        for blk in scored:
            group, x = divmod(int(blk), blocks_per_group)
            r_lo = x * cfg.tile_size
            r_hi = r_lo + cfg.tile_size
            s = order[group, r_lo:r_hi]
            src = s // run

            # Source-window starts (exclusive prefix counts before r_lo) and
            # the block's per-source window sizes.
            prior = order[group, :r_lo] // run
            lo = np.bincount(prior, minlength=fan)
            sizes = np.bincount(src, minlength=fan)
            window_base = np.concatenate([[0], np.cumsum(sizes)[:-1]])

            # Tile-local address of each output rank.
            local = window_base[src] + (s % run) - lo[src]
            merge_rows.append(
                stack_warp_steps(
                    thread_rank_addresses(local.astype(np.int64), cfg.E), cfg.w
                )
            )

            # Partition stage: each thread rank-searches its first value in
            # every source window (K bisections over the tile).
            starts = np.arange(cfg.b, dtype=np.int64) * cfg.E
            targets = merged[group, r_lo + starts]
            for k_src in range(fan):
                steps = _rank_search_steps(
                    mat[group],
                    value_targets=targets,
                    base=k_src * run + lo[k_src],
                    length=int(sizes[k_src]),
                    trace_base=int(window_base[k_src]),
                )
                if steps.size:
                    part_rows.append(stack_warp_steps(steps, cfg.w))

        merge_report = _score(merge_rows, cfg.w, self.mitigation)
        part_report = _score(part_rows, cfg.w, self.mitigation)

        coalescing = CoalescingModel(cfg.w)
        coalescing.streamed_copy(n)
        coalescing.streamed_copy(n)
        probes = blocks_total * fan * ceil_log2(run + 1)
        coalescing.scattered_access(probes)

        result.rounds.append(
            RoundStats(
                label=f"multiway-round-L{run}-K{fan}",
                kind="global",
                run_length=run,
                merge_report=merge_report,
                partition_report=part_report,
                staging_report=ConflictReport.empty(cfg.w),
                global_traffic=coalescing.reset(),
                compute_instructions=(2 + fan) * n // cfg.w,
                blocks_total=blocks_total,
                blocks_scored=len(scored),
            )
        )
        return merged.reshape(-1)


def _rank_search_steps(
    flat: np.ndarray,
    value_targets: np.ndarray,
    base: int,
    length: int,
    trace_base: int,
) -> np.ndarray:
    """Per-lane bisection for ``rank of target`` in one sorted window.

    Returns the dense ``(steps, lanes)`` probe-address matrix (tile-local
    addresses, one probe per iteration per active lane).
    """
    lanes = value_targets.size
    lo = np.zeros(lanes, dtype=np.int64)
    hi = np.full(lanes, length, dtype=np.int64)
    rows = []
    while True:
        active = lo < hi
        if not active.any():
            break
        mid = (lo + hi) // 2
        row = np.full(lanes, NO_ACCESS, dtype=np.int64)
        row[active] = trace_base + mid[active]
        rows.append(row)
        below = np.zeros(lanes, dtype=bool)
        below[active] = flat[(base + mid)[active]] < value_targets[active]
        lo = np.where(below, mid + 1, lo)
        hi = np.where(active & ~below, mid, hi)
    return np.vstack(rows) if rows else np.empty((0, lanes), dtype=np.int64)


def _choose(total: int, score_blocks: int | None, rng) -> np.ndarray:
    if score_blocks is None or score_blocks >= total:
        return np.arange(total, dtype=np.int64)
    return np.sort(rng.choice(total, size=score_blocks, replace=False)).astype(
        np.int64
    )


def _score(rows: list, num_banks: int, mitigation=None) -> ConflictReport:
    if not rows:
        return ConflictReport.empty(num_banks)
    dense = rows[0] if len(rows) == 1 else np.vstack(rows)
    if mitigation is not None:
        dense = mitigation.remap(dense, num_banks)
    return count_conflicts(AccessTrace.from_dense(dense), num_banks)
