"""Odd-even transposition sorting network — the register-level base case.

Each thread begins the base case by sorting its ``E`` elements *in
registers* with an odd-even network (paper Section II-A, citing Satish et
al.). Registers have no banks, so the network contributes no conflicts —
only compute instructions — but the loads that bring the ``E`` elements from
shared memory into registers (thread ``t`` reads addresses ``tE+j``) do hit
banks, and are conflict-free exactly when ``GCD(E, w) = 1`` (the Dotsenko
co-prime padding observation the paper cites). The simulator captures that
for free by tracing the load/store phases in :mod:`repro.sort.pairwise`.

The network is applied vectorized: one ``(num_threads, E)`` matrix, each
comparator a columnwise min/max exchange.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.errors import ValidationError
from repro.utils.validation import check_positive_int

__all__ = ["apply_oddeven_network", "network_depth", "oddeven_network"]


@lru_cache(maxsize=None)
def oddeven_network(width: int) -> tuple[tuple[int, int], ...]:
    """Comparators of the odd-even transposition network on ``width`` wires.

    ``width`` rounds alternate exchanges of (even, even+1) and (odd, odd+1)
    wire pairs; the result sorts any input (it is a sorting network).
    Returned as a flat tuple of ``(i, j)`` with ``i < j`` in application
    order.

    >>> oddeven_network(3)
    ((0, 1), (1, 2), (0, 1))
    """
    width = check_positive_int(width, "width")
    comparators: list[tuple[int, int]] = []
    for round_index in range(width):
        start = round_index % 2
        comparators.extend((i, i + 1) for i in range(start, width - 1, 2))
    return tuple(comparators)


def network_depth(width: int) -> int:
    """Depth (rounds) of the odd-even transposition network: ``width``."""
    return check_positive_int(width, "width")


def apply_oddeven_network(values: np.ndarray) -> tuple[np.ndarray, int]:
    """Sort each row of ``values`` with the odd-even network.

    Parameters
    ----------
    values:
        ``(num_threads, E)`` matrix; each row is one thread's registers.

    Returns
    -------
    (sorted_values, num_comparisons):
        The row-sorted matrix (a copy) and the total comparator executions
        (comparators × rows), which feeds the compute-instruction counter.

    Examples
    --------
    >>> import numpy as np
    >>> out, ops = apply_oddeven_network(np.array([[3, 1, 2], [9, 8, 7]]))
    >>> out.tolist()
    [[1, 2, 3], [7, 8, 9]]
    >>> ops
    6
    """
    values = np.asarray(values)
    if values.ndim != 2:
        raise ValidationError(
            f"values must be 2-D (threads, E), got shape {values.shape}"
        )
    out = values.copy()
    comparators = oddeven_network(out.shape[1]) if out.shape[1] > 1 else ()
    for i, j in comparators:
        lo = np.minimum(out[:, i], out[:, j])
        hi = np.maximum(out[:, i], out[:, j])
        out[:, i] = lo
        out[:, j] = hi
    return out, len(comparators) * out.shape[0]
