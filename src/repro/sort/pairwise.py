"""The instrumented pairwise merge sort simulator.

This is the system under test: a faithful functional model of the Thrust /
Modern GPU pairwise merge sort (paper Section II-A) that, besides sorting,
records every shared-memory access of every warp and scores it through the
DMM conflict model, and counts all global-memory traffic.

Structure of a sort of ``N = bE·2^k`` elements:

* **base case** — every thread sorts ``E`` register-resident elements with
  the odd-even network (the loads/stores that stage them through shared
  memory are traced), then ``log b`` *block rounds* merge runs
  ``E → 2E → … → bE`` inside each tile;
* ``k`` **global rounds** merge runs ``bE → 2bE → … → N``; each round every
  thread block finds its ``bE`` output quantile (mutual binary search in
  global memory — counted as scattered traffic), loads it to shared memory
  (coalesced), partitions it among its ``b`` threads (mutual binary search
  in shared memory — traced, the paper's β₁ stage), and merges ``E``
  elements per thread (traced, the β₂ stage).

Implementation notes (why this is fast enough to sweep):

* A merge round is computed for *all* pairs at once with one stable
  row-wise ``argsort`` — for two sorted halves this reproduces the stable
  (A-first) merge exactly, and the resulting ``order`` array doubles as the
  per-rank shared-memory address map (DESIGN.md §5).
* Conflict scoring is warp-additive, so all scored blocks of a round are
  folded into a single stacked trace (`stack_warp_steps`) and scored with
  one ``bincount`` pass.
* ``score_blocks`` caps how many tiles/blocks per round are scored
  (merging still processes all of them); the constructed adversarial
  inputs are periodic across blocks, so a small sample is *exact* for
  them and an unbiased estimate for random inputs. ``RoundStats`` keeps
  the scored/total counts so every aggregate can be rescaled honestly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dmm.conflicts import ConflictReport, count_conflicts, report_segments
from repro.dmm.fused import dense_report, permutation_stage_report
from repro.dmm.memo import ConflictMemo, MemoStats
from repro.dmm.trace import AccessTrace
from repro.errors import SimulationError, ValidationError
from repro.gpu.global_memory import CoalescingModel, GlobalTraffic
from repro.gpu.timing import KernelCost
from repro.mergepath import fused as fused_kernels
from repro.mergepath.kernels import (
    batched_rank_addresses,
    stack_group_warp_steps,
    stack_warp_steps,
    thread_rank_addresses,
)
from repro.mergepath.partition import partition_many_with_trace
from repro.sort.config import SortConfig
from repro.sort.networks import apply_oddeven_network
from repro.utils.bits import ceil_log2
from repro.utils.rng import as_generator

__all__ = ["PairwiseMergeSort", "RoundStats", "SortResult"]


@dataclass(frozen=True)
class RoundStats:
    """Instrumentation for one merge round (or the base register phase).

    ``merge_report`` / ``partition_report`` cover only the ``blocks_scored``
    sampled tiles; multiply by :attr:`scale` for whole-round estimates.
    ``staging_report`` (register load/store, base phase only) is already
    whole-round exact.
    """

    label: str
    kind: str  # "registers" | "block" | "global"
    run_length: int
    merge_report: ConflictReport
    partition_report: ConflictReport
    staging_report: ConflictReport
    global_traffic: GlobalTraffic
    compute_instructions: int
    blocks_total: int
    blocks_scored: int

    @property
    def scale(self) -> float:
        """Whole-round / scored-sample ratio for the traced reports."""
        if self.blocks_scored == 0:
            if self.blocks_total == 0:
                return 0.0
            # A NaN here would propagate silently through shared_cycles /
            # replays into benchmark output; fail loudly instead.
            raise SimulationError(
                f"round {self.label!r} scored 0 of {self.blocks_total} "
                "blocks; sampled reports cannot be rescaled"
            )
        return self.blocks_total / self.blocks_scored

    @property
    def shared_cycles(self) -> float:
        """Estimated serialized shared-memory cycles for the whole round."""
        traced = (
            self.merge_report.total_transactions
            + self.partition_report.total_transactions
        )
        return traced * self.scale + self.staging_report.total_transactions

    @property
    def shared_steps(self) -> float:
        """Conflict-free cycle count for the same accesses."""
        traced = (
            self.merge_report.conflict_free_cycles
            + self.partition_report.conflict_free_cycles
        )
        return traced * self.scale + self.staging_report.conflict_free_cycles

    @property
    def replays(self) -> float:
        """Estimated profiler-style bank conflicts for the whole round."""
        traced = (
            self.merge_report.total_replays + self.partition_report.total_replays
        )
        return traced * self.scale + self.staging_report.total_replays

    @property
    def merge_replays(self) -> float:
        """Whole-round merging-stage (β₂) conflicts."""
        return self.merge_report.total_replays * self.scale

    @property
    def partition_replays(self) -> float:
        """Whole-round partition-stage (β₁) conflicts."""
        return self.partition_report.total_replays * self.scale


@dataclass
class SortResult:
    """Output of one simulated sort: the values plus full instrumentation."""

    values: np.ndarray
    config: SortConfig
    num_elements: int
    rounds: list[RoundStats] = field(default_factory=list)
    #: Memoization hit/miss/footprint summary for this sort (hits and
    #: misses are deltas for this call even when the memo is shared);
    #: ``None`` when the sort ran without a memo.
    memo_stats: MemoStats | None = None

    @property
    def num_rounds(self) -> int:
        """Merge rounds executed (excluding the register phase)."""
        return sum(1 for r in self.rounds if r.kind != "registers")

    def total_shared_cycles(self) -> float:
        """Serialized shared-memory cycles across the whole sort."""
        return sum(r.shared_cycles for r in self.rounds)

    def total_replays(self) -> float:
        """Profiler-style bank conflicts across the whole sort."""
        return sum(r.replays for r in self.rounds)

    def replays_per_element(self) -> float:
        """The paper's Figure 6 metric: bank conflicts per input element."""
        return self.total_replays() / self.num_elements

    def total_global_traffic(self) -> GlobalTraffic:
        """Global transactions/words across the whole sort."""
        traffic = GlobalTraffic()
        for r in self.rounds:
            traffic = traffic.merged(r.global_traffic)
        return traffic

    def kernel_cost(self, warps_per_sm: int = 32) -> KernelCost:
        """Fold instrumentation into a :class:`~repro.gpu.timing.KernelCost`.

        ``warps_per_sm`` comes from the occupancy calculator for the
        configuration/device pair (see :mod:`repro.bench.runner`).
        """
        traffic = self.total_global_traffic()
        launches = 1 + 2 * sum(1 for r in self.rounds if r.kind == "global")
        return KernelCost(
            shared_cycles=round(self.total_shared_cycles()),
            shared_steps=round(sum(r.shared_steps for r in self.rounds)),
            global_transactions=traffic.transactions,
            global_words=traffic.words,
            compute_warp_instructions=sum(r.compute_instructions for r in self.rounds),
            kernel_launches=launches,
            warps_per_sm=warps_per_sm,
            element_bytes=self.config.element_bytes,
        )


class PairwiseMergeSort:
    """Simulated GPU pairwise merge sort for one :class:`SortConfig`.

    Parameters
    ----------
    config:
        The sort parameters.
    padding:
        Dotsenko-style shared-memory padding (elements skipped per ``w``
        logical cells — see :mod:`repro.mitigation.padding`). 0 models the
        stock Thrust/Modern GPU layout the paper attacks; 1 is the
        conflict-free mitigation the paper's related work discusses.
        Legacy spelling of ``mitigation="padding:N"`` — both knobs
        reconcile through
        :func:`~repro.mitigation.registry.reconcile_mitigation`, and
        disagreeing values raise.
    mitigation:
        Shared-memory layout defense: a spec string (``"none"``,
        ``"padding:1"``, ``"cfree-sort"``, ``"cfree-permute"``), a
        :class:`~repro.mitigation.base.Mitigation` instance, or ``None``
        for the registry default. Every scoring path applies the
        backend's address remap before conflict counting;
        ``scoring="analytic"`` demands an analytically-modeled backend
        (``none``/``padding``) and raises a
        :class:`~repro.errors.ValidationError` otherwise — matrix cells
        must never report closed-form numbers for layouts the model
        doesn't cover.
    scoring:
        ``"vectorized"`` (default) batches every scored tile of a round
        through one address-arithmetic pass, one
        :func:`~repro.mergepath.partition.partition_many_with_trace` call
        and one stacked conflict count; ``"loop"`` is the original
        tile-at-a-time reference implementation. Both produce bit-identical
        :class:`SortResult`\\ s (enforced by the equivalence tests) — keep
        ``"loop"`` around only as the oracle. ``"fused"`` scores each round
        in a single streaming pass with no ``AccessTrace`` intermediates
        (:mod:`repro.mergepath.fused`), dispatching to the optional
        compiled backend when it is importable and ``REPRO_FORCE_NUMPY``
        is unset — again bit-identical, including the sampled-block RNG
        draw order. ``"analytic"`` skips trace
        simulation entirely: the input must be a recognized constructed
        family (sorted / strictly-decreasing / canonical sawtooth /
        worst-case — anything else raises
        :class:`~repro.errors.ValidationError`) and the result is derived
        in ``O(rounds)`` arithmetic by :mod:`repro.analytic`, again
        bit-identical to the simulated paths.
    memo:
        Content-addressed conflict-report memoization
        (:class:`~repro.dmm.memo.ConflictMemo`). ``"auto"`` (default)
        creates a private memo so identical tile patterns within and across
        this sorter's sorts are scored once; pass an existing memo to share
        hits across sorters/sweep points, or ``None`` to disable
        memoization entirely. Only the vectorized path memoizes — with
        ``scoring="loop"`` or ``"analytic"`` the default resolves to
        ``None`` and an explicit memo is rejected (the oracle stays
        untouched; the analytic engine has its own caches). Memoized and
        unmemoized scoring are bit-identical (enforced by
        ``tests/sort/test_memoized_scoring.py``).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.sort.config import SortConfig
    >>> cfg = SortConfig(elements_per_thread=3, block_size=4, warp_size=4)
    >>> sorter = PairwiseMergeSort(cfg)
    >>> rng = np.random.default_rng(0)
    >>> data = rng.permutation(48)
    >>> result = sorter.sort(data)
    >>> bool(np.array_equal(result.values, np.sort(data)))
    True
    """

    def __init__(
        self,
        config: SortConfig,
        padding: int = 0,
        scoring: str = "vectorized",
        memo: ConflictMemo | None | str = "auto",
        mitigation=None,
    ):
        from repro.engine.registry import check_scoring
        from repro.mitigation.registry import reconcile_mitigation
        from repro.utils.validation import check_nonnegative_int

        self.config = config
        check_nonnegative_int(padding, "padding")
        # The registries are the one source of truth for scoring modes and
        # mitigation backends; the sorter takes concrete scorings ("auto"
        # routing happens a layer up, in
        # repro.engine.registry.resolve_scoring) and reconciles the legacy
        # padding knob with the mitigation spec in exactly one place.
        self.scoring = check_scoring(scoring, allow_auto=False)
        self.mitigation = reconcile_mitigation(mitigation, padding)
        native_pad = self.mitigation.native_padding
        #: Effective Dotsenko pad width; 0 for layouts the padding model
        #: cannot express (those route scoring through the explicit remap).
        self.padding = native_pad if native_pad is not None else 0
        if self.scoring == "analytic" and not self.mitigation.analytic_supported:
            raise ValidationError(
                "scoring='analytic' cannot model mitigation "
                f"{self.mitigation.spec!r}; use a simulated scoring "
                "(e.g. 'fused' or 'auto') for this layout"
            )
        self._analytic_engine = None
        if memo is None:
            self.memo: ConflictMemo | None = None
        elif isinstance(memo, str) and memo == "auto":
            self.memo = ConflictMemo() if scoring == "vectorized" else None
        elif isinstance(memo, ConflictMemo):
            if scoring != "vectorized":
                raise ValidationError(
                    "memoization applies only to scoring='vectorized'; "
                    f"scoring={scoring!r} stays memo-free"
                )
            self.memo = memo
        else:
            raise ValidationError(
                f"memo must be a ConflictMemo, None, or 'auto', got {memo!r}"
            )

    def _physical(self, step_matrix: np.ndarray) -> np.ndarray:
        """Logical tile addresses → physical addresses under the layout.

        Delegates to the mitigation backend's remap; the identity layout
        returns the matrix untouched. Dense ``(rows, w)`` matrices only —
        lane-aware backends key off the column index.
        """
        if self.mitigation.native_padding == 0:
            return step_matrix
        return self.mitigation.remap(step_matrix, self.config.warp_size)

    # -- public API ----------------------------------------------------------

    def sort(
        self,
        values: np.ndarray,
        *,
        score_blocks: int | None = None,
        seed: int | None = 0,
    ) -> SortResult:
        """Sort ``values``, recording full instrumentation.

        Parameters
        ----------
        values:
            Input keys; length must be ``bE × 2^k``.
        score_blocks:
            If given, trace at most this many tiles/blocks per round
            (deterministically spread via ``seed``); ``None`` traces all.
        seed:
            Seed for the sampled-block selection.
        """
        cfg = self.config
        arr = np.ascontiguousarray(values)
        n = cfg.validate_input_size(arr.size)
        if self.scoring == "analytic":
            # Closed-form path: recognize the input as a constructed family
            # and derive the result in O(rounds) arithmetic — bit-identical
            # to the simulated paths (tests/sort/test_analytic_equivalence).
            from repro.analytic import AnalyticEngine, detect_model

            model = detect_model(arr, cfg)
            if self._analytic_engine is None:
                self._analytic_engine = AnalyticEngine(
                    cfg, padding=self.padding
                )
            return self._analytic_engine.sort_result(
                model, score_blocks=score_blocks, seed=seed
            )
        rng = as_generator(seed)
        memo = self.memo
        if memo is not None:
            hits_base, misses_base = memo.hits, memo.misses

        result = SortResult(values=arr, config=cfg, num_elements=n)
        arr = self._base_register_phase(arr, result)

        run = cfg.E
        scratch = None
        while run < n:
            prev = arr
            arr, used_scratch = self._merge_round(
                arr, run, result, score_blocks, rng, scratch
            )
            # Native rounds ping-pong two per-sort buffers instead of
            # faulting in a fresh output array every round; the retired
            # pre-merge buffer becomes the next round's destination.
            scratch = prev if used_scratch else None
            run *= 2

        result.values = arr
        if memo is not None:
            result.memo_stats = memo.stats(
                hits_base=hits_base, misses_base=misses_base
            )
        return result

    # -- phases ----------------------------------------------------------

    def _base_register_phase(self, arr: np.ndarray, result: SortResult) -> np.ndarray:
        """Register-level odd-even sort of each thread's ``E`` elements."""
        cfg = self.config
        n = arr.size
        tiles = n // cfg.tile_size

        if self.scoring == "fused":
            # The network sorts each row and its comparator count is
            # input-independent (comparators × rows), so the fused path
            # takes a plain row sort — bit-identical values, same
            # instruction counter, none of the per-comparator numpy passes.
            from repro.sort.networks import oddeven_network

            sorted_rows = np.sort(arr.reshape(-1, cfg.E), axis=1)
            comparator_ops = len(oddeven_network(cfg.E)) * sorted_rows.shape[0]
        else:
            sorted_rows, comparator_ops = apply_oddeven_network(
                arr.reshape(-1, cfg.E)
            )
        out = sorted_rows.reshape(-1)

        # Staging: thread t loads (then stores) addresses tE+j at step j.
        # The pattern is identical in every tile, so score one tile and
        # scale exactly by 2·tiles (load + store phases).
        step_matrix = thread_rank_addresses(
            np.arange(cfg.tile_size, dtype=np.int64), cfg.E
        )
        stacked = self._physical(stack_warp_steps(step_matrix, cfg.w))
        staging = count_conflicts(AccessTrace.from_dense(stacked), cfg.w)
        staging = staging.scaled(2 * tiles)

        # The base-case kernel reads and writes each element once.
        coalescing = CoalescingModel(cfg.w)
        coalescing.streamed_copy(n)
        coalescing.streamed_copy(n)

        result.rounds.append(
            RoundStats(
                label="base-registers",
                kind="registers",
                run_length=cfg.E,
                merge_report=ConflictReport.empty(cfg.w),
                partition_report=ConflictReport.empty(cfg.w),
                staging_report=staging,
                global_traffic=coalescing.reset(),
                compute_instructions=comparator_ops // cfg.w,
                blocks_total=tiles,
                blocks_scored=tiles,
            )
        )
        return out

    def _merge_round(
        self,
        arr: np.ndarray,
        run: int,
        result: SortResult,
        score_blocks: int | None,
        rng: np.random.Generator,
        scratch: np.ndarray | None = None,
    ) -> tuple[np.ndarray, bool]:
        """One pairwise merge round of runs of length ``run``.

        Returns ``(merged, used_scratch)``; when the native merge runs,
        ``merged`` lives in ``scratch`` (allocated here if not supplied)
        and the caller may recycle the retired pre-merge buffer.
        """
        cfg = self.config
        n = arr.size
        pair_width = 2 * run
        num_pairs = n // pair_width

        mat = arr.reshape(num_pairs, pair_width)
        used_scratch = False
        if (
            self.scoring == "fused"
            and self.mitigation.native_padding is not None
            and fused_kernels.native_round_ready(arr)
        ):
            # Native fused rounds never materialize the order array: the
            # merge is a row-wise two-pointer pass and the scorers
            # reconstruct each scored tile's interleaving locally.
            if scratch is None:
                scratch = np.empty_like(arr)
            merged = fused_kernels.merge_pairs(
                mat, run, scratch.reshape(num_pairs, pair_width)
            )
            order = None
            used_scratch = True
        else:
            # Stable argsort of [A | B] rows == stable (A-first) merge:
            # equal keys keep index order, and A occupies the lower indices.
            order = np.argsort(mat, axis=1, kind="stable")
            merged = np.take_along_axis(mat, order, axis=1)

        if pair_width <= cfg.tile_size:
            self._score_block_round(arr, mat, order, run, result, score_blocks, rng)
        else:
            self._score_global_round(mat, order, run, result, score_blocks, rng)

        return merged.reshape(-1), used_scratch

    # -- block (base-case) rounds ---------------------------------------

    def _score_block_round(
        self,
        flat_pre: np.ndarray,
        mat: np.ndarray,
        order: np.ndarray,
        run: int,
        result: SortResult,
        score_blocks: int | None,
        rng: np.random.Generator,
    ) -> None:
        """Score a block-level round: merges happen inside each tile.

        Tile layout during block rounds: pair ``g`` of a tile occupies the
        contiguous window ``[g·2L, (g+1)·2L)`` with its ``A`` run first, so
        the concatenated-pair index produced by ``order`` *is* the
        tile-local offset within the pair window.
        """
        cfg = self.config
        n = flat_pre.size
        pair_width = 2 * run
        tiles = n // cfg.tile_size
        pairs_per_tile = cfg.tile_size // pair_width
        scored = _choose_blocks(tiles, score_blocks, rng)

        if self.scoring == "fused":
            merge_report, part_report = self._block_reports_fused(
                flat_pre, order, run, scored, pairs_per_tile
            )
        elif self.scoring == "loop":
            merge_report, part_report = self._block_reports_loop(
                flat_pre, order, run, scored, pairs_per_tile
            )
        elif self.memo is not None:
            merge_report, part_report = self._block_reports_memoized(
                flat_pre, order, run, scored, pairs_per_tile
            )
        else:
            merge_report, part_report = self._block_reports_vectorized(
                flat_pre, order, run, scored, pairs_per_tile
            )

        result.rounds.append(
            RoundStats(
                label=f"block-round-L{run}",
                kind="block",
                run_length=run,
                merge_report=merge_report,
                partition_report=part_report,
                staging_report=ConflictReport.empty(cfg.w),
                global_traffic=GlobalTraffic(),  # block rounds stay on-chip
                compute_instructions=3 * n // cfg.w,
                blocks_total=tiles,
                blocks_scored=len(scored),
            )
        )

    def _block_reports_vectorized(
        self,
        flat_pre: np.ndarray,
        order: np.ndarray,
        run: int,
        scored: np.ndarray,
        pairs_per_tile: int,
    ) -> tuple[ConflictReport, ConflictReport]:
        """All scored tiles of a block round in one batched pass."""
        cfg = self.config
        pair_width = 2 * run
        num_scored = scored.size

        # Merge stage: the (tiles, pairs, width) rank→address map in one
        # shot — pair base + concatenated-pair index, per scored tile.
        order_tiles = order.reshape(-1, pairs_per_tile, pair_width)[scored]
        pair_bases = np.arange(pairs_per_tile, dtype=np.int64)[:, None] * pair_width
        addr_by_rank = (order_tiles + pair_bases).reshape(num_scored, cfg.tile_size)
        merge_dense = self._physical(
            stack_warp_steps(batched_rank_addresses(addr_by_rank, cfg.E), cfg.w)
        )
        merge_report = count_conflicts(
            AccessTrace.from_dense(merge_dense), cfg.w
        )

        # Partition stage: every scored tile's b diagonals in one
        # partition_many_with_trace call over tiles·b lanes.
        probe_steps = self._block_partition_probes(
            flat_pre, run, scored, pairs_per_tile
        )
        part_dense = self._physical(
            stack_group_warp_steps(probe_steps, num_scored, cfg.w)
        )
        part_report = _score_stacked(
            [part_dense] if part_dense.size else [], cfg.w
        )
        return merge_report, part_report

    def _block_partition_probes(
        self,
        flat_pre: np.ndarray,
        run: int,
        scored: np.ndarray,
        pairs_per_tile: int,
    ) -> np.ndarray:
        """β₁ probe-step matrix for the given tiles of a block round.

        Thread t of a tile bisects diagonal ``tE mod 2L`` of pair
        ``tE // 2L``; returns the ``(steps, tiles·b)`` lane matrix in tile
        order for :func:`stack_group_warp_steps`.
        """
        cfg = self.config
        pair_width = 2 * run
        num_scored = scored.size
        t_ranks = np.arange(cfg.b, dtype=np.int64) * cfg.E
        pair_in_tile = t_ranks // pair_width  # (b,)
        diagonals = t_ranks % pair_width
        local_base = pair_in_tile * pair_width
        pair_global = (
            scored[:, None] * pairs_per_tile + pair_in_tile[None, :]
        )  # (tiles, b)
        a_base = (pair_global * pair_width).reshape(-1)
        trace_a = np.broadcast_to(local_base, (num_scored, cfg.b)).reshape(-1)
        lanes = num_scored * cfg.b
        _, probe_steps = partition_many_with_trace(
            flat_pre,
            a_base=a_base,
            a_len=np.full(lanes, run, dtype=np.int64),
            b_base=a_base + run,
            b_len=np.full(lanes, run, dtype=np.int64),
            diagonals=np.broadcast_to(diagonals, (num_scored, cfg.b)).reshape(-1),
            trace_a_base=trace_a,
            trace_b_base=trace_a + run,
        )
        return probe_steps

    def _block_reports_fused(
        self,
        flat_pre: np.ndarray,
        order: np.ndarray | None,
        run: int,
        scored: np.ndarray,
        pairs_per_tile: int,
    ) -> tuple[ConflictReport, ConflictReport]:
        """Single-pass block-round scoring with no trace intermediates.

        ``order is None`` marks a native round (the merge already ran in
        the compiled backend, which also rebuilds each scored tile's
        interleaving itself); otherwise the numpy fused path reuses the
        vectorized address algebra but counts straight to report
        aggregates.
        """
        cfg = self.config
        if order is None:
            return fused_kernels.fused_block_reports(
                flat_pre, scored, run, cfg.E, cfg.b, cfg.w, self.padding
            )
        pair_width = 2 * run
        num_scored = scored.size
        order_tiles = order.reshape(-1, pairs_per_tile, pair_width)[scored]
        pair_bases = np.arange(pairs_per_tile, dtype=np.int64)[:, None] * pair_width
        addr_by_rank = (order_tiles + pair_bases).reshape(num_scored, cfg.tile_size)
        merge_report = self._fused_merge_report(addr_by_rank)
        probe_steps = self._block_partition_probes(
            flat_pre, run, scored, pairs_per_tile
        )
        part_dense = self._physical(
            stack_group_warp_steps(probe_steps, num_scored, cfg.w)
        )
        return merge_report, dense_report(part_dense, cfg.w)

    def _fused_merge_report(self, addr_by_rank: np.ndarray) -> ConflictReport:
        """Fused-path merge-stage report under the active layout.

        Padding-expressible layouts take the specialized
        :func:`~repro.dmm.fused.permutation_stage_report` fast path; other
        backends (the cfree layouts) remap the dense warp-step matrix
        explicitly and count it with :func:`~repro.dmm.fused.dense_report`
        — bit-identical aggregates either way.
        """
        cfg = self.config
        if self.mitigation.native_padding is not None:
            return permutation_stage_report(
                addr_by_rank, cfg.E, cfg.w, self.padding
            )
        dense = self.mitigation.remap(
            stack_warp_steps(batched_rank_addresses(addr_by_rank, cfg.E), cfg.w),
            cfg.w,
        )
        return dense_report(dense, cfg.w)

    def _block_reports_memoized(
        self,
        flat_pre: np.ndarray,
        order: np.ndarray,
        run: int,
        scored: np.ndarray,
        pairs_per_tile: int,
    ) -> tuple[ConflictReport, ConflictReport]:
        """Memoized block round: score only tiles with unseen patterns.

        The tile's rank→address row fully determines both reports — the
        merge addresses directly, and the β₁ probe sequence because the
        bisection comparisons recover the stable-merge order the row
        encodes (see :mod:`repro.dmm.memo`).
        """
        cfg = self.config
        pair_width = 2 * run
        num_scored = scored.size

        order_tiles = order.reshape(-1, pairs_per_tile, pair_width)[scored]
        pair_bases = np.arange(pairs_per_tile, dtype=np.int64)[:, None] * pair_width
        addr_by_rank = (order_tiles + pair_bases).reshape(num_scored, cfg.tile_size)
        context = ConflictMemo.context(
            "block",
            num_banks=cfg.w,
            elements_per_thread=cfg.E,
            run_length=run,
            padding=self.padding,
            mitigation=self.mitigation.spec,
        )
        keys = ConflictMemo.tile_digests(context, addr_by_rank)
        return self._reports_memoized(
            context,
            keys,
            addr_by_rank,
            lambda pos: self._block_partition_probes(
                flat_pre, run, scored[pos], pairs_per_tile
            ),
        )

    def _block_reports_loop(
        self,
        flat_pre: np.ndarray,
        order: np.ndarray,
        run: int,
        scored: np.ndarray,
        pairs_per_tile: int,
    ) -> tuple[ConflictReport, ConflictReport]:
        """Tile-at-a-time reference implementation (the equivalence oracle)."""
        cfg = self.config
        pair_width = 2 * run

        merge_rows = []
        part_rows = []
        for tile in scored:
            p_lo = tile * pairs_per_tile
            p_hi = p_lo + pairs_per_tile
            # Tile-local address of each output rank = pair base + order.
            pair_bases = (
                np.arange(pairs_per_tile, dtype=np.int64)[:, None] * pair_width
            )
            addr_by_rank = (order[p_lo:p_hi] + pair_bases).reshape(-1)
            merge_rows.append(
                self._physical(
                    stack_warp_steps(
                        thread_rank_addresses(addr_by_rank, cfg.E), cfg.w
                    )
                )
            )

            # Thread-level partition: every thread bisects its diagonal of
            # its pair. Thread t -> pair (t·E // 2L), diagonal (t·E mod 2L).
            t_ranks = np.arange(cfg.b, dtype=np.int64) * cfg.E
            lane_pair = p_lo + t_ranks // pair_width
            diagonals = t_ranks % pair_width
            a_base = lane_pair * pair_width
            b_base = a_base + run
            lens = np.full(cfg.b, run, dtype=np.int64)
            local_base = (t_ranks // pair_width) * pair_width
            _, probe_steps = partition_many_with_trace(
                flat_pre,
                a_base=a_base,
                a_len=lens,
                b_base=b_base,
                b_len=lens,
                diagonals=diagonals,
                trace_a_base=local_base,
                trace_b_base=local_base + run,
            )
            if probe_steps.size:
                part_rows.append(
                    self._physical(stack_warp_steps(probe_steps, cfg.w))
                )

        return _score_stacked(merge_rows, cfg.w), _score_stacked(part_rows, cfg.w)

    # -- global rounds -----------------------------------------------------

    def _score_global_round(
        self,
        mat: np.ndarray,
        order: np.ndarray,
        run: int,
        result: SortResult,
        score_blocks: int | None,
        rng: np.random.Generator,
    ) -> None:
        """Score a global round: each block merges a ``bE`` output quantile."""
        cfg = self.config
        num_pairs, pair_width = mat.shape
        n = num_pairs * pair_width
        blocks_per_pair = pair_width // cfg.tile_size
        blocks_total = num_pairs * blocks_per_pair
        scored = _choose_blocks(blocks_total, score_blocks, rng)

        if self.scoring == "fused":
            merge_report, part_report = self._global_reports_fused(
                mat, order, run, scored, blocks_per_pair
            )
        elif self.scoring == "loop":
            merge_report, part_report = self._global_reports_loop(
                mat, order, run, scored, blocks_per_pair
            )
        elif self.memo is not None:
            merge_report, part_report = self._global_reports_memoized(
                mat, order, run, scored, blocks_per_pair
            )
        else:
            merge_report, part_report = self._global_reports_vectorized(
                mat, order, run, scored, blocks_per_pair
            )

        # Global traffic: every element is read and written once (coalesced),
        # plus the block-level mutual binary searches in global memory.
        coalescing = CoalescingModel(cfg.w)
        coalescing.streamed_copy(n)
        coalescing.streamed_copy(n)
        probes_per_block = 2 * ceil_log2(run + 1)
        coalescing.scattered_access(blocks_total * probes_per_block)

        result.rounds.append(
            RoundStats(
                label=f"global-round-L{run}",
                kind="global",
                run_length=run,
                merge_report=merge_report,
                partition_report=part_report,
                staging_report=ConflictReport.empty(cfg.w),
                global_traffic=coalescing.reset(),
                compute_instructions=3 * n // cfg.w,
                blocks_total=blocks_total,
                blocks_scored=len(scored),
            )
        )

    def _global_reports_vectorized(
        self,
        mat: np.ndarray,
        order: np.ndarray,
        run: int,
        scored: np.ndarray,
        blocks_per_pair: int,
    ) -> tuple[ConflictReport, ConflictReport]:
        """All scored blocks of a global round in one batched pass."""
        cfg = self.config
        num_scored = scored.size

        local, pairs, a_lo, b_lo, na = self._global_patterns(
            mat, order, run, scored, blocks_per_pair
        )
        merge_dense = self._physical(
            stack_warp_steps(batched_rank_addresses(local, cfg.E), cfg.w)
        )
        merge_report = count_conflicts(
            AccessTrace.from_dense(merge_dense), cfg.w
        )

        probe_steps = self._global_partition_probes(
            mat, run, pairs, a_lo, b_lo, na
        )
        part_dense = self._physical(
            stack_group_warp_steps(probe_steps, num_scored, cfg.w)
        )
        part_report = _score_stacked(
            [part_dense] if part_dense.size else [], cfg.w
        )
        return merge_report, part_report

    def _global_patterns(
        self,
        mat: np.ndarray,
        order: np.ndarray,
        run: int,
        scored: np.ndarray,
        blocks_per_pair: int,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Per-scored-block rank→address patterns and window geometry.

        Returns ``(local, pairs, a_lo, b_lo, na)``: the ``(blocks, bE)``
        tile-local address map plus each block's owning pair and A/B window
        offsets/length, shared by the vectorized and memoized paths.
        """
        cfg = self.config
        num_pairs, pair_width = mat.shape
        tile = cfg.tile_size

        pairs = scored // blocks_per_pair
        block_in_pair = scored % blocks_per_pair
        r_lo = block_in_pair * tile

        # Per-pair prefix counts of A-sourced ranks, for window arithmetic.
        # Blocks start at tile boundaries, so tile-granular counts suffice —
        # one O(n) reduction instead of a per-element running sum.
        src_a = order < run
        tile_counts = src_a.reshape(num_pairs, blocks_per_pair, tile).sum(
            axis=2, dtype=np.int64
        )
        prefix = np.zeros((num_pairs, blocks_per_pair + 1), dtype=np.int64)
        np.cumsum(tile_counts, axis=1, out=prefix[:, 1:])

        rank_cols = r_lo[:, None] + np.arange(tile, dtype=np.int64)
        s = order[pairs[:, None], rank_cols]  # (blocks, tile)
        a_lo = prefix[pairs, block_in_pair]
        na = tile_counts[pairs, block_in_pair]
        b_lo = r_lo - a_lo
        # Tile layout: each block's A window at [0, na), B at [na, bE).
        local = np.where(
            s < run,
            s - a_lo[:, None],
            na[:, None] + (s - run - b_lo[:, None]),
        )
        return local, pairs, a_lo, b_lo, na

    def _global_partition_probes(
        self,
        mat: np.ndarray,
        run: int,
        pairs: np.ndarray,
        a_lo: np.ndarray,
        b_lo: np.ndarray,
        na: np.ndarray,
    ) -> np.ndarray:
        """β₁ probe-step matrix for the given blocks of a global round.

        All blocks' diagonals go through one call against the flat
        pre-merge buffer (mat rows are contiguous windows of it).
        """
        cfg = self.config
        pair_width = mat.shape[1]
        tile = cfg.tile_size
        num_scored = pairs.size
        lanes = num_scored * cfg.b
        pair_base = pairs * pair_width
        a_base = np.repeat(pair_base + a_lo, cfg.b)
        b_base = np.repeat(pair_base + run + b_lo, cfg.b)
        _, probe_steps = partition_many_with_trace(
            mat.reshape(-1),
            a_base=a_base,
            a_len=np.repeat(na, cfg.b),
            b_base=b_base,
            b_len=np.repeat(tile - na, cfg.b),
            diagonals=np.tile(
                np.arange(cfg.b, dtype=np.int64) * cfg.E, num_scored
            ),
            trace_a_base=np.zeros(lanes, dtype=np.int64),
            trace_b_base=np.repeat(na, cfg.b),
        )
        return probe_steps

    def _global_reports_fused(
        self,
        mat: np.ndarray,
        order: np.ndarray | None,
        run: int,
        scored: np.ndarray,
        blocks_per_pair: int,
    ) -> tuple[ConflictReport, ConflictReport]:
        """Single-pass global-round scoring with no trace intermediates.

        Same contract as :meth:`_block_reports_fused`: ``order is None``
        routes to the compiled backend (which derives each scored block's
        A/B window split by merge-path binary search instead of reading
        the order array), otherwise the numpy fused path counts the
        vectorized patterns directly.
        """
        cfg = self.config
        if order is None:
            return fused_kernels.fused_global_reports(
                mat.reshape(-1), scored, run, cfg.E, cfg.b, cfg.w, self.padding
            )
        local, pairs, a_lo, b_lo, na = self._global_patterns(
            mat, order, run, scored, blocks_per_pair
        )
        merge_report = self._fused_merge_report(local)
        probe_steps = self._global_partition_probes(
            mat, run, pairs, a_lo, b_lo, na
        )
        part_dense = self._physical(
            stack_group_warp_steps(probe_steps, scored.size, cfg.w)
        )
        return merge_report, dense_report(part_dense, cfg.w)

    def _global_reports_memoized(
        self,
        mat: np.ndarray,
        order: np.ndarray,
        run: int,
        scored: np.ndarray,
        blocks_per_pair: int,
    ) -> tuple[ConflictReport, ConflictReport]:
        """Memoized global round: score only blocks with unseen patterns.

        A global block's key hashes its local rank→address row *and* its
        A-window length ``na``: two blocks can share the permutation while
        splitting it differently between windows, which changes the β₁
        probe geometry (see :mod:`repro.dmm.memo`).
        """
        cfg = self.config
        local, pairs, a_lo, b_lo, na = self._global_patterns(
            mat, order, run, scored, blocks_per_pair
        )
        context = ConflictMemo.context(
            "global",
            num_banks=cfg.w,
            elements_per_thread=cfg.E,
            run_length=run,
            padding=self.padding,
            mitigation=self.mitigation.spec,
        )
        keys = ConflictMemo.tile_digests(context, local, extra=na)
        return self._reports_memoized(
            context,
            keys,
            local,
            lambda pos: self._global_partition_probes(
                mat, run, pairs[pos], a_lo[pos], b_lo[pos], na[pos]
            ),
        )

    # -- memoized scoring --------------------------------------------------

    def _reports_memoized(
        self,
        context: bytes,
        keys: list[bytes],
        patterns: np.ndarray,
        probe_fn,
    ) -> tuple[ConflictReport, ConflictReport]:
        """Shared tile/round memo machinery for both round kinds.

        ``patterns`` holds each scored tile's rank→address row (digested
        into ``keys``); ``probe_fn(pos)`` returns the β₁ probe-step matrix
        for the subset of scored tiles at positions ``pos``. Only tiles
        whose pattern digest misses the memo are scored — in one batched
        pass, split back into per-tile reports by
        :func:`~repro.dmm.conflicts.report_segments` — and the round total
        is assembled from per-tile reports exactly as the vectorized path
        would have counted it.
        """
        cfg = self.config
        memo = self.memo
        hits_before, misses_before = memo.hits, memo.misses
        try:
            return self._reports_memoized_inner(context, keys, patterns, probe_fn)
        finally:
            # Attribute this round's lookups to the active layout so
            # `cache stats` can break memo traffic down per mitigation.
            ConflictMemo.record_mitigation(
                self.mitigation.spec,
                memo.hits - hits_before,
                memo.misses - misses_before,
            )

    def _reports_memoized_inner(
        self,
        context: bytes,
        keys: list[bytes],
        patterns: np.ndarray,
        probe_fn,
    ) -> tuple[ConflictReport, ConflictReport]:
        cfg = self.config
        memo = self.memo

        round_key = ConflictMemo.round_digest(context, keys)
        cached = memo.get_round(round_key)
        if cached is not None:
            return cached

        lookups = [memo.get_tile(k) for k in keys]
        miss_pos: list[int] = []
        seen: set[bytes] = set()
        for i, (key, pair) in enumerate(zip(keys, lookups)):
            if pair is None and key not in seen:
                seen.add(key)
                miss_pos.append(i)

        fresh: dict[bytes, tuple[ConflictReport, ConflictReport]] = {}
        if miss_pos:
            pos = np.asarray(miss_pos, dtype=np.int64)
            num_miss = pos.size
            merge_dense = self._physical(
                stack_warp_steps(
                    batched_rank_addresses(patterns[pos], cfg.E), cfg.w
                )
            )
            # Stacked merge rows are tile-major with a uniform per-tile
            # share: (b/w) warps × E steps each.
            rows_per_tile = (cfg.b // cfg.w) * cfg.E
            merge_reports = report_segments(
                AccessTrace.from_dense(merge_dense),
                cfg.w,
                np.arange(num_miss + 1, dtype=np.int64) * rows_per_tile,
            )
            stacked, group_rows = stack_group_warp_steps(
                probe_fn(pos), num_miss, cfg.w, return_group_rows=True
            )
            part_reports = report_segments(
                AccessTrace.from_dense(self._physical(stacked)),
                cfg.w,
                np.concatenate(([0], np.cumsum(group_rows))),
            )
            for j, i in enumerate(miss_pos):
                pair = (merge_reports[j], part_reports[j])
                memo.put_tile(keys[i], pair)
                # FIFO eviction could drop a just-stored entry before the
                # assembly below re-reads it; keep this round's pairs
                # reachable locally.
                fresh[keys[i]] = pair

        pairs = [
            pair if pair is not None else fresh[key]
            for key, pair in zip(keys, lookups)
        ]
        assembled = (
            _assemble_reports([p[0] for p in pairs], keys, cfg.w),
            _assemble_reports([p[1] for p in pairs], keys, cfg.w),
        )
        memo.put_round(round_key, assembled)
        return assembled

    def _global_reports_loop(
        self,
        mat: np.ndarray,
        order: np.ndarray,
        run: int,
        scored: np.ndarray,
        blocks_per_pair: int,
    ) -> tuple[ConflictReport, ConflictReport]:
        """Block-at-a-time reference implementation (the equivalence oracle)."""
        cfg = self.config

        # Per-pair prefix counts of A-sourced ranks, for window arithmetic.
        src_a = order < run

        merge_rows = []
        part_rows = []
        for blk in scored:
            pair, x = divmod(int(blk), blocks_per_pair)
            r_lo = x * cfg.tile_size
            r_hi = r_lo + cfg.tile_size
            s = order[pair, r_lo:r_hi]
            from_a = src_a[pair, r_lo:r_hi]
            a_lo = int(src_a[pair, :r_lo].sum())
            na = int(from_a.sum())
            b_lo = r_lo - a_lo
            # Tile layout: the block's A window at [0, na), B at [na, bE).
            local = np.where(s < run, s - a_lo, na + (s - run - b_lo))
            merge_rows.append(
                self._physical(
                    stack_warp_steps(
                        thread_rank_addresses(local.astype(np.int64), cfg.E),
                        cfg.w,
                    )
                )
            )

            # β₁ stage: b threads bisect their diagonals over the tile.
            nb = cfg.tile_size - na
            diagonals = np.arange(cfg.b, dtype=np.int64) * cfg.E
            _, probe_steps = partition_many_with_trace(
                mat[pair],
                a_base=np.full(cfg.b, a_lo, dtype=np.int64),
                a_len=np.full(cfg.b, na, dtype=np.int64),
                b_base=np.full(cfg.b, run + b_lo, dtype=np.int64),
                b_len=np.full(cfg.b, nb, dtype=np.int64),
                diagonals=diagonals,
                trace_a_base=np.zeros(cfg.b, dtype=np.int64),
                trace_b_base=np.full(cfg.b, na, dtype=np.int64),
            )
            if probe_steps.size:
                part_rows.append(
                    self._physical(stack_warp_steps(probe_steps, cfg.w))
                )

        return _score_stacked(merge_rows, cfg.w), _score_stacked(part_rows, cfg.w)


def _choose_blocks(
    total: int, score_blocks: int | None, rng: np.random.Generator
) -> np.ndarray:
    """Pick which blocks of a round to trace.

    The RNG is consumed exactly when sampling happens (``score_blocks``
    given and strictly below ``total``) — never for validation or for
    trace-everything rounds. Both scoring paths call this once per round
    with identical arguments, which keeps sampled-block selection (and
    therefore the parallel-vs-serial bit-identity guarantee of
    :mod:`repro.bench.parallel`) stable across implementations; the draw
    order is pinned by ``tests/sort/test_pairwise.py``.
    """
    if score_blocks is not None and score_blocks < 1:
        # Bad user input, not a simulator inconsistency — rejected before
        # any short-circuit so validation never depends on round geometry.
        raise ValidationError(f"score_blocks must be >= 1, got {score_blocks}")
    if score_blocks is None or score_blocks >= total:
        return np.arange(total, dtype=np.int64)
    return np.sort(rng.choice(total, size=score_blocks, replace=False)).astype(
        np.int64
    )


def _assemble_reports(
    reports: list[ConflictReport], keys: list[bytes], num_banks: int
) -> ConflictReport:
    """Fold per-tile reports (in scored order) into one round report.

    Stretches of consecutive tiles with the same pattern digest fold via
    :meth:`ConflictReport.scaled` — O(1) per stretch — so a periodic round
    assembles in time proportional to its distinct stretches, not its tile
    count, and the per-step sequence still materializes bit-identically to
    the batched single-pass count.
    """
    total = ConflictReport.empty(num_banks)
    i = 0
    n = len(reports)
    while i < n:
        j = i + 1
        while j < n and keys[j] == keys[i]:
            j += 1
        stretch = reports[i] if j - i == 1 else reports[i].scaled(j - i)
        total = total.merged(stretch)
        i = j
    return total


def _score_stacked(rows: list[np.ndarray], num_banks: int) -> ConflictReport:
    """Score a list of stacked warp-step matrices as one trace."""
    if not rows:
        return ConflictReport.empty(num_banks)
    dense = rows[0] if len(rows) == 1 else np.vstack(rows)
    return count_conflicts(AccessTrace.from_dense(dense), num_banks)
