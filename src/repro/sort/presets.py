"""Library / device parameter presets from the paper's Section IV-A.

* Thrust (CUDA 10.1) on the Quadro M4000: ``E = 15, b = 512``;
* Thrust's compute-capability-6.0 defaults (what an RTX 2080 Ti falls back
  to): ``E = 17, b = 256``;
* Modern GPU on the Quadro M4000: ``E = 15, b = 128``.

The RTX 2080 Ti experiments run both the (15, 512) and (17, 256) presets for
both libraries, exactly as the paper does.
"""

from __future__ import annotations

from repro.errors import ValidationError
from repro.gpu.device import DeviceSpec
from repro.sort.config import SortConfig

__all__ = [
    "MGPU_CC60",
    "MGPU_MAXWELL",
    "THRUST_CC60",
    "THRUST_MAXWELL",
    "default_presets_for",
    "preset",
]

#: Thrust's tuning for Maxwell (Quadro M4000) — also the "E=15, b=512"
#: alternative the paper runs on the RTX 2080 Ti.
THRUST_MAXWELL = SortConfig(
    elements_per_thread=15, block_size=512, warp_size=32, name="thrust-e15-b512"
)

#: Thrust's compute-capability-6.0 defaults, used by default on the
#: RTX 2080 Ti (CC 7.5), per the paper.
THRUST_CC60 = SortConfig(
    elements_per_thread=17, block_size=256, warp_size=32, name="thrust-e17-b256"
)

#: Modern GPU's tuning for the Quadro M4000.
MGPU_MAXWELL = SortConfig(
    elements_per_thread=15, block_size=128, warp_size=32, name="mgpu-e15-b128"
)

#: Modern GPU run with Thrust's CC 6.0 parameters (the paper reuses the same
#: two parameter sets for both libraries on the RTX 2080 Ti).
MGPU_CC60 = SortConfig(
    elements_per_thread=17, block_size=256, warp_size=32, name="mgpu-e17-b256"
)

_PRESETS: dict[str, SortConfig] = {
    "thrust-maxwell": THRUST_MAXWELL,
    "thrust-e15-b512": THRUST_MAXWELL,
    "thrust-cc60": THRUST_CC60,
    "thrust-e17-b256": THRUST_CC60,
    "mgpu-maxwell": MGPU_MAXWELL,
    "mgpu-e15-b128": MGPU_MAXWELL,
    "mgpu-cc60": MGPU_CC60,
    "mgpu-e17-b256": MGPU_CC60,
}


def preset(name: str) -> SortConfig:
    """Look up a preset by name (see module docstring for the catalog)."""
    key = name.strip().lower()
    try:
        return _PRESETS[key]
    except KeyError:
        known = ", ".join(sorted(set(_PRESETS)))
        raise ValidationError(f"unknown preset {name!r}; known: {known}") from None


def default_presets_for(device: DeviceSpec) -> list[SortConfig]:
    """The preset(s) the paper evaluates on a given device.

    The Quadro M4000 uses each library's Maxwell tuning; the RTX 2080 Ti is
    evaluated with both parameter sets.
    """
    if device.compute_capability >= (7, 0):
        return [THRUST_MAXWELL, THRUST_CC60]
    return [THRUST_MAXWELL, MGPU_MAXWELL]
