"""An executable, step-by-step block merge — the differential oracle.

:class:`~repro.sort.pairwise.PairwiseMergeSort` computes traces *en masse*
(argsort → address map → batched scoring). This module re-implements one
block-level pairwise merge the slow, obvious way: warp by warp, lock-step
by lock-step, with every access actually executed against a
:class:`~repro.gpu.shared_memory.SharedMemory` (values read back and
checked, CREW enforced, conflicts accumulated by the scratchpad itself).

``tests/sort/test_reference_kernel.py`` asserts that for arbitrary inputs
the fast path and this reference produce identical merged values, identical
partition splits, and identical conflict counts — the strongest internal
consistency check the simulator has.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dmm.conflicts import ConflictReport
from repro.errors import SimulationError, ValidationError
from repro.gpu.shared_memory import SharedMemory
from repro.mitigation.padding import pad_addresses, padded_size
from repro.sort.config import SortConfig
from repro.utils.bits import ceil_div

__all__ = ["ReferenceMergeResult", "reference_block_merge"]


@dataclass(frozen=True)
class ReferenceMergeResult:
    """Outcome of one executed block merge."""

    merged: np.ndarray
    a_split: np.ndarray  # per-thread count taken from A (partition result)
    partition_report: ConflictReport
    merge_report: ConflictReport


def reference_block_merge(
    a: np.ndarray,
    b: np.ndarray,
    config: SortConfig,
    padding: int = 0,
) -> ReferenceMergeResult:
    """Execute one block merge of sorted ``a`` and ``b`` in shared memory.

    ``|a| + |b|`` must be a multiple of ``E``; the merge uses
    ``(|a|+|b|)/E`` threads grouped into warps of ``w`` (a trailing partial
    warp is allowed, mirroring the kernels).
    """
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    cfg = config
    tile = a.size + b.size
    if tile == 0 or tile % cfg.E:
        raise ValidationError(
            f"|A| + |B| = {tile} must be a positive multiple of E = {cfg.E}"
        )
    if np.any(a[1:] < a[:-1]) or np.any(b[1:] < b[:-1]):
        raise ValidationError("inputs must be sorted")

    threads = tile // cfg.E
    na = a.size

    # Stage the tile: A at logical [0, na), B at [na, tile), both mapped
    # through the (possibly padded) physical layout.
    shared = SharedMemory(size=max(padded_size(tile, cfg.w, padding), 1),
                          num_banks=cfg.w)
    logical = np.arange(tile, dtype=np.int64)
    physical = pad_addresses(logical, cfg.w, padding)
    staged = np.zeros(shared.size, dtype=np.int64)
    staged[physical] = np.concatenate([a, b])
    shared.load_tile(staged)
    shared.reset_report()  # the bulk stage is coalesced; not scored here

    def phys(logical_addr: np.ndarray) -> np.ndarray:
        out = np.full(logical_addr.shape, -1, dtype=np.int64)
        active = logical_addr >= 0
        out[active] = pad_addresses(logical_addr[active], cfg.w, padding)
        return out

    # ---- partition stage: per-warp lock-step mutual binary search -------
    diagonals = np.arange(threads, dtype=np.int64) * cfg.E
    lo = np.maximum(0, diagonals - b.size)
    hi = np.minimum(diagonals, na)
    for warp_base in range(0, threads, cfg.w):
        lanes = np.arange(warp_base, min(warp_base + cfg.w, threads))
        pad_lanes = cfg.w - lanes.size
        while True:
            active = lo[lanes] < hi[lanes]
            if not active.any():
                break
            mid = (lo[lanes] + hi[lanes]) // 2
            d = diagonals[lanes]
            a_addr = np.where(active, mid, -1)
            b_addr = np.where(active, na + d - mid - 1, -1)
            if pad_lanes:
                a_addr = np.concatenate([a_addr, np.full(pad_lanes, -1)])
                b_addr = np.concatenate([b_addr, np.full(pad_lanes, -1)])
            a_val = shared.warp_read(phys(a_addr))[: lanes.size]
            b_val = shared.warp_read(phys(b_addr))[: lanes.size]
            take_a = active & (a_val <= b_val)
            lo[lanes] = np.where(take_a, mid + 1, lo[lanes])
            hi[lanes] = np.where(active & ~take_a, mid, hi[lanes])
    partition_report = shared.reset_report()

    # ---- merging stage: E lock-step iterations per warp ------------------
    ai = lo.copy()  # next unconsumed A index per thread
    bi = diagonals - lo  # next unconsumed B index per thread
    ai_end = np.empty(threads, dtype=np.int64)
    ai_end[:-1] = lo[1:]
    ai_end[-1] = na
    bi_end = np.empty(threads, dtype=np.int64)
    bi_end[:-1] = (diagonals - lo)[1:]
    bi_end[-1] = b.size

    merged = np.empty(tile, dtype=np.int64)
    for warp_base in range(0, threads, cfg.w):
        lanes = np.arange(warp_base, min(warp_base + cfg.w, threads))
        pad_lanes = cfg.w - lanes.size
        for j in range(cfg.E):
            can_a = ai[lanes] < ai_end[lanes]
            can_b = bi[lanes] < bi_end[lanes]
            # Registers hold the current heads; consume the smaller (ties
            # to A — Thrust's stability). Clip guards empty lists.
            head_a = np.where(
                can_a, a[np.minimum(ai[lanes], max(na - 1, 0))], 0
            ) if na else np.zeros(lanes.size, dtype=np.int64)
            head_b = np.where(
                can_b, b[np.minimum(bi[lanes], max(b.size - 1, 0))], 0
            ) if b.size else np.zeros(lanes.size, dtype=np.int64)
            take_a = can_a & (~can_b | (head_a <= head_b))
            addr = np.where(take_a, ai[lanes], na + bi[lanes])
            values = shared.warp_read(
                phys(
                    np.concatenate([addr, np.full(pad_lanes, -1)])
                    if pad_lanes
                    else addr
                )
            )[: lanes.size]
            expected = np.where(take_a, head_a, head_b)
            if not np.array_equal(values, expected):
                raise SimulationError(
                    "reference kernel read back unexpected values"
                )
            merged[diagonals[lanes] + j] = values
            ai[lanes] = np.where(take_a, ai[lanes] + 1, ai[lanes])
            bi[lanes] = np.where(~take_a, bi[lanes] + 1, bi[lanes])
    merge_report = shared.reset_report()

    if np.any(ai != ai_end) or np.any(bi != bi_end):
        raise SimulationError("reference kernel did not consume its quantiles")

    return ReferenceMergeResult(
        merged=merged,
        a_split=lo,
        partition_report=partition_report,
        merge_report=merge_report,
    )
