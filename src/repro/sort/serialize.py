"""Bit-exact JSON-compatible serialization of sort results.

The service layer (:mod:`repro.service`) ships :class:`SortResult`\\ s
over the wire; consumers must not be able to tell whether a result was
computed locally or served. Every codec here therefore round-trips
*exactly*: integer counters stay integers, arrays keep their dtype and
shape (raw little-endian bytes, base64), and the run-length-compressed
``step_segments`` of a :class:`~repro.dmm.conflicts.ConflictReport` come
back as the same ``(period, repeats)`` pairs that went in — never
materialized.

Because :class:`ConflictReport` holds NumPy arrays, dataclass ``==`` is
not usable for comparing reports; :func:`results_identical` and
:func:`reports_identical` implement the field-wise bit-identity check
used by the protocol tests and the service smoke script.
"""

from __future__ import annotations

import base64

import numpy as np

from repro.dmm.conflicts import ConflictReport
from repro.dmm.memo import MemoStats
from repro.errors import ValidationError
from repro.gpu.global_memory import GlobalTraffic
from repro.sort.config import SortConfig
from repro.sort.pairwise import RoundStats, SortResult

__all__ = [
    "array_from_obj",
    "array_to_obj",
    "config_from_obj",
    "config_to_obj",
    "report_from_obj",
    "report_to_obj",
    "reports_identical",
    "result_from_obj",
    "result_to_obj",
    "results_identical",
    "round_from_obj",
    "round_to_obj",
]


# -- arrays -----------------------------------------------------------------


def array_to_obj(arr: np.ndarray) -> dict:
    """Encode an array as ``{dtype, shape, data}`` with base64 raw bytes."""
    arr = np.ascontiguousarray(arr)
    return {
        "dtype": arr.dtype.str,
        "shape": list(arr.shape),
        "data": base64.b64encode(arr.tobytes()).decode("ascii"),
    }


def array_from_obj(obj: dict) -> np.ndarray:
    """Decode :func:`array_to_obj` output back to a writable array."""
    try:
        dtype = np.dtype(obj["dtype"])
        shape = tuple(int(s) for s in obj["shape"])
        raw = base64.b64decode(obj["data"])
    except (KeyError, TypeError, ValueError) as exc:
        raise ValidationError(f"malformed array object: {exc}") from exc
    expected = dtype.itemsize * int(np.prod(shape, dtype=np.int64))
    if len(raw) != expected:
        raise ValidationError(
            f"array payload holds {len(raw)} bytes, expected {expected} "
            f"for dtype {dtype.str} shape {shape}"
        )
    return np.frombuffer(raw, dtype=dtype).reshape(shape).copy()


# -- config -----------------------------------------------------------------


def config_to_obj(config: SortConfig) -> dict:
    """Full field set of a :class:`SortConfig` (JSON-safe)."""
    return {
        "elements_per_thread": int(config.elements_per_thread),
        "block_size": int(config.block_size),
        "warp_size": int(config.warp_size),
        "element_bytes": int(config.element_bytes),
        "name": config.name,
    }


def config_from_obj(obj: dict) -> SortConfig:
    """Rebuild a :class:`SortConfig`; validation reruns in __post_init__."""
    try:
        return SortConfig(
            elements_per_thread=int(obj["elements_per_thread"]),
            block_size=int(obj["block_size"]),
            warp_size=int(obj["warp_size"]),
            element_bytes=int(obj["element_bytes"]),
            name=str(obj["name"]),
        )
    except (KeyError, TypeError) as exc:
        raise ValidationError(f"malformed config object: {exc}") from exc


# -- conflict reports -------------------------------------------------------


def report_to_obj(report: ConflictReport) -> dict:
    """Encode a report, preserving its segment structure exactly."""
    return {
        "num_banks": int(report.num_banks),
        "num_steps": int(report.num_steps),
        "num_accesses": int(report.num_accesses),
        "num_requests": int(report.num_requests),
        "total_transactions": int(report.total_transactions),
        "total_replays": int(report.total_replays),
        "max_degree": int(report.max_degree),
        "step_segments": [
            {"period": array_to_obj(period), "repeats": int(repeats)}
            for period, repeats in report.step_segments
        ],
    }


def report_from_obj(obj: dict) -> ConflictReport:
    """Decode :func:`report_to_obj` output."""
    try:
        return ConflictReport(
            num_banks=int(obj["num_banks"]),
            num_steps=int(obj["num_steps"]),
            num_accesses=int(obj["num_accesses"]),
            num_requests=int(obj["num_requests"]),
            total_transactions=int(obj["total_transactions"]),
            total_replays=int(obj["total_replays"]),
            max_degree=int(obj["max_degree"]),
            step_segments=tuple(
                (array_from_obj(seg["period"]), int(seg["repeats"]))
                for seg in obj["step_segments"]
            ),
        )
    except (KeyError, TypeError) as exc:
        raise ValidationError(f"malformed report object: {exc}") from exc


# -- rounds and results -----------------------------------------------------


def round_to_obj(stats: RoundStats) -> dict:
    """Encode one :class:`RoundStats`."""
    return {
        "label": stats.label,
        "kind": stats.kind,
        "run_length": int(stats.run_length),
        "merge_report": report_to_obj(stats.merge_report),
        "partition_report": report_to_obj(stats.partition_report),
        "staging_report": report_to_obj(stats.staging_report),
        "global_traffic": {
            "transactions": int(stats.global_traffic.transactions),
            "words": int(stats.global_traffic.words),
        },
        "compute_instructions": int(stats.compute_instructions),
        "blocks_total": int(stats.blocks_total),
        "blocks_scored": int(stats.blocks_scored),
    }


def round_from_obj(obj: dict) -> RoundStats:
    """Decode :func:`round_to_obj` output."""
    try:
        traffic = obj["global_traffic"]
        return RoundStats(
            label=str(obj["label"]),
            kind=str(obj["kind"]),
            run_length=int(obj["run_length"]),
            merge_report=report_from_obj(obj["merge_report"]),
            partition_report=report_from_obj(obj["partition_report"]),
            staging_report=report_from_obj(obj["staging_report"]),
            global_traffic=GlobalTraffic(
                transactions=int(traffic["transactions"]),
                words=int(traffic["words"]),
            ),
            compute_instructions=int(obj["compute_instructions"]),
            blocks_total=int(obj["blocks_total"]),
            blocks_scored=int(obj["blocks_scored"]),
        )
    except (KeyError, TypeError) as exc:
        raise ValidationError(f"malformed round object: {exc}") from exc


def result_to_obj(result: SortResult, *, include_values: bool = True) -> dict:
    """Encode a :class:`SortResult`.

    ``include_values=False`` drops the (potentially large) sorted array;
    the decoded result then carries an empty ``values`` array and
    ``"values": None`` on the wire.
    """
    memo = result.memo_stats
    return {
        "values": array_to_obj(result.values) if include_values else None,
        "config": config_to_obj(result.config),
        "num_elements": int(result.num_elements),
        "rounds": [round_to_obj(r) for r in result.rounds],
        "memo_stats": None
        if memo is None
        else {
            "hits": int(memo.hits),
            "misses": int(memo.misses),
            "tile_entries": int(memo.tile_entries),
            "round_entries": int(memo.round_entries),
            "stored_bytes": int(memo.stored_bytes),
        },
    }


def result_from_obj(obj: dict) -> SortResult:
    """Decode :func:`result_to_obj` output."""
    try:
        values = obj["values"]
        memo = obj["memo_stats"]
        return SortResult(
            values=(
                np.empty(0, dtype=np.int64)
                if values is None
                else array_from_obj(values)
            ),
            config=config_from_obj(obj["config"]),
            num_elements=int(obj["num_elements"]),
            rounds=[round_from_obj(r) for r in obj["rounds"]],
            memo_stats=None if memo is None else MemoStats(**memo),
        )
    except (KeyError, TypeError) as exc:
        raise ValidationError(f"malformed result object: {exc}") from exc


# -- bit-identity checks ----------------------------------------------------


def _arrays_identical(a: np.ndarray, b: np.ndarray) -> bool:
    return a.dtype == b.dtype and a.shape == b.shape and bool(np.array_equal(a, b))


def reports_identical(a: ConflictReport, b: ConflictReport) -> bool:
    """Field-wise equality, including segment structure and dtypes."""
    if (
        a.num_banks != b.num_banks
        or a.num_steps != b.num_steps
        or a.num_accesses != b.num_accesses
        or a.num_requests != b.num_requests
        or a.total_transactions != b.total_transactions
        or a.total_replays != b.total_replays
        or a.max_degree != b.max_degree
        or len(a.step_segments) != len(b.step_segments)
    ):
        return False
    return all(
        ra == rb and _arrays_identical(pa, pb)
        for (pa, ra), (pb, rb) in zip(a.step_segments, b.step_segments)
    )


def _rounds_identical(a: RoundStats, b: RoundStats) -> bool:
    return (
        a.label == b.label
        and a.kind == b.kind
        and a.run_length == b.run_length
        and a.global_traffic == b.global_traffic
        and a.compute_instructions == b.compute_instructions
        and a.blocks_total == b.blocks_total
        and a.blocks_scored == b.blocks_scored
        and reports_identical(a.merge_report, b.merge_report)
        and reports_identical(a.partition_report, b.partition_report)
        and reports_identical(a.staging_report, b.staging_report)
    )


def results_identical(
    a: SortResult, b: SortResult, *, require_values: bool = True
) -> bool:
    """Whether two sort results are bit-identical.

    With ``require_values=False`` the sorted arrays are ignored (for
    comparing against a result served with ``include_values=False``).
    """
    if (
        a.config != b.config
        or a.num_elements != b.num_elements
        or a.memo_stats != b.memo_stats
        or len(a.rounds) != len(b.rounds)
    ):
        return False
    if require_values and not _arrays_identical(a.values, b.values):
        return False
    return all(_rounds_identical(ra, rb) for ra, rb in zip(a.rounds, b.rounds))
