"""Shared low-level utilities: bit tricks, modular arithmetic, validation.

These helpers back both the theory side (the paper's number-theoretic
machinery: Facts 5 and 6, Lemma 4) and the simulator side (power-of-two
checks for warp and block sizes).
"""

from repro.utils.bits import (
    ceil_div,
    ceil_log2,
    ilog2,
    is_power_of_two,
    next_power_of_two,
)
from repro.utils.modmath import (
    are_coprime,
    mod_inverse,
    solve_linear_congruence,
)
from repro.utils.rng import as_generator
from repro.utils.validation import (
    check_in_range,
    check_nonnegative_int,
    check_positive_int,
    check_power_of_two,
)

__all__ = [
    "are_coprime",
    "as_generator",
    "ceil_div",
    "ceil_log2",
    "check_in_range",
    "check_nonnegative_int",
    "check_positive_int",
    "check_power_of_two",
    "ilog2",
    "is_power_of_two",
    "mod_inverse",
    "next_power_of_two",
    "solve_linear_congruence",
]
