"""Integer bit-manipulation helpers.

The GPU model is saturated with powers of two — warp width ``w = 2^x``,
block size ``b = 2^y``, merge-round widths ``2^i E`` — so these tiny helpers
appear in nearly every module. They operate on plain Python ints (arbitrary
precision), never on NumPy scalars, to avoid silent overflow in the
``N ~ 10^8``-element size sweeps.
"""

from __future__ import annotations

from repro.utils.validation import check_positive_int

__all__ = [
    "ceil_div",
    "ceil_log2",
    "ilog2",
    "is_power_of_two",
    "next_power_of_two",
]


def is_power_of_two(n: int) -> bool:
    """Return ``True`` iff ``n`` is a positive power of two (1, 2, 4, ...)."""
    return isinstance(n, int) and n > 0 and (n & (n - 1)) == 0


def ilog2(n: int) -> int:
    """Exact base-2 logarithm of a power of two.

    Raises
    ------
    ValidationError
        If ``n`` is not a positive power of two.
    """
    check_positive_int(n, "n")
    if not is_power_of_two(n):
        from repro.errors import ValidationError

        raise ValidationError(f"ilog2 requires a power of two, got {n}")
    return n.bit_length() - 1


def ceil_log2(n: int) -> int:
    """Smallest ``k`` with ``2**k >= n`` (``n >= 1``)."""
    check_positive_int(n, "n")
    return (n - 1).bit_length()


def next_power_of_two(n: int) -> int:
    """Smallest power of two ``>= n`` (``n >= 1``)."""
    check_positive_int(n, "n")
    return 1 << ceil_log2(n)


def ceil_div(a: int, b: int) -> int:
    """Ceiling division ``⌈a / b⌉`` for nonnegative ``a`` and positive ``b``."""
    if b <= 0:
        from repro.errors import ValidationError

        raise ValidationError(f"ceil_div divisor must be positive, got {b}")
    if a < 0:
        from repro.errors import ValidationError

        raise ValidationError(f"ceil_div dividend must be nonnegative, got {a}")
    return -(-a // b)
