"""Elementary number theory used by the worst-case construction.

The large-``E`` construction (Section III-B of the paper) rests on three
classical facts about the ring ``Z_m``:

* **Fact 5** — for ``GCD(a, m) = 1`` the linear congruence
  ``a·x ≡ b (mod m)`` has exactly one solution in ``Z_m``;
* **Fact 6** — the modular inverse ``a⁻¹ (mod m)`` exists and is unique;
* **Lemma 4** — for ``w`` a power of two and odd ``E < w``,
  ``GCD(E, w − E) = 1``.

These are implemented here on plain Python integers. ``math.gcd`` supplies
the GCD; the inverse uses the extended Euclidean algorithm rather than
``pow(a, -1, m)`` only to also expose the Bézout coefficients for tests.
"""

from __future__ import annotations

import math

from repro.errors import ValidationError
from repro.utils.validation import as_int, check_positive_int

__all__ = [
    "are_coprime",
    "extended_gcd",
    "mod_inverse",
    "solve_linear_congruence",
]


def are_coprime(a: int, b: int) -> bool:
    """Return ``True`` iff ``GCD(a, b) == 1``."""
    return math.gcd(as_int(a, "a"), as_int(b, "b")) == 1


def extended_gcd(a: int, b: int) -> tuple[int, int, int]:
    """Extended Euclidean algorithm.

    Returns ``(g, x, y)`` with ``g = GCD(a, b)`` and ``a·x + b·y = g``.
    Accepts nonnegative ``a`` and ``b`` (not both zero).
    """
    a = as_int(a, "a")
    b = as_int(b, "b")
    if a < 0 or b < 0:
        raise ValidationError(f"extended_gcd requires nonnegative inputs, got {a}, {b}")
    if a == 0 and b == 0:
        raise ValidationError("extended_gcd(0, 0) is undefined")
    old_r, r = a, b
    old_x, x = 1, 0
    old_y, y = 0, 1
    while r != 0:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_x, x = x, old_x - q * x
        old_y, y = y, old_y - q * y
    return old_r, old_x, old_y


def mod_inverse(a: int, m: int) -> int:
    """The unique inverse of ``a`` modulo ``m`` (Fact 6).

    Raises
    ------
    ValidationError
        If ``GCD(a, m) != 1`` (no inverse exists) or ``m < 2``.
    """
    a = as_int(a, "a")
    m = check_positive_int(m, "m")
    if m < 2:
        raise ValidationError(f"modulus must be >= 2, got {m}")
    g, x, _ = extended_gcd(a % m, m)
    if g != 1:
        raise ValidationError(f"{a} has no inverse modulo {m} (GCD = {g})")
    return x % m


def solve_linear_congruence(a: int, b: int, m: int) -> int:
    """The unique ``x ∈ Z_m`` with ``a·x ≡ b (mod m)`` (Fact 5).

    Requires ``GCD(a, m) = 1``; under that hypothesis the solution is
    ``x = a⁻¹·b mod m``.
    """
    a = as_int(a, "a")
    b = as_int(b, "b")
    m = check_positive_int(m, "m")
    return (mod_inverse(a, m) * (b % m)) % m
