"""Seed / random-generator normalization.

Every stochastic entry point in the library (random-input generators, block
sampling in the fast simulation path) takes a ``seed`` argument that may be
``None``, an int, or an existing :class:`numpy.random.Generator`. This module
provides the single coercion point so experiments are reproducible end to
end: passing the same int seed anywhere yields the same stream.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ValidationError

__all__ = ["as_generator"]

SeedLike = "int | None | np.random.Generator | np.random.SeedSequence"


def as_generator(
    seed: "int | None | np.random.Generator | np.random.SeedSequence" = None,
) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    ``None`` yields a fresh OS-entropy generator; an existing generator is
    returned unchanged (so callers can thread one generator through several
    sub-draws); an int or :class:`~numpy.random.SeedSequence` seeds a new
    PCG64 generator.
    """
    if seed is None:
        return np.random.default_rng()
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, (int, np.integer, np.random.SeedSequence)):
        return np.random.default_rng(seed)
    raise ValidationError(
        f"seed must be None, an int, a SeedSequence, or a Generator, "
        f"got {type(seed).__name__}"
    )
