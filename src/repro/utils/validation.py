"""Argument validation helpers.

Every public entry point of the library validates its scalar arguments with
these functions so error messages are uniform ("``E must be a positive
integer, got -3``") and so NumPy integer scalars are accepted anywhere a
Python int is.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.errors import ValidationError

__all__ = [
    "as_int",
    "check_in_range",
    "check_nonnegative_int",
    "check_positive_int",
    "check_power_of_two",
]


def as_int(value: Any, name: str) -> int:
    """Coerce ``value`` to a Python int, rejecting floats and non-numerics.

    NumPy integer scalars are accepted (they show up naturally when callers
    index into NumPy arrays); booleans and floats are rejected even when
    integral, because a float ``E`` is almost always a unit mistake.
    """
    if isinstance(value, bool):
        raise ValidationError(f"{name} must be an integer, got bool {value!r}")
    if isinstance(value, (int, np.integer)):
        return int(value)
    raise ValidationError(
        f"{name} must be an integer, got {type(value).__name__} {value!r}"
    )


def check_positive_int(value: Any, name: str) -> int:
    """Validate that ``value`` is an integer ``>= 1`` and return it as int."""
    ivalue = as_int(value, name)
    if ivalue < 1:
        raise ValidationError(f"{name} must be a positive integer, got {ivalue}")
    return ivalue


def check_nonnegative_int(value: Any, name: str) -> int:
    """Validate that ``value`` is an integer ``>= 0`` and return it as int."""
    ivalue = as_int(value, name)
    if ivalue < 0:
        raise ValidationError(f"{name} must be a nonnegative integer, got {ivalue}")
    return ivalue


def check_power_of_two(value: Any, name: str) -> int:
    """Validate that ``value`` is a positive power of two and return it."""
    ivalue = check_positive_int(value, name)
    if ivalue & (ivalue - 1):
        raise ValidationError(f"{name} must be a power of two, got {ivalue}")
    return ivalue


def check_in_range(value: Any, name: str, low: int, high: int) -> int:
    """Validate ``low <= value <= high`` (inclusive) and return it as int."""
    ivalue = as_int(value, name)
    if not low <= ivalue <= high:
        raise ValidationError(f"{name} must be in [{low}, {high}], got {ivalue}")
    return ivalue
