"""Unit tests for the WarpAssignment abstraction."""

import numpy as np
import pytest

from repro.adversary.assignment import WarpAssignment, construct_warp_assignment
from repro.errors import ConstructionError, ValidationError


def make(w=4, e=3, tuples=None, a_first=None, s=0):
    tuples = tuples or ((3, 0), (0, 3), (2, 1), (1, 2))
    a_first = a_first or (True, True, True, True)
    return WarpAssignment(
        warp_size=w,
        elements_per_thread=e,
        tuples=tuple(tuples),
        a_first=tuple(a_first),
        target_bank=s,
    )


class TestValidation:
    def test_tuple_count(self):
        with pytest.raises(ValidationError):
            make(tuples=((3, 0),) * 3)

    def test_tuple_sums(self):
        with pytest.raises(ValidationError):
            make(tuples=((3, 0), (0, 3), (2, 2), (1, 2)))

    def test_negative_counts(self):
        with pytest.raises(ValidationError):
            make(tuples=((4, -1), (0, 3), (2, 1), (1, 2)))

    def test_target_bank_range(self):
        with pytest.raises(ValidationError):
            make(s=4)


class TestInterleaving:
    def test_counts(self):
        wa = make()
        inter = wa.interleaving()
        assert inter.size == 12
        assert int(inter.sum()) == wa.num_a == 6
        assert wa.num_b == 6

    def test_read_order_controls_chunk_order(self):
        wa = make(tuples=((2, 1),) * 4, a_first=(True, False, True, False))
        inter = wa.interleaving()
        assert inter[:3].tolist() == [True, True, False]   # A first
        assert inter[3:6].tolist() == [False, True, True]  # B first


class TestStepBanks:
    def test_scan_thread_walks_banks(self):
        wa = make(tuples=((3, 0), (0, 3), (3, 0), (0, 3)))
        banks = wa.step_banks()
        # Thread 0 scans A from offset 0: banks 0,1,2.
        assert banks[:, 0].tolist() == [0, 1, 2]
        # Thread 2 scans A from offset 3: banks 3,0,1 (mod 4).
        assert banks[:, 2].tolist() == [3, 0, 1]

    def test_b_first_ordering(self):
        wa = make(tuples=((1, 2), (2, 1), (3, 0), (0, 3)),
                  a_first=(False, True, True, True))
        banks = wa.step_banks()
        # Thread 0 reads B offsets 0,1 then A offset 0: banks 0,1 then 0.
        assert banks[:, 0].tolist() == [0, 1, 0]


class TestAlignedCount:
    def test_fully_aligned_warp(self):
        """Scan threads whose cumulative offsets are multiples of w are
        perfectly aligned: 2 aligned columns of A + 1 of B... with w=4, E=3:
        threads (3,0),(0,3),... thread 2 starts A at offset 3 (bank 3)."""
        wa = make(tuples=((3, 0), (0, 3), (3, 0), (0, 3)))
        # thread 0: banks 0,1,2 == steps 0,1,2 -> 3 aligned
        # thread 1: B offset 0: banks 0,1,2 -> 3 aligned
        # thread 2: A offset 3: banks 3,0,1 vs steps 0,1,2 -> 0
        # thread 3: B offset 3: banks 3,0,1 -> 0
        assert wa.aligned_count() == 6

    def test_best_aligned_searches_starts(self):
        wa = make(tuples=((3, 0), (0, 3), (3, 0), (0, 3)))
        count, start = wa.best_aligned_count()
        assert count >= wa.aligned_count(0)

    def test_aligned_count_override(self):
        wa = make(tuples=((3, 0), (0, 3), (3, 0), (0, 3)))
        assert wa.aligned_count(1) != wa.aligned_count(0) or True
        assert wa.aligned_count(0) == 6


class TestMirrored:
    def test_swaps_lists(self):
        wa = make(tuples=((3, 0), (0, 3), (2, 1), (1, 2)))
        m = wa.mirrored()
        assert m.tuples == ((0, 3), (3, 0), (1, 2), (2, 1))
        assert m.num_a == wa.num_b

    def test_preserves_alignment(self):
        """Mirroring is an exact symmetry: same aligned count."""
        wa = construct_warp_assignment(32, 15)
        assert wa.mirrored().aligned_count() == wa.aligned_count()
        wa = construct_warp_assignment(32, 17)
        assert wa.mirrored().aligned_count() == wa.aligned_count()

    def test_involution(self):
        wa = construct_warp_assignment(16, 7)
        assert wa.mirrored().mirrored() == wa


class TestBankMatrix:
    def test_shapes_and_ownership(self):
        wa = make(tuples=((3, 0), (0, 3), (3, 0), (0, 3)))
        a_owners, b_owners = wa.bank_matrix()
        assert a_owners.shape == (4, 2)
        # A list: thread 0 owns offsets 0-2, thread 2 owns 3-5.
        assert a_owners[0, 0] == 0 and a_owners[3, 0] == 2
        assert (b_owners >= -1).all()

    def test_figure3_left_first_column(self):
        """Paper Figure 3 (left): w=16, E=7 — banks 0..6 of the A list are
        owned by threads 0, 4, 8, 13; banks 0..6 of B by threads 1, 6, 11."""
        wa = construct_warp_assignment(16, 7)
        a_owners, b_owners = wa.bank_matrix()
        for bank in range(7):
            assert a_owners[bank, :4].tolist() == [0, 4, 8, 13]
            assert b_owners[bank, :3].tolist() == [1, 6, 11]


class TestConstructDispatch:
    def test_small_routes(self):
        wa = construct_warp_assignment(32, 15)
        assert wa.target_bank == 0

    def test_large_routes(self):
        wa = construct_warp_assignment(32, 17)
        assert wa.target_bank == 32 - 17

    def test_power_of_two_routes(self):
        wa = construct_warp_assignment(32, 8)
        assert wa.aligned_count() == 64

    def test_rejects_partial_gcd(self):
        with pytest.raises(ConstructionError, match="GCD"):
            construct_warp_assignment(32, 12)

    def test_rejects_e_at_least_w(self):
        with pytest.raises(ConstructionError):
            construct_warp_assignment(32, 33)

    def test_e_equal_w_is_power_case(self):
        wa = construct_warp_assignment(16, 16)
        assert wa.aligned_count() == 256
