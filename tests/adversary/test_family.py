"""Tests for permutation families and relaxation (Conclusion items 2–3)."""

import pytest

from repro.adversary.assignment import construct_warp_assignment
from repro.adversary.family import (
    family_size_log2,
    random_family_member,
    relaxed_assignment,
)
from repro.errors import ValidationError


class TestFamilySize:
    def test_positive_for_real_parameters(self):
        """The family is combinatorially large for the Thrust presets."""
        wa = construct_warp_assignment(32, 15)
        assert family_size_log2(wa) > 20

    def test_zero_when_no_mixed_threads(self):
        from repro.adversary.power2 import sorted_assignment

        assert family_size_log2(sorted_assignment(8, 4)) == 0.0


class TestRandomFamilyMember:
    @pytest.mark.parametrize("w,e", [(16, 7), (16, 9), (32, 15), (32, 17)])
    def test_preserves_aligned_count(self, w, e):
        wa = construct_warp_assignment(w, e)
        for seed in range(5):
            member = random_family_member(wa, seed=seed)
            assert member.aligned_count() == wa.aligned_count()
            assert member.tuples == wa.tuples

    def test_deterministic_per_seed(self):
        wa = construct_warp_assignment(32, 15)
        a = random_family_member(wa, seed=3)
        b = random_family_member(wa, seed=3)
        assert a == b


class TestRelaxedAssignment:
    def test_fraction_zero_is_identity(self):
        wa = construct_warp_assignment(32, 15)
        assert relaxed_assignment(wa, 0.0, seed=0) == wa

    def test_relaxation_reduces_alignment(self):
        wa = construct_warp_assignment(32, 15)
        relaxed = relaxed_assignment(wa, 1.0, seed=0)
        assert relaxed.aligned_count() < wa.aligned_count()

    def test_monotone_in_expectation(self):
        """More relaxation, fewer aligned accesses (averaged over seeds)."""
        wa = construct_warp_assignment(32, 15)

        def avg(fraction):
            return sum(
                relaxed_assignment(wa, fraction, seed=s).aligned_count()
                for s in range(8)
            ) / 8

        assert avg(0.0) >= avg(0.5) >= avg(1.0)

    def test_rejects_bad_fraction(self):
        wa = construct_warp_assignment(16, 7)
        with pytest.raises(ValidationError):
            relaxed_assignment(wa, 1.5)
