"""Unit tests for warp/block/round interleavings."""

import numpy as np
import pytest

from repro.adversary.assignment import construct_warp_assignment
from repro.adversary.interleave import (
    adversarial_rounds,
    block_interleave,
    round_interleave,
    sorted_interleave,
)
from repro.errors import ValidationError
from repro.sort.config import SortConfig


class TestBlockInterleave:
    def test_balanced_split(self, small_config):
        wa = construct_warp_assignment(small_config.w, small_config.E)
        inter = block_interleave(wa, small_config.b)
        assert inter.size == small_config.tile_size
        assert int(inter.sum()) == small_config.tile_size // 2

    def test_alternates_l_and_r(self, small_config):
        wa = construct_warp_assignment(small_config.w, small_config.E)
        inter = block_interleave(wa, small_config.b)
        span = small_config.w * small_config.E
        left = inter[:span]
        right = inter[span : 2 * span]
        assert int(left.sum()) == wa.num_a
        assert int(right.sum()) == wa.num_b  # mirrored warp

    def test_rejects_odd_warp_count(self):
        wa = construct_warp_assignment(8, 3)
        with pytest.raises(ValidationError):
            block_interleave(wa, 24)  # 3 warps
        with pytest.raises(ValidationError):
            block_interleave(wa, 8)  # 1 warp


class TestSortedInterleave:
    def test_halves(self):
        inter = sorted_interleave(8)
        assert inter.tolist() == [True] * 4 + [False] * 4

    def test_rejects_odd(self):
        with pytest.raises(ValidationError):
            sorted_interleave(7)


class TestAdversarialRounds:
    def test_small_config(self, small_config):
        # w=8, E=3: constructible rounds need L multiple of wE=24 -> L=24,48
        n = small_config.tile_size * 4  # 192
        assert adversarial_rounds(small_config, n) == [24, 48, 96]

    def test_all_global_rounds_qualify(self, thrust_config):
        n = thrust_config.tile_size * 8
        rounds = adversarial_rounds(thrust_config, n)
        # Global rounds merge runs of bE/2·2^k... run lengths from bE up:
        tile = thrust_config.tile_size
        for run in (tile, tile * 2, tile * 4):
            assert run in rounds


class TestRoundInterleave:
    def test_narrow_round_falls_back_to_sorted(self, small_config):
        inter = round_interleave(small_config, small_config.E)
        assert inter.tolist() == [True] * 3 + [False] * 3

    def test_constructible_round_tiles_pattern(self, small_config):
        wa = construct_warp_assignment(small_config.w, small_config.E)
        span = small_config.w * small_config.E
        inter = round_interleave(small_config, 2 * span, wa)
        assert inter.size == 4 * span
        # Pattern repeats every 2·span (one L/R warp pair).
        assert np.array_equal(inter[: 2 * span], inter[2 * span :])

    def test_balanced_consumption(self, small_config):
        run = small_config.w * small_config.E * 4
        inter = round_interleave(small_config, run)
        assert int(inter.sum()) == run  # half of 2·run from A
