"""Property tests for round interleavings across arbitrary configs."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary.assignment import construct_warp_assignment
from repro.adversary.interleave import adversarial_rounds, round_interleave
from repro.sort.config import SortConfig


@st.composite
def coprime_configs(draw):
    w = draw(st.sampled_from([4, 8, 16, 32]))
    e = draw(st.integers(min_value=1, max_value=w - 1))
    if math.gcd(w, e) != 1 or e == w // 2:
        e = 1  # always valid
    b = w * draw(st.sampled_from([2, 4]))
    return SortConfig(elements_per_thread=e, block_size=b, warp_size=w)


class TestRoundInterleaveProperties:
    @settings(max_examples=80, deadline=None)
    @given(coprime_configs(), st.integers(min_value=0, max_value=8))
    def test_balanced_and_sized(self, cfg, k):
        run = cfg.E * (1 << k)
        pattern = round_interleave(cfg, run)
        assert pattern.size == 2 * run
        assert int(pattern.sum()) == run  # exactly half from A

    @settings(max_examples=40, deadline=None)
    @given(coprime_configs())
    def test_targeted_rounds_use_warp_pattern(self, cfg):
        n = cfg.tile_size * 8
        wa = construct_warp_assignment(cfg.w, cfg.E)
        span = cfg.w * cfg.E
        for run in adversarial_rounds(cfg, n):
            pattern = round_interleave(cfg, run, wa)
            # First warp's slice realizes the L assignment's A-count.
            assert int(pattern[:span].sum()) == wa.num_a
            # Second warp's slice realizes the mirrored (R) assignment.
            assert int(pattern[span : 2 * span].sum()) == wa.num_b

    @settings(max_examples=40, deadline=None)
    @given(coprime_configs())
    def test_untargeted_rounds_are_sorted_split(self, cfg):
        n = cfg.tile_size * 4
        targeted = set(adversarial_rounds(cfg, n))
        run = cfg.E
        while run < n:
            if run not in targeted:
                pattern = round_interleave(cfg, run)
                assert pattern[: run].all() and not pattern[run:].any()
            run *= 2

    @settings(max_examples=30, deadline=None)
    @given(coprime_configs())
    def test_adversarial_rounds_are_wide_multiples(self, cfg):
        n = cfg.tile_size * 8
        span = cfg.w * cfg.E
        for run in adversarial_rounds(cfg, n):
            assert run % cfg.w == 0
            assert run >= span
            assert (2 * run) % (2 * span) == 0  # whole L/R warp pairs
