"""Theorem 9 verification: the large-E construction aligns exactly
½(E² + E + 2Er − r² − r) accesses for every valid (w, E)."""

import pytest

from repro.adversary.large_e import large_e_assignment
from repro.adversary.theory import aligned_elements


def large_e_pairs():
    pairs = []
    for w in (8, 16, 32, 64, 128):
        pairs.extend((w, e) for e in range(w // 2 + 1, w, 2))
    return pairs


class TestTheorem9:
    @pytest.mark.parametrize("w,e", large_e_pairs())
    def test_aligned_matches_formula(self, w, e):
        r = w - e
        wa = large_e_assignment(w, e)
        want = (e * e + e + 2 * e * r - r * r - r) // 2
        assert wa.aligned_count() == want

    @pytest.mark.parametrize("w,e", large_e_pairs())
    def test_theta_e_squared(self, w, e):
        """Section III-C: the count sits between E²/2 and E²."""
        wa = large_e_assignment(w, e)
        assert e * e / 2 <= wa.aligned_count() <= e * e

    def test_boundary_min_e(self):
        """E = w/2 + 1 gives E² − 1 (paper, after Theorem 9)."""
        for w in (8, 16, 32, 64):
            e = w // 2 + 1
            assert large_e_assignment(w, e).aligned_count() == e * e - 1

    def test_boundary_max_e(self):
        """E = w − 1 gives E²/2 + 3E/2 − 1 (paper, after Theorem 9)."""
        for w in (8, 16, 32, 64):
            e = w - 1
            want = (e * e + 3 * e - 2) // 2
            assert large_e_assignment(w, e).aligned_count() == want

    @pytest.mark.parametrize("w,e", large_e_pairs())
    def test_warp_structure(self, w, e):
        wa = large_e_assignment(w, e)
        assert len(wa.tuples) == w
        assert wa.num_a == (e + 1) // 2 * w
        assert wa.target_bank == w - e

    def test_figure3_right_aligned_count(self):
        """w=16, E=9: ½(81 + 9 + 126 − 49 − 7) = 80 aligned elements."""
        assert large_e_assignment(16, 9).aligned_count() == 80

    @pytest.mark.parametrize("w,e", large_e_pairs())
    def test_matches_theory_module(self, w, e):
        assert large_e_assignment(w, e).aligned_count() == aligned_elements(w, e)
