"""Tests for trace-based alignment measurement — closing the loop between
the assignment-level prediction and what a recorded trace shows."""

import numpy as np
import pytest

from repro.adversary.assignment import construct_warp_assignment
from repro.adversary.metrics import aligned_count_for_start, measured_aligned_count
from repro.dmm.trace import AccessTrace


def trace_from_assignment(wa):
    """Turn an assignment's step-bank matrix into a trace whose addresses
    are the banks themselves (valid: address mod w == bank)."""
    return AccessTrace.from_dense(wa.step_banks())


class TestAlignedCountForStart:
    def test_simple_diagonal(self):
        t = AccessTrace.from_dense(np.array([[2], [3], [4]]))
        assert aligned_count_for_start(t, 8, 2) == 3
        assert aligned_count_for_start(t, 8, 3) == 0

    def test_counts_elements_not_requests(self):
        """Two lanes on the target bank both count (no broadcast dedup)."""
        t = AccessTrace.from_dense(np.array([[0, 8]]))
        assert aligned_count_for_start(t, 8, 0) == 2

    def test_inactive_ignored(self):
        t = AccessTrace.from_dense(np.array([[0, -1]]))
        assert aligned_count_for_start(t, 8, 0) == 1


class TestMeasuredAlignedCount:
    @pytest.mark.parametrize("w,e", [(16, 7), (16, 9), (32, 15), (32, 17)])
    def test_trace_measurement_matches_assignment(self, w, e):
        """measured(trace) == assignment.aligned_count() at the declared
        start bank, and no other start bank does better."""
        wa = construct_warp_assignment(w, e)
        count, start = measured_aligned_count(trace_from_assignment(wa), w)
        assert count == wa.aligned_count()
        assert start == wa.target_bank

    def test_empty_trace(self):
        t = AccessTrace.from_dense(np.empty((0, 4), dtype=np.int64))
        assert measured_aligned_count(t, 4) == (0, 0)

    def test_wraparound_start(self):
        """Alignment wraps modulo w."""
        t = AccessTrace.from_dense(np.array([[7], [0], [1]]))
        count, start = measured_aligned_count(t, 8)
        assert (count, start) == (3, 7)
