"""Tests for the K-way worst-case construction (beyond-paper extension)."""

import math

import numpy as np
import pytest

from repro.adversary.multiway_adversary import (
    MultiwayWarpAssignment,
    multiway_small_e_assignment,
    multiway_worst_case_permutation,
)
from repro.errors import ConstructionError
from repro.sort.config import SortConfig
from repro.sort.multiway import MultiwaySort


def small_coprime_pairs():
    pairs = []
    for w in (8, 16, 32):
        pairs.extend(
            (w, e) for e in range(1, w // 2) if math.gcd(w, e) == 1
        )
    return pairs


class TestAssignment:
    @pytest.mark.parametrize("w,e", small_coprime_pairs())
    @pytest.mark.parametrize("fan", [2, 4])
    def test_aligns_e_squared(self, w, e, fan):
        """The pairwise bound carries over unchanged to K-way merging."""
        wa = multiway_small_e_assignment(w, e, fan)
        assert wa.aligned_count() == e * e

    def test_thread_budget(self):
        wa = multiway_small_e_assignment(32, 15, 4)
        assert len(wa.tuples) == 32
        scans = sum(1 for t in wa.tuples if max(t) == 15)
        assert scans >= 15  # E scan threads

    def test_source_totals_are_column_multiples(self):
        wa = multiway_small_e_assignment(32, 15, 4)
        for total in wa.source_totals():
            assert total % 32 == 0

    def test_rotation_preserves_alignment_and_permutes_sources(self):
        wa = multiway_small_e_assignment(16, 7, 4)
        rot = wa.rotated(1)
        assert rot.aligned_count() == wa.aligned_count()
        assert rot.source_totals() == (
            wa.source_totals()[-1:] + wa.source_totals()[:-1]
        )

    def test_source_pattern_counts(self):
        wa = multiway_small_e_assignment(16, 7, 2)
        pattern = wa.source_pattern()
        for k, total in enumerate(wa.source_totals()):
            assert int((pattern == k).sum()) == total

    def test_rejects_large_e(self):
        with pytest.raises(ConstructionError):
            multiway_small_e_assignment(16, 9, 4)

    def test_rejects_composite_gcd(self):
        with pytest.raises(ConstructionError):
            multiway_small_e_assignment(16, 6, 4)

    def test_rejects_fan_one(self):
        with pytest.raises(ConstructionError):
            multiway_small_e_assignment(16, 7, 1)

    def test_validates_tuple_sums(self):
        with pytest.raises(ConstructionError):
            MultiwayWarpAssignment(
                warp_size=4, elements_per_thread=3, fan=2,
                tuples=(((2, 2),) * 4),
            )


class TestEndToEnd:
    @pytest.fixture
    def cfg(self):
        return SortConfig(elements_per_thread=7, block_size=64, warp_size=16)

    def test_permutation_is_valid(self, cfg):
        n = cfg.tile_size * 16
        perm = multiway_worst_case_permutation(cfg, n, fan=4)
        assert np.array_equal(np.sort(perm), np.arange(n))

    def test_multiway_rounds_hit_e_squared(self, cfg):
        """Every K-way round serializes to exactly E² cycles per warp."""
        n = cfg.tile_size * 16
        perm = multiway_worst_case_permutation(cfg, n, fan=4)
        result = MultiwaySort(cfg, k=4).sort(perm)
        assert np.array_equal(result.values, np.arange(n))
        warps = n // (cfg.w * cfg.E)
        rounds = [r for r in result.rounds if "multiway" in r.label]
        assert rounds
        for r in rounds:
            assert r.merge_report.total_transactions / warps == cfg.E**2

    def test_beats_the_pairwise_adversary_on_multiway(self, cfg):
        """The K-way-specific input hurts the K-way sort more than the
        paper's pairwise input does."""
        from repro.adversary.permutation import worst_case_permutation

        n = cfg.tile_size * 16
        sorter = MultiwaySort(cfg, k=4)

        def multiway_merge_cycles(data):
            result = sorter.sort(data)
            return sum(
                r.merge_report.total_transactions
                for r in result.rounds
                if "multiway" in r.label
            )

        kway = multiway_merge_cycles(
            multiway_worst_case_permutation(cfg, n, fan=4)
        )
        pairwise = multiway_merge_cycles(worst_case_permutation(cfg, n))
        assert kway > 1.3 * pairwise

    def test_rejects_non_power_tile_count(self, cfg):
        with pytest.raises(ConstructionError):
            multiway_worst_case_permutation(cfg, cfg.tile_size * 8, fan=4)

    def test_rejects_too_few_warps(self):
        cfg = SortConfig(elements_per_thread=7, block_size=32, warp_size=16)
        with pytest.raises(ConstructionError):
            multiway_worst_case_permutation(cfg, cfg.tile_size * 16, fan=4)
