"""Tests for the full worst-case input permutation — including the key
end-to-end property: the simulated sort on the constructed input serializes
every constructible round to exactly the theorem's per-warp count."""

import numpy as np
import pytest

from repro.adversary.interleave import adversarial_rounds
from repro.adversary.permutation import worst_case_permutation
from repro.adversary.theory import aligned_elements
from repro.errors import ValidationError
from repro.sort.config import SortConfig
from repro.sort.pairwise import PairwiseMergeSort


class TestPermutationBasics:
    def test_is_a_permutation(self, small_config):
        n = small_config.tile_size * 4
        perm = worst_case_permutation(small_config, n)
        assert sorted(perm.tolist()) == list(range(n))

    def test_deterministic(self, small_config):
        n = small_config.tile_size * 2
        a = worst_case_permutation(small_config, n)
        b = worst_case_permutation(small_config, n)
        assert np.array_equal(a, b)

    def test_custom_values(self, small_config):
        n = small_config.tile_size * 2
        values = np.arange(n) * 10 + 3
        perm = worst_case_permutation(small_config, n, values=values)
        assert sorted(perm.tolist()) == values.tolist()

    def test_rejects_non_increasing_values(self, small_config):
        n = small_config.tile_size * 2
        with pytest.raises(ValidationError):
            worst_case_permutation(small_config, n, values=np.zeros(n, dtype=int))

    def test_rejects_wrong_value_count(self, small_config):
        with pytest.raises(ValidationError):
            worst_case_permutation(
                small_config, small_config.tile_size * 2, values=np.arange(3)
            )

    def test_not_sorted_itself(self, small_config):
        """The adversarial input must differ from sorted order (E odd)."""
        n = small_config.tile_size * 2
        perm = worst_case_permutation(small_config, n)
        assert not np.array_equal(perm, np.arange(n))


class TestEndToEndSerialization:
    """The central claim of the reproduction, verified per round."""

    @pytest.mark.parametrize(
        "w,e,b",
        [(4, 3, 8), (8, 3, 16), (8, 5, 16), (8, 7, 16), (16, 7, 32),
         (16, 9, 32), (16, 13, 64), (32, 15, 64), (32, 17, 64)],
    )
    def test_constructible_rounds_hit_theorem_count(self, w, e, b):
        cfg = SortConfig(elements_per_thread=e, block_size=b, warp_size=w)
        n = cfg.tile_size * 4
        perm = worst_case_permutation(cfg, n)
        result = PairwiseMergeSort(cfg).sort(perm)
        assert np.array_equal(result.values, np.arange(n))

        warps_per_round = n // (w * e)
        predicted = aligned_elements(w, e)
        targeted = set(adversarial_rounds(cfg, n))
        for r in result.rounds:
            if r.kind == "registers" or r.run_length not in targeted:
                continue
            per_warp = r.merge_report.total_transactions / warps_per_round
            if e < w / 2:
                # Small E: aligned accesses fully determine the cost — the
                # E fillers spread over w−E ≥ E untargeted banks can never
                # exceed the E-way aligned pile-up.
                assert per_warp == pytest.approx(predicted), (
                    f"round {r.label}: {per_warp} != {predicted}"
                )
            else:
                # Large E: the aligned total is a lower bound (filler
                # accesses stack extra serialization on top); E² bounds it
                # above.
                assert predicted <= per_warp <= e * e, (
                    f"round {r.label}: {per_warp} outside [{predicted}, {e*e}]"
                )

    def test_sorts_correctly_at_scale(self, thrust_config):
        n = thrust_config.tile_size * 8
        perm = worst_case_permutation(thrust_config, n)
        result = PairwiseMergeSort(thrust_config).sort(perm, score_blocks=2)
        assert np.array_equal(result.values, np.arange(n))

    def test_worse_than_random(self, rng):
        """The constructed input must beat random inputs on serialized
        shared cycles — the paper's whole point. (At tiny E the margin is
        thin — E² barely above the random balls-in-bins max-load times E —
        so this uses a config with meaningful E, like the real presets.)"""
        cfg = SortConfig(elements_per_thread=7, block_size=32, warp_size=16)
        n = cfg.tile_size * 16
        sorter = PairwiseMergeSort(cfg)
        worst = sorter.sort(worst_case_permutation(cfg, n))
        random = sorter.sort(rng.permutation(n))
        assert worst.total_shared_cycles() > random.total_shared_cycles()

        def global_merge_cycles(result):
            return sum(
                r.merge_report.total_transactions
                for r in result.rounds
                if r.kind == "global"
            )

        assert global_merge_cycles(worst) > 1.5 * global_merge_cycles(random)

    def test_effective_parallelism_collapse(self):
        """Section III-C: parallel time per warp merge grows from Θ(E) to
        the aligned count — parallelism w -> ~⌈w/E⌉."""
        cfg = SortConfig(elements_per_thread=15, block_size=64, warp_size=32)
        n = cfg.tile_size * 4
        result = PairwiseMergeSort(cfg).sort(worst_case_permutation(cfg, n))
        glob = [r for r in result.rounds if r.kind == "global"]
        warps = n // (32 * 15)
        for r in glob:
            per_warp_cycles = r.merge_report.total_transactions / warps
            assert per_warp_cycles == 225  # E² vs the conflict-free 15


class TestUnmergeOffTargetValidation:
    """A mistyped ``off_target`` must fail loudly, not silently fall back
    to the benign sorted interleaving (which would quietly produce a
    non-adversarial 'adversarial' input)."""

    def _args(self, config):
        from repro.adversary.assignment import construct_warp_assignment

        n = config.tile_size * 2
        assignment = construct_warp_assignment(config.w, config.E)
        return np.arange(n, dtype=np.int64), assignment

    @pytest.mark.parametrize("off_target", ["sorted", "random"])
    def test_valid_modes_accepted(self, small_config, off_target):
        from repro.adversary.permutation import unmerge_through_rounds

        values, assignment = self._args(small_config)
        out = unmerge_through_rounds(
            small_config,
            values,
            assignment,
            target_runs=set(),
            off_target=off_target,
        )
        assert sorted(out.tolist()) == values.tolist()

    @pytest.mark.parametrize("off_target", ["sortd", "rand", "", "SORTED"])
    def test_typos_rejected(self, small_config, off_target):
        from repro.adversary.permutation import unmerge_through_rounds

        values, assignment = self._args(small_config)
        with pytest.raises(ValidationError, match=repr(off_target)):
            unmerge_through_rounds(
                small_config, values, assignment, off_target=off_target
            )
