"""Tests for the GCD(w, E) = d analysis and power-of-two worst case."""

import math

import pytest

from repro.adversary.power2 import (
    power_of_two_assignment,
    sorted_aligned_count,
    sorted_assignment,
    sorted_gcd_check,
)
from repro.errors import ConstructionError


class TestSortedAlignedCount:
    def test_figure1(self):
        """Figure 1: w=16, E=12, d=4 — every 4th chunk (4 threads) aligned,
        12 accesses each."""
        assert sorted_aligned_count(16, 12) == 48

    def test_coprime_only_first_thread(self):
        assert sorted_aligned_count(32, 15) == 15
        assert sorted_aligned_count(32, 17) == 17

    @pytest.mark.parametrize("w", [8, 16, 32, 64])
    def test_equals_d_times_e(self, w):
        for e in range(1, w + 1):
            assert sorted_gcd_check(w, e)
            assert sorted_aligned_count(w, e) == math.gcd(w, e) * e


class TestPowerOfTwoAssignment:
    @pytest.mark.parametrize("w,e", [(8, 2), (8, 4), (16, 4), (32, 8), (32, 32)])
    def test_sorted_is_worst_case(self, w, e):
        """d = E: sorted order aligns d·E = E² — the Theorem 3 maximum,
        with no engineering."""
        wa = power_of_two_assignment(w, e)
        assert wa.aligned_count() == e * e

    def test_rejects_non_divisor(self):
        with pytest.raises(ConstructionError):
            power_of_two_assignment(32, 12)

    def test_rejects_oversized(self):
        with pytest.raises(ConstructionError):
            power_of_two_assignment(16, 32)


class TestSortedAssignment:
    def test_shape(self):
        wa = sorted_assignment(8, 5)
        assert wa.num_a == wa.num_b == 20
        assert wa.tuples[:4] == ((5, 0),) * 4
        assert wa.tuples[4:] == ((0, 5),) * 4

    def test_interleaving_is_a_then_b(self):
        wa = sorted_assignment(4, 3)
        inter = wa.interleaving()
        assert inter[:6].all() and not inter[6:].any()
