"""Property tests for the Section III-B sequences — Lemmas 4, 7, and 8
verified verbatim, plus the structure of S and T."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary.sequences import (
    check_large_e,
    sequence_s,
    sequence_t,
    xy_sequences,
)
from repro.errors import ConstructionError


def large_e_pairs():
    """All (w, E) in the large-E regime for small warps."""
    pairs = []
    for w in (8, 16, 32, 64):
        pairs.extend((w, e) for e in range(w // 2 + 1, w, 2))
    return pairs


class TestCheckLargeE:
    def test_rejects_small_e(self):
        with pytest.raises(ConstructionError):
            check_large_e(32, 7)

    def test_rejects_even_e(self):
        with pytest.raises(ConstructionError):
            check_large_e(32, 20)

    def test_rejects_e_ge_w(self):
        with pytest.raises(ConstructionError):
            check_large_e(32, 33)

    @pytest.mark.parametrize("w,e", large_e_pairs())
    def test_lemma4_coprime(self, w, e):
        """Lemma 4: GCD(E, w − E) = 1 for odd E with w a power of two."""
        r = check_large_e(w, e)
        assert math.gcd(e, r) == 1


class TestLemma7:
    @pytest.mark.parametrize("w,e", large_e_pairs())
    def test_complement_uniqueness_reflection(self, w, e):
        xs, ys = xy_sequences(w, e)
        # 7.1: x_i + y_i = E (and neither is ever zero)
        assert all(x + y == e for x, y in zip(xs, ys))
        assert 0 not in xs and 0 not in ys
        # 7.2: all values distinct
        assert len(set(xs)) == e - 1
        assert len(set(ys)) == e - 1
        # 7.3: x_i = y_{E−i}
        for i in range(1, e):
            assert xs[i - 1] == ys[e - i - 1]


class TestLemma8:
    @pytest.mark.parametrize("w,e", large_e_pairs())
    def test_pair_sums(self, w, e):
        """8.3: x_i + y_{i+1} is r when x_i < r and w when x_i > r."""
        r = w - e
        xs, ys = xy_sequences(w, e)
        for i in range(1, e - 1):
            x, y_next = xs[i - 1], ys[i]
            assert x != r  # x_{E−1} = r is the only r, excluded from range
            assert x + y_next == (r if x < r else w)

    @pytest.mark.parametrize("w,e", large_e_pairs())
    def test_sum_type_counts(self, w, e):
        """Exactly r−1 pairs sum to r and E−r−1 pairs sum to w."""
        r = w - e
        xs, ys = xy_sequences(w, e)
        sums = [xs[i - 1] + ys[i] for i in range(1, e - 1)]
        assert sums.count(r) == r - 1
        assert sums.count(w) == e - r - 1


class TestSequenceS:
    @pytest.mark.parametrize("w,e", large_e_pairs())
    def test_entries_sum_to_e(self, w, e):
        assert all(a + b == e for a, b in sequence_s(w, e))

    def test_first_entry(self):
        """S starts with (y_1, x_1) = (r, E − r)."""
        s = sequence_s(16, 9)
        assert s[0] == (7, 2)

    def test_paper_example(self):
        """The full w=16, E=9 sequence implied by Figure 3 (right)."""
        assert sequence_s(16, 9) == [
            (7, 2), (4, 5), (3, 6), (8, 1), (8, 1), (3, 6), (4, 5), (7, 2),
        ]


class TestSequenceT:
    @pytest.mark.parametrize("w,e", large_e_pairs())
    def test_has_w_tuples_summing_to_e(self, w, e):
        t = sequence_t(w, e)
        assert len(t) == w
        assert all(a + b == e for a, b in t)

    @pytest.mark.parametrize("w,e", large_e_pairs())
    def test_list_split(self, w, e):
        """A gets (E+1)/2·w elements, B gets (E−1)/2·w (Section III)."""
        t = sequence_t(w, e)
        assert sum(a for a, _ in t) == (e + 1) // 2 * w
        assert sum(b for _, b in t) == (e - 1) // 2 * w

    @pytest.mark.parametrize("w,e", large_e_pairs())
    def test_insert_count(self, w, e):
        """r + 1 full-scan tuples are inserted (Theorem 9's accounting)."""
        r = w - e
        t = sequence_t(w, e)
        full_scans = sum(1 for a, b in t if e in (a, b) and 0 in (a, b))
        # S itself has no (E, 0) entries (x_i, y_i are never 0), so every
        # full-scan tuple is an insertion.
        assert full_scans == r + 1

    @pytest.mark.parametrize("w,e", large_e_pairs())
    def test_column_structure(self, w, e):
        """Theorem 9: 'T is comprised of E groups of consecutive entries
        which sum up to w, with ((E−1)/2 + 1) groups in the A list and
        ((E−1)/2) groups in the B list' — i.e. each list's cumulative
        consumption lands exactly on every multiple of w (never straddles
        a column boundary), with the stated group counts."""
        t = sequence_t(w, e)
        for counts, groups_wanted in (
            ([a for a, _ in t], (e - 1) // 2 + 1),
            ([b for _, b in t], (e - 1) // 2),
        ):
            total = 0
            groups = 0
            for c in counts:
                before = total % w
                total += c
                # A tuple never straddles a column boundary: if it crosses
                # a multiple of w it must land exactly on it.
                assert before + c <= w
                if total % w == 0 and c:
                    groups += 1
            # Final group counting: total consumption is groups·w exactly.
            assert total == groups_wanted * w
