"""Theorem 3 verification: the small-E construction achieves E² aligned
accesses for every valid (w, E)."""

import math

import pytest

from repro.adversary.small_e import small_e_assignment
from repro.errors import ConstructionError


def small_e_pairs():
    pairs = []
    for w in (4, 8, 16, 32, 64, 128):
        pairs.extend(
            (w, e) for e in range(1, (w + 1) // 2) if math.gcd(w, e) == 1
        )
    return pairs


class TestPreconditions:
    def test_rejects_large_e(self):
        with pytest.raises(ConstructionError):
            small_e_assignment(32, 17)

    def test_rejects_composite_gcd(self):
        with pytest.raises(ConstructionError):
            small_e_assignment(32, 6)

    def test_rejects_half(self):
        with pytest.raises(ConstructionError):
            small_e_assignment(32, 16)


class TestTheorem3:
    @pytest.mark.parametrize("w,e", small_e_pairs())
    def test_aligned_equals_e_squared(self, w, e):
        """The headline: E² aligned accesses — the maximum possible."""
        wa = small_e_assignment(w, e)
        assert wa.aligned_count() == e * e

    @pytest.mark.parametrize("w,e", small_e_pairs())
    def test_warp_structure(self, w, e):
        """w threads; (E+1)/2·w from A, (E−1)/2·w from B; each tuple sums
        to E (every thread merges exactly E elements)."""
        wa = small_e_assignment(w, e)
        assert len(wa.tuples) == w
        assert wa.num_a == (e + 1) // 2 * w
        assert wa.num_b == (e - 1) // 2 * w
        assert all(a + b == e for a, b in wa.tuples)

    @pytest.mark.parametrize("w,e", small_e_pairs())
    def test_scan_thread_budget(self, w, e):
        """Exactly E single-list scan threads and w − E mixed/filler
        threads (the element-conservation argument)."""
        wa = small_e_assignment(w, e)
        scans = sum(1 for a, b in wa.tuples if (a, b) in ((e, 0), (0, e)))
        assert scans >= e  # fillers may incidentally be single-list too
        full_columns = sum(1 for a, b in wa.tuples if a == e) + sum(
            1 for a, b in wa.tuples if b == e
        )
        assert full_columns >= e

    def test_theorem3_opening_moves(self):
        """Thread 0 takes E from A and thread 1 takes E from B, exactly as
        the Theorem 3 proof prescribes."""
        wa = small_e_assignment(32, 15)
        assert wa.tuples[0] == (15, 0)
        assert wa.tuples[1] == (0, 15)

    def test_aligned_at_declared_start_bank(self):
        """The construction targets s = 0."""
        wa = small_e_assignment(32, 15)
        assert wa.target_bank == 0
        count, best_s = wa.best_aligned_count()
        assert count == wa.aligned_count(0)
