"""Unit tests for the closed-form predictions."""

import math

import pytest

from repro.adversary.theory import (
    _global_rounds,
    a_g,
    a_s,
    aligned_elements,
    effective_threads,
    lemma1_bound,
    parallel_time_blowup,
    predicted_warp_transactions,
)
from repro.errors import ConstructionError
from repro.sort.config import SortConfig


class TestLemma1:
    def test_paper_regime(self):
        """k = wE contiguous addresses: the bound is E (for E <= w)."""
        assert lemma1_bound(32, 32 * 15) == 15
        assert lemma1_bound(32, 32 * 17) == 17

    def test_caps_at_w(self):
        assert lemma1_bound(32, 32 * 100) == 32

    def test_small_k(self):
        assert lemma1_bound(32, 5) == 1


class TestAlignedElements:
    def test_small_e(self):
        assert aligned_elements(32, 15) == 225
        assert aligned_elements(32, 1) == 1

    def test_large_e(self):
        assert aligned_elements(16, 9) == 80
        assert aligned_elements(32, 17) == 288

    def test_power_of_two(self):
        assert aligned_elements(32, 8) == 64
        assert aligned_elements(32, 32) == 1024

    def test_rejects_uncovered(self):
        with pytest.raises(ConstructionError):
            aligned_elements(32, 12)
        with pytest.raises(ConstructionError):
            aligned_elements(32, 35)

    def test_large_e_bounds(self):
        """Section III-C: between E²/2 and E² across the large range."""
        for w in (16, 32, 64):
            for e in range(w // 2 + 1, w, 2):
                v = aligned_elements(w, e)
                assert e * e / 2 <= v <= e * e


class TestEffectiveThreads:
    def test_paper_values(self):
        assert effective_threads(32, 15) == 3
        assert effective_threads(32, 17) == 2
        assert effective_threads(32, 31) == 2

    def test_e_one_keeps_full_warp(self):
        assert effective_threads(32, 1) == 32


class TestBlowup:
    def test_small_e_is_exactly_e(self):
        assert parallel_time_blowup(32, 15) == 15.0

    def test_large_e_is_theta_e(self):
        blowup = parallel_time_blowup(32, 17)
        assert 17 / 2 <= blowup <= 17

    def test_predicted_transactions_equal_aligned(self):
        assert predicted_warp_transactions(32, 15) == 225


class TestGlobalRounds:
    """The bounds' round count must match the simulator's round structure
    (``_global_rounds`` cross-checked against ``SortConfig``)."""

    @pytest.mark.parametrize(
        "config",
        [
            SortConfig(elements_per_thread=3, block_size=8, warp_size=4),
            SortConfig(elements_per_thread=3, block_size=16, warp_size=8),
            SortConfig(elements_per_thread=15, block_size=512, warp_size=32),
        ],
        ids=["tiny", "small-e", "thrust-maxwell"],
    )
    def test_matches_simulator_round_count_at_valid_sizes(self, config):
        tile = config.tile_size
        for n in config.valid_sizes(tile * 64):
            expected = max(1, config.num_global_rounds(n))
            assert _global_rounds(n, tile) == float(expected), n

    def test_non_tile_multiple_rounds_up(self):
        """The old floor-division ``log2(n // tile)`` undercounted here:
        three tiles need two doubling rounds, not log2(3) ≈ 1.585."""
        assert _global_rounds(3 * 48, 48) == 2.0
        assert _global_rounds(5 * 48, 48) == 3.0

    def test_sub_tile_regime_is_one_round(self):
        assert _global_rounds(48, 48) == 1.0
        assert _global_rounds(30, 48) == 1.0

    def test_a_g_uses_ceil_rounds(self):
        """a_g at N = 3·tile must be computed with 2 rounds."""
        n, w, p, b, e = 3 * 512 * 15, 32, 1664, 512, 15
        tile = b * e
        expected = (n * w) / (p * tile) * 4 + (n / p) * 2
        assert a_g(n, w, p, b, e) == pytest.approx(expected)

    def test_a_s_uses_ceil_rounds(self):
        n, p, b, e = 3 * 512 * 15, 1664, 512, 15
        tile = b * e
        expected = (n / (p * e)) * 2 * (3.1 * math.log2(tile) + 2.2 * e)
        assert a_s(n, p, b, e, beta1=3.1, beta2=2.2) == pytest.approx(expected)


class TestAccessBounds:
    def test_a_g_grows_with_n(self):
        assert a_g(2**24, 32, 1664, 512, 15) > a_g(2**20, 32, 1664, 512, 15)

    def test_a_s_grows_with_beta2(self):
        base = a_s(2**24, 1664, 512, 15, beta1=3.1, beta2=2.2)
        worst = a_s(2**24, 1664, 512, 15, beta1=3.1, beta2=15.0)
        assert worst > 3 * base

    def test_a_s_merge_dominates_partition(self):
        """Section III's premise: for the real parameters, E >= log(bE), so
        the merge term (β₂E) dominates the partition term (β₁ log bE) for
        comparable βs."""
        import math

        for e, b in ((15, 512), (17, 256), (15, 128)):
            assert e >= math.log2(b * e) - 1  # within a round of the claim