"""Unit tests for the closed-form predictions."""

import pytest

from repro.adversary.theory import (
    a_g,
    a_s,
    aligned_elements,
    effective_threads,
    lemma1_bound,
    parallel_time_blowup,
    predicted_warp_transactions,
)
from repro.errors import ConstructionError


class TestLemma1:
    def test_paper_regime(self):
        """k = wE contiguous addresses: the bound is E (for E <= w)."""
        assert lemma1_bound(32, 32 * 15) == 15
        assert lemma1_bound(32, 32 * 17) == 17

    def test_caps_at_w(self):
        assert lemma1_bound(32, 32 * 100) == 32

    def test_small_k(self):
        assert lemma1_bound(32, 5) == 1


class TestAlignedElements:
    def test_small_e(self):
        assert aligned_elements(32, 15) == 225
        assert aligned_elements(32, 1) == 1

    def test_large_e(self):
        assert aligned_elements(16, 9) == 80
        assert aligned_elements(32, 17) == 288

    def test_power_of_two(self):
        assert aligned_elements(32, 8) == 64
        assert aligned_elements(32, 32) == 1024

    def test_rejects_uncovered(self):
        with pytest.raises(ConstructionError):
            aligned_elements(32, 12)
        with pytest.raises(ConstructionError):
            aligned_elements(32, 35)

    def test_large_e_bounds(self):
        """Section III-C: between E²/2 and E² across the large range."""
        for w in (16, 32, 64):
            for e in range(w // 2 + 1, w, 2):
                v = aligned_elements(w, e)
                assert e * e / 2 <= v <= e * e


class TestEffectiveThreads:
    def test_paper_values(self):
        assert effective_threads(32, 15) == 3
        assert effective_threads(32, 17) == 2
        assert effective_threads(32, 31) == 2

    def test_e_one_keeps_full_warp(self):
        assert effective_threads(32, 1) == 32


class TestBlowup:
    def test_small_e_is_exactly_e(self):
        assert parallel_time_blowup(32, 15) == 15.0

    def test_large_e_is_theta_e(self):
        blowup = parallel_time_blowup(32, 17)
        assert 17 / 2 <= blowup <= 17

    def test_predicted_transactions_equal_aligned(self):
        assert predicted_warp_transactions(32, 15) == 225


class TestAccessBounds:
    def test_a_g_grows_with_n(self):
        assert a_g(2**24, 32, 1664, 512, 15) > a_g(2**20, 32, 1664, 512, 15)

    def test_a_s_grows_with_beta2(self):
        base = a_s(2**24, 1664, 512, 15, beta1=3.1, beta2=2.2)
        worst = a_s(2**24, 1664, 512, 15, beta1=3.1, beta2=15.0)
        assert worst > 3 * base

    def test_a_s_merge_dominates_partition(self):
        """Section III's premise: for the real parameters, E >= log(bE), so
        the merge term (β₂E) dominates the partition term (β₁ log bE) for
        comparable βs."""
        import math

        for e, b in ((15, 512), (17, 256), (15, 128)):
            assert e >= math.log2(b * e) - 1  # within a round of the claim