"""Tests for the input self-verification routine."""

import numpy as np
import pytest

from repro.adversary.permutation import worst_case_permutation
from repro.adversary.verify import verify_worst_case
from repro.sort.config import SortConfig


@pytest.fixture
def cfg():
    return SortConfig(elements_per_thread=7, block_size=32, warp_size=16)


class TestVerifyWorstCase:
    def test_constructed_input_passes(self, cfg):
        n = cfg.tile_size * 8
        report = verify_worst_case(cfg, worst_case_permutation(cfg, n))
        assert report.ok
        assert report.sorted_correctly
        assert report.targeted_rounds
        assert "OK" in report.summary()

    def test_random_input_fails(self, cfg, rng):
        n = cfg.tile_size * 8
        report = verify_worst_case(cfg, rng.permutation(n))
        assert report.sorted_correctly
        assert not report.ok
        assert "FAILED" in report.summary()

    def test_sorted_input_fails(self, cfg):
        n = cfg.tile_size * 4
        assert not verify_worst_case(cfg, np.arange(n)).ok

    def test_wrong_parameters_fail(self, cfg):
        """An input constructed for other parameters misses the bound."""
        other = SortConfig(elements_per_thread=13, block_size=32, warp_size=16)
        # Sizes must agree: lcm of tiles... use other's own valid size that
        # is also valid for cfg: tile(cfg)=224, tile(other)=416 — pick a
        # common multiple that is tile × 2^k for cfg: 224·13=2912? Not a
        # power-of-two multiple. Instead verify cfg's adversary against
        # `other`'s sort where sizes line up is impossible — so check the
        # relaxed variant instead: a heavily relaxed assignment misses.
        from repro.adversary.assignment import construct_warp_assignment
        from repro.adversary.family import relaxed_assignment

        n = cfg.tile_size * 4
        wa = relaxed_assignment(
            construct_warp_assignment(cfg.w, cfg.E), 1.0, seed=0
        )
        perm = worst_case_permutation(cfg, n, assignment=wa)
        assert not verify_worst_case(cfg, perm).ok

    def test_per_round_details(self, cfg):
        n = cfg.tile_size * 4
        report = verify_worst_case(cfg, worst_case_permutation(cfg, n))
        for verdict in report.targeted_rounds:
            assert verdict.per_warp_cycles >= verdict.predicted
        untargeted = [r for r in report.rounds if not r.targeted]
        assert all(r.ok for r in untargeted)  # no claims on narrow rounds

    def test_small_e_rounds_exact(self):
        cfg = SortConfig(elements_per_thread=3, block_size=8, warp_size=8)
        n = cfg.tile_size * 4
        report = verify_worst_case(cfg, worst_case_permutation(cfg, n))
        for verdict in report.targeted_rounds:
            assert verdict.per_warp_cycles == pytest.approx(verdict.predicted)


class TestVerifyFamily:
    def test_all_members_pass(self):
        from repro.adversary.verify import verify_family

        cfg = SortConfig(elements_per_thread=3, block_size=8, warp_size=4)
        reports = verify_family(cfg, cfg.tile_size * 4, 3, seed=0)
        assert len(reports) == 3
        assert all(r.ok for r in reports)

    def test_shared_memo_matches_cold_verification(self):
        """Family members verified against one shared memo must produce
        the same verdicts as verifying each member cold."""
        from repro.adversary.verify import verify_family
        from repro.dmm.memo import ConflictMemo

        cfg = SortConfig(elements_per_thread=3, block_size=8, warp_size=4)
        n = cfg.tile_size * 4
        memo = ConflictMemo()
        warm = verify_family(cfg, n, 3, seed=1, memo=memo)
        cold = verify_family(cfg, n, 3, seed=1, memo=None)
        assert memo.hits > 0  # members are mostly pattern-identical
        for w, c in zip(warm, cold):
            assert w.ok == c.ok
            assert [r.per_warp_cycles for r in w.rounds] == [
                r.per_warp_cycles for r in c.rounds
            ]

    def test_member_count_validated(self):
        from repro.adversary.verify import verify_family
        from repro.errors import ValidationError

        cfg = SortConfig(elements_per_thread=3, block_size=8, warp_size=4)
        with pytest.raises(ValidationError):
            verify_family(cfg, cfg.tile_size * 2, 0)
