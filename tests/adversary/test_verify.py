"""Tests for the input self-verification routine."""

import numpy as np
import pytest

from repro.adversary.permutation import worst_case_permutation
from repro.adversary.verify import verify_worst_case
from repro.sort.config import SortConfig


@pytest.fixture
def cfg():
    return SortConfig(elements_per_thread=7, block_size=32, warp_size=16)


class TestVerifyWorstCase:
    def test_constructed_input_passes(self, cfg):
        n = cfg.tile_size * 8
        report = verify_worst_case(cfg, worst_case_permutation(cfg, n))
        assert report.ok
        assert report.sorted_correctly
        assert report.targeted_rounds
        assert "OK" in report.summary()

    def test_random_input_fails(self, cfg, rng):
        n = cfg.tile_size * 8
        report = verify_worst_case(cfg, rng.permutation(n))
        assert report.sorted_correctly
        assert not report.ok
        assert "FAILED" in report.summary()

    def test_sorted_input_fails(self, cfg):
        n = cfg.tile_size * 4
        assert not verify_worst_case(cfg, np.arange(n)).ok

    def test_wrong_parameters_fail(self, cfg):
        """An input constructed for other parameters misses the bound."""
        other = SortConfig(elements_per_thread=13, block_size=32, warp_size=16)
        # Sizes must agree: lcm of tiles... use other's own valid size that
        # is also valid for cfg: tile(cfg)=224, tile(other)=416 — pick a
        # common multiple that is tile × 2^k for cfg: 224·13=2912? Not a
        # power-of-two multiple. Instead verify cfg's adversary against
        # `other`'s sort where sizes line up is impossible — so check the
        # relaxed variant instead: a heavily relaxed assignment misses.
        from repro.adversary.assignment import construct_warp_assignment
        from repro.adversary.family import relaxed_assignment

        n = cfg.tile_size * 4
        wa = relaxed_assignment(
            construct_warp_assignment(cfg.w, cfg.E), 1.0, seed=0
        )
        perm = worst_case_permutation(cfg, n, assignment=wa)
        assert not verify_worst_case(cfg, perm).ok

    def test_per_round_details(self, cfg):
        n = cfg.tile_size * 4
        report = verify_worst_case(cfg, worst_case_permutation(cfg, n))
        for verdict in report.targeted_rounds:
            assert verdict.per_warp_cycles >= verdict.predicted
        untargeted = [r for r in report.rounds if not r.targeted]
        assert all(r.ok for r in untargeted)  # no claims on narrow rounds

    def test_small_e_rounds_exact(self):
        cfg = SortConfig(elements_per_thread=3, block_size=8, warp_size=8)
        n = cfg.tile_size * 4
        report = verify_worst_case(cfg, worst_case_permutation(cfg, n))
        for verdict in report.targeted_rounds:
            assert verdict.per_warp_cycles == pytest.approx(verdict.predicted)
