"""Tests for β₁/β₂ measurement — pinning the Karsin-style observations the
paper quotes in Section II-A."""

import numpy as np
import pytest

from repro.analysis.beta import measure_betas
from repro.inputs.generators import generate
from repro.sort.config import SortConfig


@pytest.fixture(scope="module")
def cfg():
    return SortConfig(elements_per_thread=15, block_size=128, warp_size=32)


class TestBetaMeasurement:
    def test_random_input_ballpark(self, cfg, rng):
        """On random inputs β₂ sits near the balls-in-bins value ≈ 2.4 —
        the same ballpark as Karsin et al.'s measured 2.2."""
        n = cfg.tile_size * 32
        est = measure_betas(cfg, rng.permutation(n))
        assert 1.5 < est.beta2 < 3.5
        assert 0.5 < est.beta1 < 6.0

    def test_sorted_input_nearly_free(self, cfg):
        n = cfg.tile_size * 8
        est = measure_betas(cfg, np.arange(n))
        assert est.beta2 < 0.3

    def test_worst_case_drives_beta2_to_theta_e(self, cfg):
        """The paper's headline in β terms: the construction pushes β₂ to
        Θ(E) — here E − 1 = 14 on the targeted rounds, diluted only by the
        untargeted narrow rounds."""
        n = cfg.tile_size * 8
        est = measure_betas(cfg, generate("worst-case", cfg, n))
        # Targeted rounds run at beta2 = E−1 = 14; untargeted narrow
        # rounds dilute the sort-wide average below that.
        assert est.beta2 > 0.4 * cfg.E

    def test_beta_grows_with_inversions(self, cfg, rng):
        """Karsin et al.: β grows with the number of inversions — compare
        sorted (0), sawtooth (few), random (~half the max)."""
        n = cfg.tile_size * 16
        runs = {
            name: measure_betas(cfg, generate(name, cfg, n, seed=5),
                                with_inversions=True)
            for name in ("sorted", "sawtooth", "random")
        }
        assert (runs["sorted"].inversion_count
                < runs["sawtooth"].inversion_count
                < runs["random"].inversion_count)
        assert runs["sorted"].beta2 < runs["sawtooth"].beta2 < runs["random"].beta2

    def test_str(self, cfg):
        est = measure_betas(cfg, np.arange(cfg.tile_size * 2))
        assert "beta1=" in str(est) and "beta2=" in str(est)
