"""Tests for the correlation statistics, including the Fig. 6 claim."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.correlation import pearson_r, spearman_rho
from repro.errors import ValidationError


class TestPearson:
    def test_perfect_lines(self):
        assert pearson_r([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)
        assert pearson_r([1, 2, 3, 4], [8, 6, 4, 2]) == pytest.approx(-1.0)

    def test_independent_is_small(self, rng):
        xs = rng.normal(size=5000)
        ys = rng.normal(size=5000)
        assert abs(pearson_r(xs, ys)) < 0.1

    def test_constant_rejected(self):
        with pytest.raises(ValidationError):
            pearson_r([1, 1, 1], [1, 2, 3])

    def test_shape_validation(self):
        with pytest.raises(ValidationError):
            pearson_r([1, 2], [1, 2, 3])
        with pytest.raises(ValidationError):
            pearson_r([1], [1])

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.floats(-100, 100), min_size=3, max_size=30),
           st.floats(0.1, 10), st.floats(-50, 50))
    def test_affine_invariance(self, xs, scale, shift):
        xs = np.array(xs)
        if np.ptp(xs) < 1e-3:  # near-constant: denominator may underflow
            return
        r = pearson_r(xs, scale * xs + shift)
        assert r == pytest.approx(1.0, abs=1e-6)


class TestSpearman:
    def test_monotone_nonlinear(self):
        xs = [1, 2, 3, 4, 5]
        ys = [1, 8, 27, 64, 125]  # nonlinear but monotone
        assert spearman_rho(xs, ys) == pytest.approx(1.0)
        assert pearson_r(xs, ys) < 1.0

    def test_ties_average(self):
        rho = spearman_rho([1, 1, 2], [1, 2, 3])
        assert -1.0 <= rho <= 1.0

    def test_reversed(self):
        assert spearman_rho([1, 2, 3], [9, 5, 1]) == pytest.approx(-1.0)


class TestFigure6Claim:
    def test_conflicts_track_runtime(self):
        """The Karsin correlation on our own sweep: conflicts/elem and
        ms/elem rank-correlate strongly at scale."""
        from repro.bench.runner import SweepRunner
        from repro.gpu.device import RTX_2080_TI
        from repro.sort.presets import THRUST_MAXWELL

        runner = SweepRunner(THRUST_MAXWELL, RTX_2080_TI,
                             exact_threshold=1 << 19, score_blocks=4)
        sizes = THRUST_MAXWELL.valid_sizes(30_000_000)[6:]
        points = runner.sweep("worst-case", sizes)
        tail = [p for p in points if p.num_elements >= 1_000_000]
        rho = spearman_rho(
            [p.replays_per_element for p in tail],
            [p.ms_per_element for p in tail],
        )
        assert rho > 0.9
