"""Tests for per-step cost distributions."""

import numpy as np
import pytest

from repro.analysis.distributions import (
    StepCostDistribution,
    step_cost_distribution,
)
from repro.errors import ValidationError
from repro.inputs.generators import generate
from repro.sort.config import SortConfig
from repro.sort.pairwise import PairwiseMergeSort


@pytest.fixture(scope="module")
def cfg():
    return SortConfig(elements_per_thread=15, block_size=64, warp_size=32)


@pytest.fixture(scope="module")
def results(cfg):
    n = cfg.tile_size * 16
    sorter = PairwiseMergeSort(cfg)
    return {
        name: sorter.sort(generate(name, cfg, n, seed=0), score_blocks=4)
        for name in ("sorted", "random", "worst-case")
    }


class TestStepCostDistribution:
    def test_basic_stats(self):
        dist = StepCostDistribution(counts=np.array([0, 5, 3, 0, 2]))
        assert dist.num_steps == 10
        assert dist.max_cost == 4
        assert dist.mean_cost() == pytest.approx((5 + 6 + 8) / 10)
        assert dist.fraction_at_least(2) == pytest.approx(0.5)
        assert dist.quantile(0.0) <= dist.quantile(1.0) == 4

    def test_empty(self):
        dist = StepCostDistribution(counts=np.zeros(1, dtype=np.int64))
        assert dist.num_steps == 0
        assert dist.mean_cost() == 0.0
        assert dist.fraction_at_least(1) == 0.0

    def test_validation(self):
        dist = StepCostDistribution(counts=np.array([1]))
        with pytest.raises(ValidationError):
            dist.fraction_at_least(-1)
        with pytest.raises(ValidationError):
            dist.quantile(1.5)

    def test_as_rows_skips_zeros(self):
        dist = StepCostDistribution(counts=np.array([0, 3, 0, 1]))
        rows = dist.as_rows()
        assert [r["cost"] for r in rows] == [1, 3]


class TestOnSimulatedSorts:
    def test_worst_case_mass_at_e(self, cfg, results):
        """The construction puts (nearly) every targeted step at exactly
        E serialized cycles."""
        dist = step_cost_distribution(results["worst-case"])
        assert dist.fraction_at_least(cfg.E) > 0.95
        assert dist.quantile(0.5) == cfg.E

    def test_sorted_is_conflict_free(self, results):
        dist = step_cost_distribution(results["sorted"])
        assert dist.max_cost <= 2

    def test_random_follows_max_load(self, results):
        """Random steps cluster at the 32-ball max load (3–4)."""
        dist = step_cost_distribution(results["random"])
        assert 3.0 < dist.mean_cost() < 4.0
        assert dist.fraction_at_least(8) < 0.02

    def test_partition_stage_selectable(self, results):
        merge = step_cost_distribution(results["random"], stage="merge")
        part = step_cost_distribution(results["random"], stage="partition")
        assert part.num_steps != merge.num_steps

    def test_rejects_unknown_stage(self, results):
        with pytest.raises(ValidationError):
            step_cost_distribution(results["random"], stage="bogus")
