"""Tests for balls-in-bins expectations, including agreement between the
closed form, Monte Carlo, and the actual simulator on random inputs."""

import numpy as np
import pytest

from repro.analysis.expected import (
    expected_occupied_banks,
    expected_replays_per_step,
    max_load_monte_carlo,
)


class TestClosedForms:
    def test_one_request(self):
        assert expected_occupied_banks(8, 1) == pytest.approx(1.0)
        assert expected_replays_per_step(8, 1) == pytest.approx(0.0)

    def test_limits(self):
        # Many requests occupy nearly all banks.
        assert expected_occupied_banks(8, 10_000) == pytest.approx(8.0)

    def test_w_equals_k_classic_value(self):
        # w(1 − (1−1/w)^w) → w(1 − 1/e) ≈ 0.632·w
        assert expected_occupied_banks(32) == pytest.approx(20.41, abs=0.01)
        assert expected_replays_per_step(32) == pytest.approx(11.59, abs=0.01)

    def test_monotone_in_k(self):
        values = [expected_replays_per_step(16, k) for k in range(1, 64)]
        assert values == sorted(values)


class TestMonteCarlo:
    def test_max_load_matches_closed_replays(self):
        """MC and closed form must agree on the replay statistic implied
        by the same trials... cross-check max-load bounds instead: the max
        load is at least ceil(k/w) and at most k."""
        mean, se = max_load_monte_carlo(32, trials=5000, seed=1)
        assert 2.5 < mean < 4.5  # classic ≈ 3.4 for 32 balls/32 bins
        assert se < 0.05

    def test_reproducible(self):
        a = max_load_monte_carlo(16, trials=1000, seed=7)
        b = max_load_monte_carlo(16, trials=1000, seed=7)
        assert a == b

    def test_heavier_load(self):
        light, _ = max_load_monte_carlo(16, k=16, trials=2000)
        heavy, _ = max_load_monte_carlo(16, k=64, trials=2000)
        assert heavy > light


class TestAgainstSimulator:
    def test_simulated_random_merge_matches_theory(self, rng):
        """The simulator's measured per-step serialization and replays on
        random inputs must sit at the balls-in-bins predictions — the
        expected-case result the paper's conclusion asks for."""
        from repro.sort.config import SortConfig
        from repro.sort.pairwise import PairwiseMergeSort

        w = 32
        cfg = SortConfig(elements_per_thread=15, block_size=64, warp_size=w)
        n = cfg.tile_size * 32
        result = PairwiseMergeSort(cfg).sort(rng.permutation(n), score_blocks=8)

        glob = [r for r in result.rounds if r.kind == "global"]
        cycles = sum(r.merge_report.total_transactions for r in glob)
        steps = sum(r.merge_report.conflict_free_cycles for r in glob)
        replays = sum(r.merge_report.total_replays for r in glob)

        mc_max, _ = max_load_monte_carlo(w, trials=4000)
        assert cycles / steps == pytest.approx(mc_max, rel=0.15)
        assert replays / steps == pytest.approx(
            expected_replays_per_step(w), rel=0.15
        )
