"""Tests for inversion counting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.inversions import (
    count_inversions,
    inversion_fraction,
    max_inversions,
)
from repro.errors import ValidationError


def brute_force(values):
    n = len(values)
    return sum(
        1 for i in range(n) for j in range(i + 1, n) if values[i] > values[j]
    )


class TestCountInversions:
    def test_sorted_is_zero(self):
        assert count_inversions(np.arange(100)) == 0

    def test_reversed_is_max(self):
        n = 50
        assert count_inversions(np.arange(n)[::-1].copy()) == max_inversions(n)

    def test_single_swap(self):
        assert count_inversions(np.array([0, 2, 1, 3])) == 1

    def test_duplicates_not_inversions(self):
        assert count_inversions(np.array([1, 1, 1])) == 0

    def test_tiny(self):
        assert count_inversions(np.array([])) == 0
        assert count_inversions(np.array([5])) == 0

    def test_rejects_2d(self):
        with pytest.raises(ValidationError):
            count_inversions(np.zeros((2, 2)))

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.integers(-20, 20), min_size=0, max_size=60))
    def test_matches_brute_force(self, values):
        assert count_inversions(np.array(values, dtype=np.int64)) == brute_force(
            values
        )


class TestInversionFraction:
    def test_endpoints(self):
        assert inversion_fraction(np.arange(10)) == 0.0
        assert inversion_fraction(np.arange(10)[::-1].copy()) == 1.0

    def test_random_near_half(self, rng):
        frac = inversion_fraction(rng.permutation(2000))
        assert 0.45 < frac < 0.55

    def test_empty(self):
        assert inversion_fraction(np.array([])) == 0.0
