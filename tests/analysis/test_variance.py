"""Tests for the runtime-variance study."""

import numpy as np
import pytest

from repro.analysis.variance import VarianceStudy, variance_study
from repro.gpu.device import QUADRO_M4000
from repro.sort.config import SortConfig


@pytest.fixture(scope="module")
def study():
    cfg = SortConfig(elements_per_thread=15, block_size=128, warp_size=32)
    return variance_study(
        cfg, QUADRO_M4000, cfg.tile_size * 32, num_samples=6, score_blocks=4
    )


class TestVarianceStudy:
    def test_worst_is_an_extreme_outlier(self, study):
        """The paper's point: random sampling never finds the tail."""
        assert study.worst_ms > study.samples_ms.max()
        assert study.z_score > 5

    def test_random_spread_is_tiny(self, study):
        """Random permutations all run alike — which is exactly why a
        dozen of them carries no information about the worst case."""
        assert study.spread_percent < 5
        assert study.worst_slowdown_percent > 4 * study.spread_percent

    def test_summary_format(self, study):
        s = study.summary()
        assert "sigmas out" in s and "ms" in s

    def test_dataclass_stats(self):
        samples = np.array([10.0, 10.2, 9.8])
        s = VarianceStudy(num_elements=4, samples_ms=samples, worst_ms=15.0)
        assert s.mean_ms == pytest.approx(10.0)
        assert s.worst_slowdown_percent == pytest.approx(50.0)

    def test_degenerate_zero_variance(self):
        s = VarianceStudy(
            num_elements=4, samples_ms=np.array([1.0, 1.0]), worst_ms=2.0
        )
        assert s.z_score == float("inf")

    def test_validates_samples(self):
        from repro.errors import ValidationError

        cfg = SortConfig(elements_per_thread=3, block_size=32, warp_size=32)
        with pytest.raises(ValidationError):
            variance_study(cfg, QUADRO_M4000, cfg.tile_size, num_samples=0)
