"""Unit tests for the ASCII renderers."""

import numpy as np
import pytest

from repro.bench.ascii_plot import bank_matrix_str, line_plot, table
from repro.errors import ValidationError


class TestLinePlot:
    def test_contains_series_glyphs_and_legend(self):
        out = line_plot(
            {"up": ([1, 10, 100], [1.0, 2.0, 3.0]),
             "down": ([1, 10, 100], [3.0, 2.0, 1.0])},
            title="demo",
        )
        assert "demo" in out
        assert "* up" in out and "o down" in out

    def test_flat_series_does_not_crash(self):
        out = line_plot({"flat": ([1, 2], [5.0, 5.0])}, logx=False)
        assert "flat" in out

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            line_plot({})
        with pytest.raises(ValidationError):
            line_plot({"a": ([], [])})

    def test_rejects_ragged(self):
        with pytest.raises(ValidationError):
            line_plot({"a": ([1, 2], [1.0])})


class TestBankMatrixStr:
    def test_rows_per_bank(self):
        owners = np.array([[0, 1], [2, -1]])
        out = bank_matrix_str(owners, label="L")
        lines = out.splitlines()
        assert lines[0] == "L"
        assert lines[1].startswith("bank  0")
        assert " . " in lines[2]  # -1 rendered as dot

    def test_highlight_brackets(self):
        owners = np.array([[3]])
        out = bank_matrix_str(owners, highlight=np.array([[True]]))
        assert "[ 3]" in out

    def test_rejects_1d(self):
        with pytest.raises(ValidationError):
            bank_matrix_str(np.array([1, 2]))


class TestTable:
    def test_formats_rows(self):
        out = table([{"a": 1234, "b": 0.5}, {"a": 5, "b": 1.25}])
        assert "1,234" in out
        assert "0.500" in out

    def test_empty(self):
        assert table([]) == "(empty)"

    def test_column_selection(self):
        out = table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in out.splitlines()[0]
