"""Tests for the on-disk bench cache: fingerprints, hit/miss/invalidation,
corrupted-entry recovery, and the zero-instrumented-sorts warm path."""

import os
import json

import pytest

from repro.bench.cache import (
    SCHEMA_VERSION,
    BenchCache,
    fingerprint,
    point_key,
    rates_key,
)
from repro.bench.runner import CalibratedRates, SweepRunner
from repro.gpu.device import QUADRO_M4000, RTX_2080_TI
from repro.sort.config import SortConfig


def small_config(**kwargs):
    defaults = dict(elements_per_thread=3, block_size=32, warp_size=32)
    defaults.update(kwargs)
    return SortConfig(**defaults)


def make_point_key(**overrides):
    defaults = dict(
        padding=0,
        input_name="worst-case",
        num_elements=3072,
        score_blocks=4,
        seed=0,
        exact_threshold=768,
    )
    config = overrides.pop("config", small_config())
    device = overrides.pop("device", QUADRO_M4000)
    defaults.update(overrides)
    return point_key(config, device, **defaults)


def runner_with_cache(tmp_path, **kwargs):
    cfg = small_config()
    defaults = dict(
        exact_threshold=cfg.tile_size * 8,
        score_blocks=4,
        seed=0,
        cache=BenchCache(tmp_path),
    )
    defaults.update(kwargs)
    return SweepRunner(cfg, QUADRO_M4000, **defaults)


class TestFingerprint:
    def test_stable(self):
        assert fingerprint(make_point_key()) == fingerprint(make_point_key())

    def test_insensitive_to_dict_order(self):
        key = make_point_key()
        shuffled = dict(reversed(list(key.items())))
        assert fingerprint(key) == fingerprint(shuffled)

    @pytest.mark.parametrize(
        "override",
        [
            {"config": small_config(elements_per_thread=5)},
            {"config": small_config(name="other")},
            {"device": RTX_2080_TI},
            {"padding": 1},
            {"input_name": "random"},
            {"num_elements": 6144},
            {"score_blocks": 8},
            {"score_blocks": None},
            {"seed": 1},
            {"exact_threshold": 1536},
        ],
    )
    def test_any_key_field_change_invalidates(self, override):
        assert fingerprint(make_point_key(**override)) != fingerprint(
            make_point_key()
        )

    def test_schema_version_in_key(self):
        assert make_point_key()["schema"] == SCHEMA_VERSION
        assert rates_key(
            small_config(),
            padding=0,
            input_name="random",
            calibration_size=768,
            score_blocks=4,
            seed=0,
        )["schema"] == SCHEMA_VERSION

    def test_point_and_rates_keys_distinct(self):
        cfg = small_config()
        pk = point_key(
            cfg, QUADRO_M4000, padding=0, input_name="random",
            num_elements=768, score_blocks=4, seed=0, exact_threshold=768,
        )
        rk = rates_key(
            cfg, padding=0, input_name="random", calibration_size=768,
            score_blocks=4, seed=0,
        )
        assert fingerprint(pk) != fingerprint(rk)


class TestRoundTrip:
    def test_point_roundtrip(self, tmp_path):
        runner = runner_with_cache(tmp_path)
        key = make_point_key()
        assert runner.cache.get_point(key) is None
        point = runner.run_point("worst-case", runner.config.tile_size * 4)
        runner.cache.put_point(key, point)
        assert runner.cache.get_point(key) == point

    def test_rates_roundtrip(self, tmp_path):
        cache = BenchCache(tmp_path)
        rates = CalibratedRates(
            base_shared_cycles=1.5,
            base_shared_steps=1.0,
            base_replays=0.5,
            base_compute=0.75,
            global_shared_cycles=2.5,
            global_shared_steps=2.0,
            global_replays=0.25,
        )
        key = rates_key(
            small_config(), padding=0, input_name="random",
            calibration_size=768, score_blocks=4, seed=0,
        )
        assert cache.get_rates(key) is None
        cache.put_rates(key, rates)
        assert cache.get_rates(key) == rates

    def test_stats_and_clear(self, tmp_path):
        runner = runner_with_cache(tmp_path)
        runner.sweep("worst-case", [runner.config.tile_size * 2,
                                    runner.config.tile_size * 16])
        cache = runner.cache
        stats = cache.stats()
        assert stats.point_entries == 2
        assert stats.rate_entries == 1  # one synthesized point -> one calibration
        assert stats.total_bytes > 0
        assert cache.clear() == 3
        assert cache.stats().point_entries == 0
        assert cache.stats().total_bytes == 0

    def test_empty_cache_stats(self, tmp_path):
        cache = BenchCache(tmp_path / "never-created")
        assert cache.stats().point_entries == 0
        assert cache.clear() == 0


class TestRunnerIntegration:
    def test_warm_cache_runs_zero_instrumented_sorts(self, tmp_path):
        cfg = small_config()
        sizes = cfg.valid_sizes(cfg.tile_size * 64)  # exact + synthesized
        cold = runner_with_cache(tmp_path)
        points_cold = cold.sweep("worst-case", sizes)
        assert cold.instrumented_sorts > 0

        warm = runner_with_cache(tmp_path)
        points_warm = warm.sweep("worst-case", sizes)
        assert warm.instrumented_sorts == 0
        assert points_warm == points_cold
        assert warm.cache.hits == len(sizes)

    def test_cache_disabled_by_default(self, tmp_path):
        cfg = small_config()
        runner = SweepRunner(cfg, QUADRO_M4000, exact_threshold=cfg.tile_size * 8)
        assert runner.cache is None

    def test_seed_change_misses(self, tmp_path):
        n = small_config().tile_size * 4
        first = runner_with_cache(tmp_path)
        first.run_point("random", n)
        other_seed = runner_with_cache(tmp_path, seed=1)
        other_seed.run_point("random", n)
        assert other_seed.instrumented_sorts == 1

    def test_calibration_shared_across_synthesized_points(self, tmp_path):
        cfg = small_config()
        n_synth = cfg.tile_size * 32
        first = runner_with_cache(tmp_path)
        first.run_point("worst-case", n_synth)
        # Fresh runner, new synthesized size: point misses, but the
        # calibration is served from disk, so no new instrumented sort.
        second = runner_with_cache(tmp_path)
        second.run_point("worst-case", n_synth * 2)
        assert second.instrumented_sorts == 0


class TestCorruptionRecovery:
    def _point_entry_paths(self, cache):
        return list((cache.cache_dir / "points").glob("*.json"))

    def test_corrupt_point_entry_recomputes(self, tmp_path):
        runner = runner_with_cache(tmp_path)
        n = runner.config.tile_size * 4
        point = runner.run_point("worst-case", n)
        [entry] = self._point_entry_paths(runner.cache)
        entry.write_text("{ not json !!!")

        warm = runner_with_cache(tmp_path)
        assert warm.run_point("worst-case", n) == point
        assert warm.instrumented_sorts == 1  # fell back to recompute
        # The recompute rewrote a valid entry.
        fresh = runner_with_cache(tmp_path)
        assert fresh.run_point("worst-case", n) == point
        assert fresh.instrumented_sorts == 0

    def test_wrong_payload_shape_is_a_miss(self, tmp_path):
        runner = runner_with_cache(tmp_path)
        n = runner.config.tile_size * 4
        point = runner.run_point("worst-case", n)
        [entry] = self._point_entry_paths(runner.cache)
        entry.write_text(json.dumps({"key": {}, "payload": {"bogus": 1}}))

        warm = runner_with_cache(tmp_path)
        assert warm.run_point("worst-case", n) == point
        assert warm.instrumented_sorts == 1

    def test_payload_not_a_dict_is_a_miss(self, tmp_path):
        runner = runner_with_cache(tmp_path)
        n = runner.config.tile_size * 4
        point = runner.run_point("worst-case", n)
        [entry] = self._point_entry_paths(runner.cache)
        entry.write_text(json.dumps({"key": {}, "payload": [1, 2, 3]}))

        warm = runner_with_cache(tmp_path)
        assert warm.run_point("worst-case", n) == point
        assert warm.instrumented_sorts == 1

    def test_corrupt_rates_entry_recomputes(self, tmp_path):
        runner = runner_with_cache(tmp_path)
        n_synth = runner.config.tile_size * 32
        point = runner.run_point("worst-case", n_synth)
        for entry in (runner.cache.cache_dir / "rates").glob("*.json"):
            entry.write_text("garbage")
        # Remove the cached point so the rates path is exercised again.
        for entry in self._point_entry_paths(runner.cache):
            entry.unlink()

        warm = runner_with_cache(tmp_path)
        assert warm.run_point("worst-case", n_synth) == point
        assert warm.instrumented_sorts == 1  # calibration recomputed


class TestBenchPointSerialization:
    def test_payload_is_plain_json(self, tmp_path):
        runner = runner_with_cache(tmp_path)
        runner.run_point("random", runner.config.tile_size * 2)
        [entry] = self._entries(runner.cache)
        data = json.loads(entry.read_text())
        assert set(data) == {"key", "payload"}
        # Round-trips through dataclasses.asdict / BenchPoint(**payload).
        assert data["payload"]["input_name"] == "random"
        assert data["key"]["schema"] == SCHEMA_VERSION

    @staticmethod
    def _entries(cache):
        return list((cache.cache_dir / "points").glob("*.json"))


class TestPrune:
    def fill(self, tmp_path, sizes=(2, 4, 8)):
        """Distinct entries with strictly increasing mtimes (oldest first).

        All sizes stay at or below the exact threshold so no calibration
        rates entry appears alongside the point entries.
        """
        runner = runner_with_cache(tmp_path)
        cache = runner.cache
        paths = []
        for i, tiles in enumerate(sizes):
            n = runner.config.tile_size * tiles
            key = make_point_key(num_elements=n)
            cache.put_point(key, runner.run_point("worst-case", n))
            path = max(
                (tmp_path / "points").glob("*.json"),
                key=lambda p: p.stat().st_mtime_ns,
            )
            os.utime(path, (1_000_000 + i, 1_000_000 + i))
            paths.append(path)
        return cache, paths

    def test_evicts_oldest_first(self, tmp_path):
        cache, paths = self.fill(tmp_path)
        keep = paths[-1].stat().st_size
        result = cache.prune(keep)
        assert result.removed_entries == 2
        assert result.kept_entries == 1
        assert not paths[0].exists() and not paths[1].exists()
        assert paths[2].exists()  # newest survives
        assert result.kept_bytes <= keep

    def test_byte_bound_respected(self, tmp_path):
        cache, paths = self.fill(tmp_path)
        budget = paths[1].stat().st_size + paths[2].stat().st_size
        result = cache.prune(budget)
        assert result.kept_bytes <= budget
        assert cache.stats().total_bytes == result.kept_bytes

    def test_zero_budget_clears_everything(self, tmp_path):
        cache, paths = self.fill(tmp_path)
        result = cache.prune(0)
        assert result.kept_entries == 0
        assert cache.stats().point_entries == 0
        assert result.removed_entries == len(paths)

    def test_large_budget_removes_nothing(self, tmp_path):
        cache, paths = self.fill(tmp_path)
        before = cache.stats().total_bytes
        result = cache.prune(before)
        assert result.removed_entries == 0
        assert result.kept_bytes == before

    def test_orphaned_tmp_files_removed(self, tmp_path):
        cache, paths = self.fill(tmp_path, sizes=(2,))
        orphan = tmp_path / "points" / "deadbeef.json.1234.tmp"
        orphan.write_text("partial write")
        # Age the orphan past the grace window: a crashed writer's
        # leftover, not a write in flight.
        os.utime(orphan, (1_000_000, 1_000_000))
        result = cache.prune(1 << 30)
        assert not orphan.exists()
        assert result.removed_entries == 1  # only the orphan
        assert paths[0].exists()

    def test_fresh_tmp_survives_prune(self, tmp_path):
        """Regression: a concurrent writer's just-created temp file must
        not be collected — deleting it makes the writer's ``os.replace``
        fail and silently drops its result. Only ``*.tmp`` older than
        the grace window are orphans."""
        cache, _ = self.fill(tmp_path, sizes=(2,))
        in_flight = tmp_path / "points" / "cafef00d.json.5678.tmp"
        in_flight.write_text('{"half": "written')  # fresh mtime = now
        result = cache.prune(1 << 30)
        assert in_flight.exists()
        assert result.removed_entries == 0
        # The writer completes its atomic rename unharmed.
        os.replace(in_flight, tmp_path / "points" / "cafef00d.json")

    def test_tmp_grace_override(self, tmp_path):
        cache, _ = self.fill(tmp_path, sizes=(2,))
        stale = tmp_path / "points" / "deadbeef.json.1234.tmp"
        stale.write_text("partial write")
        assert cache.prune(1 << 30).removed_entries == 0  # within grace
        assert cache.prune(1 << 30, tmp_grace=0.0).removed_entries == 1
        assert not stale.exists()

    def test_negative_budget_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            BenchCache(tmp_path).prune(-1)

    def test_missing_cache_dir_is_empty_prune(self, tmp_path):
        result = BenchCache(tmp_path / "never-created").prune(0)
        assert result.removed_entries == 0 and result.kept_entries == 0
