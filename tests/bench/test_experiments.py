"""Tests for the experiment registry (the `reproduce` command's engine)."""

import pytest

from repro.bench.experiments import (
    EXPERIMENTS,
    ExperimentResult,
    run_all,
    run_experiment,
)
from repro.errors import ValidationError


class TestRegistry:
    def test_known_ids(self):
        assert "theorem-3-small-E" in EXPERIMENTS
        assert "figure-4-quadro" in EXPERIMENTS
        assert len(EXPERIMENTS) >= 9

    def test_unknown_id(self):
        with pytest.raises(ValidationError, match="known:"):
            run_experiment("bogus")

    def test_theorem_experiments_pass_quick(self):
        for exp_id in ("theorem-3-small-E", "theorem-9-large-E",
                       "figures-1-and-3"):
            result = run_experiment(exp_id, quick=True)
            assert result.passed, result.details

    def test_end_to_end_passes_quick(self):
        result = run_experiment("end-to-end-serialization", quick=True)
        assert result.passed
        assert len(result.details) == 2

    def test_summary_format(self):
        r = ExperimentResult("x", True, ["  ok y"])
        assert r.summary() == "[PASS] x"
        assert ExperimentResult("x", False).summary() == "[FAIL] x"


@pytest.mark.slow
class TestFullRegistry:
    def test_run_all_quick(self):
        results = run_all(quick=True)
        assert len(results) == len(EXPERIMENTS)
        failed = [r.experiment_id for r in results if not r.passed]
        assert not failed, failed
