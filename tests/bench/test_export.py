"""Tests for JSON export/import of bench results."""

import json

import numpy as np
import pytest

from repro.bench.export import (
    figure_to_json,
    point_to_dict,
    points_from_json,
    write_json,
)
from repro.bench.metrics import BenchPoint, SlowdownStats
from repro.errors import ValidationError


def point(n=100, ms=10.0):
    return BenchPoint(
        config_name="cfg",
        device_name="dev",
        input_name="random",
        num_elements=n,
        milliseconds=ms,
        throughput_meps=n / ms / 1e3,
        replays_per_element=1.5,
        shared_cycles=123,
        global_transactions=45,
    )


class TestPointRoundtrip:
    def test_dict_fields(self):
        d = point_to_dict(point())
        assert d["n"] == 100 and d["shared_cycles"] == 123

    def test_roundtrip(self):
        pts = [point(100), point(200, 5.0)]
        text = json.dumps([point_to_dict(p) for p in pts])
        restored = points_from_json(text)
        assert restored == pts

    def test_rejects_non_array(self):
        with pytest.raises(ValidationError):
            points_from_json('{"a": 1}')


class TestFigureSerialization:
    def test_numpy_and_stats_handled(self):
        data = {
            "matrix": np.arange(4).reshape(2, 2),
            "scalar": np.int64(7),
            "float": np.float64(1.5),
            "stats": SlowdownStats(peak_percent=50.0, peak_at=100,
                                   average_percent=40.0),
            "points": [point()],
            "nested": {"tuple": (1, 2)},
        }
        parsed = json.loads(figure_to_json(data))
        assert parsed["matrix"] == [[0, 1], [2, 3]]
        assert parsed["scalar"] == 7
        assert parsed["stats"]["peak_percent"] == 50.0
        assert parsed["points"][0]["n"] == 100
        assert parsed["nested"]["tuple"] == [1, 2]

    def test_write_json(self, tmp_path):
        target = tmp_path / "fig.json"
        write_json({"x": [1, 2, 3]}, target)
        assert json.loads(target.read_text()) == {"x": [1, 2, 3]}

    def test_write_json_list(self, tmp_path):
        target = tmp_path / "sweep.json"
        write_json([point()], target)
        parsed = json.loads(target.read_text())
        assert parsed[0]["device"] == "dev"

    def test_real_figure_serializes(self):
        from repro.bench.figures import figure3

        text = figure_to_json(figure3())
        parsed = json.loads(text)
        assert parsed["small"]["aligned"] == 49
