"""Tests for the figure builders — shapes and paper-anchored facts."""

import pytest

from repro.bench.figures import figure1, figure3, figure4, figure5, figure6, theory_table


class TestFigure1:
    def test_gcd4_alignment(self):
        data = figure1()
        # w=16, E=12, d=4: sorted order aligns d threads x E accesses.
        assert data["aligned"] == 48
        assert data["a_owners"].shape[0] == 16

    def test_custom_parameters(self):
        data = figure1(w=8, e=4)
        assert data["aligned"] == 16


class TestFigure3:
    def test_both_panels(self):
        data = figure3()
        assert data["small"]["aligned"] == 49  # E=7: E²
        assert data["large"]["aligned"] == 80  # E=9: ½(E²+E+2Er−r²−r)
        assert data["large"]["target_bank"] == 7  # s = r

    def test_paper_first_column_threads(self):
        data = figure3()
        a = data["small"]["a_owners"]
        assert a[0, :4].tolist() == [0, 4, 8, 13]


@pytest.fixture(scope="module")
def small_figure4():
    return figure4(max_elements=4_000_000, exact_threshold=1 << 19,
                   score_blocks=4)


class TestFigure4:
    def test_panels_present(self, small_figure4):
        assert small_figure4["device"] == "Quadro M4000"
        for key in ("thrust", "mgpu"):
            panel = small_figure4[key]
            assert len(panel["random"]) == len(panel["worst"]) == len(panel["sizes"])

    def test_worst_is_slower(self, small_figure4):
        for key in ("thrust", "mgpu"):
            stats = small_figure4[key]["slowdown"]
            assert stats.average_percent > 5

    def test_thrust_beats_mgpu_on_random(self, small_figure4):
        """Paper: 'Thrust outperforms Modern GPU for both random and
        constructed worst-case inputs' (larger tiles, fewer rounds)."""
        thrust = small_figure4["thrust"]["random"][-1]
        mgpu = small_figure4["mgpu"]["random"][-1]
        assert thrust.throughput_meps > mgpu.throughput_meps


class TestFigure5:
    def test_random_ordering_matches_paper(self):
        """E=15,b=512 beats E=17,b=256 on random inputs (occupancy +
        fewer rounds) — the paper's confirmed expectation."""
        data = figure5(max_elements=4_000_000, exact_threshold=1 << 19,
                       score_blocks=4)
        t15 = data["e15_b512"]["random"][-1]
        t17 = data["e17_b256"]["random"][-1]
        assert t15.throughput_meps > t17.throughput_meps


class TestFigure6:
    def test_log_growth(self):
        """Conflicts per element grow with N (one more round per
        doubling), with decreasing increments on a log-x axis... constant
        increments per doubling — i.e. growth is ~logarithmic."""
        data = figure6(max_elements=8_000_000, exact_threshold=1 << 19,
                       score_blocks=4)
        for key in ("e15_b512", "e17_b256"):
            cpe = data[key]["replays_per_element"]
            assert cpe == sorted(cpe)
            increments = [b - a for a, b in zip(cpe, cpe[1:])]
            # Per-doubling increments stabilize (log growth), they don't blow up.
            assert max(increments[2:]) <= 2.5 * min(increments[2:]) + 1e-9

    def test_conflicts_predict_runtime(self):
        """The correlation the paper reports: once past the small-N launch
        overhead regime (the paper's 'noise from the base case'), both
        ms/elem and conflicts/elem grow together with N."""
        data = figure6(max_elements=8_000_000, exact_threshold=1 << 19,
                       score_blocks=4)
        panel = data["e15_b512"]
        tail = slice(-4, None)
        ms = panel["ms_per_element"][tail]
        cpe = panel["replays_per_element"][tail]
        assert ms == sorted(ms)
        assert cpe == sorted(cpe)


class TestTheoryTable:
    def test_all_rows_match(self):
        for row in theory_table(w=32):
            assert row["predicted"] == row["constructed"]

    def test_cases_split(self):
        rows = theory_table(w=32)
        cases = {r["E"]: r["case"] for r in rows}
        assert cases[15] == "small"
        assert cases[17] == "large"
