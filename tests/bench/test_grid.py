"""Tests for the (E, b) grid search."""

import pytest

from repro.bench.grid import GridPoint, grid_search
from repro.gpu.device import QUADRO_M4000, RTX_2080_TI


@pytest.fixture(scope="module")
def points():
    # Meaningful E only: at tiny E the worst case barely clears the random
    # balls-in-bins level and can land a hair faster.
    return grid_search(
        QUADRO_M4000, es=[7, 15], bs=[64, 128],
        target_elements=200_000, exact_threshold=1 << 17, score_blocks=2,
    )


class TestGridSearch:
    def test_covers_feasible_grid(self, points):
        combos = {(p.elements_per_thread, p.block_size) for p in points}
        assert combos == {(7, 64), (7, 128), (15, 64), (15, 128)}

    def test_sorted_by_random_throughput(self, points):
        meps = [p.random_meps for p in points]
        assert meps == sorted(meps, reverse=True)

    def test_worst_never_faster(self, points):
        for p in points:
            assert p.worst_meps <= p.random_meps
            assert p.slowdown_percent >= 0

    def test_occupancy_in_range(self, points):
        for p in points:
            assert 0 < p.occupancy <= 1

    def test_as_row(self, points):
        row = points[0].as_row()
        assert set(row) == {"E", "b", "occupancy", "random Melem/s",
                            "worst Melem/s", "slowdown %"}

    def test_skips_oversized_tiles(self):
        # E=512, b=512 -> 1 MiB tile: no device fits it.
        out = grid_search(RTX_2080_TI, es=[512], bs=[512],
                          target_elements=10**6)
        assert out == []

    def test_gridpoint_slowdown(self):
        p = GridPoint(elements_per_thread=15, block_size=512, occupancy=1.0,
                      num_elements=100, random_meps=150.0, worst_meps=100.0)
        assert p.slowdown_percent == pytest.approx(50.0)
